# Empty compiler generated dependencies file for portability_demo.
# This may be replaced when dependencies are built.
