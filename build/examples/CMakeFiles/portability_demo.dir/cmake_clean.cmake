file(REMOVE_RECURSE
  "CMakeFiles/portability_demo.dir/portability_demo.cpp.o"
  "CMakeFiles/portability_demo.dir/portability_demo.cpp.o.d"
  "portability_demo"
  "portability_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
