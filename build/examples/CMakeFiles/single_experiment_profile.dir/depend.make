# Empty dependencies file for single_experiment_profile.
# This may be replaced when dependencies are built.
