file(REMOVE_RECURSE
  "CMakeFiles/single_experiment_profile.dir/single_experiment_profile.cpp.o"
  "CMakeFiles/single_experiment_profile.dir/single_experiment_profile.cpp.o.d"
  "single_experiment_profile"
  "single_experiment_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_experiment_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
