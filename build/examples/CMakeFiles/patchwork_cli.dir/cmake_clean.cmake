file(REMOVE_RECURSE
  "CMakeFiles/patchwork_cli.dir/patchwork_cli.cpp.o"
  "CMakeFiles/patchwork_cli.dir/patchwork_cli.cpp.o.d"
  "patchwork_cli"
  "patchwork_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
