# Empty dependencies file for patchwork_cli.
# This may be replaced when dependencies are built.
