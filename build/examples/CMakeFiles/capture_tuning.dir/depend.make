# Empty dependencies file for capture_tuning.
# This may be replaced when dependencies are built.
