file(REMOVE_RECURSE
  "CMakeFiles/capture_tuning.dir/capture_tuning.cpp.o"
  "CMakeFiles/capture_tuning.dir/capture_tuning.cpp.o.d"
  "capture_tuning"
  "capture_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
