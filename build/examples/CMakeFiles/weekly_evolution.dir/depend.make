# Empty dependencies file for weekly_evolution.
# This may be replaced when dependencies are built.
