file(REMOVE_RECURSE
  "CMakeFiles/weekly_evolution.dir/weekly_evolution.cpp.o"
  "CMakeFiles/weekly_evolution.dir/weekly_evolution.cpp.o.d"
  "weekly_evolution"
  "weekly_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weekly_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
