# Empty dependencies file for testbed_wide_profile.
# This may be replaced when dependencies are built.
