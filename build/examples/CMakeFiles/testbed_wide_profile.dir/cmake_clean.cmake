file(REMOVE_RECURSE
  "CMakeFiles/testbed_wide_profile.dir/testbed_wide_profile.cpp.o"
  "CMakeFiles/testbed_wide_profile.dir/testbed_wide_profile.cpp.o.d"
  "testbed_wide_profile"
  "testbed_wide_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_wide_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
