
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/acap_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/analysis/acap_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/analysis/acap_test.cpp.o.d"
  "/root/repo/tests/analysis/analyses_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/analysis/analyses_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/analysis/analyses_test.cpp.o.d"
  "/root/repo/tests/analysis/digest_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/analysis/digest_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/analysis/digest_test.cpp.o.d"
  "/root/repo/tests/analysis/index_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/analysis/index_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/analysis/index_test.cpp.o.d"
  "/root/repo/tests/analysis/operator_view_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/analysis/operator_view_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/analysis/operator_view_test.cpp.o.d"
  "/root/repo/tests/analysis/pipeline_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/analysis/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/analysis/pipeline_test.cpp.o.d"
  "/root/repo/tests/analysis/report_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/analysis/report_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/analysis/report_test.cpp.o.d"
  "/root/repo/tests/capture/anonymize_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/capture/anonymize_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/capture/anonymize_test.cpp.o.d"
  "/root/repo/tests/capture/filter_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/capture/filter_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/capture/filter_test.cpp.o.d"
  "/root/repo/tests/capture/fpga_pipeline_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/capture/fpga_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/capture/fpga_pipeline_test.cpp.o.d"
  "/root/repo/tests/capture/perf_model_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/capture/perf_model_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/capture/perf_model_test.cpp.o.d"
  "/root/repo/tests/capture/session_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/capture/session_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/capture/session_test.cpp.o.d"
  "/root/repo/tests/core/congestion_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/core/congestion_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/core/congestion_test.cpp.o.d"
  "/root/repo/tests/core/coordinator_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/core/coordinator_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/core/coordinator_test.cpp.o.d"
  "/root/repo/tests/core/environment_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/core/environment_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/core/environment_test.cpp.o.d"
  "/root/repo/tests/core/mirror_scheduler_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/core/mirror_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/core/mirror_scheduler_test.cpp.o.d"
  "/root/repo/tests/core/port_selector_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/core/port_selector_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/core/port_selector_test.cpp.o.d"
  "/root/repo/tests/core/profiler_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/core/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/core/profiler_test.cpp.o.d"
  "/root/repo/tests/core/scaler_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/core/scaler_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/core/scaler_test.cpp.o.d"
  "/root/repo/tests/core/testbed_backend_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/core/testbed_backend_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/core/testbed_backend_test.cpp.o.d"
  "/root/repo/tests/host/host_system_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/host/host_system_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/host/host_system_test.cpp.o.d"
  "/root/repo/tests/host/page_cache_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/host/page_cache_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/host/page_cache_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/profile_fidelity_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/integration/profile_fidelity_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/integration/profile_fidelity_test.cpp.o.d"
  "/root/repo/tests/net/addr_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/net/addr_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/net/addr_test.cpp.o.d"
  "/root/repo/tests/net/checksum_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/net/checksum_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/net/checksum_test.cpp.o.d"
  "/root/repo/tests/net/frame_builder_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/net/frame_builder_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/net/frame_builder_test.cpp.o.d"
  "/root/repo/tests/net/headers_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/net/headers_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/net/headers_test.cpp.o.d"
  "/root/repo/tests/net/parser_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/net/parser_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/net/parser_test.cpp.o.d"
  "/root/repo/tests/pcap/pcap_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/pcap/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/pcap/pcap_test.cpp.o.d"
  "/root/repo/tests/property/parser_property_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/property/parser_property_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/property/parser_property_test.cpp.o.d"
  "/root/repo/tests/property/scheduler_property_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/property/scheduler_property_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/property/scheduler_property_test.cpp.o.d"
  "/root/repo/tests/property/system_property_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/property/system_property_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/property/system_property_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/telemetry/mflib_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/telemetry/mflib_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/telemetry/mflib_test.cpp.o.d"
  "/root/repo/tests/telemetry/netflow_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/telemetry/netflow_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/telemetry/netflow_test.cpp.o.d"
  "/root/repo/tests/telemetry/timeseries_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/telemetry/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/telemetry/timeseries_test.cpp.o.d"
  "/root/repo/tests/testbed/activity_model_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/testbed/activity_model_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/testbed/activity_model_test.cpp.o.d"
  "/root/repo/tests/testbed/allocator_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/testbed/allocator_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/testbed/allocator_test.cpp.o.d"
  "/root/repo/tests/testbed/federation_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/testbed/federation_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/testbed/federation_test.cpp.o.d"
  "/root/repo/tests/testbed/port_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/testbed/port_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/testbed/port_test.cpp.o.d"
  "/root/repo/tests/testbed/slice_model_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/testbed/slice_model_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/testbed/slice_model_test.cpp.o.d"
  "/root/repo/tests/testbed/switch_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/testbed/switch_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/testbed/switch_test.cpp.o.d"
  "/root/repo/tests/traffic/engine_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/traffic/engine_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/traffic/engine_test.cpp.o.d"
  "/root/repo/tests/traffic/flowgen_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/traffic/flowgen_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/traffic/flowgen_test.cpp.o.d"
  "/root/repo/tests/traffic/workload_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/traffic/workload_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/traffic/workload_test.cpp.o.d"
  "/root/repo/tests/util/compress_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/util/compress_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/util/compress_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/logging_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/util/logging_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/util/logging_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/patchwork_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/patchwork_tests.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/patchwork_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/patchwork_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/patchwork_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/patchwork_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/patchwork_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/patchwork_host.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/patchwork_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/patchwork_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/patchwork_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/patchwork_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchwork_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
