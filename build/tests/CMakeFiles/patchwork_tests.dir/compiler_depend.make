# Empty compiler generated dependencies file for patchwork_tests.
# This may be replaced when dependencies are built.
