# Empty compiler generated dependencies file for patchwork_capture.
# This may be replaced when dependencies are built.
