file(REMOVE_RECURSE
  "CMakeFiles/patchwork_capture.dir/anonymize.cpp.o"
  "CMakeFiles/patchwork_capture.dir/anonymize.cpp.o.d"
  "CMakeFiles/patchwork_capture.dir/filter.cpp.o"
  "CMakeFiles/patchwork_capture.dir/filter.cpp.o.d"
  "CMakeFiles/patchwork_capture.dir/fpga_pipeline.cpp.o"
  "CMakeFiles/patchwork_capture.dir/fpga_pipeline.cpp.o.d"
  "CMakeFiles/patchwork_capture.dir/perf_model.cpp.o"
  "CMakeFiles/patchwork_capture.dir/perf_model.cpp.o.d"
  "CMakeFiles/patchwork_capture.dir/session.cpp.o"
  "CMakeFiles/patchwork_capture.dir/session.cpp.o.d"
  "libpatchwork_capture.a"
  "libpatchwork_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
