file(REMOVE_RECURSE
  "libpatchwork_capture.a"
)
