
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/anonymize.cpp" "src/capture/CMakeFiles/patchwork_capture.dir/anonymize.cpp.o" "gcc" "src/capture/CMakeFiles/patchwork_capture.dir/anonymize.cpp.o.d"
  "/root/repo/src/capture/filter.cpp" "src/capture/CMakeFiles/patchwork_capture.dir/filter.cpp.o" "gcc" "src/capture/CMakeFiles/patchwork_capture.dir/filter.cpp.o.d"
  "/root/repo/src/capture/fpga_pipeline.cpp" "src/capture/CMakeFiles/patchwork_capture.dir/fpga_pipeline.cpp.o" "gcc" "src/capture/CMakeFiles/patchwork_capture.dir/fpga_pipeline.cpp.o.d"
  "/root/repo/src/capture/perf_model.cpp" "src/capture/CMakeFiles/patchwork_capture.dir/perf_model.cpp.o" "gcc" "src/capture/CMakeFiles/patchwork_capture.dir/perf_model.cpp.o.d"
  "/root/repo/src/capture/session.cpp" "src/capture/CMakeFiles/patchwork_capture.dir/session.cpp.o" "gcc" "src/capture/CMakeFiles/patchwork_capture.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/patchwork_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/patchwork_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/patchwork_host.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchwork_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
