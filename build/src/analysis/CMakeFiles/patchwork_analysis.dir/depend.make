# Empty dependencies file for patchwork_analysis.
# This may be replaced when dependencies are built.
