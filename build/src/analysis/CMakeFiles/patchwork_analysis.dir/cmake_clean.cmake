file(REMOVE_RECURSE
  "CMakeFiles/patchwork_analysis.dir/acap.cpp.o"
  "CMakeFiles/patchwork_analysis.dir/acap.cpp.o.d"
  "CMakeFiles/patchwork_analysis.dir/analyses.cpp.o"
  "CMakeFiles/patchwork_analysis.dir/analyses.cpp.o.d"
  "CMakeFiles/patchwork_analysis.dir/digest.cpp.o"
  "CMakeFiles/patchwork_analysis.dir/digest.cpp.o.d"
  "CMakeFiles/patchwork_analysis.dir/index.cpp.o"
  "CMakeFiles/patchwork_analysis.dir/index.cpp.o.d"
  "CMakeFiles/patchwork_analysis.dir/operator_view.cpp.o"
  "CMakeFiles/patchwork_analysis.dir/operator_view.cpp.o.d"
  "CMakeFiles/patchwork_analysis.dir/pipeline.cpp.o"
  "CMakeFiles/patchwork_analysis.dir/pipeline.cpp.o.d"
  "CMakeFiles/patchwork_analysis.dir/report.cpp.o"
  "CMakeFiles/patchwork_analysis.dir/report.cpp.o.d"
  "libpatchwork_analysis.a"
  "libpatchwork_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
