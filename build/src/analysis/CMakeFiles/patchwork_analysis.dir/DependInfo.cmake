
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/acap.cpp" "src/analysis/CMakeFiles/patchwork_analysis.dir/acap.cpp.o" "gcc" "src/analysis/CMakeFiles/patchwork_analysis.dir/acap.cpp.o.d"
  "/root/repo/src/analysis/analyses.cpp" "src/analysis/CMakeFiles/patchwork_analysis.dir/analyses.cpp.o" "gcc" "src/analysis/CMakeFiles/patchwork_analysis.dir/analyses.cpp.o.d"
  "/root/repo/src/analysis/digest.cpp" "src/analysis/CMakeFiles/patchwork_analysis.dir/digest.cpp.o" "gcc" "src/analysis/CMakeFiles/patchwork_analysis.dir/digest.cpp.o.d"
  "/root/repo/src/analysis/index.cpp" "src/analysis/CMakeFiles/patchwork_analysis.dir/index.cpp.o" "gcc" "src/analysis/CMakeFiles/patchwork_analysis.dir/index.cpp.o.d"
  "/root/repo/src/analysis/operator_view.cpp" "src/analysis/CMakeFiles/patchwork_analysis.dir/operator_view.cpp.o" "gcc" "src/analysis/CMakeFiles/patchwork_analysis.dir/operator_view.cpp.o.d"
  "/root/repo/src/analysis/pipeline.cpp" "src/analysis/CMakeFiles/patchwork_analysis.dir/pipeline.cpp.o" "gcc" "src/analysis/CMakeFiles/patchwork_analysis.dir/pipeline.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/patchwork_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/patchwork_analysis.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/patchwork_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/patchwork_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchwork_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
