file(REMOVE_RECURSE
  "libpatchwork_analysis.a"
)
