file(REMOVE_RECURSE
  "CMakeFiles/patchwork_testbed.dir/activity_model.cpp.o"
  "CMakeFiles/patchwork_testbed.dir/activity_model.cpp.o.d"
  "CMakeFiles/patchwork_testbed.dir/allocator.cpp.o"
  "CMakeFiles/patchwork_testbed.dir/allocator.cpp.o.d"
  "CMakeFiles/patchwork_testbed.dir/federation.cpp.o"
  "CMakeFiles/patchwork_testbed.dir/federation.cpp.o.d"
  "CMakeFiles/patchwork_testbed.dir/port.cpp.o"
  "CMakeFiles/patchwork_testbed.dir/port.cpp.o.d"
  "CMakeFiles/patchwork_testbed.dir/site.cpp.o"
  "CMakeFiles/patchwork_testbed.dir/site.cpp.o.d"
  "CMakeFiles/patchwork_testbed.dir/slice_model.cpp.o"
  "CMakeFiles/patchwork_testbed.dir/slice_model.cpp.o.d"
  "CMakeFiles/patchwork_testbed.dir/switch.cpp.o"
  "CMakeFiles/patchwork_testbed.dir/switch.cpp.o.d"
  "libpatchwork_testbed.a"
  "libpatchwork_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
