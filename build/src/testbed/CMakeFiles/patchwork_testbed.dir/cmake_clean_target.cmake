file(REMOVE_RECURSE
  "libpatchwork_testbed.a"
)
