# Empty dependencies file for patchwork_testbed.
# This may be replaced when dependencies are built.
