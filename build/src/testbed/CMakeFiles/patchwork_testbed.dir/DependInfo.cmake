
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testbed/activity_model.cpp" "src/testbed/CMakeFiles/patchwork_testbed.dir/activity_model.cpp.o" "gcc" "src/testbed/CMakeFiles/patchwork_testbed.dir/activity_model.cpp.o.d"
  "/root/repo/src/testbed/allocator.cpp" "src/testbed/CMakeFiles/patchwork_testbed.dir/allocator.cpp.o" "gcc" "src/testbed/CMakeFiles/patchwork_testbed.dir/allocator.cpp.o.d"
  "/root/repo/src/testbed/federation.cpp" "src/testbed/CMakeFiles/patchwork_testbed.dir/federation.cpp.o" "gcc" "src/testbed/CMakeFiles/patchwork_testbed.dir/federation.cpp.o.d"
  "/root/repo/src/testbed/port.cpp" "src/testbed/CMakeFiles/patchwork_testbed.dir/port.cpp.o" "gcc" "src/testbed/CMakeFiles/patchwork_testbed.dir/port.cpp.o.d"
  "/root/repo/src/testbed/site.cpp" "src/testbed/CMakeFiles/patchwork_testbed.dir/site.cpp.o" "gcc" "src/testbed/CMakeFiles/patchwork_testbed.dir/site.cpp.o.d"
  "/root/repo/src/testbed/slice_model.cpp" "src/testbed/CMakeFiles/patchwork_testbed.dir/slice_model.cpp.o" "gcc" "src/testbed/CMakeFiles/patchwork_testbed.dir/slice_model.cpp.o.d"
  "/root/repo/src/testbed/switch.cpp" "src/testbed/CMakeFiles/patchwork_testbed.dir/switch.cpp.o" "gcc" "src/testbed/CMakeFiles/patchwork_testbed.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/patchwork_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/patchwork_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
