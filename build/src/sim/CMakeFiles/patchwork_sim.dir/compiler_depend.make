# Empty compiler generated dependencies file for patchwork_sim.
# This may be replaced when dependencies are built.
