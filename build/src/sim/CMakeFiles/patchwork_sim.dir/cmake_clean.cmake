file(REMOVE_RECURSE
  "CMakeFiles/patchwork_sim.dir/event_queue.cpp.o"
  "CMakeFiles/patchwork_sim.dir/event_queue.cpp.o.d"
  "libpatchwork_sim.a"
  "libpatchwork_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
