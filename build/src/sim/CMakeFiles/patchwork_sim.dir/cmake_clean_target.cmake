file(REMOVE_RECURSE
  "libpatchwork_sim.a"
)
