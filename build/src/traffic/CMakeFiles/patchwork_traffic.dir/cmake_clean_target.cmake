file(REMOVE_RECURSE
  "libpatchwork_traffic.a"
)
