# Empty dependencies file for patchwork_traffic.
# This may be replaced when dependencies are built.
