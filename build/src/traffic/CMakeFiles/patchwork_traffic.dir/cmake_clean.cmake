file(REMOVE_RECURSE
  "CMakeFiles/patchwork_traffic.dir/engine.cpp.o"
  "CMakeFiles/patchwork_traffic.dir/engine.cpp.o.d"
  "CMakeFiles/patchwork_traffic.dir/flowgen.cpp.o"
  "CMakeFiles/patchwork_traffic.dir/flowgen.cpp.o.d"
  "CMakeFiles/patchwork_traffic.dir/workload.cpp.o"
  "CMakeFiles/patchwork_traffic.dir/workload.cpp.o.d"
  "libpatchwork_traffic.a"
  "libpatchwork_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
