# Empty dependencies file for patchwork_host.
# This may be replaced when dependencies are built.
