file(REMOVE_RECURSE
  "libpatchwork_host.a"
)
