file(REMOVE_RECURSE
  "CMakeFiles/patchwork_host.dir/page_cache.cpp.o"
  "CMakeFiles/patchwork_host.dir/page_cache.cpp.o.d"
  "libpatchwork_host.a"
  "libpatchwork_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
