file(REMOVE_RECURSE
  "libpatchwork_util.a"
)
