# Empty compiler generated dependencies file for patchwork_util.
# This may be replaced when dependencies are built.
