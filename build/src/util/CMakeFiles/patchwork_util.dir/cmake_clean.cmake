file(REMOVE_RECURSE
  "CMakeFiles/patchwork_util.dir/compress.cpp.o"
  "CMakeFiles/patchwork_util.dir/compress.cpp.o.d"
  "CMakeFiles/patchwork_util.dir/csv.cpp.o"
  "CMakeFiles/patchwork_util.dir/csv.cpp.o.d"
  "CMakeFiles/patchwork_util.dir/histogram.cpp.o"
  "CMakeFiles/patchwork_util.dir/histogram.cpp.o.d"
  "CMakeFiles/patchwork_util.dir/logging.cpp.o"
  "CMakeFiles/patchwork_util.dir/logging.cpp.o.d"
  "CMakeFiles/patchwork_util.dir/rng.cpp.o"
  "CMakeFiles/patchwork_util.dir/rng.cpp.o.d"
  "CMakeFiles/patchwork_util.dir/stats.cpp.o"
  "CMakeFiles/patchwork_util.dir/stats.cpp.o.d"
  "CMakeFiles/patchwork_util.dir/table.cpp.o"
  "CMakeFiles/patchwork_util.dir/table.cpp.o.d"
  "libpatchwork_util.a"
  "libpatchwork_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
