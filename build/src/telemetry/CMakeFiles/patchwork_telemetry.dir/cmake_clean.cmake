file(REMOVE_RECURSE
  "CMakeFiles/patchwork_telemetry.dir/mflib.cpp.o"
  "CMakeFiles/patchwork_telemetry.dir/mflib.cpp.o.d"
  "CMakeFiles/patchwork_telemetry.dir/netflow.cpp.o"
  "CMakeFiles/patchwork_telemetry.dir/netflow.cpp.o.d"
  "CMakeFiles/patchwork_telemetry.dir/timeseries.cpp.o"
  "CMakeFiles/patchwork_telemetry.dir/timeseries.cpp.o.d"
  "libpatchwork_telemetry.a"
  "libpatchwork_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
