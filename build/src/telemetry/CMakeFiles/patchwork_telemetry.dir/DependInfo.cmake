
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/mflib.cpp" "src/telemetry/CMakeFiles/patchwork_telemetry.dir/mflib.cpp.o" "gcc" "src/telemetry/CMakeFiles/patchwork_telemetry.dir/mflib.cpp.o.d"
  "/root/repo/src/telemetry/netflow.cpp" "src/telemetry/CMakeFiles/patchwork_telemetry.dir/netflow.cpp.o" "gcc" "src/telemetry/CMakeFiles/patchwork_telemetry.dir/netflow.cpp.o.d"
  "/root/repo/src/telemetry/timeseries.cpp" "src/telemetry/CMakeFiles/patchwork_telemetry.dir/timeseries.cpp.o" "gcc" "src/telemetry/CMakeFiles/patchwork_telemetry.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/patchwork_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/patchwork_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/patchwork_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchwork_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
