file(REMOVE_RECURSE
  "libpatchwork_telemetry.a"
)
