# Empty dependencies file for patchwork_telemetry.
# This may be replaced when dependencies are built.
