# Empty dependencies file for patchwork_core.
# This may be replaced when dependencies are built.
