file(REMOVE_RECURSE
  "libpatchwork_core.a"
)
