file(REMOVE_RECURSE
  "CMakeFiles/patchwork_core.dir/congestion.cpp.o"
  "CMakeFiles/patchwork_core.dir/congestion.cpp.o.d"
  "CMakeFiles/patchwork_core.dir/coordinator.cpp.o"
  "CMakeFiles/patchwork_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/patchwork_core.dir/environment.cpp.o"
  "CMakeFiles/patchwork_core.dir/environment.cpp.o.d"
  "CMakeFiles/patchwork_core.dir/mirror_scheduler.cpp.o"
  "CMakeFiles/patchwork_core.dir/mirror_scheduler.cpp.o.d"
  "CMakeFiles/patchwork_core.dir/port_selector.cpp.o"
  "CMakeFiles/patchwork_core.dir/port_selector.cpp.o.d"
  "CMakeFiles/patchwork_core.dir/profiler.cpp.o"
  "CMakeFiles/patchwork_core.dir/profiler.cpp.o.d"
  "CMakeFiles/patchwork_core.dir/scaler.cpp.o"
  "CMakeFiles/patchwork_core.dir/scaler.cpp.o.d"
  "CMakeFiles/patchwork_core.dir/testbed_backend.cpp.o"
  "CMakeFiles/patchwork_core.dir/testbed_backend.cpp.o.d"
  "libpatchwork_core.a"
  "libpatchwork_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
