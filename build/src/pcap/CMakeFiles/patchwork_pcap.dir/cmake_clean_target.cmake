file(REMOVE_RECURSE
  "libpatchwork_pcap.a"
)
