file(REMOVE_RECURSE
  "CMakeFiles/patchwork_pcap.dir/pcap.cpp.o"
  "CMakeFiles/patchwork_pcap.dir/pcap.cpp.o.d"
  "libpatchwork_pcap.a"
  "libpatchwork_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
