# Empty compiler generated dependencies file for patchwork_pcap.
# This may be replaced when dependencies are built.
