file(REMOVE_RECURSE
  "CMakeFiles/patchwork_net.dir/addr.cpp.o"
  "CMakeFiles/patchwork_net.dir/addr.cpp.o.d"
  "CMakeFiles/patchwork_net.dir/checksum.cpp.o"
  "CMakeFiles/patchwork_net.dir/checksum.cpp.o.d"
  "CMakeFiles/patchwork_net.dir/frame_builder.cpp.o"
  "CMakeFiles/patchwork_net.dir/frame_builder.cpp.o.d"
  "CMakeFiles/patchwork_net.dir/headers.cpp.o"
  "CMakeFiles/patchwork_net.dir/headers.cpp.o.d"
  "CMakeFiles/patchwork_net.dir/packet.cpp.o"
  "CMakeFiles/patchwork_net.dir/packet.cpp.o.d"
  "CMakeFiles/patchwork_net.dir/parser.cpp.o"
  "CMakeFiles/patchwork_net.dir/parser.cpp.o.d"
  "CMakeFiles/patchwork_net.dir/protocol.cpp.o"
  "CMakeFiles/patchwork_net.dir/protocol.cpp.o.d"
  "libpatchwork_net.a"
  "libpatchwork_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patchwork_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
