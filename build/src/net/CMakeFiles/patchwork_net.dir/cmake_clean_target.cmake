file(REMOVE_RECURSE
  "libpatchwork_net.a"
)
