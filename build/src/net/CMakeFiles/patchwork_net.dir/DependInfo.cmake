
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/addr.cpp" "src/net/CMakeFiles/patchwork_net.dir/addr.cpp.o" "gcc" "src/net/CMakeFiles/patchwork_net.dir/addr.cpp.o.d"
  "/root/repo/src/net/checksum.cpp" "src/net/CMakeFiles/patchwork_net.dir/checksum.cpp.o" "gcc" "src/net/CMakeFiles/patchwork_net.dir/checksum.cpp.o.d"
  "/root/repo/src/net/frame_builder.cpp" "src/net/CMakeFiles/patchwork_net.dir/frame_builder.cpp.o" "gcc" "src/net/CMakeFiles/patchwork_net.dir/frame_builder.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/net/CMakeFiles/patchwork_net.dir/headers.cpp.o" "gcc" "src/net/CMakeFiles/patchwork_net.dir/headers.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/patchwork_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/patchwork_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/parser.cpp" "src/net/CMakeFiles/patchwork_net.dir/parser.cpp.o" "gcc" "src/net/CMakeFiles/patchwork_net.dir/parser.cpp.o.d"
  "/root/repo/src/net/protocol.cpp" "src/net/CMakeFiles/patchwork_net.dir/protocol.cpp.o" "gcc" "src/net/CMakeFiles/patchwork_net.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/patchwork_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
