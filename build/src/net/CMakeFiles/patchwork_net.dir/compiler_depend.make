# Empty compiler generated dependencies file for patchwork_net.
# This may be replaced when dependencies are built.
