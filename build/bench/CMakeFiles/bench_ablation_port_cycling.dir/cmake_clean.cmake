file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_port_cycling.dir/bench_ablation_port_cycling.cpp.o"
  "CMakeFiles/bench_ablation_port_cycling.dir/bench_ablation_port_cycling.cpp.o.d"
  "bench_ablation_port_cycling"
  "bench_ablation_port_cycling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_port_cycling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
