# Empty compiler generated dependencies file for bench_ablation_port_cycling.
# This may be replaced when dependencies are built.
