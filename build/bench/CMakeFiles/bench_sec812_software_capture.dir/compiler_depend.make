# Empty compiler generated dependencies file for bench_sec812_software_capture.
# This may be replaced when dependencies are built.
