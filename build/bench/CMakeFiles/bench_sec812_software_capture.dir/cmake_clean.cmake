file(REMOVE_RECURSE
  "CMakeFiles/bench_sec812_software_capture.dir/bench_sec812_software_capture.cpp.o"
  "CMakeFiles/bench_sec812_software_capture.dir/bench_sec812_software_capture.cpp.o.d"
  "bench_sec812_software_capture"
  "bench_sec812_software_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec812_software_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
