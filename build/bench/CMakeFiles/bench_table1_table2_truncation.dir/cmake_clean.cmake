file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_table2_truncation.dir/bench_table1_table2_truncation.cpp.o"
  "CMakeFiles/bench_table1_table2_truncation.dir/bench_table1_table2_truncation.cpp.o.d"
  "bench_table1_table2_truncation"
  "bench_table1_table2_truncation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_table2_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
