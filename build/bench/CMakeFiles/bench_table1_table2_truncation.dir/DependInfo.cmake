
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_table2_truncation.cpp" "bench/CMakeFiles/bench_table1_table2_truncation.dir/bench_table1_table2_truncation.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_table2_truncation.dir/bench_table1_table2_truncation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/patchwork_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/patchwork_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/patchwork_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/patchwork_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/patchwork_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/patchwork_host.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/patchwork_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/patchwork_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/patchwork_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/patchwork_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/patchwork_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
