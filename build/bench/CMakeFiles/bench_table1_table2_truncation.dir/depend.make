# Empty dependencies file for bench_table1_table2_truncation.
# This may be replaced when dependencies are built.
