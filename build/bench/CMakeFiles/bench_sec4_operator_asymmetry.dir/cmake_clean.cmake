file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_operator_asymmetry.dir/bench_sec4_operator_asymmetry.cpp.o"
  "CMakeFiles/bench_sec4_operator_asymmetry.dir/bench_sec4_operator_asymmetry.cpp.o.d"
  "bench_sec4_operator_asymmetry"
  "bench_sec4_operator_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_operator_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
