# Empty compiler generated dependencies file for bench_sec4_operator_asymmetry.
# This may be replaced when dependencies are built.
