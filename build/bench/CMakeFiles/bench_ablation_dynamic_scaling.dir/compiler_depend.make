# Empty compiler generated dependencies file for bench_ablation_dynamic_scaling.
# This may be replaced when dependencies are built.
