file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_slice_duration.dir/bench_fig04_slice_duration.cpp.o"
  "CMakeFiles/bench_fig04_slice_duration.dir/bench_fig04_slice_duration.cpp.o.d"
  "bench_fig04_slice_duration"
  "bench_fig04_slice_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_slice_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
