# Empty dependencies file for bench_fig04_slice_duration.
# This may be replaced when dependencies are built.
