file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_active_slices.dir/bench_fig05_active_slices.cpp.o"
  "CMakeFiles/bench_fig05_active_slices.dir/bench_fig05_active_slices.cpp.o.d"
  "bench_fig05_active_slices"
  "bench_fig05_active_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_active_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
