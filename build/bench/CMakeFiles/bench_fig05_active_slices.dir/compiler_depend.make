# Empty compiler generated dependencies file for bench_fig05_active_slices.
# This may be replaced when dependencies are built.
