file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_frame_sizes.dir/bench_fig15_frame_sizes.cpp.o"
  "CMakeFiles/bench_fig15_frame_sizes.dir/bench_fig15_frame_sizes.cpp.o.d"
  "bench_fig15_frame_sizes"
  "bench_fig15_frame_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_frame_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
