# Empty compiler generated dependencies file for bench_fig15_frame_sizes.
# This may be replaced when dependencies are built.
