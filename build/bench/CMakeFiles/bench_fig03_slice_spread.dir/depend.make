# Empty dependencies file for bench_fig03_slice_spread.
# This may be replaced when dependencies are built.
