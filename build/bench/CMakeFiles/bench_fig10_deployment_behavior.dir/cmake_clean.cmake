file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_deployment_behavior.dir/bench_fig10_deployment_behavior.cpp.o"
  "CMakeFiles/bench_fig10_deployment_behavior.dir/bench_fig10_deployment_behavior.cpp.o.d"
  "bench_fig10_deployment_behavior"
  "bench_fig10_deployment_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_deployment_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
