# Empty compiler generated dependencies file for bench_fig10_deployment_behavior.
# This may be replaced when dependencies are built.
