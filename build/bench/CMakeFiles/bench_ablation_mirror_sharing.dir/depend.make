# Empty dependencies file for bench_ablation_mirror_sharing.
# This may be replaced when dependencies are built.
