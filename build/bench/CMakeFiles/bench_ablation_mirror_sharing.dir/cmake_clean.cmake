file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mirror_sharing.dir/bench_ablation_mirror_sharing.cpp.o"
  "CMakeFiles/bench_ablation_mirror_sharing.dir/bench_ablation_mirror_sharing.cpp.o.d"
  "bench_ablation_mirror_sharing"
  "bench_ablation_mirror_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mirror_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
