file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_flows_per_sample.dir/bench_fig13_flows_per_sample.cpp.o"
  "CMakeFiles/bench_fig13_flows_per_sample.dir/bench_fig13_flows_per_sample.cpp.o.d"
  "bench_fig13_flows_per_sample"
  "bench_fig13_flows_per_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_flows_per_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
