# Empty dependencies file for bench_fig13_flows_per_sample.
# This may be replaced when dependencies are built.
