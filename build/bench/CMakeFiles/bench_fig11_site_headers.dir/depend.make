# Empty dependencies file for bench_fig11_site_headers.
# This may be replaced when dependencies are built.
