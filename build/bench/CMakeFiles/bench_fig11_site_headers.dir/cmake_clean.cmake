file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_site_headers.dir/bench_fig11_site_headers.cpp.o"
  "CMakeFiles/bench_fig11_site_headers.dir/bench_fig11_site_headers.cpp.o.d"
  "bench_fig11_site_headers"
  "bench_fig11_site_headers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_site_headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
