# Empty dependencies file for bench_micro_dissect.
# This may be replaced when dependencies are built.
