file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dissect.dir/bench_micro_dissect.cpp.o"
  "CMakeFiles/bench_micro_dissect.dir/bench_micro_dissect.cpp.o.d"
  "bench_micro_dissect"
  "bench_micro_dissect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dissect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
