# Empty compiler generated dependencies file for bench_fig12_header_occurrence.
# This may be replaced when dependencies are built.
