# Empty dependencies file for bench_micro_pcap.
# This may be replaced when dependencies are built.
