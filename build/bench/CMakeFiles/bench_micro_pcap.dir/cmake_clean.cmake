file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pcap.dir/bench_micro_pcap.cpp.o"
  "CMakeFiles/bench_micro_pcap.dir/bench_micro_pcap.cpp.o.d"
  "bench_micro_pcap"
  "bench_micro_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
