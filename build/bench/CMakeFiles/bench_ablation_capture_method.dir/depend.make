# Empty dependencies file for bench_ablation_capture_method.
# This may be replaced when dependencies are built.
