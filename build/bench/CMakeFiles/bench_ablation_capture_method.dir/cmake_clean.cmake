file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_capture_method.dir/bench_ablation_capture_method.cpp.o"
  "CMakeFiles/bench_ablation_capture_method.dir/bench_ablation_capture_method.cpp.o.d"
  "bench_ablation_capture_method"
  "bench_ablation_capture_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_capture_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
