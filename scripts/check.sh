#!/usr/bin/env bash
# Full correctness gate: release build + complete test suite, then a
# ThreadSanitizer build running the concurrency-sensitive tests (shared
# pool, work-stealing task groups, parallel_for, parallel
# pipeline/coordinator determinism, sharded aggregation, sharded metrics
# registry, archive compaction, metrics file exporter), then a standalone
# UBSan build running the counter-arithmetic and arena-path suites, then an
# AddressSanitizer+UBSan build running the archive corrupt-file suites
# followed by the full suite.
#
# Usage: scripts/check.sh [--tsan-only | --asan-only | --ubsan-only |
#                          --release-only]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="all"
case "${1:-}" in
  --tsan-only) mode="tsan" ;;
  --asan-only) mode="asan" ;;
  --ubsan-only) mode="ubsan" ;;
  --release-only) mode="release" ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--tsan-only | --asan-only | --ubsan-only | --release-only]" >&2
     exit 2 ;;
esac

if [[ "$mode" == "all" || "$mode" == "release" ]]; then
  echo "== release: configure + build + full ctest =="
  cmake --preset release
  cmake --build --preset release -j "$(nproc)"
  ctest --preset release -j "$(nproc)"
fi

if [[ "$mode" == "all" || "$mode" == "tsan" ]]; then
  echo "== tsan: configure + build + concurrency tests =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)" --target patchwork_tests
  # The concurrency surface: shared pool stress, work-stealing task groups
  # (nested spawn/wait from inside worker tasks), parallel primitives,
  # every determinism suite that fans out across the pool (including the
  # per-(site, sample) render split and its per-burst sub-spawns), the
  # sharded metrics registry (concurrent add/observe/registration), and the
  # archive's concurrent code — the rollup compactor (parallel_map group
  # folds) and the background metrics file exporter.
  # PhiloxSimd/RngBulk ride along: the tier dispatch word is a relaxed
  # atomic that tests flip while pool workers draw.
  # ScrapeServer (serving thread + concurrent HTTP readers folding the
  # sharded registry), Trace (per-thread flight-recorder lanes + the
  # work-steal observer hook), and TraceDeterminism (rings written from
  # pool workers, drained after quiescence) are the newest concurrency
  # surface.
  # FederationTest (parallel_map archive loads must be byte-deterministic
  # at any worker count), IncrementalCompactionTest (parallel group folds
  # feeding append-only commits), WindowedQueryTest (the mutex-guarded
  # query cache), and the compaction legs ride the same pool.
  # FlowChurnDeterminism is the event-planner analogue of
  # CoordinatorDeterminism: the priority-queue plan feeds the same
  # per-burst render fan-out, so its worker/batch/SIMD sweeps exercise the
  # pool too; FlowSched rides along for the planner's obs-counter pushes.
  ./build-tsan/tests/patchwork_tests --gtest_filter='SharedPool.*:ThreadPool.*:TaskGroup.*:Parallel.*:PipelineDeterminism.*:AggregateShards.*:CoordinatorDeterminism.*:FlowChurnDeterminism.*:FlowSched.*:SiteProfiler.RenderSampleCommitEquivalentToRenderPending:ObsRegistry.*:ObsDeterminism.*:ArchiveDeterminism.*:ArchiveIoTest.Compaction*:FederationTest.*:IncrementalCompactionTest.*:WindowedQueryTest.*:ObsFileExporter.*:PhiloxSimd.*:RngBulk.*:ScrapeServer.*:Trace.*:TraceDeterminism.*'
fi

if [[ "$mode" == "all" || "$mode" == "ubsan" ]]; then
  echo "== ubsan: configure + build + counter/arena suites =="
  cmake --preset ubsan
  cmake --build --preset ubsan -j "$(nproc)" --target patchwork_tests
  # The batched-synthesis surface: Philox counter arithmetic (wrapping
  # 128-bit counters, Lemire bounded draws), the frame arena and its
  # span-aliasing write/edit path, and the render decomposition that
  # stitches them together. UBSan catches the offset/overflow mistakes
  # ASan's poisoning cannot.
  # gtest filter dots are literal: the SIMD suites (PhiloxSimd.*, RngBulk.*)
  # need their own entries — 'Philox.*'/'Rng.*' do not match them.
  # FlowSched joins the counter-arithmetic surface: Pareto scale math,
  # Zipf weight tables, and the event planner's fractional-frame rounding
  # all feed the same bounded-draw kernels.
  ./build-ubsan/tests/patchwork_tests --gtest_filter='Philox.*:PhiloxSimd.*:Rng.*:RngBulk.*:RngBlock.*:WeightedTable.*:FrameBuilder.*:FrameStore.*:Pcap.*:FlowGen.*:FlowSched.*:Compress.*:SessionTest.*:TaskGroup.*:CoordinatorDeterminism.*'
fi

if [[ "$mode" == "all" || "$mode" == "asan" ]]; then
  echo "== asan: configure + build + full test suite =="
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)" --target patchwork_tests
  # The corrupt-file surface first: the archive reader/writer walking
  # truncated, bit-flipped, and version-skewed files is where a bounds bug
  # would hide, so it gets an explicit leg before the full sweep.
  # ScrapeServer rides along for its hostile-input path: malformed request
  # lines and oversized headers hitting the fixed parsing buffers.
  # ArchiveCorruptTest is the hostile-payload suite: CRC-valid blocks whose
  # decoded structures violate invariants (entries > capacity, absurd
  # supersede-marker counts) must be rejected without a poisoned read.
  # FlowSched/FlowChurnDeterminism cover the event planner's queue and
  # pool churn: thousands of heap push/pops, LIFO slot recycling, and
  # activation vectors that grow under churn — the allocation-heavy new
  # path where a stale-slot read would surface.
  ./build-asan/tests/patchwork_tests --gtest_filter='ArchiveIoTest.*:ArchiveCorruptTest.*:EpochRecord.Decode*:TopFlowSketch.*:ScrapeServer.*:FlowSched.*:FlowChurnDeterminism.*'
  ./build-asan/tests/patchwork_tests
fi

echo "OK"
