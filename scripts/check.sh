#!/usr/bin/env bash
# Full correctness gate: release build + complete test suite, then a
# ThreadSanitizer build running the concurrency-sensitive tests (shared
# pool, parallel_for, parallel pipeline/coordinator determinism, sharded
# aggregation).
#
# Usage: scripts/check.sh [--tsan-only | --release-only]
set -euo pipefail
cd "$(dirname "$0")/.."

mode="all"
case "${1:-}" in
  --tsan-only) mode="tsan" ;;
  --release-only) mode="release" ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--tsan-only | --release-only]" >&2
     exit 2 ;;
esac

if [[ "$mode" == "all" || "$mode" == "release" ]]; then
  echo "== release: configure + build + full ctest =="
  cmake --preset release
  cmake --build --preset release -j "$(nproc)"
  ctest --preset release -j "$(nproc)"
fi

if [[ "$mode" == "all" || "$mode" == "tsan" ]]; then
  echo "== tsan: configure + build + concurrency tests =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)" --target patchwork_tests
  # The concurrency surface: shared pool stress, parallel primitives, and
  # every determinism suite that fans out across the pool.
  ./build-tsan/tests/patchwork_tests --gtest_filter='SharedPool.*:ThreadPool.*:Parallel.*:PipelineDeterminism.*:AggregateShards.*:CoordinatorDeterminism.*'
fi

echo "OK"
