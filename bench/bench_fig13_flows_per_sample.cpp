// Figure 13: "Frequency of encountering different numbers of flows in
// each 20s traffic sample." Most samples have fewer than 3,000 distinct
// flows; a handful have snippets of more than 20,000 flows. The paper
// also aggregates flow snippets across samples: most flows are tiny, but
// some reach ~100 GB.
//
// Note on scale: each rendered sample caps its packet-level rendering, so
// measured flow counts are compressed relative to a line-rate capture;
// the generator's true concurrent-flow draw is reported alongside to show
// the full Fig. 13 range.
#include <algorithm>
#include <iostream>

#include "analysis/analyses.hpp"
#include "bench_profile.hpp"
#include "traffic/flowgen.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Figure 13 — Distinct flows per 20 s sample",
                "Fig. 13, Section 8.2 (Flow sizes)");

  bench::BenchWorld world;
  const auto profile = bench::gather_testbed_profile(
      world, /*cycles=*/4, /*samples=*/3, /*max_frames=*/4000);
  const auto counts =
      analysis::analyze_flows_per_sample(profile.digested.files);

  util::Histogram hist({0, 10, 30, 100, 300, 1000, 3000, 10000, 30000});
  for (const auto& row : counts) {
    hist.add(static_cast<double>(row.flows));
  }
  util::TextTable table({"Flows per sample", "Samples", "Bar"});
  std::uint64_t max_bucket = 1;
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    max_bucket = std::max(max_bucket, hist.bucket(i));
  }
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    table.add_row({hist.bucket_label(i), std::to_string(hist.bucket(i)),
                   bench::bar(static_cast<double>(hist.bucket(i)),
                              static_cast<double>(max_bucket), 40)});
  }
  table.print(std::cout);

  // The generator's true concurrent-flow distribution (uncompressed by the
  // rendering cap): draw windows the way the profiler's samples do.
  std::size_t over_20000 = 0, under_3000 = 0, windows = 0;
  util::Rng rng(17);
  const auto profiles =
      traffic::make_site_profiles(rng, world.fed.site_count());
  for (int i = 0; i < 2000; ++i) {
    const auto& site_profile = profiles[static_cast<std::size_t>(i) %
                                        profiles.size()];
    const std::size_t flows = std::clamp<std::size_t>(
        static_cast<std::size_t>(rng.lognormal(site_profile.flow_count_mu,
                                               site_profile.flow_count_sigma)),
        1, 60000);
    ++windows;
    if (flows < 3000) ++under_3000;
    if (flows > 20000) ++over_20000;
  }

  // Flow aggregation across samples (the paper's stitching result).
  const auto flows = analysis::aggregate_flows(profile.digested.files);
  std::uint64_t largest = 0;
  std::size_t multi_sample = 0;
  for (const auto& [key, agg] : flows) {
    largest = std::max(largest, agg.wire_bytes);
    if (agg.samples > 1) ++multi_sample;
  }

  std::cout << "\nPaper: most samples < 3000 flows; a handful > 20000.\n"
            << "Generator's true flow-count draw: "
            << util::fmt_percent(
                   static_cast<double>(under_3000) / windows, 1)
            << " of windows < 3000 flows; "
            << util::fmt_percent(
                   static_cast<double>(over_20000) / windows, 2)
            << " > 20000 flows.\n"
            << "Cross-sample stitching: " << flows.size()
            << " distinct flows, " << multi_sample
            << " seen in multiple samples, largest snippet "
            << largest << " bytes (heavy-tailed, as in the paper).\n";
  return 0;
}
