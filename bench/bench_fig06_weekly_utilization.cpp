// Figure 6: "Utilization of FABRIC's network over each week of 2024 ...
// The network's activity peaked the week before the Supercomputing'24
// conference. During that week, an average of 3.968 Tbps crossed FABRIC's
// network."
//
// Shape to reproduce: ramp-up periods towards April and November, a sharp
// peak at the SC'24 week near 4 Tbps, low weeks well under 1 Tbps.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Figure 6 — Weekly testbed network utilization",
                "Fig. 6, Section 5 (network activity on FABRIC)");

  bench::BenchWorld world;

  // For every week, average the instantaneous testbed-wide Tx rate over
  // several sampling instants (the real system sums 5-minute SNMP rate
  // samples; sampling instants are an unbiased estimate of the same mean).
  std::vector<double> weekly_tbps(52, 0.0);
  constexpr int kSamplesPerWeek = 24;
  for (std::size_t week = 0; week < 52; ++week) {
    double sum = 0.0;
    for (int s = 0; s < kSamplesPerWeek; ++s) {
      const util::Nanos t =
          static_cast<util::Nanos>(week) * 7 * util::kDay +
          static_cast<util::Nanos>(s) * (7 * util::kDay / kSamplesPerWeek);
      world.traffic.update_loads(t);
      double total = 0.0;
      for (testbed::SiteId sid : world.fed.site_ids()) {
        const auto& tor = world.fed.site(sid).tor();
        for (std::uint32_t p = 0; p < tor.port_count(); ++p) {
          total += tor.port(testbed::PortId{p}).tx_rate_bps();
        }
      }
      sum += total;
    }
    weekly_tbps[week] = sum / kSamplesPerWeek / 1e12;
  }

  double peak = 0.0;
  std::size_t peak_week = 0;
  for (std::size_t w = 0; w < 52; ++w) {
    if (weekly_tbps[w] > peak) {
      peak = weekly_tbps[w];
      peak_week = w;
    }
  }

  util::TextTable table({"Week", "Avg Tbps", "Bar"});
  for (std::size_t w = 0; w < 52; ++w) {
    table.add_row({std::to_string(w), util::fmt_double(weekly_tbps[w], 3),
                   bench::bar(weekly_tbps[w], peak, 40)});
  }
  table.print(std::cout);

  std::cout << "\nPaper: peak the week before SC'24 (week "
            << testbed::ActivityModel::kPeakWeek
            << ") at an average of 3.968 Tbps.\n"
            << "Measured: peak at week " << peak_week << " with "
            << util::fmt_double(peak, 3) << " Tbps average.\n"
            << "Ramp-ups visible towards April (weeks ~10-13) and November "
               "(weeks ~40-46), as in the paper.\n";
  return 0;
}
