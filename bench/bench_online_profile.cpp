// Serial vs. parallel ONLINE profiling path: Coordinator::run_sites over a
// wide federation, 1 worker against N workers.
//
// The control plane (allocation, port selection, mirror sessions) is serial
// either way; what fans out is the per-site data plane — traffic window
// synthesis, the capture path, pcap serialization, and the transfer
// compression round-trip. Each timed run rebuilds a same-seed world so
// every configuration profiles an identical federation, and the reports
// are cross-checked for byte-level agreement.
//
// Prints a JSON summary suitable for recording as BENCH_online_profile.json.
// On hosts with fewer than 4 hardware threads the speedup is reported but
// not judged (a 1-core container cannot demonstrate parallel gain).
//
// Build & run:  ./build/bench/bench_online_profile
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/coordinator.hpp"
#include "util/parallel.hpp"

namespace {

using namespace patchwork;

constexpr int kSites = 10;
constexpr int kReps = 3;

core::ProfilerConfig bench_config() {
  core::ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 3;
  config.plan.runs_per_cycle = 2;
  config.plan.max_frames_per_sample = 4000;
  config.crash_probability = 0.0;
  config.desired_instances = 1;
  config.compress_transfers = true;
  return config;
}

testbed::FederationSpec wide_spec() {
  testbed::FederationSpec spec;
  spec.sites = kSites;
  return spec;
}

struct RunResult {
  double ms = 0.0;
  core::ProfileRun run;
};

/// Best-of-kReps wall time for one full all-experiment profile. Each rep
/// rebuilds the same-seed world so repetitions are identical work.
RunResult time_run() {
  RunResult result;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::BenchWorld world(/*seed=*/77, wide_spec());
    world.warm_up_telemetry();
    core::Coordinator coordinator(world.env, bench_config());
    const auto t0 = std::chrono::steady_clock::now();
    core::ProfileRun run = coordinator.run_all_experiment();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < result.ms) result.ms = ms;
    if (rep == 0) result.run = std::move(run);
  }
  return result;
}

bool runs_identical(const core::ProfileRun& a, const core::ProfileRun& b) {
  if (a.reports.size() != b.reports.size()) return false;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    if (a.reports[i].outcome != b.reports[i].outcome) return false;
    if (a.reports[i].samples != b.reports[i].samples) return false;
    if (a.reports[i].pcap_bytes != b.reports[i].pcap_bytes) return false;
    if (a.reports[i].transferred_bytes != b.reports[i].transferred_bytes) {
      return false;
    }
  }
  if (a.captures.size() != b.captures.size()) return false;
  for (std::size_t i = 0; i < a.captures.size(); ++i) {
    if (a.captures[i].pcap != b.captures[i].pcap) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::banner("Parallel online profiling: 1 worker vs. N",
                "Section 6.2.2 sampling phase, per-site data-plane fan-out");

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "profile: " << kSites << " sites; host reports " << hw
            << " hardware thread(s)\n\n";

  util::set_thread_count(1);
  const RunResult serial = time_run();
  std::uint64_t total_pcap = 0, total_samples = 0;
  for (const core::SiteRunReport& r : serial.run.reports) {
    total_pcap += r.pcap_bytes;
    total_samples += r.samples;
  }
  std::cout << "workers=1:  " << serial.ms << " ms  (" << total_samples
            << " samples, " << total_pcap << " pcap bytes)\n";

  std::vector<std::size_t> counts{2, 4, 8};
  std::string rows;
  bool all_identical = true;
  double speedup_at_4 = 0.0;
  double best_speedup = 0.0;
  for (std::size_t threads : counts) {
    util::set_thread_count(threads);
    const RunResult parallel = time_run();
    const bool identical = runs_identical(serial.run, parallel.run);
    all_identical = all_identical && identical;
    const double speedup = serial.ms / parallel.ms;
    if (threads == 4) speedup_at_4 = speedup;
    if (speedup > best_speedup) best_speedup = speedup;
    std::cout << "workers=" << threads << ":  " << parallel.ms
              << " ms  (speedup " << speedup << "x, output "
              << (identical ? "identical" : "DIFFERS") << ")\n";
    if (!rows.empty()) rows += ",\n";
    rows += "    {\"workers\": " + std::to_string(threads) +
            ", \"ms\": " + std::to_string(parallel.ms) +
            ", \"speedup\": " + std::to_string(speedup) +
            ", \"identical\": " + (identical ? "true" : "false") + "}";
  }
  util::set_thread_count(std::nullopt);

  // The acceptance bar — >= 1.5x at 4 workers — only applies where the
  // host can actually run 4 workers.
  const bool judged = hw >= 4;
  const bool speedup_ok = !judged || speedup_at_4 >= 1.5;
  std::cout << "\n"
            << (all_identical ? "PASS: all outputs byte-identical\n"
                              : "FAIL: parallel output diverged\n");
  if (judged) {
    std::cout << (speedup_ok ? "PASS" : "FAIL") << ": speedup at 4 workers = "
              << speedup_at_4 << "x (bar: 1.5x)\n";
  } else {
    std::cout << "SKIP: speedup bar not judged (" << hw
              << " hardware thread(s) < 4)\n";
  }

  const std::string note =
      judged ? "Recorded with 4+ hardware threads; speedups are meaningful."
             : "Recorded on a <4-hardware-thread host: ratios measure "
               "scheduling overhead only. Re-record on real hardware with "
               "./build/bench/bench_online_profile.";
  std::cout << "\nJSON:\n"
            << "{\n"
            << "  \"bench\": \"online_profile\",\n"
            << "  \"note\": \"" << note << "\",\n"
            << "  \"sites\": " << kSites << ",\n"
            << "  \"samples\": " << total_samples << ",\n"
            << "  \"pcap_bytes\": " << total_pcap << ",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"serial_ms\": " << serial.ms << ",\n"
            << "  \"runs\": [\n"
            << rows << "\n  ],\n"
            << "  \"best_speedup\": " << best_speedup << ",\n"
            << "  \"speedup_at_4\": " << speedup_at_4 << ",\n"
            << "  \"speedup_judged\": " << (judged ? "true" : "false") << ",\n"
            << "  \"outputs_identical\": " << (all_identical ? "true" : "false")
            << "\n}\n";
  return all_identical && speedup_ok ? 0 : 1;
}
