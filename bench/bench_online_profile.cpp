// Serial vs. parallel ONLINE profiling path: Coordinator::run_sites over a
// wide federation, 1 worker against N workers.
//
// The control plane (allocation, port selection, mirror sessions) is serial
// either way; what fans out is the per-sample data plane — traffic window
// synthesis, the capture path, pcap serialization, and the transfer
// compression round-trip, one pool task per (site, sample). Each timed run
// rebuilds a same-seed world so every configuration profiles an identical
// federation, and the reports are cross-checked for byte-level agreement.
//
// Two scenarios: "wide" spreads samples across 10 sites; "skewed" squeezes
// all but one dedicated NIC out of every site except one, so a single hot
// site holds the bulk of the samples — the workload where per-site task
// granularity used to serialize behind the slowest site.
//
// Prints a JSON summary suitable for recording as BENCH_online_profile.json.
// On hosts with fewer than 4 hardware threads the speedup is reported but
// not judged (a 1-core container cannot demonstrate parallel gain).
//
// Build & run:  ./build/bench/bench_online_profile
#include <chrono>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/coordinator.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace {

using namespace patchwork;

constexpr int kSites = 10;
constexpr int kReps = 3;

core::ProfilerConfig bench_config() {
  core::ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 3;
  config.plan.runs_per_cycle = 2;
  config.plan.max_frames_per_sample = 4000;
  config.crash_probability = 0.0;
  config.desired_instances = 1;
  config.compress_transfers = true;
  return config;
}

testbed::FederationSpec wide_spec() {
  testbed::FederationSpec spec;
  spec.sites = kSites;
  return spec;
}

/// One scenario = a world recipe plus a profiler config; time_run rebuilds
/// the same-seed world per rep so repetitions are identical work.
struct Scenario {
  std::uint64_t seed = 77;
  testbed::FederationSpec spec;
  core::ProfilerConfig config;
  /// Squeeze every site except site 0 down to one dedicated NIC, leaving
  /// one hot site with the full complement (the skewed workload).
  bool squeeze_to_hot_site = false;
};

void squeeze_cold_sites(bench::BenchWorld& world) {
  for (testbed::SiteId id : world.fed.site_ids()) {
    if (id.value == 0) continue;
    testbed::Site& site = world.fed.site(id);
    auto nics = site.available_nics(testbed::NicKind::kDedicatedConnectX);
    for (std::size_t i = 0; i + 1 < nics.size(); ++i) {
      site.mutable_nic(nics[i]).allocated_to = testbed::SliceId{999};
    }
  }
}

struct RunResult {
  double ms = 0.0;
  core::ProfileRun run;
};

/// Best-of-kReps wall time for one full all-experiment profile.
RunResult time_run(const Scenario& scenario) {
  RunResult result;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::BenchWorld world(scenario.seed, scenario.spec);
    if (scenario.squeeze_to_hot_site) squeeze_cold_sites(world);
    world.warm_up_telemetry();
    core::Coordinator coordinator(world.env, scenario.config);
    const auto t0 = std::chrono::steady_clock::now();
    core::ProfileRun run = coordinator.run_all_experiment();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < result.ms) result.ms = ms;
    if (rep == 0) result.run = std::move(run);
  }
  return result;
}

bool runs_identical(const core::ProfileRun& a, const core::ProfileRun& b) {
  if (a.reports.size() != b.reports.size()) return false;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    if (a.reports[i].outcome != b.reports[i].outcome) return false;
    if (a.reports[i].samples != b.reports[i].samples) return false;
    if (a.reports[i].pcap_bytes != b.reports[i].pcap_bytes) return false;
    if (a.reports[i].transferred_bytes != b.reports[i].transferred_bytes) {
      return false;
    }
  }
  if (a.captures.size() != b.captures.size()) return false;
  for (std::size_t i = 0; i < a.captures.size(); ++i) {
    if (a.captures[i].pcap != b.captures[i].pcap) return false;
  }
  return true;
}

/// Serial reference + the 2/4/8-worker sweep for one scenario. Prints the
/// console rows and fills in the JSON rows / speedup summary.
struct ScenarioResult {
  double serial_ms = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t pcap_bytes = 0;
  double hot_fraction = 0.0;  ///< Largest site's share of samples.
  std::string rows;           ///< JSON rows, one per worker count.
  bool all_identical = true;
  double speedup_at_4 = 0.0;
  double best_speedup = 0.0;
};

ScenarioResult sweep(const std::string& name, const Scenario& scenario) {
  ScenarioResult out;
  std::cout << "\n[" << name << "]\n";

  util::set_thread_count(1);
  const RunResult serial = time_run(scenario);
  out.serial_ms = serial.ms;
  std::uint64_t hot = 0;
  for (const core::SiteRunReport& r : serial.run.reports) {
    out.pcap_bytes += r.pcap_bytes;
    out.samples += r.samples;
    if (r.samples > hot) hot = r.samples;
  }
  if (out.samples > 0) {
    out.hot_fraction =
        static_cast<double>(hot) / static_cast<double>(out.samples);
  }
  std::cout << "workers=1:  " << serial.ms << " ms  (" << out.samples
            << " samples, " << out.pcap_bytes << " pcap bytes, hottest site "
            << hot << " samples)\n";

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const RunResult parallel = time_run(scenario);
    const bool identical = runs_identical(serial.run, parallel.run);
    out.all_identical = out.all_identical && identical;
    const double speedup = serial.ms / parallel.ms;
    if (threads == 4) out.speedup_at_4 = speedup;
    if (speedup > out.best_speedup) out.best_speedup = speedup;
    std::cout << "workers=" << threads << ":  " << parallel.ms
              << " ms  (speedup " << speedup << "x, output "
              << (identical ? "identical" : "DIFFERS") << ")\n";
    if (!out.rows.empty()) out.rows += ",\n";
    out.rows += "    {\"workers\": " + std::to_string(threads) +
                ", \"ms\": " + std::to_string(parallel.ms) +
                ", \"speedup\": " + std::to_string(speedup) +
                ", \"identical\": " + (identical ? "true" : "false") + "}";
  }
  util::set_thread_count(std::nullopt);
  return out;
}

/// Wall-ms total of one OBS_SPAN stage since the last registry reset.
double stage_ms(std::string_view stage) {
  return static_cast<double>(
             obs::registry()
                 .histogram("patchwork_stage_wall_ns",
                            "Wall-clock stage duration (ns)",
                            {{"stage", std::string(stage)}},
                            obs::Determinism::kWallClock)
                 .sum()) /
         1e6;
}

/// Per-stage attribution of the data plane: one fresh serial run against a
/// clean metrics registry, then the OBS_SPAN wall histograms sliced by
/// stage. Serial so stage times sum instead of overlapping.
struct StageBreakdown {
  double synthesis_ms = 0.0;  ///< render/synthesis: batched frame building.
  double capture_ms = 0.0;    ///< session/drain + session/filter decisions.
  double serialize_ms = 0.0;  ///< session/anonymize: pcap write + scrub.
  double compress_ms = 0.0;   ///< render/compress: transfer compression.
};

StageBreakdown measure_stages(const Scenario& scenario) {
  obs::registry().reset();
  util::set_thread_count(1);
  bench::BenchWorld world(scenario.seed, scenario.spec);
  if (scenario.squeeze_to_hot_site) squeeze_cold_sites(world);
  world.warm_up_telemetry();
  core::Coordinator coordinator(world.env, scenario.config);
  (void)coordinator.run_all_experiment();
  util::set_thread_count(std::nullopt);

  StageBreakdown out;
  out.synthesis_ms = stage_ms("render/synthesis");
  out.capture_ms = stage_ms("session/drain") + stage_ms("session/filter");
  out.serialize_ms = stage_ms("session/anonymize");
  out.compress_ms = stage_ms("render/compress");
  return out;
}

}  // namespace

int main() {
  bench::banner("Parallel online profiling: 1 worker vs. N",
                "Section 6.2.2 sampling phase, per-sample data-plane fan-out");

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "profile: " << kSites << " sites; host reports " << hw
            << " hardware thread(s)\n";

  Scenario wide;
  wide.spec = wide_spec();
  wide.config = bench_config();
  const ScenarioResult wide_result = sweep("wide: 10 balanced sites", wide);

  // The skewed workload: three sites, six dedicated NICs each, but every
  // site except site 0 loses all but one NIC to a foreign slice. Site 0
  // then renders ~6x the samples of each cold site, so per-site task
  // granularity would leave the pool idle behind it.
  Scenario skewed;
  skewed.spec = wide_spec();
  skewed.spec.sites = 3;
  skewed.spec.min_dedicated_nics = 6;
  skewed.spec.max_dedicated_nics = 6;
  skewed.spec.min_downlinks = 40;
  skewed.spec.max_downlinks = 40;
  skewed.config = bench_config();
  skewed.config.desired_instances = 0;  // One instance per free NIC.
  skewed.squeeze_to_hot_site = true;
  const ScenarioResult skewed_result =
      sweep("skewed: one hot site", skewed);

  // Per-stage attribution of the wide scenario's serial data plane, so a
  // perf PR can see which stage it actually moved.
  const StageBreakdown stages = measure_stages(wide);
  std::cout << "\nstage breakdown (serial, wide): synthesis "
            << stages.synthesis_ms << " ms, capture " << stages.capture_ms
            << " ms, serialize " << stages.serialize_ms << " ms, compress "
            << stages.compress_ms << " ms\n";

  // The acceptance bar — >= 2.0x at 4 workers now that samples decompose
  // into per-burst subtasks — only applies where the host can actually run
  // 4 workers.
  const bool judged = hw >= 4;
  const bool all_identical =
      wide_result.all_identical && skewed_result.all_identical;
  const bool speedup_ok = !judged || wide_result.speedup_at_4 >= 2.0;
  std::cout << "\n"
            << (all_identical ? "PASS: all outputs byte-identical\n"
                              : "FAIL: parallel output diverged\n");
  if (judged) {
    std::cout << (speedup_ok ? "PASS" : "FAIL") << ": speedup at 4 workers = "
              << wide_result.speedup_at_4 << "x (bar: 2.0x); skewed scenario "
              << skewed_result.speedup_at_4 << "x\n";
  } else {
    std::cout << "SKIP: speedup bar not judged (" << hw
              << " hardware thread(s) < 4)\n";
  }

  const std::string note =
      judged ? "Recorded with 4+ hardware threads; speedups are meaningful."
             : "Recorded on a <4-hardware-thread host: ratios measure "
               "scheduling overhead only. Re-record on real hardware with "
               "./build/bench/bench_online_profile.";
  std::cout << "\nJSON:\n"
            << "{\n"
            << "  \"bench\": \"online_profile\",\n"
            << "  \"note\": \"" << note << "\",\n"
            << "  \"sites\": " << kSites << ",\n"
            << "  \"samples\": " << wide_result.samples << ",\n"
            << "  \"pcap_bytes\": " << wide_result.pcap_bytes << ",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"serial_ms\": " << wide_result.serial_ms << ",\n"
            << "  \"stages_serial_ms\": {\n"
            << "    \"synthesis\": " << stages.synthesis_ms << ",\n"
            << "    \"capture\": " << stages.capture_ms << ",\n"
            << "    \"serialize\": " << stages.serialize_ms << ",\n"
            << "    \"compress\": " << stages.compress_ms << "\n  },\n"
            << "  \"runs\": [\n"
            << wide_result.rows << "\n  ],\n"
            << "  \"skewed\": {\n"
            << "    \"sites\": 3,\n"
            << "    \"samples\": " << skewed_result.samples << ",\n"
            << "    \"hot_fraction\": " << skewed_result.hot_fraction << ",\n"
            << "    \"serial_ms\": " << skewed_result.serial_ms << ",\n"
            << "    \"runs\": [\n"
            << skewed_result.rows << "\n    ],\n"
            << "    \"best_speedup\": " << skewed_result.best_speedup << "\n"
            << "  },\n"
            << "  \"best_speedup\": " << wide_result.best_speedup << ",\n"
            << "  \"speedup_at_4\": " << wide_result.speedup_at_4 << ",\n"
            << "  \"speedup_judged\": " << (judged ? "true" : "false") << ",\n"
            << "  \"outputs_identical\": " << (all_identical ? "true" : "false")
            << "\n}\n";
  return all_identical && speedup_ok ? 0 : 1;
}
