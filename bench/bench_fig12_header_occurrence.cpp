// Figure 12: "Occurrence of protocol headers in FABRIC traffic. Most
// traffic consists of Ethernet frames that carry IPv4 packets, that in
// turn carry TCP segments. Most traffic is tagged using VLAN, MPLS, or
// both." Ethernet exceeds 100% (frames carrying frames); IPv6 is only
// 1.93% of frames.
#include <iostream>

#include "analysis/analyses.hpp"
#include "bench_profile.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Figure 12 — Protocol header occurrence",
                "Fig. 12, Section 8.2 (Headers)");

  bench::BenchWorld world;
  const auto profile = bench::gather_testbed_profile(world);
  const auto result =
      analysis::analyze_header_occurrence(profile.digested.files);
  const auto tagging = analysis::analyze_tagging(profile.digested.files);

  util::TextTable table({"Header", "% of frames", "Bar"});
  const net::Protocol interesting[] = {
      net::Protocol::kEthernet, net::Protocol::kVlan, net::Protocol::kMpls,
      net::Protocol::kPseudoWire, net::Protocol::kIpv4, net::Protocol::kIpv6,
      net::Protocol::kTcp,      net::Protocol::kUdp,  net::Protocol::kIcmp,
      net::Protocol::kArp,      net::Protocol::kTls,  net::Protocol::kSsh,
      net::Protocol::kHttp,     net::Protocol::kDns,  net::Protocol::kNtp,
      net::Protocol::kVxlan,    net::Protocol::kGre,  net::Protocol::kIperf};
  for (net::Protocol p : interesting) {
    const double pct = result.percent(p);
    if (pct == 0.0) continue;
    table.add_row({std::string(net::to_string(p)),
                   util::fmt_double(pct, 2),
                   bench::bar(pct, 210.0, 42)});
  }
  table.print(std::cout);

  const double frames = static_cast<double>(tagging.frames);
  std::cout << "\nPaper's anchors vs measured:\n"
            << "  Ethernet > 100% (carries Ethernet): "
            << util::fmt_double(result.percent(net::Protocol::kEthernet), 1)
            << "%\n"
            << "  IPv4 dominant: "
            << util::fmt_double(result.percent(net::Protocol::kIpv4), 1)
            << "%   IPv6 (paper 1.93%): "
            << util::fmt_double(result.percent(net::Protocol::kIpv6), 2)
            << "%\n"
            << "  TCP-dominant transport: TCP "
            << util::fmt_double(result.percent(net::Protocol::kTcp), 1)
            << "% vs UDP "
            << util::fmt_double(result.percent(net::Protocol::kUdp), 1)
            << "%\n"
            << "  Tagged with VLAN and/or MPLS: "
            << util::fmt_percent(
                   1.0 - static_cast<double>(tagging.untagged) / frames, 1)
            << " (VLAN "
            << util::fmt_percent(
                   static_cast<double>(tagging.vlan_tagged) / frames, 1)
            << ", MPLS "
            << util::fmt_percent(
                   static_cast<double>(tagging.mpls_tagged) / frames, 1)
            << ", both "
            << util::fmt_percent(
                   static_cast<double>(tagging.both_tagged) / frames, 1)
            << ")\n";
  return 0;
}
