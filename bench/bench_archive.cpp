// Archive throughput: encode/append, whole-archive trend queries, and
// rollup compaction (serial vs. pooled — the group folds run through
// util::parallel_map) over a pile of synthetic epoch records.
//
// Verifies the compacted archive image is byte-identical at every worker
// count and prints a JSON summary suitable for recording as
// BENCH_archive.json.
//
// Build & run:  ./build/bench/bench_archive
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "archive/compactor.hpp"
#include "archive/query.hpp"
#include "archive/record.hpp"
#include "archive/writer.hpp"
#include "bench_util.hpp"
#include "net/protocol.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace patchwork;

constexpr std::size_t kRecords = 256;    // Raw epochs in the pile.
constexpr std::size_t kFlowsPerEpoch = 600;
constexpr std::size_t kFlowUniverse = 4096;
constexpr std::size_t kSketchCapacity = 256;
constexpr int kReps = 5;

/// One synthetic raw epoch, sized like a real weekly record: a dozen
/// frame-size buckets, eight site loads, and a sketch over a flow universe
/// wide enough that merges truncate (the expensive path).
archive::EpochRecord synthetic_epoch(std::uint64_t n, util::Rng& rng) {
  archive::EpochRecord r;
  r.first_epoch = r.last_epoch = n;
  r.label = "epoch" + std::to_string(n);
  r.start_nanos = n * util::kDay;
  r.duration_nanos = util::kDay;
  r.offered_bps_sum = 1e12 + 1e9 * static_cast<double>(n % 97);
  r.samples = 48;
  r.frames = 100000 + n;
  r.frame_sizes.edges = {0, 65, 128, 256, 512, 1024, 1519, 2048, 4096, 9217};
  r.frame_sizes.counts.assign(r.frame_sizes.edges.size() - 1, 0);
  for (std::size_t b = 0; b < r.frame_sizes.counts.size(); ++b) {
    r.frame_sizes.counts[b] = rng.uniform_u64(100, 20000);
  }
  r.protocol_occurrences.assign(net::kProtocolCount, 0);
  for (auto& count : r.protocol_occurrences) {
    count = rng.uniform_u64(0, r.frames);
  }
  r.occurrence_frames = r.frames;
  r.tcp_frames = r.frames * 9 / 10;
  r.flow_snippets = kFlowsPerEpoch;
  for (int site = 0; site < 8; ++site) {
    archive::SiteEpochLoad load;
    load.site = "S" + std::to_string(site);
    load.samples = 6;
    load.frames = r.frames / 8;
    load.wire_bytes = rng.uniform_u64(1 << 20, 1 << 28);
    load.pcap_bytes = load.wire_bytes / 6;
    load.frame_sizes = r.frame_sizes;
    r.site_loads.push_back(std::move(load));
  }
  archive::TopFlowSketch sketch(kSketchCapacity);
  for (std::size_t f = 0; f < kFlowsPerEpoch; ++f) {
    const std::uint64_t key = rng.uniform_u64(0, kFlowUniverse - 1);
    sketch.insert("flow" + std::to_string(key),
                  rng.uniform_u64(1000, 5000000));
  }
  r.top_flows = std::move(sketch);
  return r;
}

double best_of(int reps, const auto& fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  bench::banner("Archive: append, trend queries, rollup compaction",
                "Longitudinal epoch store under the storage-budget model");

  util::Rng rng(20260805);
  std::vector<archive::EpochRecord> records;
  records.reserve(kRecords);
  for (std::size_t n = 0; n < kRecords; ++n) {
    records.push_back(synthetic_epoch(n, rng));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<std::uint8_t> image;
  const double append_ms =
      best_of(kReps, [&] { image = archive::render_archive(records); });
  const double append_mbps =
      static_cast<double>(image.size()) / 1e6 / (append_ms / 1e3);
  std::cout << "pile: " << kRecords << " epochs, " << image.size()
            << " archive bytes; host reports " << hw
            << " hardware thread(s)\n\n"
            << "encode+frame:  " << append_ms << " ms  (" << append_mbps
            << " MB/s)\n";

  double query_ms = best_of(kReps, [&] {
    archive::ArchiveQuery query(records);
    volatile std::size_t sink = 0;
    sink += query.jumbo_share().size();
    sink += query.ipv6_share().size();
    sink += query.tcp_share().size();
    sink += query.offered_bps().size();
    sink += query.site_wire_bytes("S3").size();
    sink += query.top_flows(10).size();
    (void)sink;
  });
  std::cout << "query (fold+trends+topK):  " << query_ms << " ms\n\n";

  // Compaction: fold the whole pile down hard so several passes run and
  // the parallel_map group folds dominate.
  archive::CompactionOptions options;
  options.storage_budget_bytes = image.size() / 16;
  options.group_size = 4;

  util::set_thread_count(0);
  std::vector<archive::EpochRecord> serial_out;
  const double serial_ms = best_of(kReps, [&] {
    serial_out = archive::compact_records(records, options);
  });
  const std::vector<std::uint8_t> serial_image =
      archive::render_archive(serial_out);
  std::cout << "compact serial:  " << serial_ms << " ms  (" << kRecords
            << " -> " << serial_out.size() << " records, "
            << serial_image.size() << " bytes)\n";

  std::vector<std::size_t> counts{1, 2, 4, 8};
  std::string rows;
  bool all_identical = true;
  double best_parallel_ms = serial_ms;
  std::size_t best_threads = 0;
  double speedup_at_4 = 0.0;
  for (std::size_t threads : counts) {
    util::set_thread_count(threads);
    std::vector<archive::EpochRecord> out;
    const double ms = best_of(
        kReps, [&] { out = archive::compact_records(records, options); });
    const bool identical = archive::render_archive(out) == serial_image;
    all_identical = all_identical && identical;
    if (ms < best_parallel_ms) {
      best_parallel_ms = ms;
      best_threads = threads;
    }
    if (threads == 4) speedup_at_4 = serial_ms / ms;
    std::cout << "workers=" << threads << ":  " << ms << " ms  (speedup "
              << serial_ms / ms << "x, archive "
              << (identical ? "identical" : "DIFFERS") << ")\n";
    if (!rows.empty()) rows += ",\n";
    rows += "    {\"workers\": " + std::to_string(threads) +
            ", \"ms\": " + std::to_string(ms) +
            ", \"speedup\": " + std::to_string(serial_ms / ms) +
            ", \"identical\": " + (identical ? "true" : "false") + "}";
  }
  util::set_thread_count(std::nullopt);

  const bool judged = hw >= 4;
  std::cout << "\nbest: workers=" << best_threads << " at "
            << serial_ms / best_parallel_ms << "x over serial\n"
            << (all_identical ? "PASS: compacted archives byte-identical\n"
                              : "FAIL: compacted archive diverged\n");
  if (!judged) {
    std::cout << "SKIP: speedup not judged (" << hw
              << " hardware thread(s) < 4)\n";
  }

  const std::string note =
      judged ? "Recorded with 4+ hardware threads; speedups are meaningful."
             : "Recorded on a <4-hardware-thread host: ratios measure "
               "scheduling overhead only. Re-record on real hardware with "
               "./build/bench/bench_archive.";
  std::cout << "\nJSON:\n"
            << "{\n"
            << "  \"bench\": \"archive\",\n"
            << "  \"note\": \"" << note << "\",\n"
            << "  \"records\": " << kRecords << ",\n"
            << "  \"archive_bytes\": " << image.size() << ",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"append_ms\": " << append_ms << ",\n"
            << "  \"append_mb_per_sec\": " << append_mbps << ",\n"
            << "  \"query_ms\": " << query_ms << ",\n"
            << "  \"serial_ms\": " << serial_ms << ",\n"
            << "  \"runs\": [\n"
            << rows << "\n  ],\n"
            << "  \"best_speedup\": " << serial_ms / best_parallel_ms << ",\n"
            << "  \"speedup_at_4\": " << speedup_at_4 << ",\n"
            << "  \"speedup_judged\": " << (judged ? "true" : "false") << ",\n"
            << "  \"outputs_identical\": " << (all_identical ? "true" : "false")
            << "\n}\n";
  return all_identical ? 0 : 1;
}
