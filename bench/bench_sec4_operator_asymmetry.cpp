// Section 4 — "Asymmetry in general profiling".
//
// "Today's network profiling techniques are inadequate for shared testbed
// networks because they are designed to provide information to a network's
// operator, not to the network's users... This information does not
// distinguish between testbed users and provides coarse statistics."
//
// This bench runs Patchwork over the federation and compares its tag-aware
// flow classification against a NetFlow-style 5-tuple operator view of the
// very same capture: slices that reuse 10/8 addresses collapse into single
// operator flows, quantifying the asymmetry that motivates Patchwork.
#include <iostream>

#include "analysis/operator_view.hpp"
#include "bench_profile.hpp"
#include "net/parser.hpp"
#include "pcap/pcap.hpp"
#include "telemetry/netflow.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Section 4 — operator view vs Patchwork classification",
                "Section 4 (asymmetry in general profiling)");

  bench::BenchWorld world;
  const auto profile = bench::gather_testbed_profile(
      world, /*cycles=*/3, /*samples=*/2, /*max_frames=*/2000);

  const analysis::AsymmetryReport report =
      analysis::measure_asymmetry(profile.digested.files);

  util::TextTable table({"Metric", "Value"});
  table.add_row({"Patchwork flows (tags + 5-tuple)",
                 std::to_string(report.patchwork_flows)});
  table.add_row({"Operator flows (bare 5-tuple)",
                 std::to_string(report.operator_flows)});
  table.add_row({"5-tuple keys hiding multiple slices",
                 std::to_string(report.collapsed_keys)});
  table.add_row({"Flows invisible to the operator",
                 std::to_string(report.hidden_flows)});
  table.add_row({"Undercount",
                 util::fmt_percent(report.undercount_fraction(), 2)});
  table.print(std::cout);

  // Run the same captured traffic through an actual NetFlow v5 metering
  // process — the experiment the paper describes having performed — and
  // compare the data volumes each approach ships.
  telemetry::NetflowCache cache;
  std::uint64_t pcap_bytes = 0;
  for (const auto& capture : profile.run.captures) {
    pcap_bytes += capture.pcap.size();
    auto reader = pcap::PcapReader::open(capture.pcap);
    if (!reader) continue;
    while (auto frame = reader->next()) {
      cache.observe(net::parse_frame(*frame),
                    capture.start + frame->timestamp());
    }
    cache.sweep(capture.start + capture.duration);
  }
  cache.flush(0);
  std::uint32_t sequence = 0;
  const auto datagrams = netflow_export(cache.drain(), 0, sequence);
  std::uint64_t netflow_bytes = 0;
  for (const auto& d : datagrams) netflow_bytes += d.size();

  std::cout << "\nNetFlow v5 metering of the same traffic:\n"
            << "  exported " << sequence << " v5 records in "
            << datagrams.size() << " datagrams (" << netflow_bytes
            << " bytes) vs " << pcap_bytes
            << " bytes of header-truncated pcap.\n"
            << "  v5 keeps " << sequence
            << " unidirectional 5-tuples: no VLAN/MPLS tags, no header "
               "stacks, no frame\n  sizes — cheap, but exactly the coarse "
               "operator view Section 4 rejects.\n";

  std::cout
      << "\nEvery hidden flow is a pair of experiments whose 10/8 addresses "
         "collide;\nonly the virtualization tags (VLAN/MPLS) Patchwork keys "
         "on can separate them\n(Section 6.2.4). NetFlow-style summaries "
         "also cannot attribute traffic to a\nslice at all — the asymmetry "
         "that motivates a user-deployable profiler.\n";
  return 0;
}
