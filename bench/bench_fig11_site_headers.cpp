// Figure 11: "Across all (anonymized) FABRIC sites, this shows (y1-axis)
// the number of distinct headers observed, and (y2-axis) deepest stack of
// headers observed."
//
// Shape to reproduce: wide per-site variety in distinct headers (some
// sites few, some many — finding B2) and deepest stacks between 6 and 12.
#include <algorithm>
#include <iostream>

#include "analysis/analyses.hpp"
#include "bench_profile.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Figure 11 — Distinct headers & deepest stack per site",
                "Fig. 11, Section 8.2 (Headers)");

  bench::BenchWorld world;
  const auto profile = bench::gather_testbed_profile(world);
  auto variety = analysis::analyze_site_header_variety(profile.digested.files);
  // The paper orders sites by distinct-header count.
  std::sort(variety.begin(), variety.end(),
            [](const auto& a, const auto& b) {
              return a.distinct_headers < b.distinct_headers;
            });

  util::TextTable table(
      {"Site", "Distinct headers", "Deepest stack", "Variety bar"});
  std::size_t max_variety = 0, min_variety = SIZE_MAX;
  std::size_t max_depth = 0, min_depth = SIZE_MAX;
  for (const auto& row : variety) {
    max_variety = std::max(max_variety, row.distinct_headers);
    min_variety = std::min(min_variety, row.distinct_headers);
    max_depth = std::max(max_depth, row.deepest_stack);
    min_depth = std::min(min_depth, row.deepest_stack);
  }
  for (const auto& row : variety) {
    table.add_row({row.site, std::to_string(row.distinct_headers),
                   std::to_string(row.deepest_stack),
                   bench::bar(static_cast<double>(row.distinct_headers),
                              static_cast<double>(max_variety), 30)});
  }
  table.print(std::cout);

  std::cout << "\nPaper: distinct headers vary widely across sites "
               "(finding B2); deepest stacks span 6-12 headers.\n"
            << "Measured: distinct headers " << min_variety << ".."
            << max_variety << "; deepest stacks " << min_depth << ".."
            << max_depth << ".\n";
  return 0;
}
