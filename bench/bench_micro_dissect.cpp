// Micro-benchmark (google-benchmark): dissector and flow-key throughput.
//
// The paper notes the offline analysis dominates wall-clock ("most of this
// time is taken up by Wireshark's protocol dissectors", Section 8.3) — the
// dissector's per-frame cost is the analysis pipeline's critical path.
#include <benchmark/benchmark.h>

#include "analysis/acap.hpp"
#include "net/frame_builder.hpp"
#include "net/parser.hpp"

namespace {

using namespace patchwork;

net::Frame deep_frame() {
  return net::FrameBuilder()
      .ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .vlan(100)
      .mpls(16001)
      .mpls(16002)
      .pseudowire()
      .ethernet(net::MacAddress::from_id(3), net::MacAddress::from_id(4))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .tcp(50000, 443)
      .tls()
      .pad_to(200)
      .build();
}

net::Frame shallow_frame() {
  return net::FrameBuilder()
      .ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .tcp(50000, 5201)
      .pad_to(200)
      .build();
}

void BM_DissectShallow(benchmark::State& state) {
  const net::Frame frame = shallow_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_frame(frame));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DissectShallow);

void BM_DissectDeepEncapsulation(benchmark::State& state) {
  const net::Frame frame = deep_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_frame(frame));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DissectDeepEncapsulation);

void BM_FlowKeyExtraction(benchmark::State& state) {
  const net::ParsedFrame parsed = net::parse_frame(deep_frame());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::flow_key_of(parsed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowKeyExtraction);

void BM_AbstractFrame(benchmark::State& state) {
  const net::ParsedFrame parsed = net::parse_frame(deep_frame());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::abstract_frame(parsed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AbstractFrame);

void BM_FrameBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(deep_frame());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameBuild);

}  // namespace

BENCHMARK_MAIN();
