// Figure 14 (Appendix B): "Summed latency observed during pcap storage for
// accelerator- and bypass-assisted Patchwork." The x-axis is the
// percentage of free cache memory used by the DPDK pcap writer; the
// plotted value is the summed (bucket-rounded-up, high-buckets-only)
// sys_writev() latency. Thresholds 10:20 vs 20:50.
//
// Anchors: a steep increase after the *midpoint* of
// dirty_background_ratio and dirty_ratio (before dirty_ratio!), and at
// 21% RAM usage: 10:20 -> 3283 ms vs 20:50 -> 13 ms (two orders).
#include <iostream>

#include "bench_util.hpp"
#include "capture/perf_model.hpp"
#include "pcap/pcap.hpp"
#include "util/table.hpp"

namespace {

using namespace patchwork;

capture::DpdkRunStats run_sweep(double bg_ratio, double dirty_ratio,
                                double usage_target) {
  host::HostSpec spec;  // 16 cores, 128 GB, ~100 GB free cache.
  spec.page_cache.dirty_background_ratio = bg_ratio;
  spec.page_cache.dirty_ratio = dirty_ratio;
  // Storage flushes slower than the 100G stream's truncated ingest
  // (~1.8 GB/s), so dirty pages accumulate toward the thresholds — the
  // regime in which Appendix B measures the latency wall.
  spec.page_cache.storage_write_bytes_per_sec = 600e6;

  capture::DpdkRunParams params;
  params.offered_bps = 100e9;  // DPDK Pktgen at 100 Gbps (Appendix B).
  params.frame_size = 1514;
  params.truncation = 200;
  params.cores = 8;
  params.track_usage_curve = true;
  const double stored_per_frame = 200.0 + pcap::kRecordHeaderSize;
  const double frames_per_sec = 100e9 / (8.0 * 1514.0);
  // Budget wall-clock for the slow (writer-paced) phase too: past the
  // midpoint the effective ingest drops to the flush rate.
  const double ingest_bps = frames_per_sec * stored_per_frame;
  params.duration = util::from_seconds(
      usage_target * static_cast<double>(spec.page_cache.free_cache_bytes) /
      std::min(ingest_bps, spec.page_cache.storage_write_bytes_per_sec));
  util::Rng rng(2024);
  return capture::simulate_dpdk_writer(spec, params, rng);
}

double curve_at(const capture::DpdkRunStats& stats, double usage) {
  double val = 0.0;
  for (const auto& pt : stats.usage_curve) {
    if (pt.usage_fraction <= usage) val = pt.summed_high_latency_ms;
  }
  return val;
}

}  // namespace

int main() {
  bench::banner("Figure 14 — Summed sys_writev latency vs cache usage",
                "Fig. 14 / Appendix B (the storage bottleneck)");

  const auto tight = run_sweep(0.10, 0.20, 0.45);
  const auto loose = run_sweep(0.20, 0.50, 0.45);

  util::TextTable table({"% free cache used", "10:20 summed ms",
                         "20:50 summed ms", "10:20 bar"});
  double max_ms = 1.0;
  for (double u = 0.05; u <= 0.45; u += 0.05) {
    max_ms = std::max(max_ms, curve_at(tight, u));
  }
  for (double u = 0.05; u <= 0.451; u += 0.05) {
    table.add_row({util::fmt_percent(u, 0),
                   util::fmt_double(curve_at(tight, u), 1),
                   util::fmt_double(curve_at(loose, u), 1),
                   bench::bar(curve_at(tight, u), max_ms, 30)});
  }
  table.print(std::cout);

  const double tight_21 = curve_at(tight, 0.21);
  const double loose_21 = curve_at(loose, 0.21);
  std::cout << "\nPaper anchors:\n"
            << "  * Steep increase after the midpoint of the two "
               "thresholds (15% for 10:20), before dirty_ratio — visible "
               "above.\n"
            << "  * At 21% usage: 10:20 = 3283 ms vs 20:50 = 13 ms (two "
               "orders of magnitude).\n"
            << "Measured at 21% usage: 10:20 = "
            << util::fmt_double(tight_21, 1) << " ms vs 20:50 = "
            << util::fmt_double(loose_21, 1) << " ms  (ratio "
            << util::fmt_double(tight_21 / std::max(loose_21, 0.001), 0)
            << "x)\n";
  return 0;
}
