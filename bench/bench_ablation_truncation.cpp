// Ablation — truncation size (requirement 3 / Section 8.1.4).
//
// Truncation trades storage and sustainable rate against header fidelity:
// too small a snaplen cuts into FABRIC's deep encapsulation stacks and
// the dissector loses layers. This bench sweeps snaplen and reports
// (a) frames whose header stack was cut (dissection fidelity),
// (b) bytes stored per sample (storage footprint), and
// (c) the sustainable capture rate from the capacity model.
#include <iostream>

#include "analysis/analyses.hpp"
#include "analysis/digest.hpp"
#include "bench_util.hpp"
#include "capture/session.hpp"
#include "traffic/flowgen.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Ablation — truncation size vs fidelity/storage/rate",
                "Sections 6.2.2 & 8.1.4 (truncation) design choice");

  // One fixed window of realistic traffic.
  util::Rng rng(77);
  const auto profiles = traffic::make_site_profiles(rng, 1);
  traffic::WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 2e9;
  params.max_frames = 8000;
  const traffic::WindowTraffic window =
      traffic::generate_window(rng, profiles[0], params);

  host::HostSpec host;
  util::TextTable table({"Snaplen (B)", "Truncated stacks", "Stored MB",
                         "Sustainable Gbps (5 cores, 1514B)"});
  for (std::uint32_t snaplen : {64u, 96u, 128u, 200u, 512u, 65535u}) {
    capture::CaptureConfig config;
    config.method = capture::CaptureMethod::kFpgaDpdk;
    config.cores = 5;
    config.snaplen = snaplen;
    util::Rng crng(1);
    capture::CaptureSession session(config, host, crng);
    capture::CaptureResult result =
        session.run(window.frames, /*offered_pps=*/1000.0);

    analysis::RawCapture raw;
    raw.site = "S0";
    raw.pcap = std::move(result.pcap);
    analysis::DigestStats stats;
    analysis::digest(raw, &stats);

    const double capacity_pps = host.dpdk_capacity_pps(5, snaplen);
    const double gbps = capacity_pps * 1514.0 * 8.0 / 1e9;
    table.add_row(
        {std::to_string(snaplen),
         std::to_string(stats.truncated_frames) + "/" +
             std::to_string(stats.frames),
         util::fmt_double(static_cast<double>(result.stats.bytes_stored) /
                              1e6,
                          2),
         util::fmt_double(std::min(gbps, 100.0), 1)});
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: 64 B cuts into most encapsulated stacks "
         "(FABRIC underlay\nstacks reach 6-12 headers); the paper's 200 B "
         "keeps nearly all header stacks\nintact while storing ~7x less "
         "than full frames and sustaining line rate.\n";
  return 0;
}
