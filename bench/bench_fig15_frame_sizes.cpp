// Figure 15 (and the Section 8.2 aggregate): "Distribution of frame sizes
// at different FABRIC sites... site names are pseudonymized as S0-S29.
// Striped columns represent the portion of a site's frames that were
// jumbo size."
//
// Aggregate anchors: 1519-2047 B = 74.7%, 65-127 B = 14.15%,
// 128-255 B = 5.79%; sites differ substantially (S3/S7 jumbo-heavy,
// S11/S12 small-packet-heavy).
#include <iostream>
#include <set>

#include "analysis/analyses.hpp"
#include "bench_profile.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Figure 15 — Frame-size distribution per site",
                "Fig. 15 / Section 8.2 (Frame sizes)");

  bench::BenchWorld world;
  const auto profile = bench::gather_testbed_profile(world);

  // Aggregate distribution first (the Section 8.2 numbers).
  const auto aggregate =
      analysis::analyze_frame_sizes(profile.digested.files);
  util::TextTable agg_table({"Bucket (B)", "Fraction", "Paper", "Bar"});
  struct Anchor {
    double lo;
    const char* paper;
  };
  const Anchor anchors[] = {{64, "-"},        {65, "14.15%"}, {128, "5.79%"},
                            {256, "-"},       {512, "-"},     {1024, "-"},
                            {1519, "74.7%"},  {2048, "-"},    {4096, "-"}};
  for (const Anchor& a : anchors) {
    const double frac = aggregate.fraction_in(a.lo);
    agg_table.add_row(
        {util::fmt_double(a.lo, 0), util::fmt_percent(frac, 2), a.paper,
         bench::bar(frac, 1.0, 40)});
  }
  agg_table.print(std::cout);

  // Per-site jumbo share (the striped columns of Fig. 15).
  std::cout << "\nPer-site jumbo share (striped columns):\n";
  util::TextTable site_table({"Site", "Frames", "Jumbo share", "Bar"});
  std::set<std::string> sites;
  for (const auto& f : profile.digested.files) sites.insert(f.site);
  double min_jumbo = 1.0, max_jumbo = 0.0;
  for (const std::string& site : sites) {
    const auto r =
        analysis::analyze_frame_sizes_site(profile.digested.files, site);
    if (r.frames == 0) continue;
    min_jumbo = std::min(min_jumbo, r.jumbo_fraction());
    max_jumbo = std::max(max_jumbo, r.jumbo_fraction());
    site_table.add_row({site, std::to_string(r.frames),
                        util::fmt_percent(r.jumbo_fraction(), 1),
                        bench::bar(r.jumbo_fraction(), 1.0, 40)});
  }
  site_table.print(std::cout);

  std::cout << "\nPaper: substantial per-site variation; several sites are "
               "notable for jumbo frames, others carry mostly small "
               "packets.\nMeasured jumbo-share range across sites: "
            << util::fmt_percent(min_jumbo, 1) << " .. "
            << util::fmt_percent(max_jumbo, 1) << "\n";
  return 0;
}
