// Scenario: elephant vs. mice under mirror-delivery loss.
//
// The event planner's heavy-tailed durations split a window's flows into a
// few elephants (bulk transfers, most of the bytes) and a crowd of mice
// (short chatter flows, most of the flow count). The data plane's
// delivery rule drops frames uniformly on the delivery substream — but
// uniform frame loss is not uniform *flow* loss: a mouse that contributes
// four frames can lose its entire observable existence to a few unlucky
// draws, while an elephant sheds the same fraction and still dominates the
// capture. This bench renders one event-model window exactly the way the
// profiler does (plan substream -> counter-addressed unit renders ->
// merged order -> Bernoulli keeps on the delivery substream), attributes
// every dropped frame/byte to its class, and counts the render units wiped
// out entirely at each delivery fraction.
//
// Build & run:  ./build/bench/bench_scenario_elephant_mice
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "flowsched/event_gen.hpp"
#include "net/frame_store.hpp"
#include "traffic/flowgen.hpp"
#include "traffic/workload.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace patchwork;

constexpr std::uint64_t kSeed = 9090;

traffic::WindowParams window_params() {
  traffic::WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 4e9;
  params.max_frames = 40000;
  return params;
}

flowsched::FlowModelConfig flow_config() {
  flowsched::FlowModelConfig config;
  config.model = flowsched::FlowModel::kEvent;
  config.flows_per_second = 40.0;
  config.mean_flow_duration_s = 4.0;
  config.pareto_shape = 1.1;  // Heavier tail: starker elephants.
  config.flow_keys = 128;
  return config;
}

/// Elephant = a unit whose frame volume exceeds the event planner's mice
/// ceiling (non-bulk flows are clamped to 50 data frames; ACK units carry
/// a fifth of their data unit). With heavy-tailed durations this separates
/// the few long activations holding most of the bytes from the crowd of
/// short ones — classification by volume, not by frame size, because a
/// short-lived bulk flow is still a mouse on the wire.
bool is_elephant(const traffic::RenderUnit& unit) {
  return unit.frames > (unit.acks ? 10 : 50);
}

/// One frame of the merged window, tagged with its source unit and class.
struct MergedFrame {
  util::Nanos ts = 0;
  std::size_t unit = 0;
  std::uint64_t j = 0;
  std::size_t wire = 0;
  bool elephant = false;
};

struct RenderedWindow {
  double ms = 0.0;
  traffic::WindowPlan plan;
  std::vector<MergedFrame> merged;
};

/// Plan + render + merge, exactly the profiler's substream discipline.
RenderedWindow render_window(const traffic::SiteWorkloadProfile& profile) {
  RenderedWindow out;
  const traffic::WindowParams params = window_params();
  const auto t0 = std::chrono::steady_clock::now();
  util::Rng root(kSeed);
  util::Rng plan_rng = root.split(traffic::kWindowPlanStream);
  out.plan = flowsched::plan_event_window(plan_rng, profile, params,
                                          flow_config());
  std::vector<net::FrameStore> stores(out.plan.units.size());
  net::FrameBuilder builder;
  for (std::size_t u = 0; u < out.plan.units.size(); ++u) {
    const util::RngBlock draws(
        root.split(traffic::kWindowUnitStreamBase + u));
    traffic::render_unit(out.plan.units[u], draws, params.duration, 0,
                         out.plan.units[u].frames, builder, stores[u]);
  }
  for (std::size_t u = 0; u < stores.size(); ++u) {
    const bool elephant = is_elephant(out.plan.units[u]);
    for (std::size_t i = 0; i < stores[u].size(); ++i) {
      out.merged.push_back(MergedFrame{stores[u].view(i).timestamp, u,
                                       static_cast<std::uint64_t>(i),
                                       stores[u].view(i).bytes.size(),
                                       elephant});
    }
  }
  std::sort(out.merged.begin(), out.merged.end(),
            [](const MergedFrame& a, const MergedFrame& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.unit != b.unit) return a.unit < b.unit;
              return a.j < b.j;
            });
  const auto t1 = std::chrono::steady_clock::now();
  out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

struct ClassTally {
  std::uint64_t offered_frames = 0;
  double offered_bytes = 0.0;
  std::uint64_t dropped_frames = 0;
  double dropped_bytes = 0.0;
};

struct LossAttribution {
  ClassTally elephants;
  ClassTally mice;
  std::size_t mice_units_wiped = 0;      ///< Units losing every frame.
  std::size_t elephant_units_wiped = 0;
};

/// Bernoulli keeps on the delivery substream over the merged order — the
/// exact rule the profiler applies — attributed per class.
LossAttribution attribute_loss(const RenderedWindow& window,
                               double delivery) {
  util::Rng root(kSeed);
  const util::RngBlock draws(root.split(traffic::kWindowDeliveryStream));
  std::vector<std::uint8_t> keep(window.merged.size());
  draws.chance_fill(0, delivery, keep);

  LossAttribution out;
  std::vector<std::uint64_t> unit_kept(window.plan.units.size(), 0);
  for (std::size_t j = 0; j < window.merged.size(); ++j) {
    const MergedFrame& f = window.merged[j];
    ClassTally& tally = f.elephant ? out.elephants : out.mice;
    ++tally.offered_frames;
    tally.offered_bytes += static_cast<double>(f.wire);
    if (keep[j] != 0) {
      ++unit_kept[f.unit];
    } else {
      ++tally.dropped_frames;
      tally.dropped_bytes += static_cast<double>(f.wire);
    }
  }
  for (std::size_t u = 0; u < window.plan.units.size(); ++u) {
    if (window.plan.units[u].frames == 0 || unit_kept[u] != 0) continue;
    if (is_elephant(window.plan.units[u])) {
      ++out.elephant_units_wiped;
    } else {
      ++out.mice_units_wiped;
    }
  }
  return out;
}

bool windows_identical(const RenderedWindow& a, const RenderedWindow& b) {
  if (a.merged.size() != b.merged.size()) return false;
  for (std::size_t i = 0; i < a.merged.size(); ++i) {
    if (a.merged[i].ts != b.merged[i].ts) return false;
    if (a.merged[i].unit != b.merged[i].unit) return false;
    if (a.merged[i].wire != b.merged[i].wire) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::banner("Elephants vs. mice: loss attribution under delivery thinning",
                "Section 3 mirror loss; heavy-tailed flow-level workloads");

  const unsigned hw = std::thread::hardware_concurrency();
  const traffic::SiteWorkloadProfile profile = [] {
    util::Rng rng(5);
    return traffic::make_site_profiles(rng, 1).front();
  }();

  util::set_thread_count(1);
  const RenderedWindow window = render_window(profile);
  util::set_thread_count(std::nullopt);

  std::size_t elephant_units = 0;
  for (const traffic::RenderUnit& u : window.plan.units) {
    if (is_elephant(u)) ++elephant_units;
  }
  std::cout << "window: " << window.merged.size() << " frames across "
            << window.plan.units.size() << " units (" << elephant_units
            << " elephant units, "
            << window.plan.units.size() - elephant_units << " mice units)\n\n";

  std::cout << "delivery   class      byte share   drop share   units wiped\n";
  std::string delivery_rows;
  bool mice_wipe_worse = true;
  for (double delivery : {0.95, 0.85, 0.6}) {
    const LossAttribution loss = attribute_loss(window, delivery);
    const double total_bytes =
        loss.elephants.offered_bytes + loss.mice.offered_bytes;
    const double total_dropped =
        loss.elephants.dropped_bytes + loss.mice.dropped_bytes;
    const double ele_byte_share =
        total_bytes > 0.0 ? loss.elephants.offered_bytes / total_bytes : 0.0;
    const double ele_drop_share =
        total_dropped > 0.0 ? loss.elephants.dropped_bytes / total_dropped
                            : 0.0;
    std::cout << delivery << "       elephants  " << ele_byte_share * 100.0
              << "%      " << ele_drop_share * 100.0 << "%       "
              << loss.elephant_units_wiped << "\n"
              << "           mice       " << (1.0 - ele_byte_share) * 100.0
              << "%      " << (1.0 - ele_drop_share) * 100.0 << "%       "
              << loss.mice_units_wiped << "\n";
    mice_wipe_worse =
        mice_wipe_worse &&
        loss.mice_units_wiped >= loss.elephant_units_wiped;
    if (!delivery_rows.empty()) delivery_rows += ",\n";
    delivery_rows +=
        "    {\"delivery\": " + std::to_string(delivery) +
        ", \"elephant_byte_share\": " + std::to_string(ele_byte_share) +
        ", \"elephant_drop_share\": " + std::to_string(ele_drop_share) +
        ", \"elephant_units_wiped\": " +
        std::to_string(loss.elephant_units_wiped) +
        ", \"mice_units_wiped\": " + std::to_string(loss.mice_units_wiped) +
        ", \"elephant_dropped_frames\": " +
        std::to_string(loss.elephants.dropped_frames) +
        ", \"mice_dropped_frames\": " +
        std::to_string(loss.mice.dropped_frames) + "}";
  }

  // Worker sweep: the render is a pure function of the seed; thread-count
  // settings must be inert.
  bool all_identical = true;
  std::string rows;
  double best_speedup = 0.0, speedup_at_4 = 0.0;
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const RenderedWindow again = render_window(profile);
    util::set_thread_count(std::nullopt);
    const bool identical = windows_identical(window, again);
    all_identical = all_identical && identical;
    const double speedup = again.ms > 0.0 ? window.ms / again.ms : 0.0;
    if (threads == 4) speedup_at_4 = speedup;
    best_speedup = std::max(best_speedup, speedup);
    std::cout << "workers=" << threads << ": re-render " << again.ms
              << " ms, output " << (identical ? "identical" : "DIFFERS")
              << "\n";
    if (!rows.empty()) rows += ",\n";
    rows += "    {\"workers\": " + std::to_string(threads) +
            ", \"ms\": " + std::to_string(again.ms) +
            ", \"speedup\": " + std::to_string(speedup) +
            ", \"identical\": " + (identical ? "true" : "false") + "}";
  }

  std::cout << "\n"
            << (all_identical ? "PASS: re-render byte-identical\n"
                              : "FAIL: re-render diverged\n")
            << (mice_wipe_worse
                    ? "PASS: mice lose whole flows at least as often as "
                      "elephants at every delivery fraction\n"
                    : "FAIL: elephants wiped more often than mice\n");

  std::cout << "\nJSON:\n"
            << "{\n"
            << "  \"bench\": \"scenario_elephant_mice\",\n"
            << "  \"note\": \"Loss attribution is analysis, not a parallel "
               "path; the worker sweep checks schedule inertness.\",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"serial_ms\": " << window.ms << ",\n"
            << "  \"frames\": " << window.merged.size() << ",\n"
            << "  \"units\": " << window.plan.units.size() << ",\n"
            << "  \"elephant_units\": " << elephant_units << ",\n"
            << "  \"delivery_sweep\": [\n" << delivery_rows << "\n  ],\n"
            << "  \"runs\": [\n" << rows << "\n  ],\n"
            << "  \"best_speedup\": " << best_speedup << ",\n"
            << "  \"speedup_at_4\": " << speedup_at_4 << ",\n"
            << "  \"speedup_judged\": false,\n"
            << "  \"outputs_identical\": "
            << (all_identical ? "true" : "false") << "\n}\n";
  return all_identical && mice_wipe_worse ? 0 : 1;
}
