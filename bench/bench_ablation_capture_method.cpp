// Ablation — capture method (Section 6.2.2's three methods).
//
// tcpdump vs plain DPDK vs FPGA-offload + DPDK: sustainable rate across
// frame sizes, for the Patchwork default VM (2 cores) and a beefier
// 5-core listener. Also sweeps truncation size (the Section 8.1.4 knob).
#include <iostream>

#include "bench_util.hpp"
#include "capture/config.hpp"
#include "capture/perf_model.hpp"
#include "util/table.hpp"

namespace {

using namespace patchwork;

/// Max offered rate (Gbps) the method sustains at < 1% loss, by bisection
/// over the capacity models.
double sustainable_gbps(const host::HostSpec& spec,
                        capture::CaptureMethod method, std::size_t frame,
                        std::uint32_t snaplen, std::uint32_t cores) {
  double lo = 0.0, hi = 400e9;
  for (int i = 0; i < 40; ++i) {
    const double mid = (lo + hi) / 2.0;
    const double pps = mid / (8.0 * static_cast<double>(frame));
    double capacity = 0.0;
    switch (method) {
      case capture::CaptureMethod::kTcpdump:
        capacity = spec.kernel_capacity_pps(frame, snaplen);
        break;
      case capture::CaptureMethod::kDpdk:
        capacity = spec.dpdk_capacity_pps(cores, snaplen, frame, false);
        break;
      case capture::CaptureMethod::kFpgaDpdk:
        capacity = spec.dpdk_capacity_pps(cores, snaplen, frame, true);
        break;
    }
    if (pps <= capacity * 0.99) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo / 1e9;
}

}  // namespace

int main() {
  bench::banner("Ablation — capture method sustainable rates",
                "Section 6.2.2 (three capture methods) design choice");

  host::HostSpec spec;
  for (std::uint32_t cores : {2u, 5u}) {
    std::cout << "Cores: " << cores << ", snaplen 200 B\n";
    util::TextTable table({"Frame (B)", "tcpdump (Gbps)", "DPDK (Gbps)",
                           "FPGA+DPDK (Gbps)"});
    for (std::size_t frame : {128, 512, 1514, 2048, 9000}) {
      table.add_row(
          {std::to_string(frame),
           util::fmt_double(sustainable_gbps(spec,
                                             capture::CaptureMethod::kTcpdump,
                                             frame, 200, cores),
                            1),
           util::fmt_double(
               sustainable_gbps(spec, capture::CaptureMethod::kDpdk, frame,
                                200, cores),
               1),
           util::fmt_double(
               sustainable_gbps(spec, capture::CaptureMethod::kFpgaDpdk,
                                frame, 200, cores),
               1)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Truncation sweep (FPGA+DPDK, 1514 B frames, 5 cores):\n";
  util::TextTable trunc({"Snaplen (B)", "Sustainable (Gbps)",
                         "Stored bytes per frame"});
  for (std::uint32_t snaplen : {64u, 128u, 200u, 512u, 1514u}) {
    trunc.add_row(
        {std::to_string(snaplen),
         util::fmt_double(sustainable_gbps(spec,
                                           capture::CaptureMethod::kFpgaDpdk,
                                           1514, snaplen, 5),
                          1),
         std::to_string(snaplen + 16)});
  }
  trunc.print(std::cout);

  std::cout
      << "\nExpected shape (paper): tcpdump tops out under ~10 Gbps and is "
         "the default for\nits simplicity; DPDK scales with cores; FPGA "
         "offload wins most for large frames\n(only truncated bytes cross "
         "into the host) and smaller truncation raises the\nceiling — the "
         "Section 8.1.4 result.\n";
  return 0;
}
