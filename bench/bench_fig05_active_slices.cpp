// Figure 5: "Average number of slices on FABRIC is 85, with a standard
// deviation of 52. At most, we saw 272 simultaneous slices on FABRIC."
#include <iostream>

#include "bench_util.hpp"
#include "testbed/slice_model.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Figure 5 — Simultaneously active slices over a year",
                "Fig. 5, Section 5");

  util::Rng rng(13);
  testbed::ActivityModel activity;
  testbed::SliceActivityModel model(rng, activity);
  const auto slices = model.generate(365 * util::kDay);

  util::RunningStats stats;
  std::vector<double> weekly_mean(52, 0.0);
  std::vector<int> weekly_n(52, 0);
  for (util::Nanos t = 0; t < 365 * util::kDay; t += 6 * util::kHour) {
    const auto active = static_cast<double>(
        testbed::SliceActivityModel::active_count(slices, t));
    stats.add(active);
    const std::size_t week = std::min<std::size_t>(
        51, static_cast<std::size_t>(util::to_seconds(t) /
                                     (7.0 * 24 * 3600)));
    weekly_mean[week] += active;
    weekly_n[week]++;
  }
  for (std::size_t w = 0; w < 52; ++w) {
    if (weekly_n[w]) weekly_mean[w] /= weekly_n[w];
  }
  double peak_weekly = 0.0;
  for (double v : weekly_mean) peak_weekly = std::max(peak_weekly, v);

  util::TextTable table({"Week", "Mean active", "Bar"});
  for (std::size_t w = 0; w < 52; ++w) {
    table.add_row({std::to_string(w),
                   util::fmt_double(weekly_mean[w], 1),
                   bench::bar(weekly_mean[w], peak_weekly, 40)});
  }
  table.print(std::cout);

  std::cout << "\nPaper: mean 85, stddev 52, max 272. Measured: mean "
            << util::fmt_double(stats.mean(), 1) << ", stddev "
            << util::fmt_double(stats.stddev(), 1) << ", max "
            << util::fmt_double(stats.max(), 0) << "\n";
  return 0;
}
