// Ablation — dynamic scaling with a "nice" factor (Section 6.3 / 9).
//
// Compares a fixed-footprint profiler against dynamic scaling at several
// nice factors, under a testbed whose background NIC usage swings between
// idle and contended. Metrics: port-slot-cycles harvested (profiling
// coverage) and contended-cycles held (instances kept while other
// researchers wanted NICs — the cost the nice factor is meant to avoid).
#include <iostream>

#include "bench_util.hpp"
#include "core/profiler.hpp"
#include "util/table.hpp"

namespace {

using namespace patchwork;

struct Outcome {
  std::uint64_t slot_cycles = 0;       ///< Monitored-port slots x cycles.
  std::uint64_t contended_cycles = 0;  ///< Extra instances held while hot.
  std::uint32_t scale_ups = 0;
  std::uint32_t scale_downs = 0;
};

Outcome run_trial(bench::BenchWorld& world, bool dynamic, double nice) {
  core::ProfilerConfig config;
  config.plan.cycles = 1;
  config.plan.samples_per_run = 1;
  config.plan.max_frames_per_sample = 50;
  config.crash_probability = 0.0;
  config.desired_instances = 1;
  config.dynamic_scaling = dynamic;
  config.scaling.nice = nice;
  config.scaling.max_instances = 4;
  config.nominal_testbed_bps = 1e18;  // Activity reads idle; NICs decide.
  config.allocator.backend_failure_rate = 0.0;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;

  const testbed::SiteId site_id{0};
  testbed::Site& site = world.fed.site(site_id);

  Outcome outcome;
  core::SiteProfiler profiler(world.env, site_id, config);
  if (!profiler.setup().ok) return outcome;

  // 12 rounds; background researchers hold NICs during rounds 4-8.
  std::vector<testbed::NicId> held;
  for (int round = 0; round < 12; ++round) {
    const bool contended = round >= 4 && round <= 8;
    if (contended && held.empty()) {
      for (testbed::NicId nic :
           site.available_nics(testbed::NicKind::kDedicatedConnectX)) {
        site.mutable_nic(nic).allocated_to = testbed::SliceId{777};
        held.push_back(nic);
      }
    } else if (!contended && !held.empty()) {
      for (testbed::NicId nic : held) {
        site.mutable_nic(nic).allocated_to.reset();
      }
      held.clear();
    }
    // One profiling round (the profiler rescales between its cycles; with
    // cycles=1 we call run() repeatedly to expose it to the swings).
    profiler.run();
    outcome.slot_cycles += profiler.monitored_port_slots();
    if (contended && profiler.current_instances() > 1) {
      outcome.contended_cycles += profiler.current_instances() - 1;
    }
    world.env.advance(util::kHour);
  }
  outcome.scale_ups = profiler.scale_ups();
  outcome.scale_downs = profiler.scale_downs();
  profiler.teardown();
  for (testbed::NicId nic : held) {
    site.mutable_nic(nic).allocated_to.reset();
  }
  return outcome;
}

}  // namespace

int main() {
  bench::banner("Ablation — dynamic scaling & the nice factor",
                "Section 6.3 limitation 2 / Section 9 future work");

  util::TextTable table({"Configuration", "Slot-cycles", "Contended holds",
                         "Scale ups/downs"});
  struct Entry {
    const char* name;
    bool dynamic;
    double nice;
  };
  const Entry entries[] = {
      {"fixed footprint (paper baseline)", false, 0.0},
      {"dynamic, nice=0.0 (greedy)", true, 0.0},
      {"dynamic, nice=0.3", true, 0.3},
      {"dynamic, nice=0.8 (polite)", true, 0.8},
  };
  for (const Entry& e : entries) {
    bench::BenchWorld world(7);
    world.warm_up_telemetry();
    const Outcome o = run_trial(world, e.dynamic, e.nice);
    table.add_row({e.name, std::to_string(o.slot_cycles),
                   std::to_string(o.contended_cycles),
                   std::to_string(o.scale_ups) + "/" +
                       std::to_string(o.scale_downs)});
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: dynamic scaling harvests more slot-cycles than "
         "the fixed\nbaseline by growing into idle NICs; a higher nice "
         "factor sheds extras during\nthe contended rounds (fewer "
         "contended holds) at a modest coverage cost —\nthe trade-off the "
         "paper's future-work section sketches.\n";
  return 0;
}
