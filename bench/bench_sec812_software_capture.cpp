// Section 8.1.2 — Software-based capture: "The listening host ran tcpdump
// with a buffer memory of 32MB ... truncated to 64 bytes. This setup was
// able to sustain 11 Gbps of throughput between the iperf3 client and
// server. tcpdump was able to capture packets without packet loss until
// about 8.5 Gbps of throughput for 1500B frames."
#include <iostream>

#include "bench_util.hpp"
#include "capture/perf_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Section 8.1.2 — tcpdump software-capture ceiling",
                "Section 8.1.2 (software-based capture)");

  host::HostSpec spec;

  util::TextTable table({"iperf3 rate (Gbps)", "Captured", "Lost",
                         "Loss (%)"});
  for (double gbps : {2.0, 4.0, 6.0, 8.0, 8.5, 9.0, 10.0, 11.0, 12.0}) {
    capture::TcpdumpRunParams params;
    params.offered_bps = gbps * 1e9;
    params.frame_size = 1500;
    params.snaplen = 64;
    params.duration = 10 * util::kSecond;
    const auto stats = simulate_tcpdump(spec, params);
    table.add_row({util::fmt_double(gbps, 1),
                   std::to_string(stats.captured_frames),
                   std::to_string(stats.dropped_frames),
                   util::fmt_double(stats.loss_fraction() * 100.0, 3)});
  }
  table.print(std::cout);

  const double ceiling =
      capture::tcpdump_lossless_ceiling_bps(spec, 1500, 64);
  std::cout << "\nPaper: loss-free until ~8.5 Gbps for 1500 B frames.\n"
            << "Measured loss-free ceiling (bisection): "
            << util::fmt_double(ceiling / 1e9, 2) << " Gbps\n";

  // Frame-size sensitivity: smaller frames hit the per-packet cost wall
  // far earlier — the reason Patchwork offloads to DPDK/FPGA.
  std::cout << "\nCeiling by frame size (snaplen 64):\n";
  util::TextTable sweep({"Frame size (B)", "Loss-free ceiling (Gbps)"});
  for (std::size_t size : {128, 256, 512, 1024, 1500, 4096, 9000}) {
    sweep.add_row(
        {std::to_string(size),
         util::fmt_double(
             capture::tcpdump_lossless_ceiling_bps(spec, size, 64) / 1e9,
             2)});
  }
  sweep.print(std::cout);
  return 0;
}
