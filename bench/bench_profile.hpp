// Shared profile-gathering step for the data-plane figure benches
// (Figs. 11, 12, 13, 15): run Patchwork in all-experiment mode across the
// simulated federation and digest the captures, exactly the paper's
// pipeline.
#pragma once

#include <iostream>

#include "analysis/pipeline.hpp"
#include "bench_util.hpp"
#include "core/coordinator.hpp"

namespace patchwork::bench {

struct GatheredProfile {
  core::ProfileRun run;
  analysis::DigestedProfile digested;
};

inline GatheredProfile gather_testbed_profile(BenchWorld& world,
                                              std::uint32_t cycles = 4,
                                              std::uint32_t samples = 3,
                                              std::size_t max_frames = 3000) {
  world.warm_up_telemetry();
  core::ProfilerConfig config;
  config.plan.cycles = cycles;
  config.plan.samples_per_run = samples;
  config.plan.max_frames_per_sample = max_frames;
  config.plan.sample_duration = 20 * util::kSecond;  // Paper's samples.
  config.crash_probability = 0.0;
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;
  config.capture.snaplen = 200;  // Paper: first 200 bytes per frame.
  core::Coordinator coordinator(world.env, config);
  GatheredProfile out;
  out.run = coordinator.run_all_experiment();
  out.digested = analysis::digest_profile(out.run.captures);
  std::cout << "[profile] " << out.run.captures.size() << " samples from "
            << out.run.reports.size() << " sites, "
            << out.digested.stats.frames << " frames digested\n\n";
  return out;
}

}  // namespace patchwork::bench
