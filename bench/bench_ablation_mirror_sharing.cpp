// Ablation — shared mirror ports via the scheduling layer (Section 6.3
// limitation 1).
//
// Without sharing, "only a single FABRIC user at a time can mirror a
// specific switch port": overlapping requests simply fail. The
// MirrorScheduler time-multiplexes the same hardware. This bench replays
// an identical request workload (several users wanting overlapping busy
// ports) both ways and reports served requests, served capture time, and
// per-user fairness.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "core/mirror_scheduler.hpp"
#include "util/table.hpp"

namespace {

using namespace patchwork;

struct Workload {
  std::vector<core::MirrorRequest> requests;
};

Workload make_workload() {
  // Four users; the busy ports 4-6 are in high demand.
  Workload w;
  const char* users[] = {"alice", "bob", "carol", "dave"};
  util::Rng rng(9);
  for (int i = 0; i < 24; ++i) {
    core::MirrorRequest r;
    r.user = users[i % 4];
    r.source = testbed::PortId{
        static_cast<std::uint32_t>(4 + rng.uniform_u64(0, 2))};
    r.directions = testbed::MirrorDirections::kBoth;
    r.duration = (10 + 10 * rng.uniform_u64(0, 2)) * util::kMinute;
    w.requests.push_back(r);
  }
  return w;
}

testbed::ToRSwitch make_switch() {
  std::vector<testbed::SwitchPort> ports;
  for (int i = 0; i < 2; ++i) {
    ports.emplace_back(testbed::PortKind::kUplink, 100e9);
  }
  for (int i = 0; i < 14; ++i) {
    ports.emplace_back(testbed::PortKind::kDownlink, 100e9);
  }
  return testbed::ToRSwitch(std::move(ports));
}

}  // namespace

int main() {
  bench::banner("Ablation — exclusive mirrors vs the scheduling layer",
                "Section 6.3 limitation 1 (resource sharing)");

  const Workload workload = make_workload();
  const std::vector<testbed::PortId> destinations = {testbed::PortId{12},
                                                     testbed::PortId{13}};

  // --- Exclusive locking (the paper's current behaviour) ------------------
  // Each request grabs the port for its full duration or fails outright if
  // the source (or a destination) is busy when it arrives.
  std::size_t exclusive_served = 0;
  util::Nanos exclusive_time = 0;
  {
    testbed::ToRSwitch tor = make_switch();
    struct Hold {
      testbed::PortId source;
      util::Nanos until;
    };
    std::vector<Hold> holds;
    util::Nanos now = 0;
    for (const core::MirrorRequest& r : workload.requests) {
      now += 5 * util::kMinute;  // Requests arrive every 5 minutes.
      std::erase_if(holds, [&](const Hold& h) {
        if (h.until <= now) {
          tor.remove_mirror(h.source);
          return true;
        }
        return false;
      });
      // Find a free destination.
      std::optional<testbed::PortId> dest;
      for (testbed::PortId d : destinations) {
        if (!tor.port_is_mirror_member(d)) {
          dest = d;
          break;
        }
      }
      if (!dest) continue;  // No NIC free right now: request fails.
      if (!tor.add_mirror({r.source, r.directions, *dest})) continue;
      holds.push_back(Hold{r.source, now + r.duration});
      ++exclusive_served;
      exclusive_time += r.duration;
    }
  }

  // --- Scheduled sharing ---------------------------------------------------
  std::size_t scheduled_served = 0;
  util::Nanos scheduled_time = 0;
  std::map<std::string, util::Nanos> fairness;
  {
    testbed::ToRSwitch tor = make_switch();
    core::MirrorScheduler::Policy policy;
    policy.quantum = 10 * util::kMinute;
    core::MirrorScheduler scheduler(tor, destinations, policy);
    util::Nanos now = 0;
    std::vector<core::MirrorRequestId> ids;
    for (const core::MirrorRequest& r : workload.requests) {
      now += 5 * util::kMinute;
      scheduler.tick(now);
      ids.push_back(scheduler.submit(r));
    }
    // Drain the queue.
    for (int i = 0; i < 2000 && scheduler.pending_count() +
                                    scheduler.active().size() >
                                0;
         ++i) {
      now += util::kMinute;
      scheduler.tick(now);
    }
    for (core::MirrorRequestId id : ids) {
      if (scheduler.remaining(id) == 0) ++scheduled_served;
    }
    fairness = scheduler.service_time();
    for (const auto& [user, t] : fairness) scheduled_time += t;
  }

  util::TextTable table({"Scheme", "Requests served", "Capture time (min)"});
  table.add_row({"exclusive locks (paper today)",
                 std::to_string(exclusive_served) + "/" +
                     std::to_string(workload.requests.size()),
                 std::to_string(exclusive_time / util::kMinute)});
  table.add_row({"mirror scheduler (limitation 1 fixed)",
                 std::to_string(scheduled_served) + "/" +
                     std::to_string(workload.requests.size()),
                 std::to_string(scheduled_time / util::kMinute)});
  table.print(std::cout);

  std::cout << "\nPer-user capture time under the scheduler:\n";
  for (const auto& [user, t] : fairness) {
    std::cout << "  " << user << ": " << t / util::kMinute << " min\n";
  }
  std::cout
      << "\nExpected shape: exclusive locking bounces every request that "
         "arrives while its\nport or a NIC is held; the scheduler "
         "eventually serves all of them, splitting\nbusy ports into quanta "
         "and balancing capture time across users.\n";
  return 0;
}
