// Shared setup for the benchmark harnesses: a simulated FABRIC world and
// banner/rendering helpers so every bench prints the paper-style rows or
// series for its table/figure.
#pragma once

#include <iostream>
#include <string>

#include "core/environment.hpp"
#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/activity_model.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"

namespace patchwork::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "==========================================================\n";
}

/// Render a sparkline-style horizontal bar for console series plots.
inline std::string bar(double value, double max, int width = 50) {
  if (max <= 0.0) return "";
  int n = static_cast<int>(value / max * width + 0.5);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

/// The standard simulated FABRIC deployment used across benches.
struct BenchWorld {
  explicit BenchWorld(std::uint64_t seed = 20241207,
                      testbed::FederationSpec spec = testbed::FederationSpec())
      : rng(seed),
        fed(testbed::make_fabric_like_federation(rng, spec)),
        mflib(fed),
        traffic(fed, activity,
                traffic::make_site_profiles(rng, fed.site_count()),
                rng.fork()),
        env(clock, fed, mflib, traffic, rng) {}

  void warm_up_telemetry() { env.advance(11 * util::kMinute); }

  util::Rng rng;
  sim::Clock clock;
  testbed::ActivityModel activity;
  testbed::Federation fed;
  telemetry::MfLib mflib;
  traffic::TrafficEngine traffic;
  core::Environment env;
};

}  // namespace patchwork::bench
