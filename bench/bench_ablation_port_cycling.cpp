// Ablation — port-cycling heuristics (Section 6.2.2).
//
// Compares the default "busiest ports bias, 1/n other non-idle port"
// heuristic against the alternatives Patchwork supports: fixed ports,
// round-robin over all ports (idle included), and busiest-only (a custom
// heuristic). Metrics: traffic captured (coverage of bytes) and fairness
// (distinct non-idle ports visited) over the same cycle budget.
#include <iostream>
#include <set>

#include "bench_util.hpp"
#include "core/port_selector.hpp"
#include "util/table.hpp"

namespace {

using namespace patchwork;

struct Outcome {
  double traffic_share = 0.0;   ///< Fraction of site bytes captured.
  std::size_t distinct_ports = 0;
  std::size_t busy_ports_hit = 0;
};

Outcome evaluate(core::PortPolicy policy, bench::BenchWorld& world,
                 core::CustomHeuristic custom = nullptr) {
  core::SamplingPlan plan;
  plan.policy = policy;
  plan.busiest_bias_n = 4;
  util::Rng rng(31);

  const testbed::SiteId site{0};
  std::vector<testbed::PortId> fixed;
  if (policy == core::PortPolicy::kFixed) {
    fixed = {testbed::PortId{4}, testbed::PortId{5}};
  }
  core::PortSelector selector(plan, rng, fixed, std::move(custom));

  constexpr int kCycles = 40;
  double captured = 0.0, total = 0.0;
  std::set<std::uint32_t> visited;
  std::size_t busy_hits = 0;
  for (int c = 0; c < kCycles; ++c) {
    world.traffic.update_loads(static_cast<util::Nanos>(c) * util::kHour);
    // Candidate rates straight from ground truth (telemetry adds lag but
    // not bias; the ablation isolates the heuristic).
    std::vector<telemetry::PortRate> rates;
    const auto& tor = world.fed.site(site).tor();
    double cycle_total = 0.0;
    for (std::uint32_t p = 0; p < tor.port_count(); ++p) {
      telemetry::PortRate r;
      r.port = {site, testbed::PortId{p}};
      r.tx_bps = tor.port(testbed::PortId{p}).tx_rate_bps();
      r.rx_bps = tor.port(testbed::PortId{p}).rx_rate_bps();
      rates.push_back(r);
      cycle_total += r.total();
    }
    std::sort(rates.begin(), rates.end(), [](const auto& a, const auto& b) {
      return a.total() > b.total();
    });
    total += cycle_total;
    const auto chosen = selector.next(rates);
    if (!chosen) continue;
    visited.insert(chosen->value);
    const auto& port = tor.port(*chosen);
    captured += port.tx_rate_bps() + port.rx_rate_bps();
    if (port.tx_rate_bps() + port.rx_rate_bps() > 1e9) ++busy_hits;
  }
  Outcome out;
  out.traffic_share = total > 0 ? captured / total : 0.0;
  out.distinct_ports = visited.size();
  out.busy_ports_hit = busy_hits;
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation — port-cycling heuristics",
                "Section 6.2.2 (port cycling) design choice");

  bench::BenchWorld world;

  const auto busiest_only =
      [](const std::vector<telemetry::PortRate>& rates,
         std::uint32_t) -> std::optional<testbed::PortId> {
    if (rates.empty()) return std::nullopt;
    return rates.front().port.port;  // Always the busiest.
  };

  util::TextTable table({"Heuristic", "Traffic share", "Distinct ports",
                         "Busy-port cycles"});
  struct Entry {
    const char* name;
    Outcome outcome;
  };
  const Entry entries[] = {
      {"busiest-bias 1/n (default)",
       evaluate(core::PortPolicy::kBusiestBias, world)},
      {"fixed 2 ports", evaluate(core::PortPolicy::kFixed, world)},
      {"round-robin all ports",
       evaluate(core::PortPolicy::kRoundRobinAll, world)},
      {"busiest-only (custom)",
       evaluate(core::PortPolicy::kCustom, world, busiest_only)},
  };
  for (const Entry& e : entries) {
    table.add_row({e.name, util::fmt_percent(e.outcome.traffic_share, 1),
                   std::to_string(e.outcome.distinct_ports),
                   std::to_string(e.outcome.busy_ports_hit)});
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: busiest-only maximizes captured traffic but "
         "starves coverage;\nround-robin maximizes coverage but wastes "
         "cycles on idle ports; the paper's\nbusiest-bias heuristic sits "
         "between — high traffic share with broad coverage\n(the 'fair "
         "sampling across all non-idle ports' it was designed for).\n";
  return 0;
}
