// Scenario: NetflowCache eviction storm under flow churn.
//
// A bounded v5 flow cache metering a churning workload lives in a storm:
// every churn replacement introduces a fresh 5-tuple that must displace a
// resident flow (deterministic victim: oldest last-seen, smallest key on
// ties). This bench sweeps the event planner's churn knob, meters each
// rendered window through a capacity-bounded NetflowCache with periodic
// timeout sweeps, and attributes every eviction to its cause — the
// capacity/idle/active/flush split that tells an operator whether their
// cache is sized for the workload or thrashing. The storm is replayed
// twice and the export streams compared record-for-record: eviction order
// is part of the determinism contract, not an accident of map iteration.
//
// Build & run:  ./build/bench/bench_scenario_cache_storm
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "flowsched/event_gen.hpp"
#include "net/parser.hpp"
#include "telemetry/netflow.hpp"
#include "traffic/flowgen.hpp"
#include "traffic/workload.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace patchwork;

constexpr std::uint64_t kSeed = 1337;
constexpr std::size_t kCacheFlows = 64;

traffic::WindowParams window_params() {
  traffic::WindowParams params;
  params.duration = 20 * util::kSecond;
  params.target_bps = 1e9;
  params.max_frames = 20000;
  return params;
}

flowsched::FlowModelConfig flow_config(double churn_fpm) {
  flowsched::FlowModelConfig config;
  config.model = flowsched::FlowModel::kEvent;
  config.flows_per_second = 40.0;
  config.mean_flow_duration_s = 3.0;
  config.flow_keys = 32;
  config.churn_fpm = churn_fpm;
  return config;
}

struct StormResult {
  double ms = 0.0;  ///< Generation + metering wall time.
  std::size_t frames = 0;
  std::uint64_t capacity = 0;
  std::uint64_t idle = 0;
  std::uint64_t active = 0;
  std::uint64_t flush = 0;
  std::vector<telemetry::NetflowRecord> records;
};

/// Generate one window at `churn_fpm` and meter it through the bounded
/// cache, sweeping timeouts once per second of frame time.
StormResult run_storm(const traffic::SiteWorkloadProfile& profile,
                      double churn_fpm) {
  StormResult out;
  const auto t0 = std::chrono::steady_clock::now();
  util::Rng rng(kSeed);
  const traffic::WindowTraffic window = flowsched::generate_event_window(
      rng, profile, window_params(), flow_config(churn_fpm));
  out.frames = window.frames.size();

  telemetry::NetflowCache::Config cache_config;
  cache_config.max_flows = kCacheFlows;
  cache_config.idle_timeout = 2 * util::kSecond;
  cache_config.active_timeout = 10 * util::kSecond;
  telemetry::NetflowCache cache(cache_config);

  util::Nanos next_sweep = util::kSecond;
  for (const net::Frame& frame : window.frames) {
    while (frame.timestamp() >= next_sweep) {
      cache.sweep(next_sweep);
      next_sweep += util::kSecond;
    }
    cache.observe(net::parse_frame(frame), frame.timestamp());
  }
  cache.flush(window_params().duration);
  out.records = cache.drain();

  using Cause = telemetry::NetflowCache::EvictCause;
  out.capacity = cache.evictions(Cause::kCapacity);
  out.idle = cache.evictions(Cause::kIdle);
  out.active = cache.evictions(Cause::kActive);
  out.flush = cache.evictions(Cause::kFlush);
  const auto t1 = std::chrono::steady_clock::now();
  out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

bool records_identical(const std::vector<telemetry::NetflowRecord>& a,
                       const std::vector<telemetry::NetflowRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].src_addr != b[i].src_addr || a[i].dst_addr != b[i].dst_addr ||
        a[i].src_port != b[i].src_port || a[i].dst_port != b[i].dst_port ||
        a[i].protocol != b[i].protocol || a[i].packets != b[i].packets ||
        a[i].octets != b[i].octets || a[i].first_ms != b[i].first_ms ||
        a[i].last_ms != b[i].last_ms) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::banner("NetflowCache eviction storm under flow churn",
                "Section 4 NetFlow comparison point; bounded v5 cache");

  const unsigned hw = std::thread::hardware_concurrency();
  const traffic::SiteWorkloadProfile profile = [] {
    util::Rng rng(5);
    return traffic::make_site_profiles(rng, 1).front();
  }();

  std::cout << "cache: " << kCacheFlows
            << " flows, idle 2 s, active 10 s, sweep every 1 s\n\n";
  std::cout << "churn_fpm   frames   capacity   idle   active   flush   "
               "exported\n";

  util::set_thread_count(1);
  std::string churn_rows;
  StormResult storm;  // The hottest sweep point, reused for determinism.
  double serial_ms = 0.0;
  std::uint64_t quiet_capacity = 0, storm_capacity = 0;
  for (double churn_fpm : {0.0, 120.0, 600.0, 1200.0}) {
    const StormResult result = run_storm(profile, churn_fpm);
    std::cout << churn_fpm << "       " << result.frames << "    "
              << result.capacity << "       " << result.idle << "   "
              << result.active << "      " << result.flush << "      "
              << result.records.size() << "\n";
    if (!churn_rows.empty()) churn_rows += ",\n";
    churn_rows +=
        "    {\"churn_fpm\": " + std::to_string(churn_fpm) +
        ", \"frames\": " + std::to_string(result.frames) +
        ", \"capacity\": " + std::to_string(result.capacity) +
        ", \"idle\": " + std::to_string(result.idle) +
        ", \"active\": " + std::to_string(result.active) +
        ", \"flush\": " + std::to_string(result.flush) +
        ", \"exported\": " + std::to_string(result.records.size()) + "}";
    if (churn_fpm == 0.0) quiet_capacity = result.capacity;
    if (churn_fpm == 1200.0) {
      storm_capacity = result.capacity;
      storm = result;
      serial_ms = result.ms;
    }
  }
  util::set_thread_count(std::nullopt);

  // The determinism contract, under the worker sweep: the storm's export
  // stream — including every capacity-eviction victim choice — must replay
  // record-for-record under any thread-count setting.
  bool all_identical = true;
  std::string rows;
  double best_speedup = 0.0, speedup_at_4 = 0.0;
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const StormResult again = run_storm(profile, 1200.0);
    util::set_thread_count(std::nullopt);
    const bool identical = records_identical(storm.records, again.records) &&
                           again.capacity == storm.capacity &&
                           again.idle == storm.idle &&
                           again.active == storm.active &&
                           again.flush == storm.flush;
    all_identical = all_identical && identical;
    const double speedup = again.ms > 0.0 ? serial_ms / again.ms : 0.0;
    if (threads == 4) speedup_at_4 = speedup;
    best_speedup = std::max(best_speedup, speedup);
    std::cout << "workers=" << threads << ": replay " << again.ms
              << " ms, export stream "
              << (identical ? "identical" : "DIFFERS") << "\n";
    if (!rows.empty()) rows += ",\n";
    rows += "    {\"workers\": " + std::to_string(threads) +
            ", \"ms\": " + std::to_string(again.ms) +
            ", \"speedup\": " + std::to_string(speedup) +
            ", \"identical\": " + (identical ? "true" : "false") + "}";
  }

  const bool churn_drives_evictions = storm_capacity > quiet_capacity;
  std::cout << "\n"
            << (all_identical
                    ? "PASS: eviction storm replays record-for-record\n"
                    : "FAIL: export stream diverged across replays\n")
            << (churn_drives_evictions ? "PASS" : "FAIL")
            << ": capacity evictions rise with churn (" << quiet_capacity
            << " at 0 fpm -> " << storm_capacity << " at 1200 fpm)\n";

  std::cout << "\nJSON:\n"
            << "{\n"
            << "  \"bench\": \"scenario_cache_storm\",\n"
            << "  \"note\": \"Metering is serial by nature; the worker sweep "
               "checks the export stream replays identically.\",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"serial_ms\": " << serial_ms << ",\n"
            << "  \"cache_flows\": " << kCacheFlows << ",\n"
            << "  \"churn_sweep\": [\n" << churn_rows << "\n  ],\n"
            << "  \"runs\": [\n" << rows << "\n  ],\n"
            << "  \"best_speedup\": " << best_speedup << ",\n"
            << "  \"speedup_at_4\": " << speedup_at_4 << ",\n"
            << "  \"speedup_judged\": false,\n"
            << "  \"outputs_identical\": "
            << (all_identical ? "true" : "false") << "\n}\n";
  return all_identical && churn_drives_evictions ? 0 : 1;
}
