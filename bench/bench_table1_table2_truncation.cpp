// Tables 1 and 2: frame size vs (rate, cores, loss) at 60:80 writeback
// thresholds, Rx queue depth 4096, for 200 B and 64 B truncation.
//
//   Table 1 (200 B): 1514 B 100G/5 cores 0.67%; 1024 B 100G/10 0.13%;
//                    512 B 60G/15 0.03%; 128 B 15G/15 0.1%.
//   Table 2 (64 B):  1514 B 100G/3 0.17%; 1024 B 100G/5 0.32%;
//                    512 B 100G/15 0.07%; 128 B 28G/15 0.13%.
//
// Shape to reproduce: every row sustains its rate with sub-1% loss at the
// listed core count; 64 B truncation needs fewer cores than 200 B for the
// same stream; one core fewer than listed pushes loss well above 1%.
#include <iostream>

#include "bench_util.hpp"
#include "capture/perf_model.hpp"
#include "util/table.hpp"

namespace {

using namespace patchwork;

struct Row {
  std::size_t frame_size;
  double rate_gbps;
  std::uint32_t cores;
  double paper_loss;
};

double measure_loss(const Row& row, std::uint32_t truncation,
                    std::uint32_t cores) {
  host::HostSpec spec;
  spec.page_cache.dirty_background_ratio = 0.60;  // The tables' 60:80.
  spec.page_cache.dirty_ratio = 0.80;
  capture::DpdkRunParams params;
  params.offered_bps = row.rate_gbps * 1e9;
  params.frame_size = row.frame_size;
  params.truncation = truncation;
  params.cores = cores;
  params.rx_queue_depth = 4096;
  params.duration = 3 * util::kSecond;
  util::Rng rng(99);
  return capture::simulate_dpdk_writer(spec, params, rng).loss_fraction();
}

void print_table(const char* title, std::uint32_t truncation,
                 const Row* rows, std::size_t n) {
  std::cout << title << "\n";
  util::TextTable table({"Frame Size (B)", "Rate (Gbps)", "Cores",
                         "Loss (%)", "Paper (%)", "Loss w/ cores-1 (%)"});
  for (std::size_t i = 0; i < n; ++i) {
    const Row& row = rows[i];
    const double loss = measure_loss(row, truncation, row.cores);
    const double loss_minus_one =
        row.cores > 1 ? measure_loss(row, truncation, row.cores - 1) : 1.0;
    table.add_row({std::to_string(row.frame_size),
                   util::fmt_double(row.rate_gbps, 0),
                   std::to_string(row.cores),
                   util::fmt_double(loss * 100.0, 2),
                   util::fmt_double(row.paper_loss, 2),
                   util::fmt_double(loss_minus_one * 100.0, 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::banner("Tables 1 & 2 — DPDK capture: truncation/core scaling",
                "Tables 1-2, Section 8.1.4 (scaling packet capture)");

  const Row table1[] = {{1514, 100, 5, 0.67},
                        {1024, 100, 10, 0.13},
                        {512, 60, 15, 0.03},
                        {128, 15, 15, 0.1}};
  const Row table2[] = {{1514, 100, 3, 0.17},
                        {1024, 100, 5, 0.32},
                        {512, 100, 15, 0.07},
                        {128, 28, 15, 0.13}};
  print_table("Table 1: 200B truncation, 60:80 threshold", 200, table1, 4);
  print_table("Table 2: 64B truncation, 60:80 threshold", 64, table2, 4);

  std::cout << "Shape checks (paper Section 8.1.4):\n"
            << "  * every listed configuration holds loss < 1%\n"
            << "  * 64 B truncation sustains 100 Gbps of 1514 B frames on "
               "3 cores where 200 B needs 5\n"
            << "  * dropping one core pushes loss well above the table's "
               "values\n";
  return 0;
}
