// Draw-plane microbenchmark: scalar counter addressing (RngBlock::at)
// against the vectorized bulk kernels (philox_bulk and the RngBlock fills),
// per compiled-and-supported ISA tier.
//
// Synthesis is the online path's dominant serial stage, and every one of
// its random values is a counter-addressed Philox draw — so draws/sec here
// bounds how fast the data plane can ever render. The JSON summary is
// recorded as BENCH_rng.json; the "bulk_speedup_best_tier" figure is the
// bar the SIMD work has to clear (>= 2.5x over per-draw scalar calls).
//
// Build & run:  ./build/bench/bench_rng
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "util/philox_simd.hpp"
#include "util/rng.hpp"

namespace {

using namespace patchwork;

constexpr std::size_t kDraws = 1u << 22;  ///< Draws per timed rep.
constexpr std::size_t kBuffer = 1u << 18; ///< Fill buffer (reused per rep).
constexpr int kReps = 5;                  ///< Best-of-n wall times.

volatile std::uint64_t g_sink;  ///< Defeats dead-code elimination.

/// Best-of-kReps wall time of fn(), in seconds.
template <typename Fn>
double best_seconds(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

double draws_per_sec(double seconds) {
  return seconds > 0.0 ? static_cast<double>(kDraws) / seconds : 0.0;
}

struct TierRates {
  std::string tier;
  double raw_bulk = 0.0;      ///< philox_bulk via RngBlock::raw_fill.
  double uniform01_fill = 0.0;
  double bounded_fill = 0.0;
  double chance_fill = 0.0;
};

void print_rate(const char* label, double dps) {
  std::cout << "  " << label << ": " << dps / 1e6 << " Mdraws/s\n";
}

}  // namespace

int main() {
  bench::banner("RNG draw-plane microbenchmark",
                "synthesis stage cost model (Section 6.2.2 data plane)");

  const util::Rng stream(0xb0a710adull);
  const util::RngBlock block(stream);

  // Scalar baseline: one virtual-free but lane-less at() call per draw —
  // exactly what the render loop did before the bulk APIs.
  const double scalar_s = best_seconds([&] {
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j < kDraws; ++j) acc ^= block.at(j);
    g_sink = acc;
  });
  const double scalar_dps = draws_per_sec(scalar_s);
  std::cout << "\nscalar at(j) baseline:\n";
  print_rate("at", scalar_dps);

  std::vector<std::uint64_t> raw(kBuffer);
  std::vector<double> reals(kBuffer);
  std::vector<std::uint8_t> bits(kBuffer);
  std::vector<TierRates> tiers;
  for (util::SimdTier tier :
       {util::SimdTier::kScalar, util::SimdTier::kSse4,
        util::SimdTier::kAvx2}) {
    if (!util::simd_tier_supported(tier)) continue;
    util::set_simd_tier(tier);
    TierRates rates;
    rates.tier = std::string(util::to_string(tier));
    rates.raw_bulk = draws_per_sec(best_seconds([&] {
      std::uint64_t acc = 0;
      for (std::size_t j = 0; j < kDraws; j += kBuffer) {
        block.raw_fill(j, raw);
        acc ^= raw[0] ^ raw[kBuffer - 1];
      }
      g_sink = acc;
    }));
    rates.uniform01_fill = draws_per_sec(best_seconds([&] {
      for (std::size_t j = 0; j < kDraws; j += kBuffer) {
        block.uniform01_fill(j, reals);
      }
      g_sink = static_cast<std::uint64_t>(reals[0] * 1e9);
    }));
    rates.bounded_fill = draws_per_sec(best_seconds([&] {
      for (std::size_t j = 0; j < kDraws; j += kBuffer) {
        block.bounded_fill(j, 0, 19999999999ull, raw);
      }
      g_sink = raw[0];
    }));
    rates.chance_fill = draws_per_sec(best_seconds([&] {
      for (std::size_t j = 0; j < kDraws; j += kBuffer) {
        block.chance_fill(j, 0.3, bits);
      }
      g_sink = bits[0];
    }));
    std::cout << "\ntier " << rates.tier << ":\n";
    print_rate("philox_bulk", rates.raw_bulk);
    print_rate("uniform01_fill", rates.uniform01_fill);
    print_rate("bounded_fill", rates.bounded_fill);
    print_rate("chance_fill", rates.chance_fill);
    tiers.push_back(std::move(rates));
  }
  util::reset_simd_tier();

  const TierRates& best = tiers.back();  // Tiers iterate narrow -> wide.
  const double speedup = scalar_dps > 0.0 ? best.raw_bulk / scalar_dps : 0.0;
  const bool ok = speedup >= 2.5;
  std::cout << "\nbulk speedup on best tier (" << best.tier
            << "): " << speedup << "x (bar: 2.5x) -> "
            << (ok ? "OK" : "BELOW BAR") << "\n";

  std::cout << "\nJSON:\n{\n"
            << "  \"bench\": \"rng\",\n"
            << "  \"draws_per_rep\": " << kDraws << ",\n"
            << "  \"reps\": " << kReps << ",\n"
            << "  \"scalar_at_draws_per_sec\": " << scalar_dps << ",\n"
            << "  \"tiers\": [\n";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const TierRates& t = tiers[i];
    std::cout << "    {\"tier\": \"" << t.tier << "\", "
              << "\"philox_bulk_draws_per_sec\": " << t.raw_bulk << ", "
              << "\"uniform01_fill_draws_per_sec\": " << t.uniform01_fill
              << ", "
              << "\"bounded_fill_draws_per_sec\": " << t.bounded_fill << ", "
              << "\"chance_fill_draws_per_sec\": " << t.chance_fill << "}"
              << (i + 1 < tiers.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n"
            << "  \"best_tier\": \"" << best.tier << "\",\n"
            << "  \"bulk_speedup_best_tier\": " << speedup << ",\n"
            << "  \"bulk_speedup_bar\": 2.5,\n"
            << "  \"bulk_speedup_ok\": " << (ok ? "true" : "false") << "\n"
            << "}\n";
  return 0;
}
