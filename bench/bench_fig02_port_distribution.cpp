// Figure 2: "Distribution of ports across all production FABRIC sites.
// Downlinked ports are connected to FABRIC servers at the same site.
// Uplinked ports are connected to other FABRIC sites' switches."
//
// Shape to reproduce: every site has many more downlinks than uplinks, and
// uplink counts are similar across sites.
#include <iostream>

#include "bench_util.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Figure 2 — Port distribution across production sites",
                "Fig. 2, Section 5 (uplink distribution on FABRIC)");

  bench::BenchWorld world;
  const auto inventory = testbed::port_inventory(world.fed);

  util::TextTable table({"Site", "Uplinks", "Downlinks", "Downlink bar"});
  util::RunningStats up, down;
  for (const auto& row : inventory) {
    if (world.fed.site(row.site).teaching_only()) continue;
    up.add(static_cast<double>(row.uplinks));
    down.add(static_cast<double>(row.downlinks));
  }
  for (const auto& row : inventory) {
    if (world.fed.site(row.site).teaching_only()) continue;
    table.add_row({row.name, std::to_string(row.uplinks),
                   std::to_string(row.downlinks),
                   bench::bar(static_cast<double>(row.downlinks), down.max(),
                              40)});
  }
  table.print(std::cout);

  std::cout << "\nSummary (paper: all sites have many more downlinks than "
               "uplinks;\nmost sites have a similar number of uplinks):\n"
            << "  uplinks:   mean " << util::fmt_double(up.mean(), 2)
            << "  min " << up.min() << "  max " << up.max() << "\n"
            << "  downlinks: mean " << util::fmt_double(down.mean(), 2)
            << "  min " << down.min() << "  max " << down.max() << "\n"
            << "  downlink/uplink ratio of means: "
            << util::fmt_double(down.mean() / up.mean(), 1) << "x\n";
  return 0;
}
