// Figure 4: "Duration of slices on FABRIC. 75% of slices last for 24
// hours."
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "testbed/slice_model.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Figure 4 — Slice duration CDF",
                "Fig. 4, Section 5 (slice lifetimes)");

  util::Rng rng(11);
  testbed::ActivityModel activity;
  testbed::SliceActivityModel model(rng, activity);

  constexpr int kSlices = 100000;
  std::vector<double> hours;
  hours.reserve(kSlices);
  for (int i = 0; i < kSlices; ++i) {
    hours.push_back(util::to_seconds(model.draw_duration()) / 3600.0);
  }
  std::sort(hours.begin(), hours.end());

  util::TextTable table({"Duration <=", "CDF", "Bar"});
  for (double h : {1.0, 4.0, 8.0, 12.0, 24.0, 48.0, 24.0 * 7, 24.0 * 30,
                   24.0 * 90}) {
    const double cdf = util::ecdf_at(hours, h);
    std::string label = h < 24.0 ? util::fmt_double(h, 0) + " h"
                                 : util::fmt_double(h / 24.0, 0) + " d";
    table.add_row({label, util::fmt_percent(cdf, 2),
                   bench::bar(cdf, 1.0, 40)});
  }
  table.print(std::cout);
  std::cout << "\nPaper: 75% of slices last <= 24 hours; measured: "
            << util::fmt_percent(util::ecdf_at(hours, 24.0), 2) << "\n"
            << "Tail: p99 = " << util::fmt_double(
                   util::percentile(hours, 99.0) / 24.0, 1)
            << " days, max = "
            << util::fmt_double(hours.back() / 24.0, 1) << " days\n";
  return 0;
}
