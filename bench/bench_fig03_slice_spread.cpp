// Figure 3: "FABRIC slices tend to use resources that are spread across
// few FABRIC sites. 66.5% of all FABRIC slices use a single site."
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "testbed/slice_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace patchwork;
  bench::banner("Figure 3 — Sites per slice (CDF)",
                "Fig. 3, Section 5 (slice activity on FABRIC)");

  util::Rng rng(7);
  testbed::ActivityModel activity;
  testbed::SliceActivityModel model(rng, activity);

  constexpr int kSlices = 200000;
  std::map<std::uint32_t, std::uint64_t> counts;
  for (int i = 0; i < kSlices; ++i) ++counts[model.draw_site_count()];

  util::TextTable table({"Sites used", "Fraction", "CDF", "Bar"});
  double cdf = 0.0;
  for (const auto& [sites, n] : counts) {
    const double frac = static_cast<double>(n) / kSlices;
    cdf += frac;
    table.add_row({std::to_string(sites), util::fmt_percent(frac, 2),
                   util::fmt_percent(cdf, 2), bench::bar(frac, 1.0, 40)});
  }
  table.print(std::cout);
  std::cout << "\nPaper: 66.5% of slices use a single site; measured: "
            << util::fmt_percent(
                   static_cast<double>(counts[1]) / kSlices, 2)
            << "\n";
  return 0;
}
