// Ablation: event-driven flow planner vs. the static mix model, through
// the full coordinator data plane.
//
// The event planner (src/flowsched) simulates each sample window — flow
// arrivals, heavy-tailed durations, Zipf key reuse, churn — on the window's
// plan substream, then hands the coordinator an ordinary WindowPlan whose
// units carry per-flow active intervals. This bench answers two questions:
//
//   1. What does the event simulation cost relative to the mix model's
//      one-shot population draw? The new "render/plan" OBS_SPAN stage
//      separates planning from synthesis, so the breakdown attributes the
//      priority-queue walk directly.
//   2. Does the event model keep the parallel contract? Every worker sweep
//      cross-checks the ProfileRun byte-for-byte against the serial
//      reference — the planner runs on the plan substream and rendering is
//      counter-addressed, so nothing the scheduler does can reach the
//      bytes.
//
// Prints a JSON summary suitable for recording as BENCH_flow_churn.json.
// On hosts with fewer than 4 hardware threads the speedup is reported but
// not judged.
//
// Build & run:  ./build/bench/bench_ablation_flow_churn
#include <chrono>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>

#include "bench_util.hpp"
#include "core/coordinator.hpp"
#include "flowsched/event_gen.hpp"
#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace {

using namespace patchwork;

constexpr int kSites = 8;
constexpr int kReps = 3;
constexpr std::uint64_t kSeed = 77;

core::ProfilerConfig base_config() {
  core::ProfilerConfig config;
  config.plan.cycles = 2;
  config.plan.samples_per_run = 3;
  config.plan.runs_per_cycle = 2;
  config.plan.max_frames_per_sample = 2000;
  config.crash_probability = 0.0;
  config.desired_instances = 1;
  config.compress_transfers = true;
  return config;
}

core::ProfilerConfig event_config() {
  core::ProfilerConfig config = base_config();
  config.flow_model.model = flowsched::FlowModel::kEvent;
  config.flow_model.flows_per_second = 30.0;
  config.flow_model.mean_flow_duration_s = 4.0;
  config.flow_model.flow_keys = 64;
  config.flow_model.churn_fpm = 120.0;  // A key redraw every 500 ms.
  return config;
}

testbed::FederationSpec spec() {
  testbed::FederationSpec out;
  out.sites = kSites;
  return out;
}

struct RunResult {
  double ms = 0.0;
  core::ProfileRun run;
};

/// Best-of-kReps wall time for one full all-experiment profile.
RunResult time_run(const core::ProfilerConfig& config) {
  RunResult result;
  for (int rep = 0; rep < kReps; ++rep) {
    bench::BenchWorld world(kSeed, spec());
    world.warm_up_telemetry();
    core::Coordinator coordinator(world.env, config);
    const auto t0 = std::chrono::steady_clock::now();
    core::ProfileRun run = coordinator.run_all_experiment();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < result.ms) result.ms = ms;
    if (rep == 0) result.run = std::move(run);
  }
  return result;
}

bool runs_identical(const core::ProfileRun& a, const core::ProfileRun& b) {
  if (a.reports.size() != b.reports.size()) return false;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    if (a.reports[i].outcome != b.reports[i].outcome) return false;
    if (a.reports[i].samples != b.reports[i].samples) return false;
    if (a.reports[i].pcap_bytes != b.reports[i].pcap_bytes) return false;
    if (a.reports[i].transferred_bytes != b.reports[i].transferred_bytes) {
      return false;
    }
  }
  if (a.captures.size() != b.captures.size()) return false;
  for (std::size_t i = 0; i < a.captures.size(); ++i) {
    if (a.captures[i].pcap != b.captures[i].pcap) return false;
  }
  return true;
}

struct ScenarioResult {
  double serial_ms = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t pcap_bytes = 0;
  std::string rows;  ///< JSON rows, one per worker count.
  bool all_identical = true;
  double speedup_at_4 = 0.0;
  double best_speedup = 0.0;
};

/// Serial reference + the 2/4/8-worker sweep for one planner model.
ScenarioResult sweep(const std::string& name,
                     const core::ProfilerConfig& config) {
  ScenarioResult out;
  std::cout << "\n[" << name << "]\n";

  util::set_thread_count(1);
  const RunResult serial = time_run(config);
  out.serial_ms = serial.ms;
  for (const core::SiteRunReport& r : serial.run.reports) {
    out.pcap_bytes += r.pcap_bytes;
    out.samples += r.samples;
  }
  std::cout << "workers=1:  " << serial.ms << " ms  (" << out.samples
            << " samples, " << out.pcap_bytes << " pcap bytes)\n";

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const RunResult parallel = time_run(config);
    const bool identical = runs_identical(serial.run, parallel.run);
    out.all_identical = out.all_identical && identical;
    const double speedup = serial.ms / parallel.ms;
    if (threads == 4) out.speedup_at_4 = speedup;
    if (speedup > out.best_speedup) out.best_speedup = speedup;
    std::cout << "workers=" << threads << ":  " << parallel.ms
              << " ms  (speedup " << speedup << "x, output "
              << (identical ? "identical" : "DIFFERS") << ")\n";
    if (!out.rows.empty()) out.rows += ",\n";
    out.rows += "    {\"workers\": " + std::to_string(threads) +
                ", \"ms\": " + std::to_string(parallel.ms) +
                ", \"speedup\": " + std::to_string(speedup) +
                ", \"identical\": " + (identical ? "true" : "false") + "}";
  }
  util::set_thread_count(std::nullopt);
  return out;
}

/// Wall-ms total of one OBS_SPAN stage since the last registry reset.
double stage_ms(std::string_view stage) {
  return static_cast<double>(
             obs::registry()
                 .histogram("patchwork_stage_wall_ns",
                            "Wall-clock stage duration (ns)",
                            {{"stage", std::string(stage)}},
                            obs::Determinism::kWallClock)
                 .sum()) /
         1e6;
}

/// Plan-vs-render attribution for one planner model: a fresh serial run
/// against a clean registry, then the OBS_SPAN wall histograms sliced by
/// stage. "render/plan" is the window planner (the event simulation or the
/// mix model's population draw); "render/synthesis" is batched frame
/// building.
struct StageBreakdown {
  double plan_ms = 0.0;
  double synthesis_ms = 0.0;
  double capture_ms = 0.0;
  double compress_ms = 0.0;
};

StageBreakdown measure_stages(const core::ProfilerConfig& config) {
  obs::registry().reset();
  util::set_thread_count(1);
  bench::BenchWorld world(kSeed, spec());
  world.warm_up_telemetry();
  core::Coordinator coordinator(world.env, config);
  (void)coordinator.run_all_experiment();
  util::set_thread_count(std::nullopt);

  StageBreakdown out;
  out.plan_ms = stage_ms("render/plan");
  out.synthesis_ms = stage_ms("render/synthesis");
  out.capture_ms = stage_ms("render/capture");
  out.compress_ms = stage_ms("render/compress");
  return out;
}

}  // namespace

int main() {
  bench::banner("Event-driven flow planner vs. static mix model",
                "Section 6.2.2 sampling phase with flow-level workloads");

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "profile: " << kSites << " sites; host reports " << hw
            << " hardware thread(s)\n";

  const ScenarioResult event_result =
      sweep("event: Poisson arrivals, Pareto durations, churn 120 fpm",
            event_config());
  const ScenarioResult mix_result =
      sweep("mix: static per-window population", base_config());

  const StageBreakdown event_stages = measure_stages(event_config());
  const StageBreakdown mix_stages = measure_stages(base_config());
  std::cout << "\nstage breakdown (serial):\n"
            << "  event: plan " << event_stages.plan_ms << " ms, synthesis "
            << event_stages.synthesis_ms << " ms, capture "
            << event_stages.capture_ms << " ms, compress "
            << event_stages.compress_ms << " ms\n"
            << "  mix:   plan " << mix_stages.plan_ms << " ms, synthesis "
            << mix_stages.synthesis_ms << " ms, capture "
            << mix_stages.capture_ms << " ms, compress "
            << mix_stages.compress_ms << " ms\n";
  const double event_data_plane =
      event_stages.plan_ms + event_stages.synthesis_ms;
  const double plan_fraction =
      event_data_plane > 0.0 ? event_stages.plan_ms / event_data_plane : 0.0;
  std::cout << "  event planning is " << plan_fraction * 100.0
            << "% of plan+synthesis\n";

  const bool judged = hw >= 4;
  const bool all_identical =
      event_result.all_identical && mix_result.all_identical;
  const bool speedup_ok = !judged || event_result.speedup_at_4 >= 2.0;
  std::cout << "\n"
            << (all_identical ? "PASS: all outputs byte-identical\n"
                              : "FAIL: parallel output diverged\n");
  if (judged) {
    std::cout << (speedup_ok ? "PASS" : "FAIL")
              << ": event-model speedup at 4 workers = "
              << event_result.speedup_at_4 << "x (bar: 2.0x)\n";
  } else {
    std::cout << "SKIP: speedup bar not judged (" << hw
              << " hardware thread(s) < 4)\n";
  }

  const std::string note =
      judged ? "Recorded with 4+ hardware threads; speedups are meaningful."
             : "Recorded on a <4-hardware-thread host: ratios measure "
               "scheduling overhead only. Re-record on real hardware with "
               "./build/bench/bench_ablation_flow_churn.";
  std::cout << "\nJSON:\n"
            << "{\n"
            << "  \"bench\": \"flow_churn\",\n"
            << "  \"note\": \"" << note << "\",\n"
            << "  \"sites\": " << kSites << ",\n"
            << "  \"samples\": " << event_result.samples << ",\n"
            << "  \"pcap_bytes\": " << event_result.pcap_bytes << ",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"serial_ms\": " << event_result.serial_ms << ",\n"
            << "  \"stages_serial_ms\": {\n"
            << "    \"plan\": " << event_stages.plan_ms << ",\n"
            << "    \"synthesis\": " << event_stages.synthesis_ms << ",\n"
            << "    \"capture\": " << event_stages.capture_ms << ",\n"
            << "    \"compress\": " << event_stages.compress_ms << "\n  },\n"
            << "  \"plan_fraction_of_data_plane\": " << plan_fraction << ",\n"
            << "  \"runs\": [\n"
            << event_result.rows << "\n  ],\n"
            << "  \"mix\": {\n"
            << "    \"serial_ms\": " << mix_result.serial_ms << ",\n"
            << "    \"plan_ms\": " << mix_stages.plan_ms << ",\n"
            << "    \"synthesis_ms\": " << mix_stages.synthesis_ms << ",\n"
            << "    \"runs\": [\n"
            << mix_result.rows << "\n    ]\n"
            << "  },\n"
            << "  \"best_speedup\": " << event_result.best_speedup << ",\n"
            << "  \"speedup_at_4\": " << event_result.speedup_at_4 << ",\n"
            << "  \"speedup_judged\": " << (judged ? "true" : "false") << ",\n"
            << "  \"outputs_identical\": " << (all_identical ? "true" : "false")
            << "\n}\n";
  return all_identical && speedup_ok ? 0 : 1;
}
