// Figure 10: "Behavior of Patchwork on FABRIC over an ordinary 4-month
// period in 2024." Patchwork succeeded in profiling all FABRIC sites in
// 79% of cases; ~20% of cases lacked resources ("Failed": transient
// back-end problems or no dedicated NICs), "Degraded" runs scaled down
// through back-off, and "Incomplete" runs crashed.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/coordinator.hpp"
#include "util/table.hpp"

namespace {

using namespace patchwork;

core::ProfilerConfig run_config(double backend_failure_rate) {
  core::ProfilerConfig config;
  config.plan.cycles = 1;
  config.plan.samples_per_run = 1;
  config.plan.max_frames_per_sample = 60;  // Outcome bench: tiny captures.
  config.desired_instances = 2;            // Back-off visible when scarce.
  config.max_backoffs = 3;
  config.crash_probability = 0.012;  // The since-fixed Patchwork bug.
  config.capture.method = capture::CaptureMethod::kFpgaDpdk;
  config.capture.cores = 5;
  config.allocator.backend_failure_rate = backend_failure_rate;
  return config;
}

}  // namespace

int main() {
  bench::banner("Figure 10 — Patchwork run outcomes over a 4-month period",
                "Fig. 10, Section 8.1.1 (behavior on the federation)");

  bench::BenchWorld world;
  world.warm_up_telemetry();

  constexpr int kRuns = 17;  // Weekly over ~4 months.
  std::size_t success = 0, degraded = 0, failed = 0, incomplete = 0,
              total = 0;

  util::TextTable table(
      {"Run", "Success", "Degraded", "Failed", "Incomplete", "Note"});
  for (int run_index = 0; run_index < kRuns; ++run_index) {
    // Background researcher load: other slices grab dedicated NICs before
    // Patchwork arrives. ~12% of sites lose all dedicated NICs; another
    // ~12% keep only one (forcing back-off from the 2-instance request).
    struct Held {
      testbed::SiteId site;
      std::vector<testbed::NicId> nics;
    };
    std::vector<Held> held;
    for (testbed::SiteId id : world.fed.site_ids()) {
      testbed::Site& site = world.fed.site(id);
      auto nics = site.available_nics(testbed::NicKind::kDedicatedConnectX);
      if (nics.empty()) continue;
      const double roll = world.rng.uniform();
      std::size_t grab = 0;
      if (roll < 0.12) {
        grab = nics.size();  // Site exhausted.
      } else if (roll < 0.24) {
        grab = nics.size() - 1;  // One NIC left: degraded run.
      }
      Held h{id, {}};
      for (std::size_t i = 0; i < grab; ++i) {
        site.mutable_nic(nics[i]).allocated_to = testbed::SliceId{100000};
        h.nics.push_back(nics[i]);
      }
      if (!h.nics.empty()) held.push_back(std::move(h));
    }

    // Two runs land on the paper's bad-backend days (e.g. 10-11 Sept):
    // most allocations bounce off transient back-end errors.
    const bool backend_episode = run_index == 9 || run_index == 10;
    core::Coordinator coordinator(
        world.env, run_config(backend_episode ? 0.55 : 0.02));
    const core::ProfileRun run = coordinator.run_all_experiment();

    std::size_t s = run.outcome_count(core::RunOutcome::kSuccess);
    std::size_t d = run.outcome_count(core::RunOutcome::kDegraded);
    std::size_t f = run.outcome_count(core::RunOutcome::kFailed);
    std::size_t i = run.outcome_count(core::RunOutcome::kIncomplete);
    success += s;
    degraded += d;
    failed += f;
    incomplete += i;
    total += run.reports.size();
    table.add_row({std::to_string(run_index), std::to_string(s),
                   std::to_string(d), std::to_string(f), std::to_string(i),
                   backend_episode ? "backend episode" : ""});

    // Release the background slices.
    for (const auto& h : held) {
      for (testbed::NicId nic : h.nics) {
        world.fed.site(h.site).mutable_nic(nic).allocated_to.reset();
      }
    }
    world.env.advance(util::kHour);
  }
  table.print(std::cout);

  const double denom = static_cast<double>(total);
  std::cout << "\nAggregate over " << kRuns << " runs x "
            << total / static_cast<std::size_t>(kRuns) << " sites:\n"
            << "  Success:    " << util::fmt_percent(success / denom, 1)
            << "\n"
            << "  Degraded:   " << util::fmt_percent(degraded / denom, 1)
            << "\n"
            << "  Failed:     " << util::fmt_percent(failed / denom, 1)
            << "\n"
            << "  Incomplete: " << util::fmt_percent(incomplete / denom, 1)
            << "\n"
            << "Paper: succeeded in ~79% of cases; ~20% lacked resources "
               "or hit transient backend errors; the rest crashed.\n";
  return 0;
}
