// Micro-benchmark (google-benchmark): pcap serialization throughput — the
// hot loop of the DPDK writer (one record append per captured frame).
#include <benchmark/benchmark.h>

#include "capture/anonymize.hpp"
#include "capture/filter.hpp"
#include "net/frame_builder.hpp"
#include "pcap/pcap.hpp"

namespace {

using namespace patchwork;

net::Frame data_frame(std::size_t size) {
  return net::FrameBuilder()
      .ethernet(net::MacAddress::from_id(1), net::MacAddress::from_id(2))
      .vlan(100)
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .tcp(50000, 5201)
      .payload(4)
      .pad_to(size)
      .build();
}

void BM_PcapWrite(benchmark::State& state) {
  const net::Frame frame = data_frame(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pcap::PcapWriter writer(200);
    for (int i = 0; i < 128; ++i) writer.write(frame);  // One writev batch.
    benchmark::DoNotOptimize(writer.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * 128);
  state.SetBytesProcessed(state.iterations() * 128 *
                          static_cast<std::int64_t>(
                              std::min<std::size_t>(frame.wire_length(), 200) +
                              pcap::kRecordHeaderSize));
}
BENCHMARK(BM_PcapWrite)->Arg(128)->Arg(1514)->Arg(9000);

void BM_PcapRoundTrip(benchmark::State& state) {
  pcap::PcapWriter writer(200);
  const net::Frame frame = data_frame(1514);
  for (int i = 0; i < 1000; ++i) writer.write(frame);
  const std::vector<std::uint8_t> bytes = writer.take_buffer();
  for (auto _ : state) {
    auto reader = pcap::PcapReader::open(bytes);
    std::size_t n = 0;
    while (reader->next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PcapRoundTrip);

// Same stream, but iterated through the non-owning FrameView path the
// digest hot loop uses — no per-record byte copies.
void BM_PcapRoundTripView(benchmark::State& state) {
  pcap::PcapWriter writer(200);
  const net::Frame frame = data_frame(1514);
  for (int i = 0; i < 1000; ++i) writer.write(frame);
  const std::vector<std::uint8_t> bytes = writer.take_buffer();
  for (auto _ : state) {
    auto reader = pcap::PcapReader::open(bytes);
    std::size_t n = 0;
    while (reader->next_view()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PcapRoundTripView);

void BM_FilterMatch(benchmark::State& state) {
  const auto filter = std::get<capture::Filter>(
      capture::Filter::compile("ip and tcp and not port 22 and greater 64"));
  const net::ParsedFrame parsed = net::parse_frame(data_frame(1514));
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.matches(parsed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterMatch);

void BM_AnonymizeScrub(benchmark::State& state) {
  const capture::Anonymizer anon(0xfeed);
  const net::Frame frame = data_frame(200);
  const net::ParsedFrame parsed = net::parse_frame(frame);
  std::vector<std::uint8_t> bytes(frame.bytes().begin(), frame.bytes().end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(anon.scrub(bytes, parsed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnonymizeScrub);

}  // namespace

BENCHMARK_MAIN();
