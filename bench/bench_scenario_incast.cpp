// Scenario: incast / DDoS burst against the mirror-capacity rule.
//
// The event-driven planner can stage what the static mix model cannot: a
// synchronized storm of short flows (many arrivals per second, sub-second
// Pareto durations, Zipf-concentrated victims) whose instantaneous rate
// far exceeds its average. A mirror provisioned for the mean then loses
// frames exactly during the burst — the switch egress-capacity rule the
// data plane applies on the delivery substream (Section 3: oversubscribed
// mirrors silently drop).
//
// This bench renders the same target rate through both planners, bins the
// windows at 100 ms, and pushes each through a per-bin capacity model at
// several headroom factors (capacity = headroom x mean offered rate). The
// event model's peak-to-mean ratio and its transient loss under tight
// headroom are the scenario's products; the mix model's smooth plan is the
// control. The worker sweep regenerates the event window under different
// thread-count settings and byte-compares it against the serial reference:
// planning is a pure function of the seed, so scheduling must not reach
// the bytes.
//
// Build & run:  ./build/bench/bench_scenario_incast
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "flowsched/event_gen.hpp"
#include "traffic/flowgen.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

namespace {

using namespace patchwork;

constexpr std::uint64_t kSeed = 4242;
constexpr util::Nanos kBin = 100 * util::kMillisecond;
constexpr double kDurationSeconds = 5.0;

traffic::WindowParams incast_params() {
  traffic::WindowParams params;
  params.duration = 5 * util::kSecond;
  params.target_bps = 8e9;
  params.max_frames = 60000;
  return params;
}

/// The storm: ~600 concurrent sub-second flows, arrivals at 2000/s, keys
/// Zipf-concentrated so a handful of victims absorb most of the load.
flowsched::FlowModelConfig incast_config() {
  flowsched::FlowModelConfig config;
  config.model = flowsched::FlowModel::kEvent;
  config.flows_per_second = 2000.0;
  config.mean_flow_duration_s = 0.3;
  config.pareto_shape = 1.3;
  config.zipf_param = 1.26;
  config.flow_keys = 256;
  config.max_active_flows = 4096;
  return config;
}

/// Per-100ms-bin wire bytes of a rendered window.
std::vector<double> bin_bytes(const traffic::WindowTraffic& window) {
  const std::size_t bins = static_cast<std::size_t>(
      incast_params().duration / kBin);
  std::vector<double> out(bins, 0.0);
  for (const net::Frame& f : window.frames) {
    const std::size_t b =
        std::min(bins - 1, static_cast<std::size_t>(f.timestamp() / kBin));
    out[b] += static_cast<double>(f.wire_length());
  }
  return out;
}

struct BurstShape {
  double mean_bin = 0.0;
  double peak_bin = 0.0;
  double peak_to_mean = 0.0;
};

BurstShape shape_of(const std::vector<double>& bins) {
  BurstShape out;
  for (double b : bins) {
    out.mean_bin += b;
    out.peak_bin = std::max(out.peak_bin, b);
  }
  out.mean_bin /= static_cast<double>(bins.size());
  out.peak_to_mean = out.mean_bin > 0.0 ? out.peak_bin / out.mean_bin : 0.0;
  return out;
}

struct CapacityOutcome {
  double loss_fraction = 0.0;    ///< Bytes dropped / bytes offered.
  std::size_t saturated_bins = 0;  ///< Bins at or over capacity.
};

/// The mirror-capacity rule, applied per bin: everything over
/// `headroom x mean bin bytes` is lost.
CapacityOutcome apply_capacity(const std::vector<double>& bins,
                               double headroom) {
  const double cap = shape_of(bins).mean_bin * headroom;
  CapacityOutcome out;
  double offered = 0.0, dropped = 0.0;
  for (double b : bins) {
    offered += b;
    if (b >= cap) {
      ++out.saturated_bins;
      dropped += b - cap;
    }
  }
  out.loss_fraction = offered > 0.0 ? dropped / offered : 0.0;
  return out;
}

bool windows_identical(const traffic::WindowTraffic& a,
                       const traffic::WindowTraffic& b) {
  if (a.frames.size() != b.frames.size()) return false;
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    if (a.frames[i].timestamp() != b.frames[i].timestamp()) return false;
    const auto ba = a.frames[i].bytes();
    const auto bb = b.frames[i].bytes();
    if (!std::equal(ba.begin(), ba.end(), bb.begin(), bb.end())) return false;
  }
  return true;
}

struct TimedWindow {
  double ms = 0.0;
  traffic::WindowTraffic window;
};

TimedWindow generate_event(const traffic::SiteWorkloadProfile& profile) {
  TimedWindow out;
  util::Rng rng(kSeed);
  const auto t0 = std::chrono::steady_clock::now();
  out.window = flowsched::generate_event_window(rng, profile,
                                                incast_params(),
                                                incast_config());
  const auto t1 = std::chrono::steady_clock::now();
  out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

}  // namespace

int main() {
  bench::banner("Incast burst vs. the mirror-capacity rule",
                "Section 3 mirror oversubscription, flow-level workloads");

  const unsigned hw = std::thread::hardware_concurrency();
  const traffic::SiteWorkloadProfile profile = [] {
    util::Rng rng(5);
    return traffic::make_site_profiles(rng, 1).front();
  }();

  // Serial reference: the incast window and the mix-model control at the
  // same target rate.
  util::set_thread_count(1);
  const TimedWindow event = generate_event(profile);
  traffic::WindowTraffic mix = [&] {
    util::Rng rng(kSeed);
    return traffic::generate_window(rng, profile, incast_params());
  }();
  util::set_thread_count(std::nullopt);

  const std::vector<double> event_bins = bin_bytes(event.window);
  const std::vector<double> mix_bins = bin_bytes(mix);
  const BurstShape event_shape = shape_of(event_bins);
  const BurstShape mix_shape = shape_of(mix_bins);

  std::cout << "event: " << event.window.frames.size() << " frames, "
            << event.window.flow_count << " flow activations, peak/mean "
            << event_shape.peak_to_mean << "\n";
  std::cout << "mix:   " << mix.frames.size() << " frames, "
            << mix.flow_count << " flows, peak/mean "
            << mix_shape.peak_to_mean << "\n\n";

  std::cout << "headroom   event loss   (saturated bins)   mix loss   "
               "(saturated bins)\n";
  std::string capacity_rows;
  for (double headroom : {1.1, 1.5, 2.0, 3.0}) {
    const CapacityOutcome ev = apply_capacity(event_bins, headroom);
    const CapacityOutcome mx = apply_capacity(mix_bins, headroom);
    std::cout << headroom << "x       " << ev.loss_fraction * 100.0
              << "%   (" << ev.saturated_bins << ")         "
              << mx.loss_fraction * 100.0 << "%   (" << mx.saturated_bins
              << ")\n";
    if (!capacity_rows.empty()) capacity_rows += ",\n";
    capacity_rows +=
        "    {\"headroom\": " + std::to_string(headroom) +
        ", \"event_loss\": " + std::to_string(ev.loss_fraction) +
        ", \"event_saturated_bins\": " + std::to_string(ev.saturated_bins) +
        ", \"mix_loss\": " + std::to_string(mx.loss_fraction) +
        ", \"mix_saturated_bins\": " + std::to_string(mx.saturated_bins) +
        "}";
  }

  // Worker sweep: regeneration under any thread-count setting must
  // reproduce the serial reference byte-for-byte (the generator is a pure
  // function of the seed; the setting must be inert).
  bool all_identical = true;
  std::string rows;
  double best_speedup = 0.0, speedup_at_4 = 0.0;
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    util::set_thread_count(threads);
    const TimedWindow again = generate_event(profile);
    util::set_thread_count(std::nullopt);
    const bool identical = windows_identical(event.window, again.window);
    all_identical = all_identical && identical;
    const double speedup = again.ms > 0.0 ? event.ms / again.ms : 0.0;
    if (threads == 4) speedup_at_4 = speedup;
    best_speedup = std::max(best_speedup, speedup);
    std::cout << "workers=" << threads << ": regenerate " << again.ms
              << " ms, output "
              << (identical ? "identical" : "DIFFERS") << "\n";
    if (!rows.empty()) rows += ",\n";
    rows += "    {\"workers\": " + std::to_string(threads) +
            ", \"ms\": " + std::to_string(again.ms) +
            ", \"speedup\": " + std::to_string(speedup) +
            ", \"identical\": " + (identical ? "true" : "false") + "}";
  }

  const bool burstier = event_shape.peak_to_mean > mix_shape.peak_to_mean;
  std::cout << "\n"
            << (all_identical ? "PASS: regeneration byte-identical\n"
                              : "FAIL: regeneration diverged\n")
            << (burstier ? "PASS" : "FAIL")
            << ": event peak/mean " << event_shape.peak_to_mean
            << " exceeds mix " << mix_shape.peak_to_mean << "\n";

  std::cout << "\nJSON:\n"
            << "{\n"
            << "  \"bench\": \"scenario_incast\",\n"
            << "  \"note\": \"Event-window generation is serial by design; "
               "the worker sweep checks schedule inertness, not speedup.\",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"serial_ms\": " << event.ms << ",\n"
            << "  \"frames\": " << event.window.frames.size() << ",\n"
            << "  \"flow_activations\": " << event.window.flow_count << ",\n"
            << "  \"peak_to_mean\": {\"event\": " << event_shape.peak_to_mean
            << ", \"mix\": " << mix_shape.peak_to_mean << "},\n"
            << "  \"capacity_sweep\": [\n" << capacity_rows << "\n  ],\n"
            << "  \"runs\": [\n" << rows << "\n  ],\n"
            << "  \"best_speedup\": " << best_speedup << ",\n"
            << "  \"speedup_at_4\": " << speedup_at_4 << ",\n"
            << "  \"speedup_judged\": false,\n"
            << "  \"outputs_identical\": "
            << (all_identical ? "true" : "false") << "\n}\n";
  return all_identical && burstier ? 0 : 1;
}
