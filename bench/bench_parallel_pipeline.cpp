// Serial vs. parallel offline pipeline (Fig. 9: Digest -> Index -> Analyze
// -> Process) over a synthetic multi-site profile.
//
// Measures digest+analyze throughput with PATCHWORK_THREADS=0 (the serial
// fallback) against the pooled path at several worker counts, verifies the
// outputs are byte-identical, and prints a JSON summary suitable for
// recording as BENCH_parallel_pipeline.json.
//
// Build & run:  ./build/bench/bench_parallel_pipeline
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pipeline.hpp"
#include "bench_util.hpp"
#include "net/frame_builder.hpp"
#include "pcap/pcap.hpp"
#include "util/parallel.hpp"

namespace {

using namespace patchwork;

constexpr int kSites = 8;
constexpr int kSamplesPerSite = 3;
constexpr int kFramesPerSample = 1500;
constexpr int kReps = 5;

net::Frame profile_frame(int site, int f) {
  const auto a = static_cast<std::uint8_t>(1 + (f + site) % 6);
  const auto b = static_cast<std::uint8_t>(7 + f % 5);
  net::FrameBuilder builder;
  builder
      .ethernet(net::MacAddress::from_id(a), net::MacAddress::from_id(b))
      .vlan(static_cast<std::uint16_t>(100 + site))
      .mpls(static_cast<std::uint32_t>(16000 + site))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, a),
            net::Ipv4Address::from_octets(10, 0, 0, b))
      .tcp(static_cast<std::uint16_t>(1000 + f % 17),
           static_cast<std::uint16_t>(f % 2 ? 443 : 5201))
      .payload(4)
      .pad_to(64 + static_cast<std::size_t>((f * 97) % 1800));
  return builder.build(static_cast<util::Nanos>(f) * util::kMillisecond);
}

std::vector<analysis::RawCapture> synthetic_profile() {
  std::vector<analysis::RawCapture> captures;
  for (int site = 0; site < kSites; ++site) {
    for (int sample = 0; sample < kSamplesPerSite; ++sample) {
      pcap::PcapWriter writer(200);
      for (int f = 0; f < kFramesPerSample; ++f) {
        writer.write(profile_frame(site, f + sample * 31));
      }
      analysis::RawCapture raw;
      raw.site = "S" + std::to_string(site);
      raw.port = static_cast<std::uint32_t>(sample);
      raw.start = sample * 10 * util::kMinute;
      raw.duration = 20 * util::kSecond;
      raw.pcap = writer.take_buffer();
      captures.push_back(std::move(raw));
    }
  }
  return captures;
}

/// Best-of-kReps wall time for one full run_pipeline() pass, in ms.
double time_pipeline_ms(const std::vector<analysis::RawCapture>& captures,
                        analysis::ProfileReport* out) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    analysis::ProfileReport report = analysis::run_pipeline(captures);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best) best = ms;
    if (out) *out = std::move(report);
  }
  return best;
}

bool reports_identical(const analysis::ProfileReport& a,
                       const analysis::ProfileReport& b) {
  if (a.digest_stats.frames != b.digest_stats.frames) return false;
  if (a.distinct_flows != b.distinct_flows) return false;
  if (a.csv_files.size() != b.csv_files.size()) return false;
  for (const auto& [name, bytes] : a.csv_files) {
    const auto it = b.csv_files.find(name);
    if (it == b.csv_files.end() || it->second != bytes) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::banner("Parallel analysis pipeline: serial vs. pooled",
                "Section 6.2.4 offline phase, multi-core fan-out");

  const std::vector<analysis::RawCapture> captures = synthetic_profile();
  const std::uint64_t total_frames =
      captures.size() * static_cast<std::uint64_t>(kFramesPerSample);

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "profile: " << captures.size() << " samples, " << total_frames
            << " frames; host reports " << hw << " hardware thread(s)\n\n";

  util::set_thread_count(0);
  analysis::ProfileReport serial_report;
  const double serial_ms = time_pipeline_ms(captures, &serial_report);
  const double serial_fps = static_cast<double>(total_frames) / serial_ms * 1e3;
  std::cout << "serial   :  " << serial_ms << " ms  ("
            << static_cast<std::uint64_t>(serial_fps) << " frames/s)\n";

  std::vector<std::size_t> counts{1, 2, 4, 8};
  std::string rows;
  bool all_identical = true;
  double best_parallel_ms = serial_ms;
  std::size_t best_threads = 0;
  double speedup_at_4 = 0.0;
  for (std::size_t threads : counts) {
    util::set_thread_count(threads);
    analysis::ProfileReport report;
    const double ms = time_pipeline_ms(captures, &report);
    const bool identical = reports_identical(serial_report, report);
    all_identical = all_identical && identical;
    if (ms < best_parallel_ms) {
      best_parallel_ms = ms;
      best_threads = threads;
    }
    if (threads == 4) speedup_at_4 = serial_ms / ms;
    std::cout << "workers=" << threads << ":  " << ms << " ms  (speedup "
              << serial_ms / ms << "x, output "
              << (identical ? "identical" : "DIFFERS") << ")\n";
    if (!rows.empty()) rows += ",\n";
    rows += "    {\"workers\": " + std::to_string(threads) +
            ", \"ms\": " + std::to_string(ms) +
            ", \"speedup\": " + std::to_string(serial_ms / ms) +
            ", \"identical\": " + (identical ? "true" : "false") + "}";
  }
  util::set_thread_count(std::nullopt);

  // Shared bench-JSON schema (see BENCH_*.json): speedups are only judged
  // where the host can actually run 4 workers.
  const bool judged = hw >= 4;
  std::cout << "\nbest: workers=" << best_threads << " at "
            << serial_ms / best_parallel_ms << "x over serial\n"
            << (all_identical ? "PASS: all outputs byte-identical\n"
                              : "FAIL: parallel output diverged\n");
  if (!judged) {
    std::cout << "SKIP: speedup not judged (" << hw
              << " hardware thread(s) < 4)\n";
  }

  const std::string note =
      judged ? "Recorded with 4+ hardware threads; speedups are meaningful."
             : "Recorded on a <4-hardware-thread host: ratios measure "
               "scheduling overhead only. Re-record on real hardware with "
               "./build/bench/bench_parallel_pipeline.";
  std::cout << "\nJSON:\n"
            << "{\n"
            << "  \"bench\": \"parallel_pipeline\",\n"
            << "  \"note\": \"" << note << "\",\n"
            << "  \"samples\": " << captures.size() << ",\n"
            << "  \"frames\": " << total_frames << ",\n"
            << "  \"hardware_threads\": " << hw << ",\n"
            << "  \"serial_ms\": " << serial_ms << ",\n"
            << "  \"serial_frames_per_sec\": " << serial_fps << ",\n"
            << "  \"runs\": [\n"
            << rows << "\n  ],\n"
            << "  \"best_speedup\": " << serial_ms / best_parallel_ms << ",\n"
            << "  \"speedup_at_4\": " << speedup_at_4 << ",\n"
            << "  \"speedup_judged\": " << (judged ? "true" : "false") << ",\n"
            << "  \"outputs_identical\": " << (all_identical ? "true" : "false")
            << "\n}\n";
  return all_identical ? 0 : 1;
}
