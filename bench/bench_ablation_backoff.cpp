// Ablation — iterative back-off (Section 6.2.1 / 8.3).
//
// "Patchwork uses iterative back-off during resource acquisition ... if
// the requested resources are not available, then Patchwork will scale
// down its request." Without back-off, any site that cannot satisfy the
// full request fails outright. This bench measures site success rates and
// monitored-port counts with and without back-off under increasing
// dedicated-NIC scarcity.
#include <iostream>

#include "bench_util.hpp"
#include "core/profiler.hpp"
#include "util/table.hpp"

namespace {

using namespace patchwork;

struct Result {
  std::size_t sites_ok = 0;
  std::size_t ports_monitored = 0;
};

Result trial(bench::BenchWorld& world, bool backoff_enabled,
             double scarcity) {
  Result result;
  for (testbed::SiteId id : world.fed.site_ids()) {
    testbed::Site& site = world.fed.site(id);
    if (site.teaching_only()) continue;
    // Background researchers hold a `scarcity` fraction of dedicated NICs.
    auto nics = site.available_nics(testbed::NicKind::kDedicatedConnectX);
    std::vector<testbed::NicId> held;
    const std::size_t grab =
        static_cast<std::size_t>(scarcity * static_cast<double>(nics.size()));
    for (std::size_t i = 0; i < grab; ++i) {
      site.mutable_nic(nics[i]).allocated_to = testbed::SliceId{4242};
      held.push_back(nics[i]);
    }

    core::ProfilerConfig config;
    config.desired_instances = 4;  // Ambitious request.
    config.max_backoffs = backoff_enabled ? 3 : 0;
    config.allocator.backend_failure_rate = 0.0;
    core::SiteProfiler profiler(world.env, id, config);
    const core::SetupResult setup = profiler.setup();
    if (setup.ok) {
      ++result.sites_ok;
      result.ports_monitored += profiler.monitored_port_slots();
    }
    profiler.teardown();
    for (testbed::NicId nic : held) {
      site.mutable_nic(nic).allocated_to.reset();
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::banner("Ablation — iterative back-off under NIC scarcity",
                "Sections 6.2.1 & 8.3 (frugality / back-off) design choice");

  bench::BenchWorld world;
  world.warm_up_telemetry();

  util::TextTable table({"NIC scarcity", "Sites ok (no back-off)",
                         "Sites ok (back-off)", "Ports (no back-off)",
                         "Ports (back-off)"});
  const std::size_t production_sites = world.fed.site_count() - 1;
  for (double scarcity : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    const Result off = trial(world, false, scarcity);
    const Result on = trial(world, true, scarcity);
    table.add_row({util::fmt_percent(scarcity, 0),
                   std::to_string(off.sites_ok) + "/" +
                       std::to_string(production_sites),
                   std::to_string(on.sites_ok) + "/" +
                       std::to_string(production_sites),
                   std::to_string(off.ports_monitored),
                   std::to_string(on.ports_monitored)});
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: with back-off, sites keep succeeding (with "
         "fewer instances)\nas NICs grow scarce; without it, any site that "
         "cannot grant the full 4-instance\nrequest fails outright — the "
         "'Degraded beats Failed' trade-off behind Fig. 10.\n";
  return 0;
}
