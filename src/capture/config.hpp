// Capture configuration shared by all three capture methods.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "capture/filter.hpp"

namespace patchwork::capture {

/// The three frame-capture methods of Section 6.2.2: (1) tcpdump with a
/// raised capture buffer, (2) a custom DPDK application, (3) preprocessing
/// on an Alveo FPGA NIC, then serialization to storage by the DPDK
/// application. All three produce pcap.
enum class CaptureMethod : std::uint8_t { kTcpdump, kDpdk, kFpgaDpdk };

std::string_view to_string(CaptureMethod m);

struct CaptureConfig {
  CaptureMethod method = CaptureMethod::kTcpdump;
  /// Researcher-specified truncation (requirement 3). Patchwork's profile
  /// runs use 200 B to keep full header stacks; Table 2 uses 64 B.
  std::uint32_t snaplen = 200;
  Filter filter;                  ///< Match-all by default.
  std::uint32_t sample_1_in_n = 1;  ///< Keep every Nth matching frame.
  bool anonymize = false;
  std::uint64_t anonymize_key = 0x70617463686b7721ull;

  // Host-side resources.
  std::uint32_t cores = 2;            ///< Default Patchwork VM request.
  std::uint32_t rx_queue_depth = 4096;  ///< DPDK Rx ring (Section 8.1.4).
  std::uint64_t tcpdump_buffer_bytes = 32ull << 20;  ///< Raised to 32 MB.
};

}  // namespace patchwork::capture
