#include "capture/anonymize.hpp"

#include "net/checksum.hpp"

namespace patchwork::capture {

std::uint64_t Anonymizer::keyed_hash(std::uint64_t value) const {
  // SplitMix64-style mixing keyed by XOR — deterministic, well distributed,
  // and cheap enough for per-packet use in the offload pipeline.
  std::uint64_t z = value ^ key_;
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint32_t Anonymizer::map_ipv4(std::uint32_t addr) const {
  // Preserve the /8; scramble the host 24 bits with a keyed hash. The hash
  // is a function of the full address so distinct hosts stay distinct with
  // overwhelming probability within a trace.
  const std::uint32_t prefix = addr & 0xff000000u;
  const std::uint32_t scrambled =
      static_cast<std::uint32_t>(keyed_hash(addr)) & 0x00ffffffu;
  return prefix | scrambled;
}

namespace {

void rewrite_be32(std::span<std::uint8_t> bytes, std::size_t off,
                  std::uint32_t v) {
  bytes[off] = static_cast<std::uint8_t>(v >> 24);
  bytes[off + 1] = static_cast<std::uint8_t>(v >> 16);
  bytes[off + 2] = static_cast<std::uint8_t>(v >> 8);
  bytes[off + 3] = static_cast<std::uint8_t>(v);
}

}  // namespace

std::size_t Anonymizer::scrub(std::span<std::uint8_t> bytes,
                              const net::ParsedFrame& parsed) const {
  std::size_t rewritten = 0;
  for (const net::LayerInfo& layer : parsed.layers) {
    switch (layer.protocol) {
      case net::Protocol::kEthernet: {
        if (layer.length < net::EthernetHeader::kSize) break;
        for (int which = 0; which < 2; ++which) {
          const std::size_t off =
              layer.offset + static_cast<std::size_t>(which) * 6;
          std::uint64_t mac = 0;
          for (int i = 0; i < 6; ++i) mac = (mac << 8) | bytes[off + i];
          std::uint64_t mapped = keyed_hash(mac);
          bytes[off] = 0x02;  // Locally administered, unicast.
          for (int i = 1; i < 6; ++i) {
            bytes[off + i] =
                static_cast<std::uint8_t>(mapped >> (8 * (5 - i)));
          }
          ++rewritten;
        }
        break;
      }
      case net::Protocol::kIpv4: {
        if (layer.length < net::Ipv4Header::kSize) break;
        const std::size_t off = layer.offset;
        auto read_be32 = [&](std::size_t o) {
          return (static_cast<std::uint32_t>(bytes[o]) << 24) |
                 (static_cast<std::uint32_t>(bytes[o + 1]) << 16) |
                 (static_cast<std::uint32_t>(bytes[o + 2]) << 8) |
                 static_cast<std::uint32_t>(bytes[o + 3]);
        };
        rewrite_be32(bytes, off + 12, map_ipv4(read_be32(off + 12)));
        rewrite_be32(bytes, off + 16, map_ipv4(read_be32(off + 16)));
        rewritten += 2;
        // Recompute the header checksum over the rewritten header.
        bytes[off + 10] = 0;
        bytes[off + 11] = 0;
        const std::uint16_t sum = net::internet_checksum(
            {bytes.data() + off, net::Ipv4Header::kSize});
        bytes[off + 10] = static_cast<std::uint8_t>(sum >> 8);
        bytes[off + 11] = static_cast<std::uint8_t>(sum);
        break;
      }
      case net::Protocol::kIpv6: {
        if (layer.length < net::Ipv6Header::kSize) break;
        // Scramble the interface-identifier half of both addresses.
        for (std::size_t base : {layer.offset + 8 + 8, layer.offset + 24 + 8}) {
          std::uint64_t low = 0;
          for (int i = 0; i < 8; ++i) low = (low << 8) | bytes[base + static_cast<std::size_t>(i)];
          const std::uint64_t mapped = keyed_hash(low);
          for (int i = 0; i < 8; ++i) {
            bytes[base + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(mapped >> (8 * (7 - i)));
          }
          ++rewritten;
        }
        break;
      }
      default:
        break;
    }
  }
  return rewritten;
}

net::Frame Anonymizer::scrub_frame(const net::Frame& frame) const {
  std::vector<std::uint8_t> bytes(frame.bytes().begin(),
                                  frame.bytes().end());
  const net::ParsedFrame parsed = net::parse_frame(frame);
  scrub(bytes, parsed);
  return net::Frame(std::move(bytes), frame.wire_length(),
                    frame.timestamp());
}

}  // namespace patchwork::capture
