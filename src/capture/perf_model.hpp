// Capture-path performance models.
//
// These reproduce the paper's Section 8.1 experiments:
//   * simulate_tcpdump  — the software-capture ceiling (Section 8.1.2):
//     single-threaded kernel-path capture with a 32 MB buffer;
//   * simulate_dpdk_writer — the accelerator-/bypass-assisted path
//     (Sections 8.1.3-8.1.4, Appendix B, Tables 1-2): frames arrive at a
//     fixed rate, cores dequeue them from an Rx ring, truncate, and batch
//     128 frames per sys_writev() into a pcap file through the page-cache
//     model. Loss happens when the ring overflows while the writer is
//     stalled by writeback throttling, or when offered load exceeds the
//     cores' aggregate capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "host/host_system.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace patchwork::capture {

inline constexpr std::uint32_t kWritevBatchFrames = 128;  ///< Appendix B.

struct TcpdumpRunParams {
  double offered_bps = 0.0;
  std::size_t frame_size = 1500;
  std::uint32_t snaplen = 64;
  util::Nanos duration = 10 * util::kSecond;
  std::uint64_t buffer_bytes = 32ull << 20;  ///< Raised capture buffer.
};

struct TcpdumpRunStats {
  std::uint64_t offered_frames = 0;
  std::uint64_t captured_frames = 0;
  std::uint64_t dropped_frames = 0;
  double loss_fraction() const {
    return offered_frames == 0
               ? 0.0
               : static_cast<double>(dropped_frames) /
                     static_cast<double>(offered_frames);
  }
};

TcpdumpRunStats simulate_tcpdump(const host::HostSpec& spec,
                                 const TcpdumpRunParams& params);

/// Highest offered rate (bps) at which the tcpdump path stays loss-free
/// for the given frame size, found by bisection.
double tcpdump_lossless_ceiling_bps(const host::HostSpec& spec,
                                    std::size_t frame_size,
                                    std::uint32_t snaplen);

struct DpdkRunParams {
  double offered_bps = 0.0;
  std::size_t frame_size = 1514;
  std::uint32_t truncation = 200;   ///< Bytes stored per frame.
  std::uint32_t cores = 5;
  std::uint32_t rx_queue_depth = 4096;
  util::Nanos duration = 4 * util::kSecond;
  /// True when an FPGA NIC pre-truncates frames before host delivery
  /// (method 3); false for the plain DPDK path (method 2), where the full
  /// frame crosses PCIe and host memory.
  bool fpga_offload = true;
  /// Record the Fig.-14-style curve of summed high-bucket writev latency
  /// against the fraction of free cache memory written so far.
  bool track_usage_curve = false;
};

/// One point of the Appendix B latency wall: after writing
/// `usage_fraction` of free cache memory, the rounded-up sum of all
/// sys_writev() latencies in buckets >= 32 us (the paper excludes the
/// average case) is `summed_high_latency_ms`.
struct UsagePoint {
  double usage_fraction = 0.0;
  double summed_high_latency_ms = 0.0;
};

struct DpdkRunStats {
  std::uint64_t offered_frames = 0;
  std::uint64_t captured_frames = 0;
  std::uint64_t dropped_ring = 0;     ///< Rx ring overflow.
  std::uint64_t writev_calls = 0;
  std::uint64_t bytes_stored = 0;
  util::Log2Histogram writev_latency;  ///< bpftrace-style, nanoseconds.
  double final_dirty_fraction = 0.0;
  std::vector<UsagePoint> usage_curve;  ///< Populated if track_usage_curve.

  double loss_fraction() const {
    return offered_frames == 0
               ? 0.0
               : static_cast<double>(dropped_ring) /
                     static_cast<double>(offered_frames);
  }
};

DpdkRunStats simulate_dpdk_writer(const host::HostSpec& spec,
                                  const DpdkRunParams& params,
                                  util::Rng& rng);

}  // namespace patchwork::capture
