// Close-to-source trace anonymization.
//
// Requirement (6) of Section 1: researchers "often must carry out
// close-to-source traffic processing — such as anonymization". This
// transform rewrites addresses *in the captured bytes* (so downstream pcap
// consumers never see real addresses) deterministically under a key:
//   * IPv4 addresses: keyed permutation that preserves the /8 prefix, so
//     analyses that depend on 10/8 membership still work;
//   * IPv6 addresses: keyed scrambling of the lower 64 bits, preserving
//     the prefix;
//   * MACs: replaced with locally-administered addresses derived from a
//     keyed hash.
// The IPv4 header checksum is recomputed after rewriting. The same key
// always produces the same mapping, so flows remain correlatable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"
#include "net/parser.hpp"

namespace patchwork::capture {

class Anonymizer {
 public:
  explicit Anonymizer(std::uint64_t key) : key_(key) {}

  /// Rewrites addresses in `bytes` in place, guided by the dissection
  /// `parsed` (which must describe these bytes). Returns the number of
  /// fields rewritten. Accepts any mutable byte range — including a slice
  /// of a pcap stream — so the zero-copy write path can scrub in place.
  std::size_t scrub(std::span<std::uint8_t> bytes,
                    const net::ParsedFrame& parsed) const;

  /// Convenience: dissects, scrubs, and returns a new frame.
  net::Frame scrub_frame(const net::Frame& frame) const;

  std::uint32_t map_ipv4(std::uint32_t addr) const;
  std::uint64_t keyed_hash(std::uint64_t value) const;

 private:
  std::uint64_t key_;
};

}  // namespace patchwork::capture
