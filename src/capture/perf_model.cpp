#include "capture/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "pcap/pcap.hpp"

namespace patchwork::capture {

TcpdumpRunStats simulate_tcpdump(const host::HostSpec& spec,
                                 const TcpdumpRunParams& params) {
  TcpdumpRunStats stats;
  const double offered_pps =
      params.offered_bps / (8.0 * static_cast<double>(params.frame_size));
  const double capacity_pps =
      spec.kernel_capacity_pps(params.frame_size, params.snaplen);
  // Buffer slots: each buffered record holds snaplen bytes plus metadata.
  const double record_bytes =
      static_cast<double>(std::min<std::size_t>(params.frame_size,
                                                params.snaplen)) +
      pcap::kRecordHeaderSize;
  const double buffer_slots =
      static_cast<double>(params.buffer_bytes) / record_bytes;

  // Millisecond-stepped fluid simulation of the capture buffer.
  const util::Nanos step = util::kMillisecond;
  double occupancy = 0.0;  // Records in the buffer.
  double offered_acc = 0.0, captured_acc = 0.0, dropped_acc = 0.0;
  for (util::Nanos t = 0; t < params.duration; t += step) {
    const double dt = util::to_seconds(step);
    const double arrivals = offered_pps * dt;
    const double drained = std::min(occupancy + arrivals, capacity_pps * dt);
    double next = occupancy + arrivals - drained;
    double dropped = 0.0;
    if (next > buffer_slots) {
      dropped = next - buffer_slots;
      next = buffer_slots;
    }
    occupancy = next;
    offered_acc += arrivals;
    captured_acc += arrivals - dropped;
    dropped_acc += dropped;
  }
  stats.offered_frames = static_cast<std::uint64_t>(offered_acc);
  stats.captured_frames = static_cast<std::uint64_t>(captured_acc);
  stats.dropped_frames = static_cast<std::uint64_t>(dropped_acc);
  return stats;
}

double tcpdump_lossless_ceiling_bps(const host::HostSpec& spec,
                                    std::size_t frame_size,
                                    std::uint32_t snaplen) {
  double lo = 0.0, hi = 100e9;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = (lo + hi) / 2.0;
    TcpdumpRunParams p;
    p.offered_bps = mid;
    p.frame_size = frame_size;
    p.snaplen = snaplen;
    p.duration = 10 * util::kSecond;
    const TcpdumpRunStats s = simulate_tcpdump(spec, p);
    if (s.loss_fraction() <= 1e-6) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

DpdkRunStats simulate_dpdk_writer(const host::HostSpec& spec,
                                  const DpdkRunParams& params,
                                  util::Rng& rng) {
  DpdkRunStats stats;
  const double offered_pps =
      params.offered_bps / (8.0 * static_cast<double>(params.frame_size));
  const double capacity_pps = spec.dpdk_capacity_pps(
      params.cores, params.truncation, params.frame_size,
      params.fpga_offload);
  if (offered_pps <= 0.0 || capacity_pps <= 0.0) return stats;

  host::PageCache cache(spec.page_cache, rng);
  const std::uint64_t batch_bytes =
      static_cast<std::uint64_t>(kWritevBatchFrames) *
      (params.truncation + pcap::kRecordHeaderSize);

  // Ring state, in frames. Service proceeds at capacity_pps except while
  // the writer is stalled inside a long sys_writev().
  double ring = 0.0;
  const double ring_slots = static_cast<double>(params.rx_queue_depth);
  double served_since_writev = 0.0;

  // Micro-burst arrival process layered over the constant offered rate:
  // short line-rate bursts that can overflow the ring when headroom is
  // slim. Burst arrival is Poisson; burst size is exponential.
  const double burst_rate_per_sec = 40.0;
  const double burst_mean_frames = 1200.0;

  // The nominal batch period: time to serve one writev batch.
  const double batch_period_s =
      static_cast<double>(kWritevBatchFrames) / capacity_pps;

  double t = 0.0;
  const double duration_s = util::to_seconds(params.duration);
  double offered_acc = 0.0, dropped_acc = 0.0;
  double next_burst = rng.exponential(1.0 / burst_rate_per_sec);

  while (t < duration_s) {
    const double dt = batch_period_s;
    // Arrivals during this batch interval.
    double arrivals = offered_pps * dt;
    while (next_burst <= t + dt) {
      arrivals += rng.exponential(burst_mean_frames);
      next_burst += rng.exponential(1.0 / burst_rate_per_sec);
    }
    offered_acc += arrivals;

    // Service: one full batch leaves the ring (if present).
    const double served =
        std::min(ring + arrivals, static_cast<double>(kWritevBatchFrames));
    double next_ring = ring + arrivals - served;
    if (next_ring > ring_slots) {
      dropped_acc += next_ring - ring_slots;
      next_ring = ring_slots;
    }
    ring = next_ring;
    served_since_writev += served;
    cache.advance(util::from_seconds(dt));
    t += dt;

    // A sys_writev() every kWritevBatchFrames served frames.
    if (served_since_writev >= kWritevBatchFrames) {
      served_since_writev -= kWritevBatchFrames;
      const util::Nanos lat = cache.write(batch_bytes);
      ++stats.writev_calls;
      stats.bytes_stored += batch_bytes;
      if (params.track_usage_curve) {
        const double usage =
            static_cast<double>(cache.total_bytes_written()) /
            static_cast<double>(spec.page_cache.free_cache_bytes);
        if (stats.usage_curve.empty() ||
            usage >= stats.usage_curve.back().usage_fraction + 0.01) {
          stats.usage_curve.push_back(UsagePoint{
              usage,
              static_cast<double>(
                  cache.latency_histogram().rounded_up_sum_above(32768)) /
                  1e6});
        }
      }
      // Stall beyond the amortized syscall budget: ordinary fast-regime
      // writev time is already part of the calibrated per-frame cost, so
      // only abnormal latency (writeback throttling, outliers) stalls the
      // ring and piles arrivals up.
      const double amortized_s = 12e-6;
      const double stall_s = util::to_seconds(lat) - amortized_s;
      if (stall_s > 0.0) {
        double stalled_arrivals = offered_pps * stall_s;
        while (next_burst <= t + stall_s) {
          stalled_arrivals += rng.exponential(burst_mean_frames);
          next_burst += rng.exponential(1.0 / burst_rate_per_sec);
        }
        offered_acc += stalled_arrivals;
        double after = ring + stalled_arrivals;
        if (after > ring_slots) {
          dropped_acc += after - ring_slots;
          after = ring_slots;
        }
        ring = after;
        t += stall_s;
      }
    }
  }

  stats.offered_frames = static_cast<std::uint64_t>(offered_acc);
  stats.dropped_ring = static_cast<std::uint64_t>(dropped_acc);
  stats.captured_frames = stats.offered_frames - stats.dropped_ring;
  stats.writev_latency = cache.latency_histogram();
  stats.final_dirty_fraction = cache.dirty_fraction();
  return stats;
}

}  // namespace patchwork::capture
