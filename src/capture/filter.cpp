#include "capture/filter.hpp"

#include <algorithm>
#include <optional>

#include "net/addr.hpp"

namespace patchwork::capture {

namespace {

enum class PredKind : std::uint8_t {
  kProto,
  kPort,      // qualifier: 0 = any, 1 = src, 2 = dst.
  kHost,
  kVlanId,
  kMplsLabel,
  kLess,
  kGreater,
  kJumbo,
};

enum class Qualifier : std::uint8_t { kAny, kSrc, kDst };

}  // namespace

struct Filter::Node {
  enum class Op : std::uint8_t { kAnd, kOr, kNot, kPred } op = Op::kPred;
  NodePtr lhs;
  NodePtr rhs;

  PredKind pred = PredKind::kProto;
  Qualifier qualifier = Qualifier::kAny;
  net::Protocol proto = net::Protocol::kIpv4;
  std::uint32_t number = 0;

  bool eval(const net::ParsedFrame& f) const;
};

namespace {

bool frame_has_port(const net::ParsedFrame& f, Qualifier q,
                    std::uint16_t port) {
  std::optional<std::uint16_t> src, dst;
  if (f.tcp) {
    src = f.tcp->src_port;
    dst = f.tcp->dst_port;
  } else if (f.udp) {
    src = f.udp->src_port;
    dst = f.udp->dst_port;
  }
  if (!src) return false;
  switch (q) {
    case Qualifier::kSrc: return *src == port;
    case Qualifier::kDst: return *dst == port;
    case Qualifier::kAny: return *src == port || *dst == port;
  }
  return false;
}

bool frame_has_host(const net::ParsedFrame& f, Qualifier q,
                    std::uint32_t addr) {
  if (!f.ipv4) return false;
  switch (q) {
    case Qualifier::kSrc: return f.ipv4->src.value == addr;
    case Qualifier::kDst: return f.ipv4->dst.value == addr;
    case Qualifier::kAny:
      return f.ipv4->src.value == addr || f.ipv4->dst.value == addr;
  }
  return false;
}

}  // namespace

bool Filter::Node::eval(const net::ParsedFrame& f) const {
  switch (op) {
    case Op::kAnd: return lhs->eval(f) && rhs->eval(f);
    case Op::kOr: return lhs->eval(f) || rhs->eval(f);
    case Op::kNot: return !lhs->eval(f);
    case Op::kPred: break;
  }
  switch (pred) {
    case PredKind::kProto: return f.has(proto);
    case PredKind::kPort:
      return frame_has_port(f, qualifier,
                            static_cast<std::uint16_t>(number));
    case PredKind::kHost: return frame_has_host(f, qualifier, number);
    case PredKind::kVlanId:
      return std::find(f.vlan_ids.begin(), f.vlan_ids.end(),
                       static_cast<std::uint16_t>(number)) !=
             f.vlan_ids.end();
    case PredKind::kMplsLabel:
      return std::find(f.mpls_labels.begin(), f.mpls_labels.end(), number) !=
             f.mpls_labels.end();
    case PredKind::kLess: return f.wire_length <= number;
    case PredKind::kGreater: return f.wire_length >= number;
    case PredKind::kJumbo: return f.wire_length > 1518;
  }
  return false;
}

bool Filter::matches(const net::ParsedFrame& frame) const {
  return root_ == nullptr || root_->eval(frame);
}

namespace {

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == '(' || c == ')') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      out.push_back(std::string(1, c));
    } else if (c == ' ' || c == '\t' || c == '\n') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

struct Parser {
  const std::vector<std::string>& tokens;
  std::size_t pos = 0;
  std::optional<Filter::CompileError> error;

  bool at_end() const { return pos >= tokens.size(); }
  const std::string* peek() const {
    return at_end() ? nullptr : &tokens[pos];
  }
  bool accept(std::string_view tok) {
    if (!at_end() && tokens[pos] == tok) {
      ++pos;
      return true;
    }
    return false;
  }
  void fail(std::string message) {
    if (!error) error = Filter::CompileError{std::move(message), pos};
  }

  std::optional<std::uint32_t> number() {
    if (at_end()) {
      fail("expected number");
      return std::nullopt;
    }
    const std::string& t = tokens[pos];
    std::uint32_t v = 0;
    for (char c : t) {
      if (c < '0' || c > '9') {
        fail("expected number, got '" + t + "'");
        return std::nullopt;
      }
      v = v * 10 + static_cast<std::uint32_t>(c - '0');
    }
    ++pos;
    return v;
  }

  Filter::NodePtr parse_or() {
    auto lhs = parse_and();
    while (lhs && accept("or")) {
      auto rhs = parse_and();
      if (!rhs) return nullptr;
      auto node = std::make_unique<Filter::Node>();
      node->op = Filter::Node::Op::kOr;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Filter::NodePtr parse_and() {
    auto lhs = parse_unary();
    while (lhs && accept("and")) {
      auto rhs = parse_unary();
      if (!rhs) return nullptr;
      auto node = std::make_unique<Filter::Node>();
      node->op = Filter::Node::Op::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Filter::NodePtr parse_unary() {
    if (accept("not")) {
      auto inner = parse_unary();
      if (!inner) return nullptr;
      auto node = std::make_unique<Filter::Node>();
      node->op = Filter::Node::Op::kNot;
      node->lhs = std::move(inner);
      return node;
    }
    if (accept("(")) {
      auto inner = parse_or();
      if (!inner) return nullptr;
      if (!accept(")")) {
        fail("expected ')'");
        return nullptr;
      }
      return inner;
    }
    return parse_predicate();
  }

  Filter::NodePtr make_pred(PredKind kind) {
    auto node = std::make_unique<Filter::Node>();
    node->op = Filter::Node::Op::kPred;
    node->pred = kind;
    return node;
  }

  Filter::NodePtr parse_predicate() {
    if (at_end()) {
      fail("expected predicate");
      return nullptr;
    }
    Qualifier qual = Qualifier::kAny;
    if (accept("src")) {
      qual = Qualifier::kSrc;
    } else if (accept("dst")) {
      qual = Qualifier::kDst;
    }
    if (accept("port")) {
      auto n = number();
      if (!n) return nullptr;
      auto node = make_pred(PredKind::kPort);
      node->qualifier = qual;
      node->number = *n;
      return node;
    }
    if (accept("host")) {
      if (at_end()) {
        fail("expected address");
        return nullptr;
      }
      auto addr = net::Ipv4Address::parse(tokens[pos]);
      if (!addr) {
        fail("bad IPv4 address '" + tokens[pos] + "'");
        return nullptr;
      }
      ++pos;
      auto node = make_pred(PredKind::kHost);
      node->qualifier = qual;
      node->number = addr->value;
      return node;
    }
    if (qual != Qualifier::kAny) {
      fail("'src'/'dst' must be followed by 'port' or 'host'");
      return nullptr;
    }
    if (accept("less")) {
      auto n = number();
      if (!n) return nullptr;
      auto node = make_pred(PredKind::kLess);
      node->number = *n;
      return node;
    }
    if (accept("greater")) {
      auto n = number();
      if (!n) return nullptr;
      auto node = make_pred(PredKind::kGreater);
      node->number = *n;
      return node;
    }
    if (accept("jumbo")) return make_pred(PredKind::kJumbo);
    if (accept("vlan")) {
      auto node = make_pred(PredKind::kProto);
      node->proto = net::Protocol::kVlan;
      // Optional id: "vlan 100".
      if (!at_end() && !tokens[pos].empty() && tokens[pos][0] >= '0' &&
          tokens[pos][0] <= '9') {
        auto n = number();
        if (!n) return nullptr;
        node->pred = PredKind::kVlanId;
        node->number = *n;
      }
      return node;
    }
    if (accept("mpls")) {
      auto node = make_pred(PredKind::kProto);
      node->proto = net::Protocol::kMpls;
      if (!at_end() && !tokens[pos].empty() && tokens[pos][0] >= '0' &&
          tokens[pos][0] <= '9') {
        auto n = number();
        if (!n) return nullptr;
        node->pred = PredKind::kMplsLabel;
        node->number = *n;
      }
      return node;
    }
    // Protocol keywords, with tcpdump-style aliases.
    const std::string& tok = tokens[pos];
    std::optional<net::Protocol> proto;
    if (tok == "ip") {
      proto = net::Protocol::kIpv4;
    } else if (tok == "ip6") {
      proto = net::Protocol::kIpv6;
    } else {
      proto = net::protocol_from_string(tok);
    }
    if (!proto) {
      fail("unknown predicate '" + tok + "'");
      return nullptr;
    }
    ++pos;
    auto node = make_pred(PredKind::kProto);
    node->proto = *proto;
    return node;
  }
};

}  // namespace

std::variant<Filter, Filter::CompileError> Filter::compile(
    std::string_view text) {
  const std::vector<std::string> tokens = tokenize(text);
  Filter filter;
  filter.source_ = std::string(text);
  if (tokens.empty()) return filter;  // Match-all.
  Parser parser{tokens, 0, std::nullopt};
  NodePtr root = parser.parse_or();
  if (!root || parser.error) {
    if (parser.error) return *parser.error;
    return CompileError{"parse error", parser.pos};
  }
  if (!parser.at_end()) {
    return CompileError{"trailing tokens after expression", parser.pos};
  }
  filter.root_ = std::shared_ptr<const Node>(root.release());
  return filter;
}

}  // namespace patchwork::capture
