// tcpdump-style capture filter expressions.
//
// Patchwork's capture needs "filtering to exclude unwanted traffic"
// (Section 1, requirement 1) and tcpdump-equivalent configurability
// (Section 8.1.2). This is a small BPF-like language evaluated against
// dissected frames; the same compiled filter runs in all three capture
// methods, including the FPGA offload pipeline.
//
// Grammar (case-sensitive keywords):
//   expr      := or
//   or        := and ("or" and)*
//   and       := unary ("and" unary)*
//   unary     := "not" unary | "(" expr ")" | predicate
//   predicate := proto                    e.g. "ip", "ip6", "tcp", "vlan"
//              | ["src"|"dst"] "port" N
//              | ["src"|"dst"] "host" A.B.C.D
//              | "vlan" N | "mpls" N
//              | "less" N | "greater" N   (wire length <= / >=)
//              | "jumbo"                  (wire length > 1518)
//
// Example: "ip and tcp and not port 22 and greater 1000"
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "net/parser.hpp"

namespace patchwork::capture {

class Filter {
 public:
  /// An empty filter matches everything.
  Filter() = default;

  bool matches(const net::ParsedFrame& frame) const;

  /// Original source text ("" for the match-all filter).
  const std::string& source() const { return source_; }

  struct Node;
  using NodePtr = std::unique_ptr<Node>;

  struct CompileError {
    std::string message;
    std::size_t position = 0;  ///< Token index where parsing failed.
  };

  /// Compile `text`; returns the error on bad syntax.
  static std::variant<Filter, CompileError> compile(std::string_view text);

 private:
  std::shared_ptr<const Node> root_;  // Shared so Filter is cheaply copyable.
  std::string source_;
};

}  // namespace patchwork::capture
