// FPGA NIC offload pipeline.
//
// Models the P4 program Patchwork compiles to Alveo FPGA NICs (via the
// ESnet smartNIC framework): a line-rate match-action pipeline that
// performs "sampling, truncation, filtering, and pre-processing"
// (Section 6.2.1) before frames ever reach the host. Functionally the
// stages are exact (the host receives precisely the edited bytes);
// performance-wise the pipeline runs at line rate, which is what removes
// the per-wire-byte host cost in the DPDK capacity model.
#pragma once

#include <cstdint>
#include <optional>

#include "capture/anonymize.hpp"
#include "capture/config.hpp"
#include "net/packet.hpp"
#include "net/parser.hpp"

namespace patchwork::capture {

struct PipelineStats {
  std::uint64_t seen = 0;
  std::uint64_t filtered_out = 0;
  std::uint64_t sampled_out = 0;
  std::uint64_t emitted = 0;
};

class FpgaPipeline {
 public:
  explicit FpgaPipeline(const CaptureConfig& config)
      : config_(config), anonymizer_(config.anonymize_key) {}

  /// Run one frame through filter -> 1-in-N sample -> truncate ->
  /// anonymize. Returns the edited frame, or nullopt if dropped by the
  /// filter or sampler. Equivalent to admit() followed by edit().
  std::optional<net::Frame> process(const net::Frame& frame);

  /// The drop decision alone: filter -> 1-in-N sample. Counts
  /// filtered_out/sampled_out; advances the sampler exactly as process()
  /// would, so per-stage callers see identical admissions.
  bool admit(const net::Frame& frame);

  /// The edit alone: truncate -> anonymize, for a frame admit() accepted.
  net::Frame edit(const net::Frame& frame);

  const PipelineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PipelineStats{}; }

 private:
  const CaptureConfig& config_;
  Anonymizer anonymizer_;
  PipelineStats stats_;
  std::uint64_t sample_counter_ = 0;
};

}  // namespace patchwork::capture
