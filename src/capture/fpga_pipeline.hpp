// FPGA NIC offload pipeline.
//
// Models the P4 program Patchwork compiles to Alveo FPGA NICs (via the
// ESnet smartNIC framework): a line-rate match-action pipeline that
// performs "sampling, truncation, filtering, and pre-processing"
// (Section 6.2.1) before frames ever reach the host. Functionally the
// stages are exact (the host receives precisely the edited bytes);
// performance-wise the pipeline runs at line rate, which is what removes
// the per-wire-byte host cost in the DPDK capacity model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "capture/anonymize.hpp"
#include "capture/config.hpp"
#include "net/frame_store.hpp"
#include "net/packet.hpp"
#include "net/parser.hpp"

namespace patchwork::capture {

struct PipelineStats {
  std::uint64_t seen = 0;
  std::uint64_t filtered_out = 0;
  std::uint64_t sampled_out = 0;
  std::uint64_t emitted = 0;
};

class FpgaPipeline {
 public:
  explicit FpgaPipeline(const CaptureConfig& config)
      : config_(config), anonymizer_(config.anonymize_key) {}

  /// Run one frame through filter -> 1-in-N sample -> truncate ->
  /// anonymize. Returns the edited frame, or nullopt if dropped by the
  /// filter or sampler. Equivalent to admit() followed by edit().
  std::optional<net::Frame> process(const net::Frame& frame);

  /// The drop decision alone: filter -> 1-in-N sample. Counts
  /// filtered_out/sampled_out; advances the sampler exactly as process()
  /// would, so per-stage callers see identical admissions.
  bool admit(const net::Frame& frame);

  /// Zero-copy admit over a synthesized frame view — same decision and
  /// stats as the Frame overload.
  bool admit(const net::FrameView& view);

  /// The edit alone: truncate -> anonymize, for a frame admit() accepted.
  net::Frame edit(const net::Frame& frame);

  /// Zero-copy edit: anonymizes `bytes` in place (they must already be
  /// truncated to snaplen, e.g. a record slice the pcap writer returned)
  /// and counts the emission. Dissection uses `wire_length`/`timestamp` so
  /// offsets match what edit() would have produced.
  void edit_in_place(std::span<std::uint8_t> bytes, std::size_t wire_length,
                     util::Nanos timestamp);

  const PipelineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PipelineStats{}; }

 private:
  bool admit_parsed(const net::ParsedFrame& parsed);

  const CaptureConfig& config_;
  Anonymizer anonymizer_;
  PipelineStats stats_;
  std::uint64_t sample_counter_ = 0;
};

}  // namespace patchwork::capture
