// Functional capture session: frames in, pcap out.
//
// This is the path Patchwork's sampling phase drives for every sample
// window (Fig. 8). Whatever the method, the output is a pcap byte stream
// plus accounting of where frames went: excluded by the filter, thinned by
// 1-in-N sampling, or lost to the capture path's capacity limit. Capacity
// loss is computed from the host cost models, so a 100G mirror into a
// 2-core tcpdump really does lose most of its frames here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "capture/config.hpp"
#include "capture/fpga_pipeline.hpp"
#include "host/host_system.hpp"
#include "net/frame_store.hpp"
#include "pcap/pcap.hpp"
#include "util/rng.hpp"

namespace patchwork::capture {

struct CaptureStats {
  std::uint64_t offered = 0;
  std::uint64_t dropped_capacity = 0;  ///< Lost before/inside the host path.
  std::uint64_t filtered_out = 0;
  std::uint64_t sampled_out = 0;
  std::uint64_t captured = 0;
  std::uint64_t bytes_stored = 0;
  double capacity_pps = 0.0;
  double offered_pps = 0.0;

  double loss_fraction() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(dropped_capacity) /
                              static_cast<double>(offered);
  }
};

struct CaptureResult {
  std::vector<std::uint8_t> pcap;
  CaptureStats stats;
};

class CaptureSession {
 public:
  CaptureSession(CaptureConfig config, host::HostSpec host, util::Rng& rng)
      : config_(std::move(config)), host_(host), rng_(rng) {}

  /// Capture one sample window. `frames` are the frames the mirror
  /// delivered to the NIC during the window; `offered_pps` is the true
  /// arrival rate they represent (the frame list may be a scaled-down
  /// packet-level rendering of a much faster stream). This is the primary
  /// zero-copy path: views alias the synthesis arena and surviving bytes
  /// are serialized straight into the pcap stream, edited in place.
  CaptureResult run(std::span<const net::FrameView> frames,
                    double offered_pps);

  /// Owning-frame convenience overload; converts to views and delegates.
  /// Byte-identical output and RNG consumption to the view path.
  CaptureResult run(std::span<const net::Frame> frames, double offered_pps);

  const CaptureConfig& config() const { return config_; }

  /// Capacity (frames/s) of the configured method for a given mean wire
  /// frame size.
  double capacity_pps(double mean_wire_bytes) const;

 private:
  CaptureConfig config_;
  host::HostSpec host_;
  util::Rng& rng_;
};

}  // namespace patchwork::capture
