#include "capture/session.hpp"

#include <algorithm>

#include "net/parser.hpp"

namespace patchwork::capture {

std::string_view to_string(CaptureMethod m) {
  switch (m) {
    case CaptureMethod::kTcpdump: return "tcpdump";
    case CaptureMethod::kDpdk: return "dpdk";
    case CaptureMethod::kFpgaDpdk: return "fpga+dpdk";
  }
  return "?";
}

double CaptureSession::capacity_pps(double mean_wire_bytes) const {
  const std::size_t wire = static_cast<std::size_t>(mean_wire_bytes);
  switch (config_.method) {
    case CaptureMethod::kTcpdump:
      // tcpdump is single-threaded regardless of the VM's core count.
      return host_.kernel_capacity_pps(wire, config_.snaplen);
    case CaptureMethod::kDpdk:
      return host_.dpdk_capacity_pps(config_.cores, config_.snaplen, wire,
                                     /*fpga_offload=*/false);
    case CaptureMethod::kFpgaDpdk:
      return host_.dpdk_capacity_pps(config_.cores, config_.snaplen, wire,
                                     /*fpga_offload=*/true);
  }
  return 0.0;
}

CaptureResult CaptureSession::run(std::span<const net::Frame> frames,
                                  double offered_pps) {
  CaptureResult result;
  CaptureStats& stats = result.stats;
  stats.offered = frames.size();
  stats.offered_pps = offered_pps;

  double mean_wire = 0.0;
  for (const net::Frame& f : frames) {
    mean_wire += static_cast<double>(f.wire_length());
  }
  if (!frames.empty()) mean_wire /= static_cast<double>(frames.size());
  stats.capacity_pps = capacity_pps(std::max(64.0, mean_wire));

  FpgaPipeline pipeline(config_);
  pcap::PcapWriter writer(config_.snaplen);

  // With FPGA offload, filtering and sampling happen on the NIC at line
  // rate, so the host only sees the surviving stream; otherwise every
  // offered frame consumes host capacity *before* filtering.
  const bool offload = config_.method == CaptureMethod::kFpgaDpdk;

  // Host-capacity survival probability for frames that consume host
  // capacity. Applied per frame so timing structure is preserved.
  auto survives_host = [&](double rate_pps) {
    if (rate_pps <= stats.capacity_pps) return true;
    return rng_.chance(stats.capacity_pps / rate_pps);
  };

  // Effective host arrival rate under offload: the filter/sampler thins
  // the stream on the NIC first. Estimate the pass fraction from the data.
  double pass_fraction = 1.0;
  if (offload) {
    std::uint64_t pass = 0;
    for (const net::Frame& f : frames) {
      if (config_.filter.matches(net::parse_frame(f))) ++pass;
    }
    pass_fraction = frames.empty()
                        ? 1.0
                        : static_cast<double>(pass) /
                              static_cast<double>(frames.size());
    if (config_.sample_1_in_n > 1) {
      pass_fraction /= static_cast<double>(config_.sample_1_in_n);
    }
  }

  for (const net::Frame& frame : frames) {
    if (!offload) {
      // Frame hits the host first; capacity loss precedes the filter.
      if (!survives_host(offered_pps)) {
        ++stats.dropped_capacity;
        continue;
      }
      const auto processed = pipeline.process(frame);
      if (!processed) continue;  // Counted by pipeline stats below.
      writer.write(*processed);
      ++stats.captured;
    } else {
      // NIC-side filter/sample at line rate, then host capacity on the
      // thinned stream.
      const auto processed = pipeline.process(frame);
      if (!processed) continue;
      if (!survives_host(offered_pps * pass_fraction)) {
        ++stats.dropped_capacity;
        continue;
      }
      writer.write(*processed);
      ++stats.captured;
    }
  }
  stats.filtered_out = pipeline.stats().filtered_out;
  stats.sampled_out = pipeline.stats().sampled_out;
  stats.bytes_stored = writer.bytes_written();
  result.pcap = writer.take_buffer();
  return result;
}

}  // namespace patchwork::capture
