#include "capture/session.hpp"

#include <algorithm>
#include <vector>

#include "net/parser.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace patchwork::capture {

namespace {

// Cached handles: registered once, updated lock-free per sample window.
// All are deterministic-class — frame counts are per-frame sums and the
// ring high-water is a max-fold, both schedule-independent.
struct CaptureMetrics {
  obs::Counter& offered = obs::registry().counter(
      "patchwork_capture_frames_total", "Frames handled by capture sessions",
      {{"disposition", "offered"}});
  obs::Counter& captured = obs::registry().counter(
      "patchwork_capture_frames_total", "Frames handled by capture sessions",
      {{"disposition", "captured"}});
  obs::Counter& dropped_ring = obs::registry().counter(
      "patchwork_capture_dropped_frames_total",
      "Frames lost inside capture sessions, by cause",
      {{"cause", "ring_capacity"}});
  obs::Counter& dropped_filter = obs::registry().counter(
      "patchwork_capture_dropped_frames_total",
      "Frames lost inside capture sessions, by cause", {{"cause", "filter"}});
  obs::Counter& dropped_sampler = obs::registry().counter(
      "patchwork_capture_dropped_frames_total",
      "Frames lost inside capture sessions, by cause",
      {{"cause", "sampler"}});
  obs::LatencyHistogram& burst_frames = obs::registry().histogram(
      "patchwork_capture_burst_frames",
      "Frames delivered to a session per sample window");
  obs::Gauge& ring_high_water = obs::registry().gauge(
      "patchwork_capture_ring_occupancy_high_water_frames",
      "Worst modeled capture-ring backlog across all sessions (frames)");
};

CaptureMetrics& capture_metrics() {
  static CaptureMetrics m;
  return m;
}

}  // namespace

std::string_view to_string(CaptureMethod m) {
  switch (m) {
    case CaptureMethod::kTcpdump: return "tcpdump";
    case CaptureMethod::kDpdk: return "dpdk";
    case CaptureMethod::kFpgaDpdk: return "fpga+dpdk";
  }
  return "?";
}

double CaptureSession::capacity_pps(double mean_wire_bytes) const {
  const std::size_t wire = static_cast<std::size_t>(mean_wire_bytes);
  switch (config_.method) {
    case CaptureMethod::kTcpdump:
      // tcpdump is single-threaded regardless of the VM's core count.
      return host_.kernel_capacity_pps(wire, config_.snaplen);
    case CaptureMethod::kDpdk:
      return host_.dpdk_capacity_pps(config_.cores, config_.snaplen, wire,
                                     /*fpga_offload=*/false);
    case CaptureMethod::kFpgaDpdk:
      return host_.dpdk_capacity_pps(config_.cores, config_.snaplen, wire,
                                     /*fpga_offload=*/true);
  }
  return 0.0;
}

CaptureResult CaptureSession::run(std::span<const net::Frame> frames,
                                  double offered_pps) {
  // Borrow each frame's bytes as a view; the primary path never copies.
  std::vector<net::FrameView> views;
  views.reserve(frames.size());
  for (const net::Frame& f : frames) {
    views.push_back(net::FrameView{f.bytes(), f.wire_length(), f.timestamp()});
  }
  return run(std::span<const net::FrameView>(views), offered_pps);
}

CaptureResult CaptureSession::run(std::span<const net::FrameView> frames,
                                  double offered_pps) {
  CaptureResult result;
  CaptureStats& stats = result.stats;
  stats.offered = frames.size();
  stats.offered_pps = offered_pps;

  double mean_wire = 0.0;
  for (const net::FrameView& f : frames) {
    mean_wire += static_cast<double>(f.wire_length);
  }
  if (!frames.empty()) mean_wire /= static_cast<double>(frames.size());
  stats.capacity_pps = capacity_pps(std::max(64.0, mean_wire));

  FpgaPipeline pipeline(config_);
  pcap::PcapWriter writer(config_.snaplen);

  // With FPGA offload, filtering and sampling happen on the NIC at line
  // rate, so the host only sees the surviving stream; otherwise every
  // offered frame consumes host capacity *before* filtering.
  const bool offload = config_.method == CaptureMethod::kFpgaDpdk;

  // Host-capacity survival probability for frames that consume host
  // capacity. Applied per frame so timing structure is preserved.
  auto survives_host = [&](double rate_pps) {
    if (rate_pps <= stats.capacity_pps) return true;
    return rng_.chance(stats.capacity_pps / rate_pps);
  };

  // Effective host arrival rate under offload: the filter/sampler thins
  // the stream on the NIC first. Estimate the pass fraction from the data.
  double pass_fraction = 1.0;
  if (offload) {
    std::uint64_t pass = 0;
    for (const net::FrameView& f : frames) {
      if (config_.filter.matches(
              net::parse_bytes(f.bytes, f.wire_length, f.timestamp))) {
        ++pass;
      }
    }
    pass_fraction = frames.empty()
                        ? 1.0
                        : static_cast<double>(pass) /
                              static_cast<double>(frames.size());
    if (config_.sample_1_in_n > 1) {
      pass_fraction /= static_cast<double>(config_.sample_1_in_n);
    }
  }

  // The inner loop, staged so each phase is observable as one span per
  // sample window. Stage order matches the data path of each method —
  // offload filters on the NIC before frames reach the host ring, the
  // kernel path drains the ring before the filter runs — and every stage
  // preserves per-frame order, so drop decisions, RNG draws, and the
  // written pcap are byte-identical to the fused loop this replaces.
  std::vector<const net::FrameView*> admitted;
  admitted.reserve(frames.size());
  if (offload) {
    {
      // NIC-side filter/sample at line rate.
      OBS_SPAN("session/filter");
      for (const net::FrameView& frame : frames) {
        if (pipeline.admit(frame)) admitted.push_back(&frame);
      }
    }
    {
      // Host capacity on the thinned stream.
      OBS_SPAN("session/drain");
      std::size_t kept = 0;
      for (const net::FrameView* frame : admitted) {
        if (survives_host(offered_pps * pass_fraction)) {
          admitted[kept++] = frame;
        } else {
          ++stats.dropped_capacity;
        }
      }
      admitted.resize(kept);
    }
  } else {
    std::vector<const net::FrameView*> drained;
    drained.reserve(frames.size());
    {
      // Frames hit the host first; capacity loss precedes the filter.
      OBS_SPAN("session/drain");
      for (const net::FrameView& frame : frames) {
        if (survives_host(offered_pps)) {
          drained.push_back(&frame);
        } else {
          ++stats.dropped_capacity;
        }
      }
    }
    {
      OBS_SPAN("session/filter");
      for (const net::FrameView* frame : drained) {
        if (pipeline.admit(*frame)) admitted.push_back(frame);
      }
    }
  }
  {
    // Serialize the survivors straight into the pcap stream (the writer
    // truncates to snaplen as it slices), then anonymize each record's
    // bytes where they landed — zero intermediate Frame copies.
    OBS_SPAN("session/anonymize");
    for (const net::FrameView* frame : admitted) {
      std::span<std::uint8_t> record = writer.write_record(
          frame->bytes, frame->wire_length, frame->timestamp);
      pipeline.edit_in_place(record, frame->wire_length, frame->timestamp);
      ++stats.captured;
    }
  }
  stats.filtered_out = pipeline.stats().filtered_out;
  stats.sampled_out = pipeline.stats().sampled_out;
  stats.bytes_stored = writer.bytes_written();
  result.pcap = writer.take_buffer();

  CaptureMetrics& metrics = capture_metrics();
  metrics.offered.add(stats.offered);
  metrics.captured.add(stats.captured);
  if (stats.dropped_capacity > 0) {
    metrics.dropped_ring.add(stats.dropped_capacity);
  }
  if (stats.filtered_out > 0) metrics.dropped_filter.add(stats.filtered_out);
  if (stats.sampled_out > 0) metrics.dropped_sampler.add(stats.sampled_out);
  metrics.burst_frames.observe(stats.offered);

  // Modeled ring occupancy: frames that arrive above drain capacity pile up
  // in the RX ring (DPDK rx_queue_depth) or the kernel capture buffer
  // (tcpdump_buffer_bytes worth of snapped records) until it clips. A pure
  // function of config + offered load, so the max-fold stays deterministic.
  if (offered_pps > 0.0 && stats.offered > 0) {
    const double ring_slots =
        config_.method == CaptureMethod::kTcpdump
            ? static_cast<double>(config_.tcpdump_buffer_bytes) /
                  static_cast<double>(config_.snaplen +
                                      pcap::kRecordHeaderSize)
            : static_cast<double>(config_.rx_queue_depth);
    const double window_secs =
        static_cast<double>(stats.offered) / offered_pps;
    const double host_pps = offload ? offered_pps * pass_fraction
                                    : offered_pps;
    const double backlog =
        std::max(0.0, host_pps - stats.capacity_pps) * window_secs;
    metrics.ring_high_water.observe_max(std::min(ring_slots, backlog));
  }
  return result;
}

}  // namespace patchwork::capture
