#include "capture/fpga_pipeline.hpp"

namespace patchwork::capture {

bool FpgaPipeline::admit(const net::Frame& frame) {
  ++stats_.seen;
  const net::ParsedFrame parsed = net::parse_frame(frame);
  if (!config_.filter.matches(parsed)) {
    ++stats_.filtered_out;
    return false;
  }
  if (config_.sample_1_in_n > 1) {
    if (sample_counter_++ % config_.sample_1_in_n != 0) {
      ++stats_.sampled_out;
      return false;
    }
  }
  return true;
}

net::Frame FpgaPipeline::edit(const net::Frame& frame) {
  net::Frame out = frame.truncate(config_.snaplen);
  if (config_.anonymize) {
    // Re-dissect the truncated copy so rewrite offsets are in bounds.
    std::vector<std::uint8_t> bytes(out.bytes().begin(), out.bytes().end());
    const net::ParsedFrame reparsed = net::parse_frame(out);
    anonymizer_.scrub(bytes, reparsed);
    out = net::Frame(std::move(bytes), out.wire_length(), out.timestamp());
  }
  ++stats_.emitted;
  return out;
}

std::optional<net::Frame> FpgaPipeline::process(const net::Frame& frame) {
  if (!admit(frame)) return std::nullopt;
  return edit(frame);
}

}  // namespace patchwork::capture
