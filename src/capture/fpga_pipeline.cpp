#include "capture/fpga_pipeline.hpp"

namespace patchwork::capture {

bool FpgaPipeline::admit_parsed(const net::ParsedFrame& parsed) {
  ++stats_.seen;
  if (!config_.filter.matches(parsed)) {
    ++stats_.filtered_out;
    return false;
  }
  if (config_.sample_1_in_n > 1) {
    if (sample_counter_++ % config_.sample_1_in_n != 0) {
      ++stats_.sampled_out;
      return false;
    }
  }
  return true;
}

bool FpgaPipeline::admit(const net::Frame& frame) {
  return admit_parsed(net::parse_frame(frame));
}

bool FpgaPipeline::admit(const net::FrameView& view) {
  return admit_parsed(
      net::parse_bytes(view.bytes, view.wire_length, view.timestamp));
}

net::Frame FpgaPipeline::edit(const net::Frame& frame) {
  net::Frame out = frame.truncate(config_.snaplen);
  if (config_.anonymize) {
    // Re-dissect the truncated copy so rewrite offsets are in bounds.
    std::vector<std::uint8_t> bytes(out.bytes().begin(), out.bytes().end());
    const net::ParsedFrame reparsed = net::parse_frame(out);
    anonymizer_.scrub(bytes, reparsed);
    out = net::Frame(std::move(bytes), out.wire_length(), out.timestamp());
  }
  ++stats_.emitted;
  return out;
}

void FpgaPipeline::edit_in_place(std::span<std::uint8_t> bytes,
                                 std::size_t wire_length,
                                 util::Nanos timestamp) {
  if (config_.anonymize) {
    // Dissect the (already truncated) bytes so rewrite offsets are in
    // bounds, then scrub them where they sit.
    const net::ParsedFrame parsed =
        net::parse_bytes(bytes, wire_length, timestamp);
    anonymizer_.scrub(bytes, parsed);
  }
  ++stats_.emitted;
}

std::optional<net::Frame> FpgaPipeline::process(const net::Frame& frame) {
  if (!admit(frame)) return std::nullopt;
  return edit(frame);
}

}  // namespace patchwork::capture
