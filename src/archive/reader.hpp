// Reading side of the archive: a defensive scan plus a record assembler.
//
// The scan walks the block framing and classifies damage:
//   - a complete block whose CRC fails is *skipped* (the length field still
//     frames it, so the scan resynchronizes at the next block) and counted
//     in archive_corrupt_blocks_total;
//   - an unframeable tail — header or payload running past EOF, or a length
//     field beyond kMaxBlockPayload — ends the scan; `valid_bytes` marks
//     the last byte of the final complete block so the writer can truncate
//     the damage away on its next open.
// A file-header version newer than this reader rejects cleanly
// (kVersionTooNew) instead of misparsing; so does a per-block payload
// version (those blocks are skipped and counted, the rest still load).
//
// Assembly turns the scanned blocks into the *logical* record sequence:
// incremental compaction appends rollups as kPendingRollup blocks plus a
// kSupersede marker instead of rewriting the file, so the assembler commits
// each marked rollup in place of the records it supersedes (keeping the
// oldest-first fold order) and ignores pending rollups whose marker never
// landed (a crash mid-commit). Superseded and orphaned blocks stay on disk
// as garbage until a GC rewrite; their byte total is reported so the
// compactor can decide when a rewrite pays for itself.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "archive/format.hpp"
#include "archive/record.hpp"

namespace patchwork::archive {

enum class OpenError : std::uint8_t {
  kNone = 0,
  kIo,             ///< Missing/unreadable file (or beyond kMaxArchiveBytes).
  kBadMagic,       ///< Too short for a header, or wrong magic.
  kVersionTooNew,  ///< File format version newer than this reader.
};

std::string to_string(OpenError error);

/// One framed, CRC-verified block (not yet decoded).
struct ScannedBlock {
  BlockType type = BlockType::kEpoch;
  std::uint8_t payload_version = 0;
  std::vector<std::uint8_t> payload;
};

struct ScanResult {
  OpenError error = OpenError::kNone;
  std::uint16_t format_version = 0;
  std::vector<ScannedBlock> blocks;  ///< File order, CRC-verified.
  /// Prefix length ending at the last completely framed block — the safe
  /// truncation point when damaged_tail is set.
  std::uint64_t valid_bytes = 0;
  std::uint64_t corrupt_blocks = 0;  ///< Framed but CRC-mismatched, skipped.
  bool damaged_tail = false;

  bool ok() const { return error == OpenError::kNone; }
};

/// Scan in-memory archive bytes (no file I/O, no metrics).
ScanResult scan_archive_bytes(std::span<const std::uint8_t> bytes);

/// The logical view of a scanned block sequence after supersede markers
/// are applied (see the header comment).
struct AssembledArchive {
  std::vector<EpochRecord> records;  ///< Logical, oldest-first fold order.
  /// Bytes (header + payload) of the blocks that produced `records`.
  std::uint64_t live_block_bytes = 0;
  std::uint64_t superseded_records = 0;  ///< Retired by supersede markers.
  std::uint64_t orphan_pending = 0;   ///< Pending rollups with no marker.
  std::uint64_t undecodable_blocks = 0;  ///< CRC-valid, payload won't parse.
  std::uint64_t skipped_newer = 0;    ///< Newer payload version or type.
};

AssembledArchive assemble_blocks(std::vector<ScannedBlock> blocks);

/// Loads every decodable record from an archive file, in logical order
/// (oldest first — the fold order every consumer relies on).
class ArchiveReader {
 public:
  /// Scans the file, verifies CRCs, decodes and assembles records, and
  /// bumps the archive_* metrics for any damage found. Never modifies the
  /// file.
  OpenError open(const std::string& path);

  const std::vector<EpochRecord>& records() const { return records_; }
  std::vector<EpochRecord> take_records() { return std::move(records_); }

  std::uint64_t valid_bytes() const { return valid_bytes_; }
  std::uint64_t corrupt_blocks() const { return corrupt_blocks_; }
  std::uint64_t skipped_newer_blocks() const { return skipped_newer_; }
  bool damaged_tail() const { return damaged_tail_; }

  /// Records retired in place by supersede markers (their blocks remain on
  /// disk as garbage until GC).
  std::uint64_t superseded_records() const { return superseded_records_; }
  /// Pending rollups whose commit marker never landed (crash mid-commit).
  std::uint64_t orphan_pending() const { return orphan_pending_; }
  /// Bytes of the blocks backing the logical records.
  std::uint64_t live_bytes() const { return live_bytes_; }
  /// Scanned bytes that no longer contribute a record: superseded blocks,
  /// orphaned pending rollups, markers, and corrupt blocks.
  std::uint64_t garbage_bytes() const;

 private:
  std::vector<EpochRecord> records_;
  std::uint64_t valid_bytes_ = 0;
  std::uint64_t corrupt_blocks_ = 0;
  std::uint64_t skipped_newer_ = 0;
  std::uint64_t superseded_records_ = 0;
  std::uint64_t orphan_pending_ = 0;
  std::uint64_t live_bytes_ = 0;
  bool damaged_tail_ = false;
};

}  // namespace patchwork::archive
