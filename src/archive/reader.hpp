// Reading side of the archive: a defensive scan plus a record loader.
//
// The scan walks the block framing and classifies damage:
//   - a complete block whose CRC fails is *skipped* (the length field still
//     frames it, so the scan resynchronizes at the next block) and counted
//     in archive_corrupt_blocks_total;
//   - an unframeable tail — header or payload running past EOF, or a length
//     field beyond kMaxBlockPayload — ends the scan; `valid_bytes` marks
//     the last byte of the final complete block so the writer can truncate
//     the damage away on its next open.
// A file-header version newer than this reader rejects cleanly
// (kVersionTooNew) instead of misparsing; so does a per-block payload
// version (those blocks are skipped and counted, the rest still load).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "archive/format.hpp"
#include "archive/record.hpp"

namespace patchwork::archive {

enum class OpenError : std::uint8_t {
  kNone = 0,
  kIo,             ///< Missing/unreadable file (or beyond kMaxArchiveBytes).
  kBadMagic,       ///< Too short for a header, or wrong magic.
  kVersionTooNew,  ///< File format version newer than this reader.
};

std::string to_string(OpenError error);

/// One framed, CRC-verified block (not yet decoded).
struct ScannedBlock {
  BlockType type = BlockType::kEpoch;
  std::uint8_t payload_version = 0;
  std::vector<std::uint8_t> payload;
};

struct ScanResult {
  OpenError error = OpenError::kNone;
  std::uint16_t format_version = 0;
  std::vector<ScannedBlock> blocks;  ///< File order, CRC-verified.
  /// Prefix length ending at the last completely framed block — the safe
  /// truncation point when damaged_tail is set.
  std::uint64_t valid_bytes = 0;
  std::uint64_t corrupt_blocks = 0;  ///< Framed but CRC-mismatched, skipped.
  bool damaged_tail = false;

  bool ok() const { return error == OpenError::kNone; }
};

/// Scan in-memory archive bytes (no file I/O, no metrics).
ScanResult scan_archive_bytes(std::span<const std::uint8_t> bytes);

/// Loads every decodable record from an archive file, in file order
/// (oldest first — the fold order every consumer relies on).
class ArchiveReader {
 public:
  /// Scans the file, verifies CRCs, decodes records, and bumps the
  /// archive_* metrics for any damage found. Never modifies the file.
  OpenError open(const std::string& path);

  const std::vector<EpochRecord>& records() const { return records_; }
  std::vector<EpochRecord> take_records() { return std::move(records_); }

  std::uint64_t valid_bytes() const { return valid_bytes_; }
  std::uint64_t corrupt_blocks() const { return corrupt_blocks_; }
  std::uint64_t skipped_newer_blocks() const { return skipped_newer_; }
  bool damaged_tail() const { return damaged_tail_; }

 private:
  std::vector<EpochRecord> records_;
  std::uint64_t valid_bytes_ = 0;
  std::uint64_t corrupt_blocks_ = 0;
  std::uint64_t skipped_newer_ = 0;
  bool damaged_tail_ = false;
};

}  // namespace patchwork::archive
