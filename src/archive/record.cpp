#include "archive/record.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "archive/format.hpp"
#include "util/byte_io.hpp"

namespace patchwork::archive {

std::uint64_t HistCounts::total() const {
  std::uint64_t sum = underflow + overflow;
  for (std::uint64_t c : counts) sum += c;
  return sum;
}

double HistCounts::fraction_at_or_above(double lo) const {
  const std::uint64_t all = total();
  if (all == 0) return 0.0;
  double hits = static_cast<double>(overflow);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i >= edges.size()) break;
    const double a = edges[i];
    if (i + 1 >= edges.size()) {
      // Trailing bucket without an upper edge (malformed shape): classify
      // by its lower edge alone, as before.
      if (a >= lo) hits += static_cast<double>(counts[i]);
      continue;
    }
    const double b = edges[i + 1];
    if (a >= lo) {
      hits += static_cast<double>(counts[i]);
    } else if (b > lo && b > a) {
      // The bucket straddles lo: attribute the overlap fraction, so an
      // off-edge threshold is no longer systematically undercounted.
      hits += static_cast<double>(counts[i]) * ((b - lo) / (b - a));
    }
  }
  return hits / static_cast<double>(all);
}

namespace {

/// Re-bin `src` into `dst`, whose edges are a subset of src's (plus
/// under/overflow). Because dst's edges all appear in src's, no src bucket
/// straddles a dst edge: each bucket lands wholly in one dst bucket, in
/// underflow (below dst's first edge), or in overflow (at/above the last).
void rebin_into(HistCounts& dst, const HistCounts& src) {
  dst.underflow += src.underflow;
  dst.overflow += src.overflow;
  for (std::size_t i = 0; i < src.counts.size(); ++i) {
    const std::uint64_t c = src.counts[i];
    if (c == 0) continue;
    if (dst.edges.empty() || i >= src.edges.size()) {
      // No common layout (or a count with no lower edge): the shape is
      // lost but the mass is kept, so total() stays sum-invariant.
      dst.underflow += c;
      continue;
    }
    const double a = src.edges[i];
    if (a < dst.edges.front()) {
      // Entirely below the common span: dst's first edge is also one of
      // src's edges, so a bucket starting below it ends at or below it.
      dst.underflow += c;
      continue;
    }
    if (a >= dst.edges.back()) {
      dst.overflow += c;
      continue;
    }
    const auto it =
        std::upper_bound(dst.edges.begin(), dst.edges.end(), a);
    const std::size_t j =
        static_cast<std::size_t>(it - dst.edges.begin()) - 1;
    if (j < dst.counts.size()) {
      dst.counts[j] += c;
    } else {
      dst.overflow += c;
    }
  }
}

}  // namespace

void HistCounts::merge(const HistCounts& other) {
  if (edges == other.edges && counts.size() == other.counts.size()) {
    underflow += other.underflow;
    overflow += other.overflow;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] += other.counts[i];
    }
    return;
  }
  if (other.edges.empty()) {
    // The other side has no layout: keep ours; its unclassifiable bucket
    // mass joins underflow so total() still sums.
    underflow += other.underflow;
    overflow += other.overflow;
    for (std::uint64_t c : other.counts) underflow += c;
    return;
  }
  if (edges.empty()) {
    // Adopt the other's layout; our mass joins its under/overflow.
    std::uint64_t uf = underflow;
    const std::uint64_t of = overflow;
    for (std::uint64_t c : counts) uf += c;
    *this = other;
    underflow += uf;
    overflow += of;
    return;
  }
  // Heterogeneous layouts (federated deployments rarely share a config):
  // re-bin both sides into the coarsest common layout — the intersection
  // of the edge sets. Each side's buckets never straddle a shared edge, so
  // the re-binning is exact; mass outside the common span falls back to
  // underflow/overflow. total() is preserved under any merge.
  HistCounts merged;
  std::set_intersection(edges.begin(), edges.end(), other.edges.begin(),
                        other.edges.end(),
                        std::back_inserter(merged.edges));
  merged.counts.assign(
      merged.edges.size() > 1 ? merged.edges.size() - 1 : 0, 0);
  rebin_into(merged, *this);
  rebin_into(merged, other);
  *this = std::move(merged);
}

void EpochRecord::merge_from(const EpochRecord& other) {
  level = std::max({level, other.level, std::uint32_t{1}});
  first_epoch = std::min(first_epoch, other.first_epoch);
  last_epoch = std::max(last_epoch, other.last_epoch);
  epoch_count += other.epoch_count;

  // Label: leading token of the oldest side, trailing token of the newest.
  // Cross-origin merges qualify each end with its deployment tag — epoch
  // labels are only unique per deployment.
  const auto leading = [](const std::string& l) {
    const std::size_t dots = l.find("..");
    return dots == std::string::npos ? l : l.substr(0, dots);
  };
  const auto trailing = [](const std::string& l) {
    const std::size_t dots = l.rfind("..");
    return dots == std::string::npos ? l : l.substr(dots + 2);
  };
  if (origin != other.origin) {
    const auto qualify = [](const std::string& o, const std::string& token) {
      return o.empty() ? token : o + ":" + token;
    };
    label = qualify(origin, leading(label)) + ".." +
            qualify(other.origin, trailing(other.label));
    origin.clear();  // Mixed origins: the rollup belongs to no single one.
  } else {
    label = leading(label) + ".." + trailing(other.label);
  }

  const std::uint64_t end = std::max(start_nanos + duration_nanos,
                                     other.start_nanos +
                                         other.duration_nanos);
  start_nanos = std::min(start_nanos, other.start_nanos);
  duration_nanos = end - start_nanos;
  offered_bps_sum += other.offered_bps_sum;

  samples += other.samples;
  frames += other.frames;
  bad_records += other.bad_records;
  truncated_frames += other.truncated_frames;
  malformed_frames += other.malformed_frames;
  switch_drops_suspected += other.switch_drops_suspected;
  pcap_bytes += other.pcap_bytes;

  frame_sizes.merge(other.frame_sizes);
  occurrence_frames += other.occurrence_frames;
  if (protocol_occurrences.size() < other.protocol_occurrences.size()) {
    protocol_occurrences.resize(other.protocol_occurrences.size(), 0);
  }
  for (std::size_t i = 0; i < other.protocol_occurrences.size(); ++i) {
    protocol_occurrences[i] += other.protocol_occurrences[i];
  }
  tcp_frames += other.tcp_frames;
  tcp_syn += other.tcp_syn;
  tcp_fin += other.tcp_fin;
  tcp_rst += other.tcp_rst;
  tcp_pure_ack += other.tcp_pure_ack;
  tag_frames += other.tag_frames;
  vlan_tagged += other.vlan_tagged;
  mpls_tagged += other.mpls_tagged;
  both_tagged += other.both_tagged;
  untagged += other.untagged;
  flow_snippets += other.flow_snippets;
  largest_flow_bytes = std::max(largest_flow_bytes, other.largest_flow_bytes);

  std::map<std::string, SiteEpochLoad> by_site;
  for (SiteEpochLoad& load : site_loads) {
    by_site.emplace(load.site, std::move(load));
  }
  for (const SiteEpochLoad& load : other.site_loads) {
    auto [it, inserted] = by_site.emplace(load.site, load);
    if (!inserted) {
      it->second.samples += load.samples;
      it->second.frames += load.frames;
      it->second.wire_bytes += load.wire_bytes;
      it->second.pcap_bytes += load.pcap_bytes;
      it->second.switch_drops_suspected += load.switch_drops_suspected;
      it->second.frame_sizes.merge(load.frame_sizes);
    }
  }
  site_loads.clear();
  site_loads.reserve(by_site.size());
  for (auto& [site, load] : by_site) site_loads.push_back(std::move(load));

  top_flows.merge(other.top_flows);
  manifest_json.clear();  // A merged manifest has no meaning.
}

RecordIdent record_ident(const EpochRecord& record) {
  return {record.origin, record.level, record.first_epoch,
          record.last_epoch};
}

namespace {

void put_f64(std::vector<std::uint8_t>& out, double v) {
  util::put_be64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  util::put_be32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_hist(std::vector<std::uint8_t>& out, const HistCounts& h) {
  util::put_be32(out, static_cast<std::uint32_t>(h.edges.size()));
  for (double e : h.edges) put_f64(out, e);
  util::put_be32(out, static_cast<std::uint32_t>(h.counts.size()));
  for (std::uint64_t c : h.counts) util::put_be64(out, c);
  util::put_be64(out, h.underflow);
  util::put_be64(out, h.overflow);
}

/// Bounds-checked sequential reader; any failed read poisons the cursor so
/// the decode can check ok() once at the end.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> buf) : buf_(buf) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return ok_ && off_ == buf_.size(); }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return util::get_u8(buf_, off_ - 1);
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    return util::get_be32(buf_, off_ - 4);
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    return util::get_be64(buf_, off_ - 8);
  }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string string() {
    const std::uint32_t len = u32();
    if (!take(len)) return {};
    return std::string(buf_.begin() + static_cast<std::ptrdiff_t>(off_ - len),
                       buf_.begin() + static_cast<std::ptrdiff_t>(off_));
  }

  /// Element-count prefix with a sanity bound: each element needs at least
  /// `min_elem_bytes` more input, so absurd counts fail fast instead of
  /// allocating.
  std::size_t count(std::size_t min_elem_bytes) {
    const std::uint32_t n = u32();
    if (!ok_) return 0;
    if (min_elem_bytes > 0 &&
        n > (buf_.size() - off_) / min_elem_bytes) {
      ok_ = false;
      return 0;
    }
    return n;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || !util::fits(buf_, off_, n)) {
      ok_ = false;
      return false;
    }
    off_ += n;
    return true;
  }

  std::span<const std::uint8_t> buf_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

HistCounts get_hist(Cursor& c) {
  HistCounts h;
  h.edges.resize(c.count(8));
  for (double& e : h.edges) e = c.f64();
  h.counts.resize(c.count(8));
  for (std::uint64_t& v : h.counts) v = c.u64();
  h.underflow = c.u64();
  h.overflow = c.u64();
  return h;
}

void put_ident(std::vector<std::uint8_t>& out, const RecordIdent& ident) {
  put_string(out, ident.origin);
  util::put_be32(out, ident.level);
  util::put_be64(out, ident.first_epoch);
  util::put_be64(out, ident.last_epoch);
}

RecordIdent get_ident(Cursor& c) {
  RecordIdent ident;
  ident.origin = c.string();
  ident.level = c.u32();
  ident.first_epoch = c.u64();
  ident.last_epoch = c.u64();
  return ident;
}

constexpr std::size_t kIdentMinBytes = 4 + 4 + 8 + 8;

}  // namespace

std::vector<std::uint8_t> encode_record(const EpochRecord& r) {
  std::vector<std::uint8_t> out;
  util::put_be32(out, r.level);
  util::put_be64(out, r.first_epoch);
  util::put_be64(out, r.last_epoch);
  util::put_be32(out, r.epoch_count);
  put_string(out, r.label);
  put_string(out, r.origin);  // Payload v2: the deployment tag.
  util::put_be64(out, r.start_nanos);
  util::put_be64(out, r.duration_nanos);
  put_f64(out, r.offered_bps_sum);

  util::put_be64(out, r.samples);
  util::put_be64(out, r.frames);
  util::put_be64(out, r.bad_records);
  util::put_be64(out, r.truncated_frames);
  util::put_be64(out, r.malformed_frames);
  util::put_be64(out, r.switch_drops_suspected);
  util::put_be64(out, r.pcap_bytes);

  put_hist(out, r.frame_sizes);
  util::put_be64(out, r.occurrence_frames);
  util::put_be32(out, static_cast<std::uint32_t>(
                          r.protocol_occurrences.size()));
  for (std::uint64_t v : r.protocol_occurrences) util::put_be64(out, v);
  util::put_be64(out, r.tcp_frames);
  util::put_be64(out, r.tcp_syn);
  util::put_be64(out, r.tcp_fin);
  util::put_be64(out, r.tcp_rst);
  util::put_be64(out, r.tcp_pure_ack);
  util::put_be64(out, r.tag_frames);
  util::put_be64(out, r.vlan_tagged);
  util::put_be64(out, r.mpls_tagged);
  util::put_be64(out, r.both_tagged);
  util::put_be64(out, r.untagged);
  util::put_be64(out, r.flow_snippets);
  util::put_be64(out, r.largest_flow_bytes);

  util::put_be32(out, static_cast<std::uint32_t>(r.site_loads.size()));
  for (const SiteEpochLoad& load : r.site_loads) {
    put_string(out, load.site);
    util::put_be64(out, load.samples);
    util::put_be64(out, load.frames);
    util::put_be64(out, load.wire_bytes);
    util::put_be64(out, load.pcap_bytes);
    util::put_be64(out, load.switch_drops_suspected);
    put_hist(out, load.frame_sizes);
  }

  util::put_be32(out, static_cast<std::uint32_t>(r.top_flows.capacity()));
  util::put_be64(out, r.top_flows.floor());
  const auto& entries = r.top_flows.entries();  // Canonical order.
  util::put_be32(out, static_cast<std::uint32_t>(entries.size()));
  for (const TopFlowSketch::Entry& e : entries) {
    put_string(out, e.key);
    util::put_be64(out, e.count);
    util::put_be64(out, e.error);
  }

  put_string(out, r.manifest_json);
  return out;
}

bool decode_record(std::span<const std::uint8_t> payload,
                   std::uint8_t payload_version, EpochRecord* out) {
  Cursor c(payload);
  EpochRecord r;
  r.level = c.u32();
  r.first_epoch = c.u64();
  r.last_epoch = c.u64();
  r.epoch_count = c.u32();
  r.label = c.string();
  if (payload_version >= 2) r.origin = c.string();
  r.start_nanos = c.u64();
  r.duration_nanos = c.u64();
  r.offered_bps_sum = c.f64();

  r.samples = c.u64();
  r.frames = c.u64();
  r.bad_records = c.u64();
  r.truncated_frames = c.u64();
  r.malformed_frames = c.u64();
  r.switch_drops_suspected = c.u64();
  r.pcap_bytes = c.u64();

  r.frame_sizes = get_hist(c);
  r.occurrence_frames = c.u64();
  r.protocol_occurrences.resize(c.count(8));
  for (std::uint64_t& v : r.protocol_occurrences) v = c.u64();
  r.tcp_frames = c.u64();
  r.tcp_syn = c.u64();
  r.tcp_fin = c.u64();
  r.tcp_rst = c.u64();
  r.tcp_pure_ack = c.u64();
  r.tag_frames = c.u64();
  r.vlan_tagged = c.u64();
  r.mpls_tagged = c.u64();
  r.both_tagged = c.u64();
  r.untagged = c.u64();
  r.flow_snippets = c.u64();
  r.largest_flow_bytes = c.u64();

  r.site_loads.resize(c.count(4 + 5 * 8));
  for (SiteEpochLoad& load : r.site_loads) {
    load.site = c.string();
    load.samples = c.u64();
    load.frames = c.u64();
    load.wire_bytes = c.u64();
    load.pcap_bytes = c.u64();
    load.switch_drops_suspected = c.u64();
    load.frame_sizes = get_hist(c);
  }

  const std::size_t sketch_capacity = c.u32();
  const std::uint64_t sketch_floor = c.u64();
  std::vector<TopFlowSketch::Entry> entries(c.count(4 + 2 * 8));
  for (TopFlowSketch::Entry& e : entries) {
    e.key = c.string();
    e.count = c.u64();
    e.error = c.u64();
  }
  // A wire sketch that violates the space-saving invariants (entries above
  // capacity, error above count) would make merge() silently wrong; treat
  // it as corruption rather than building a poisoned sketch.
  if (!TopFlowSketch::valid_parts(sketch_capacity, entries)) return false;
  r.top_flows = TopFlowSketch::from_parts(sketch_capacity, sketch_floor,
                                          std::move(entries));

  r.manifest_json = c.string();
  if (!c.exhausted()) return false;
  *out = std::move(r);
  return true;
}

bool decode_record(std::span<const std::uint8_t> payload, EpochRecord* out) {
  return decode_record(payload, kPayloadVersion, out);
}

std::vector<std::uint8_t> encode_supersede_marker(const SupersedeMarker& m) {
  std::vector<std::uint8_t> out;
  util::put_be32(out, static_cast<std::uint32_t>(m.commits.size()));
  for (const SupersedeMarker::Commit& commit : m.commits) {
    put_ident(out, commit.rollup);
    util::put_be32(out, static_cast<std::uint32_t>(commit.replaced.size()));
    for (const RecordIdent& ident : commit.replaced) put_ident(out, ident);
  }
  return out;
}

bool decode_supersede_marker(std::span<const std::uint8_t> payload,
                             SupersedeMarker* out) {
  Cursor c(payload);
  SupersedeMarker m;
  m.commits.resize(c.count(kIdentMinBytes + 4));
  for (SupersedeMarker::Commit& commit : m.commits) {
    commit.rollup = get_ident(c);
    commit.replaced.resize(c.count(kIdentMinBytes));
    for (RecordIdent& ident : commit.replaced) ident = get_ident(c);
  }
  if (!c.exhausted()) return false;
  *out = std::move(m);
  return true;
}

}  // namespace patchwork::archive
