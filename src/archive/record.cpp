#include "archive/record.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "util/byte_io.hpp"

namespace patchwork::archive {

std::uint64_t HistCounts::total() const {
  std::uint64_t sum = underflow + overflow;
  for (std::uint64_t c : counts) sum += c;
  return sum;
}

double HistCounts::fraction_at_or_above(double lo) const {
  const std::uint64_t all = total();
  if (all == 0) return 0.0;
  std::uint64_t hits = overflow;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i < edges.size() && edges[i] >= lo) hits += counts[i];
  }
  return static_cast<double>(hits) / static_cast<double>(all);
}

void HistCounts::merge(const HistCounts& other) {
  if (edges.empty() && counts.empty()) {
    *this = other;
    return;
  }
  if (other.counts.empty() && other.underflow == 0 && other.overflow == 0) {
    return;
  }
  underflow += other.underflow;
  overflow += other.overflow;
  const std::size_t n = std::min(counts.size(), other.counts.size());
  for (std::size_t i = 0; i < n; ++i) counts[i] += other.counts[i];
}

void EpochRecord::merge_from(const EpochRecord& other) {
  level = std::max({level, other.level, std::uint32_t{1}});
  first_epoch = std::min(first_epoch, other.first_epoch);
  last_epoch = std::max(last_epoch, other.last_epoch);
  epoch_count += other.epoch_count;

  // Label: leading token of the oldest side, trailing token of the newest.
  const auto leading = [](const std::string& l) {
    const std::size_t dots = l.find("..");
    return dots == std::string::npos ? l : l.substr(0, dots);
  };
  const auto trailing = [](const std::string& l) {
    const std::size_t dots = l.rfind("..");
    return dots == std::string::npos ? l : l.substr(dots + 2);
  };
  label = leading(label) + ".." + trailing(other.label);

  const std::uint64_t end = std::max(start_nanos + duration_nanos,
                                     other.start_nanos +
                                         other.duration_nanos);
  start_nanos = std::min(start_nanos, other.start_nanos);
  duration_nanos = end - start_nanos;
  offered_bps_sum += other.offered_bps_sum;

  samples += other.samples;
  frames += other.frames;
  bad_records += other.bad_records;
  truncated_frames += other.truncated_frames;
  malformed_frames += other.malformed_frames;
  switch_drops_suspected += other.switch_drops_suspected;
  pcap_bytes += other.pcap_bytes;

  frame_sizes.merge(other.frame_sizes);
  occurrence_frames += other.occurrence_frames;
  if (protocol_occurrences.size() < other.protocol_occurrences.size()) {
    protocol_occurrences.resize(other.protocol_occurrences.size(), 0);
  }
  for (std::size_t i = 0; i < other.protocol_occurrences.size(); ++i) {
    protocol_occurrences[i] += other.protocol_occurrences[i];
  }
  tcp_frames += other.tcp_frames;
  tcp_syn += other.tcp_syn;
  tcp_fin += other.tcp_fin;
  tcp_rst += other.tcp_rst;
  tcp_pure_ack += other.tcp_pure_ack;
  tag_frames += other.tag_frames;
  vlan_tagged += other.vlan_tagged;
  mpls_tagged += other.mpls_tagged;
  both_tagged += other.both_tagged;
  untagged += other.untagged;
  flow_snippets += other.flow_snippets;
  largest_flow_bytes = std::max(largest_flow_bytes, other.largest_flow_bytes);

  std::map<std::string, SiteEpochLoad> by_site;
  for (SiteEpochLoad& load : site_loads) {
    by_site.emplace(load.site, std::move(load));
  }
  for (const SiteEpochLoad& load : other.site_loads) {
    auto [it, inserted] = by_site.emplace(load.site, load);
    if (!inserted) {
      it->second.samples += load.samples;
      it->second.frames += load.frames;
      it->second.wire_bytes += load.wire_bytes;
      it->second.pcap_bytes += load.pcap_bytes;
      it->second.switch_drops_suspected += load.switch_drops_suspected;
      it->second.frame_sizes.merge(load.frame_sizes);
    }
  }
  site_loads.clear();
  site_loads.reserve(by_site.size());
  for (auto& [site, load] : by_site) site_loads.push_back(std::move(load));

  top_flows.merge(other.top_flows);
  manifest_json.clear();  // A merged manifest has no meaning.
}

namespace {

void put_f64(std::vector<std::uint8_t>& out, double v) {
  util::put_be64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  util::put_be32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_hist(std::vector<std::uint8_t>& out, const HistCounts& h) {
  util::put_be32(out, static_cast<std::uint32_t>(h.edges.size()));
  for (double e : h.edges) put_f64(out, e);
  util::put_be32(out, static_cast<std::uint32_t>(h.counts.size()));
  for (std::uint64_t c : h.counts) util::put_be64(out, c);
  util::put_be64(out, h.underflow);
  util::put_be64(out, h.overflow);
}

/// Bounds-checked sequential reader; any failed read poisons the cursor so
/// the decode can check ok() once at the end.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> buf) : buf_(buf) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return ok_ && off_ == buf_.size(); }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return util::get_u8(buf_, off_ - 1);
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    return util::get_be32(buf_, off_ - 4);
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    return util::get_be64(buf_, off_ - 8);
  }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string string() {
    const std::uint32_t len = u32();
    if (!take(len)) return {};
    return std::string(buf_.begin() + static_cast<std::ptrdiff_t>(off_ - len),
                       buf_.begin() + static_cast<std::ptrdiff_t>(off_));
  }

  /// Element-count prefix with a sanity bound: each element needs at least
  /// `min_elem_bytes` more input, so absurd counts fail fast instead of
  /// allocating.
  std::size_t count(std::size_t min_elem_bytes) {
    const std::uint32_t n = u32();
    if (!ok_) return 0;
    if (min_elem_bytes > 0 &&
        n > (buf_.size() - off_) / min_elem_bytes) {
      ok_ = false;
      return 0;
    }
    return n;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || !util::fits(buf_, off_, n)) {
      ok_ = false;
      return false;
    }
    off_ += n;
    return true;
  }

  std::span<const std::uint8_t> buf_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

HistCounts get_hist(Cursor& c) {
  HistCounts h;
  h.edges.resize(c.count(8));
  for (double& e : h.edges) e = c.f64();
  h.counts.resize(c.count(8));
  for (std::uint64_t& v : h.counts) v = c.u64();
  h.underflow = c.u64();
  h.overflow = c.u64();
  return h;
}

}  // namespace

std::vector<std::uint8_t> encode_record(const EpochRecord& r) {
  std::vector<std::uint8_t> out;
  util::put_be32(out, r.level);
  util::put_be64(out, r.first_epoch);
  util::put_be64(out, r.last_epoch);
  util::put_be32(out, r.epoch_count);
  put_string(out, r.label);
  util::put_be64(out, r.start_nanos);
  util::put_be64(out, r.duration_nanos);
  put_f64(out, r.offered_bps_sum);

  util::put_be64(out, r.samples);
  util::put_be64(out, r.frames);
  util::put_be64(out, r.bad_records);
  util::put_be64(out, r.truncated_frames);
  util::put_be64(out, r.malformed_frames);
  util::put_be64(out, r.switch_drops_suspected);
  util::put_be64(out, r.pcap_bytes);

  put_hist(out, r.frame_sizes);
  util::put_be64(out, r.occurrence_frames);
  util::put_be32(out, static_cast<std::uint32_t>(
                          r.protocol_occurrences.size()));
  for (std::uint64_t v : r.protocol_occurrences) util::put_be64(out, v);
  util::put_be64(out, r.tcp_frames);
  util::put_be64(out, r.tcp_syn);
  util::put_be64(out, r.tcp_fin);
  util::put_be64(out, r.tcp_rst);
  util::put_be64(out, r.tcp_pure_ack);
  util::put_be64(out, r.tag_frames);
  util::put_be64(out, r.vlan_tagged);
  util::put_be64(out, r.mpls_tagged);
  util::put_be64(out, r.both_tagged);
  util::put_be64(out, r.untagged);
  util::put_be64(out, r.flow_snippets);
  util::put_be64(out, r.largest_flow_bytes);

  util::put_be32(out, static_cast<std::uint32_t>(r.site_loads.size()));
  for (const SiteEpochLoad& load : r.site_loads) {
    put_string(out, load.site);
    util::put_be64(out, load.samples);
    util::put_be64(out, load.frames);
    util::put_be64(out, load.wire_bytes);
    util::put_be64(out, load.pcap_bytes);
    util::put_be64(out, load.switch_drops_suspected);
    put_hist(out, load.frame_sizes);
  }

  util::put_be32(out, static_cast<std::uint32_t>(r.top_flows.capacity()));
  util::put_be64(out, r.top_flows.floor());
  const auto& entries = r.top_flows.entries();  // Canonical order.
  util::put_be32(out, static_cast<std::uint32_t>(entries.size()));
  for (const TopFlowSketch::Entry& e : entries) {
    put_string(out, e.key);
    util::put_be64(out, e.count);
    util::put_be64(out, e.error);
  }

  put_string(out, r.manifest_json);
  return out;
}

bool decode_record(std::span<const std::uint8_t> payload, EpochRecord* out) {
  Cursor c(payload);
  EpochRecord r;
  r.level = c.u32();
  r.first_epoch = c.u64();
  r.last_epoch = c.u64();
  r.epoch_count = c.u32();
  r.label = c.string();
  r.start_nanos = c.u64();
  r.duration_nanos = c.u64();
  r.offered_bps_sum = c.f64();

  r.samples = c.u64();
  r.frames = c.u64();
  r.bad_records = c.u64();
  r.truncated_frames = c.u64();
  r.malformed_frames = c.u64();
  r.switch_drops_suspected = c.u64();
  r.pcap_bytes = c.u64();

  r.frame_sizes = get_hist(c);
  r.occurrence_frames = c.u64();
  r.protocol_occurrences.resize(c.count(8));
  for (std::uint64_t& v : r.protocol_occurrences) v = c.u64();
  r.tcp_frames = c.u64();
  r.tcp_syn = c.u64();
  r.tcp_fin = c.u64();
  r.tcp_rst = c.u64();
  r.tcp_pure_ack = c.u64();
  r.tag_frames = c.u64();
  r.vlan_tagged = c.u64();
  r.mpls_tagged = c.u64();
  r.both_tagged = c.u64();
  r.untagged = c.u64();
  r.flow_snippets = c.u64();
  r.largest_flow_bytes = c.u64();

  r.site_loads.resize(c.count(4 + 5 * 8));
  for (SiteEpochLoad& load : r.site_loads) {
    load.site = c.string();
    load.samples = c.u64();
    load.frames = c.u64();
    load.wire_bytes = c.u64();
    load.pcap_bytes = c.u64();
    load.switch_drops_suspected = c.u64();
    load.frame_sizes = get_hist(c);
  }

  const std::size_t sketch_capacity = c.u32();
  const std::uint64_t sketch_floor = c.u64();
  std::vector<TopFlowSketch::Entry> entries(c.count(4 + 2 * 8));
  for (TopFlowSketch::Entry& e : entries) {
    e.key = c.string();
    e.count = c.u64();
    e.error = c.u64();
  }
  r.top_flows = TopFlowSketch::from_parts(sketch_capacity, sketch_floor,
                                          std::move(entries));

  r.manifest_json = c.string();
  if (!c.exhausted()) return false;
  *out = std::move(r);
  return true;
}

}  // namespace patchwork::archive
