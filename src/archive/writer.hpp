// Appending side of the archive.
//
// open() performs crash recovery before anything else: it scans the file,
// and if the scan reports a damaged tail (a block cut short by a crash or
// an unframeable length field), the file is truncated back to the last
// complete block — append-only storage plus truncate-on-open makes every
// append effectively atomic at block granularity. open() also derives the
// next epoch index from the surviving records so labels and indices stay
// monotonic across process restarts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "archive/reader.hpp"
#include "archive/record.hpp"

namespace patchwork::archive {

class ArchiveWriter {
 public:
  /// Create the file (header only) if absent; otherwise scan it, truncate
  /// any damaged tail, and position after the last record.
  OpenError open(const std::string& path);

  /// Append one record. Raw records (level 0) are stamped with the next
  /// epoch index (first_epoch == last_epoch == index); rollups keep their
  /// span. Returns false on IO failure.
  bool append(EpochRecord record);

  std::uint64_t next_epoch_index() const { return next_epoch_index_; }
  std::uint64_t records_written() const { return records_written_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t next_epoch_index_ = 0;
  std::uint64_t records_written_ = 0;
};

/// Serialize `records` into a complete archive image (header + one block
/// per record; rollups get BlockType::kRollup).
std::vector<std::uint8_t> render_archive(
    const std::vector<EpochRecord>& records);

/// Atomically replace `path` with a fresh archive holding `records` (the
/// compactor's commit step). Returns false on IO failure.
bool write_all(const std::string& path,
               const std::vector<EpochRecord>& records);

}  // namespace patchwork::archive
