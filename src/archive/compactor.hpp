// Rollup compaction: keep the archive under a storage budget by merging
// the oldest records into summary rollups.
//
// One compaction pass groups consecutive records from the oldest end into
// runs of `group_size` and folds each group left-to-right (oldest first)
// into a single rollup. Group merges are independent, so they run through
// util::parallel_map — the output depends only on the grouping, never the
// schedule, so compaction is deterministic at any worker count. Passes
// repeat (rollups merging into higher-level rollups) until the projected
// file fits the budget or a single record remains; the result is committed
// by atomically rewriting the file (write_all), so a crash mid-compaction
// leaves the previous archive intact.
//
// Compaction preserves every sum-derived query answer exactly (the merges
// are commutative-sum folds) and keeps top-K flow answers within the
// sketch's error bound; see record.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "archive/reader.hpp"
#include "archive/record.hpp"

namespace patchwork::archive {

struct CompactionOptions {
  /// Target upper bound for the archive file, in bytes. The compactor
  /// stops merging once the projected image fits (or one record remains —
  /// a single rollup cannot shrink further).
  std::uint64_t storage_budget_bytes = 256 * 1024;
  /// Consecutive records folded into one rollup per pass.
  std::size_t group_size = 4;
};

struct CompactionResult {
  OpenError error = OpenError::kNone;
  bool changed = false;  ///< False when already under budget (a no-op).
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
  std::size_t records_before = 0;
  std::size_t records_after = 0;
  std::size_t passes = 0;

  bool ok() const { return error == OpenError::kNone; }
};

/// Pure form: fold `records` (file order, oldest first) under the options.
/// Returns the compacted sequence; input is returned unchanged when it
/// already fits. Used by compact_archive and directly testable.
std::vector<EpochRecord> compact_records(std::vector<EpochRecord> records,
                                         const CompactionOptions& options,
                                         std::size_t* passes_out = nullptr);

/// Read `path`, compact, and atomically rewrite it if anything merged.
/// Idempotent: a second run over a compacted archive is a byte-level
/// no-op as long as the file still fits the budget.
CompactionResult compact_archive(const std::string& path,
                                 const CompactionOptions& options);

}  // namespace patchwork::archive
