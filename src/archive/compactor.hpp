// Rollup compaction: keep the archive's live image under a storage budget
// by merging the oldest records into summary rollups.
//
// One compaction pass groups consecutive records from the oldest end into
// runs of `group_size` and folds each group left-to-right (oldest first)
// into a single rollup. Group merges are independent, so they run through
// util::parallel_map — the output depends only on the grouping, never the
// schedule, so compaction is deterministic at any worker count. Passes
// repeat (rollups merging into higher-level rollups) until the projected
// live image fits the budget or a single record remains.
//
// Commits come in two forms:
//   - Incremental (the default): each new rollup is appended as a
//     kPendingRollup block, followed by one kSupersede marker that commits
//     them all and retires the records they replace. Bytes written per
//     commit are bounded by the rollup sizes, never the archive size; the
//     superseded blocks stay on disk as garbage. A crash before the marker
//     leaves the raw records authoritative (the orphan rollup is ignored),
//     so the commit is atomic at marker granularity and re-running the
//     compaction converges to the same logical archive.
//   - Whole-file rewrite (GC): sheds garbage, corrupt blocks, and damaged
//     tails by atomically rewriting the live records. Runs when asked
//     (gc_archive), when the file is damaged, when `incremental` is off,
//     or automatically once garbage exceeds `gc_garbage_fraction`.
//
// Compaction preserves every sum-derived query answer exactly (the merges
// are commutative-sum folds) and keeps top-K flow answers within the
// sketch's error bound; see record.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "archive/reader.hpp"
#include "archive/record.hpp"

namespace patchwork::archive {

struct CompactionOptions {
  /// Target upper bound for the archive's *live image* (header plus the
  /// blocks backing logical records), in bytes. The compactor stops
  /// merging once the projected image fits (or one record remains — a
  /// single rollup cannot shrink further).
  std::uint64_t storage_budget_bytes = 256 * 1024;
  /// Consecutive records folded into one rollup per pass.
  std::size_t group_size = 4;
  /// Commit rollups by appending pending blocks + a supersede marker
  /// (bytes written bounded by the rollup size). When false, every commit
  /// is a whole-file rewrite (the pre-federation behavior).
  bool incremental = true;
  /// Rewrite the whole file once garbage (superseded blocks, orphans,
  /// markers) exceeds this fraction of it. 1.0 = never GC automatically;
  /// call gc_archive() explicitly instead.
  double gc_garbage_fraction = 1.0;
};

struct CompactionResult {
  OpenError error = OpenError::kNone;
  bool changed = false;  ///< False when already under budget (a no-op).
  bool gc = false;       ///< A whole-file rewrite happened.
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
  std::uint64_t bytes_appended = 0;  ///< Incremental commit size.
  std::size_t records_before = 0;
  std::size_t records_after = 0;
  std::size_t rollups_committed = 0;
  std::size_t passes = 0;

  bool ok() const { return error == OpenError::kNone; }
};

/// A compaction decision before any IO: the folded record sequence plus,
/// for each output record, the half-open range of *input* indices it
/// covers (cover width 1 = the input record untouched; width > 1 = a new
/// rollup folded from that run). The cover ranges are what lets the
/// incremental commit name exactly the records each rollup supersedes.
struct CompactionPlan {
  std::vector<EpochRecord> records;
  std::vector<std::pair<std::size_t, std::size_t>> cover;
  std::size_t passes = 0;
};

CompactionPlan plan_compaction(std::vector<EpochRecord> records,
                               const CompactionOptions& options);

/// Pure form: fold `records` (file order, oldest first) under the options.
/// Returns the compacted sequence; input is returned unchanged when it
/// already fits. Used by compact_archive and directly testable.
std::vector<EpochRecord> compact_records(std::vector<EpochRecord> records,
                                         const CompactionOptions& options,
                                         std::size_t* passes_out = nullptr);

/// Read `path`, compact, and commit (incrementally by default; see above).
/// Idempotent: a second run over a compacted archive under the same budget
/// is a byte-level no-op.
CompactionResult compact_archive(const std::string& path,
                                 const CompactionOptions& options);

/// Force a whole-file rewrite that sheds superseded blocks, orphaned
/// pending rollups, markers, corrupt blocks, and damaged tails. A no-op
/// (and byte-untouched) when the file is already clean.
CompactionResult gc_archive(const std::string& path);

}  // namespace patchwork::archive
