#include "archive/federation.hpp"

#include <algorithm>

#include "archive/writer.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/file_io.hpp"
#include "util/parallel.hpp"

namespace patchwork::archive {

bool federated_record_less(const EpochRecord& a, const EpochRecord& b) {
  if (a.start_nanos != b.start_nanos) return a.start_nanos < b.start_nanos;
  if (a.origin != b.origin) return a.origin < b.origin;
  if (a.first_epoch != b.first_epoch) return a.first_epoch < b.first_epoch;
  if (a.last_epoch != b.last_epoch) return a.last_epoch < b.last_epoch;
  return a.level < b.level;
}

namespace {

struct LoadedInput {
  OpenError error = OpenError::kNone;
  std::vector<EpochRecord> records;
  std::uint64_t corrupt_blocks = 0;
  bool damaged_tail = false;
};

LoadedInput load_input(const FederationInput& input) {
  LoadedInput loaded;
  ArchiveReader reader;
  loaded.error = reader.open(input.path);
  if (loaded.error != OpenError::kNone) return loaded;
  loaded.corrupt_blocks = reader.corrupt_blocks();
  loaded.damaged_tail = reader.damaged_tail();
  loaded.records = reader.take_records();
  for (EpochRecord& record : loaded.records) {
    // Stamp this deployment's origin; records that already carry one were
    // federated before and keep their original provenance.
    if (record.origin.empty()) record.origin = input.origin;
  }
  return loaded;
}

}  // namespace

FederationResult merge_archives(const std::vector<FederationInput>& inputs,
                                const std::string& out_path) {
  OBS_SPAN("archive/federate");
  FederationResult result;

  // parallel_map preserves input order, so the concatenation below — and
  // with it the stable sort's tie-breaking — is schedule-independent.
  const std::vector<LoadedInput> loaded =
      util::parallel_map(inputs, load_input);

  std::vector<EpochRecord> merged;
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    if (loaded[i].error != OpenError::kNone) {
      result.error = loaded[i].error;
      result.failed_path = inputs[i].path;
      return result;
    }
    ++result.archives_read;
    result.corrupt_blocks += loaded[i].corrupt_blocks;
    if (loaded[i].damaged_tail) ++result.damaged_tails;
    merged.insert(merged.end(),
                  std::make_move_iterator(loaded[i].records.begin()),
                  std::make_move_iterator(loaded[i].records.end()));
  }
  result.records_in = merged.size();

  // Chronological interleave under a deterministic total order; stable so
  // any records still tied (identical key) keep input order.
  std::stable_sort(merged.begin(), merged.end(), federated_record_less);
  result.records_out = merged.size();

  if (!write_all(out_path, merged)) {
    result.error = OpenError::kIo;
    result.failed_path = out_path;
    return result;
  }
  result.bytes_written = util::file_size_bytes(out_path).value_or(0);
  obs::registry()
      .counter("patchwork_archive_federations_total",
               "Cross-archive merges written by merge_archives")
      .add(1);
  obs::registry()
      .counter("patchwork_archive_federated_records_total",
               "Records merged across archives by merge_archives")
      .add(result.records_out);
  return result;
}

}  // namespace patchwork::archive
