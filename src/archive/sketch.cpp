#include "archive/sketch.hpp"

#include <algorithm>

namespace patchwork::archive {

namespace {

bool canonical_less(const TopFlowSketch::Entry& a,
                    const TopFlowSketch::Entry& b) {
  if (a.count != b.count) return a.count > b.count;
  if (a.error != b.error) return a.error < b.error;
  return a.key < b.key;
}

}  // namespace

TopFlowSketch::TopFlowSketch(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TopFlowSketch::canonicalize() const {
  if (!dirty_) return;
  std::sort(entries_.begin(), entries_.end(), canonical_less);
  dirty_ = false;
}

void TopFlowSketch::insert(const std::string& key, std::uint64_t count) {
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.count += count;
      dirty_ = true;
      return;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back({key, floor_ + count, floor_});
    dirty_ = true;
    return;
  }
  // Evict the weakest entry (space-saving): the newcomer inherits its
  // count as a floor. Canonical order puts it last.
  canonicalize();
  const std::uint64_t evicted = entries_.back().count;
  floor_ = std::max(floor_, evicted);
  entries_.back() = {key, evicted + count, evicted};
  dirty_ = true;
}

void TopFlowSketch::merge(const TopFlowSketch& other) {
  // Union-sum via a key-sorted join: counts and errors add per key; a key
  // absent from one side contributes that side's floor as both count and
  // error (its true count there is in [0, floor]).
  const auto key_less = [](const Entry& x, const Entry& y) {
    return x.key < y.key;
  };
  std::vector<Entry> a = entries_;
  std::vector<Entry> b = other.entries_;
  std::sort(a.begin(), a.end(), key_less);
  std::sort(b.begin(), b.end(), key_less);
  std::vector<Entry> merged;
  merged.reserve(a.size() + b.size());
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].key < b[j].key)) {
      merged.push_back(
          {a[i].key, a[i].count + other.floor_, a[i].error + other.floor_});
      ++i;
    } else if (i == a.size() || b[j].key < a[i].key) {
      merged.push_back(
          {b[j].key, b[j].count + floor_, b[j].error + floor_});
      ++j;
    } else {
      merged.push_back({a[i].key, a[i].count + b[j].count,
                        a[i].error + b[j].error});
      ++i;
      ++j;
    }
  }
  std::sort(merged.begin(), merged.end(), canonical_less);
  std::uint64_t new_floor = floor_ + other.floor_;
  if (merged.size() > capacity_) {
    new_floor = std::max(new_floor, merged[capacity_].count);
    merged.resize(capacity_);
  }
  floor_ = new_floor;
  entries_ = std::move(merged);
  dirty_ = false;
}

std::vector<TopFlowSketch::Entry> TopFlowSketch::top(std::size_t k) const {
  canonicalize();
  std::vector<Entry> out(entries_.begin(),
                         entries_.begin() +
                             static_cast<std::ptrdiff_t>(
                                 std::min(k, entries_.size())));
  return out;
}

const std::vector<TopFlowSketch::Entry>& TopFlowSketch::entries() const {
  canonicalize();
  return entries_;
}

bool TopFlowSketch::valid_parts(std::size_t capacity,
                                const std::vector<Entry>& entries) {
  if (!entries.empty() && (capacity == 0 || entries.size() > capacity)) {
    return false;
  }
  for (const Entry& e : entries) {
    if (e.error > e.count) return false;
  }
  return true;
}

TopFlowSketch TopFlowSketch::from_parts(std::size_t capacity,
                                        std::uint64_t floor,
                                        std::vector<Entry> entries) {
  TopFlowSketch s(std::max(capacity, entries.size()));
  s.floor_ = floor;
  s.entries_ = std::move(entries);
  s.dirty_ = true;
  return s;
}

bool TopFlowSketch::operator==(const TopFlowSketch& other) const {
  return capacity_ == other.capacity_ && floor_ == other.floor_ &&
         entries() == other.entries();
}

}  // namespace patchwork::archive
