#include "archive/query.hpp"

#include <algorithm>
#include <set>

namespace patchwork::archive {

bool QueryWindow::contains(const EpochRecord& record) const {
  if (from_epoch && record.last_epoch < *from_epoch) return false;
  if (to_epoch && record.first_epoch > *to_epoch) return false;
  const std::uint64_t end_nanos = record.start_nanos + record.duration_nanos;
  if (from_nanos && end_nanos < *from_nanos) return false;
  if (to_nanos && record.start_nanos > *to_nanos) return false;
  return true;
}

ArchiveQuery::ArchiveQuery(std::vector<EpochRecord> records,
                           const QueryWindow& window)
    : records_(std::move(records)), window_(window) {
  // Filter before any fold: out-of-window records must not contribute to
  // totals, sketches, or trends.
  if (!window_.everything()) {
    std::erase_if(records_, [this](const EpochRecord& r) {
      return !window_.contains(r);
    });
  }
  if (records_.empty()) return;
  totals_ = records_.front();
  for (std::size_t i = 1; i < records_.size(); ++i) {
    totals_.merge_from(records_[i]);
  }
}

ArchiveQuery ArchiveQuery::from_file(const std::string& path,
                                     const QueryWindow& window,
                                     OpenStatus* status) {
  ArchiveReader reader;
  const OpenError error = reader.open(path);
  if (status != nullptr) {
    status->error = error;
    status->corrupt_blocks = reader.corrupt_blocks();
    status->damaged_tail = reader.damaged_tail();
    status->valid_bytes = reader.valid_bytes();
    status->skipped_newer = reader.skipped_newer_blocks();
  }
  if (error != OpenError::kNone) return ArchiveQuery({});
  return ArchiveQuery(reader.take_records(), window);
}

ArchiveQuery ArchiveQuery::from_file(const std::string& path,
                                     OpenError* error) {
  OpenStatus status;
  ArchiveQuery query = from_file(path, QueryWindow{}, &status);
  if (error != nullptr) *error = status.error;
  return query;
}

std::uint64_t ArchiveQuery::epochs_covered() const {
  std::uint64_t n = 0;
  for (const EpochRecord& r : records_) n += r.epoch_count;
  return n;
}

template <typename Fn>
std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::trend(
    Fn&& value_of) const {
  std::vector<TrendPoint> points;
  points.reserve(records_.size());
  for (const EpochRecord& r : records_) {
    points.push_back({r.label, r.first_epoch, r.last_epoch, r.epoch_count,
                      r.start_nanos, r.is_rollup(), value_of(r)});
  }
  return points;
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::jumbo_share() const {
  return trend([](const EpochRecord& r) {
    return r.frame_sizes.fraction_at_or_above(kJumboEdgeBytes);
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::protocol_share(
    net::Protocol protocol) const {
  const std::size_t idx = static_cast<std::size_t>(protocol);
  return trend([idx](const EpochRecord& r) {
    if (r.occurrence_frames == 0 || idx >= r.protocol_occurrences.size()) {
      return 0.0;
    }
    return static_cast<double>(r.protocol_occurrences[idx]) /
           static_cast<double>(r.occurrence_frames);
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::ipv6_share() const {
  return protocol_share(net::Protocol::kIpv6);
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::tcp_share() const {
  return protocol_share(net::Protocol::kTcp);
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::offered_bps() const {
  return trend([](const EpochRecord& r) {
    return r.epoch_count == 0 ? 0.0
                              : r.offered_bps_sum /
                                    static_cast<double>(r.epoch_count);
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::flow_snippets() const {
  return trend([](const EpochRecord& r) {
    return static_cast<double>(r.flow_snippets);
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::site_wire_bytes(
    const std::string& site) const {
  return trend([&site](const EpochRecord& r) {
    for (const SiteEpochLoad& load : r.site_loads) {
      if (load.site == site) return static_cast<double>(load.wire_bytes);
    }
    return 0.0;
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::site_switch_drops(
    const std::string& site) const {
  return trend([&site](const EpochRecord& r) {
    for (const SiteEpochLoad& load : r.site_loads) {
      if (load.site == site) {
        return static_cast<double>(load.switch_drops_suspected);
      }
    }
    return 0.0;
  });
}

std::vector<std::string> ArchiveQuery::sites() const {
  std::set<std::string> names;
  for (const EpochRecord& r : records_) {
    for (const SiteEpochLoad& load : r.site_loads) names.insert(load.site);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

std::vector<TopFlowSketch::Entry> ArchiveQuery::top_flows(
    std::size_t k) const {
  return totals_.top_flows.top(k);
}

}  // namespace patchwork::archive
