#include "archive/query.hpp"

#include <algorithm>
#include <set>

namespace patchwork::archive {

ArchiveQuery::ArchiveQuery(std::vector<EpochRecord> records)
    : records_(std::move(records)) {
  if (records_.empty()) return;
  totals_ = records_.front();
  for (std::size_t i = 1; i < records_.size(); ++i) {
    totals_.merge_from(records_[i]);
  }
}

ArchiveQuery ArchiveQuery::from_file(const std::string& path,
                                     OpenError* error) {
  ArchiveReader reader;
  const OpenError status = reader.open(path);
  if (error != nullptr) *error = status;
  if (status != OpenError::kNone) return ArchiveQuery({});
  return ArchiveQuery(reader.take_records());
}

std::uint64_t ArchiveQuery::epochs_covered() const {
  std::uint64_t n = 0;
  for (const EpochRecord& r : records_) n += r.epoch_count;
  return n;
}

template <typename Fn>
std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::trend(
    Fn&& value_of) const {
  std::vector<TrendPoint> points;
  points.reserve(records_.size());
  for (const EpochRecord& r : records_) {
    points.push_back({r.label, r.first_epoch, r.last_epoch, r.epoch_count,
                      r.start_nanos, r.is_rollup(), value_of(r)});
  }
  return points;
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::jumbo_share() const {
  return trend([](const EpochRecord& r) {
    return r.frame_sizes.fraction_at_or_above(kJumboEdgeBytes);
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::protocol_share(
    net::Protocol protocol) const {
  const std::size_t idx = static_cast<std::size_t>(protocol);
  return trend([idx](const EpochRecord& r) {
    if (r.occurrence_frames == 0 || idx >= r.protocol_occurrences.size()) {
      return 0.0;
    }
    return static_cast<double>(r.protocol_occurrences[idx]) /
           static_cast<double>(r.occurrence_frames);
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::ipv6_share() const {
  return protocol_share(net::Protocol::kIpv6);
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::tcp_share() const {
  return protocol_share(net::Protocol::kTcp);
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::offered_bps() const {
  return trend([](const EpochRecord& r) {
    return r.epoch_count == 0 ? 0.0
                              : r.offered_bps_sum /
                                    static_cast<double>(r.epoch_count);
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::flow_snippets() const {
  return trend([](const EpochRecord& r) {
    return static_cast<double>(r.flow_snippets);
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::site_wire_bytes(
    const std::string& site) const {
  return trend([&site](const EpochRecord& r) {
    for (const SiteEpochLoad& load : r.site_loads) {
      if (load.site == site) return static_cast<double>(load.wire_bytes);
    }
    return 0.0;
  });
}

std::vector<ArchiveQuery::TrendPoint> ArchiveQuery::site_switch_drops(
    const std::string& site) const {
  return trend([&site](const EpochRecord& r) {
    for (const SiteEpochLoad& load : r.site_loads) {
      if (load.site == site) {
        return static_cast<double>(load.switch_drops_suspected);
      }
    }
    return 0.0;
  });
}

std::vector<std::string> ArchiveQuery::sites() const {
  std::set<std::string> names;
  for (const EpochRecord& r : records_) {
    for (const SiteEpochLoad& load : r.site_loads) names.insert(load.site);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

std::vector<TopFlowSketch::Entry> ArchiveQuery::top_flows(
    std::size_t k) const {
  return totals_.top_flows.top(k);
}

}  // namespace patchwork::archive
