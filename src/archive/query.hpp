// Trend queries over an archive's record sequence.
//
// ArchiveQuery answers longitudinal questions from the archive alone — no
// pcaps, no re-profiling: how the jumbo/IPv6/TCP shares move over time,
// how each site's load trends, and which flows stay heavy across epochs.
// Records are consumed in file order (oldest first); trend methods emit
// one point per stored record (a rollup contributes one aggregated point
// covering its span), and whole-archive totals are a left fold in the same
// order the compactor uses, so totals and top-K agree with record.hpp's
// compaction guarantees.
//
// Queries can be windowed: a QueryWindow restricts the fold to records
// whose epoch span and time span overlap the requested ranges, applied
// *before* any aggregation, so totals over a window never include
// out-of-window mass. (A rollup that straddles a window edge is included
// whole — the archive stores spans, not per-epoch residue; narrow windows
// want an archive compacted less aggressively.)
//
// from_file surfaces the reader's damage diagnostics in an OpenStatus so
// callers can distinguish "empty archive" from "archive with its tail torn
// off" — a silent difference before, now a warning surface for the CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "archive/reader.hpp"
#include "archive/record.hpp"
#include "archive/sketch.hpp"
#include "net/protocol.hpp"

namespace patchwork::archive {

/// Inclusive bounds on epoch index and start time; unset bounds are open.
/// A record passes when its [first_epoch, last_epoch] and
/// [start_nanos, start_nanos + duration_nanos] spans both overlap the
/// window (overlap, not containment: rollups cover ranges).
struct QueryWindow {
  std::optional<std::uint64_t> from_epoch;
  std::optional<std::uint64_t> to_epoch;
  std::optional<std::uint64_t> from_nanos;
  std::optional<std::uint64_t> to_nanos;

  bool everything() const {
    return !from_epoch && !to_epoch && !from_nanos && !to_nanos;
  }
  bool contains(const EpochRecord& record) const;

  bool operator==(const QueryWindow&) const = default;
};

/// What opening the archive found, beyond success/failure: the damage
/// diagnostics the reader counted while skipping bad blocks.
struct OpenStatus {
  OpenError error = OpenError::kNone;
  std::uint64_t corrupt_blocks = 0;   ///< CRC-failed or undecodable, skipped.
  bool damaged_tail = false;          ///< Truncated/unframeable tail dropped.
  std::uint64_t valid_bytes = 0;      ///< Prefix the reader could frame.
  std::uint64_t skipped_newer = 0;    ///< Blocks from a newer build, skipped.

  bool ok() const { return error == OpenError::kNone; }
  /// True when the file opened and every byte was accounted for.
  bool clean() const {
    return ok() && corrupt_blocks == 0 && !damaged_tail && skipped_newer == 0;
  }
};

class ArchiveQuery {
 public:
  explicit ArchiveQuery(std::vector<EpochRecord> records,
                        const QueryWindow& window = {});

  /// Load `path` via ArchiveReader, keeping only records in `window`. On
  /// failure returns an empty query; *status (when non-null) receives the
  /// open error plus the damage diagnostics for the warn path.
  static ArchiveQuery from_file(const std::string& path,
                                const QueryWindow& window,
                                OpenStatus* status = nullptr);
  /// Unwindowed form (kept for existing callers). Damage diagnostics are
  /// available via the OpenStatus overload.
  static ArchiveQuery from_file(const std::string& path,
                                OpenError* error = nullptr);

  /// One trend sample: a stored record reduced to a single value.
  struct TrendPoint {
    std::string label;
    std::uint64_t first_epoch = 0;
    std::uint64_t last_epoch = 0;
    std::uint32_t epoch_count = 1;
    std::uint64_t start_nanos = 0;
    bool rollup = false;
    double value = 0.0;
  };

  const std::vector<EpochRecord>& records() const { return records_; }
  std::size_t record_count() const { return records_.size(); }
  /// Raw epochs covered (rollups count their whole span).
  std::uint64_t epochs_covered() const;
  /// The window the records were filtered through (default: everything).
  const QueryWindow& window() const { return window_; }

  // --- per-record trends --------------------------------------------------
  /// Fraction of frames at or above the paper's 1519-byte jumbo edge.
  std::vector<TrendPoint> jumbo_share() const;
  /// Fraction of frames whose stack carries the protocol.
  std::vector<TrendPoint> protocol_share(net::Protocol protocol) const;
  std::vector<TrendPoint> ipv6_share() const;
  std::vector<TrendPoint> tcp_share() const;
  /// Mean offered load per epoch within each record, bits/second.
  std::vector<TrendPoint> offered_bps() const;
  /// Distinct-flow snippets per record (per-epoch distinct counts summed).
  std::vector<TrendPoint> flow_snippets() const;
  /// Captured wire bytes for one site per record (0 where absent).
  std::vector<TrendPoint> site_wire_bytes(const std::string& site) const;
  /// Suspected switch-side drops for one site per record.
  std::vector<TrendPoint> site_switch_drops(const std::string& site) const;

  /// Every site name appearing anywhere in the archive, sorted.
  std::vector<std::string> sites() const;

  // --- whole-archive aggregates -------------------------------------------
  /// Left fold of all in-window records, oldest first (empty when none).
  const EpochRecord& totals() const { return totals_; }
  /// The k heaviest flows across the whole archive, with error bounds.
  std::vector<TopFlowSketch::Entry> top_flows(std::size_t k) const;

  /// The paper's jumbo lower edge (1519: above the 1518 standard max).
  static constexpr double kJumboEdgeBytes = 1519.0;

 private:
  template <typename Fn>
  std::vector<TrendPoint> trend(Fn&& value_of) const;

  std::vector<EpochRecord> records_;
  EpochRecord totals_;
  QueryWindow window_;
};

}  // namespace patchwork::archive
