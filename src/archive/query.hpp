// Trend queries over an archive's record sequence.
//
// ArchiveQuery answers longitudinal questions from the archive alone — no
// pcaps, no re-profiling: how the jumbo/IPv6/TCP shares move over time,
// how each site's load trends, and which flows stay heavy across epochs.
// Records are consumed in file order (oldest first); trend methods emit
// one point per stored record (a rollup contributes one aggregated point
// covering its span), and whole-archive totals are a left fold in the same
// order the compactor uses, so totals and top-K agree with record.hpp's
// compaction guarantees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "archive/reader.hpp"
#include "archive/record.hpp"
#include "archive/sketch.hpp"
#include "net/protocol.hpp"

namespace patchwork::archive {

class ArchiveQuery {
 public:
  explicit ArchiveQuery(std::vector<EpochRecord> records);

  /// Load `path` via ArchiveReader. On failure returns an empty query and
  /// stores the reason in *error (when non-null).
  static ArchiveQuery from_file(const std::string& path,
                                OpenError* error = nullptr);

  /// One trend sample: a stored record reduced to a single value.
  struct TrendPoint {
    std::string label;
    std::uint64_t first_epoch = 0;
    std::uint64_t last_epoch = 0;
    std::uint32_t epoch_count = 1;
    std::uint64_t start_nanos = 0;
    bool rollup = false;
    double value = 0.0;
  };

  const std::vector<EpochRecord>& records() const { return records_; }
  std::size_t record_count() const { return records_.size(); }
  /// Raw epochs covered (rollups count their whole span).
  std::uint64_t epochs_covered() const;

  // --- per-record trends --------------------------------------------------
  /// Fraction of frames at or above the paper's 1519-byte jumbo edge.
  std::vector<TrendPoint> jumbo_share() const;
  /// Fraction of frames whose stack carries the protocol.
  std::vector<TrendPoint> protocol_share(net::Protocol protocol) const;
  std::vector<TrendPoint> ipv6_share() const;
  std::vector<TrendPoint> tcp_share() const;
  /// Mean offered load per epoch within each record, bits/second.
  std::vector<TrendPoint> offered_bps() const;
  /// Distinct-flow snippets per record (per-epoch distinct counts summed).
  std::vector<TrendPoint> flow_snippets() const;
  /// Captured wire bytes for one site per record (0 where absent).
  std::vector<TrendPoint> site_wire_bytes(const std::string& site) const;
  /// Suspected switch-side drops for one site per record.
  std::vector<TrendPoint> site_switch_drops(const std::string& site) const;

  /// Every site name appearing anywhere in the archive, sorted.
  std::vector<std::string> sites() const;

  // --- whole-archive aggregates -------------------------------------------
  /// Left fold of all records, oldest first (empty record when no data).
  const EpochRecord& totals() const { return totals_; }
  /// The k heaviest flows across the whole archive, with error bounds.
  std::vector<TopFlowSketch::Entry> top_flows(std::size_t k) const;

  /// The paper's jumbo lower edge (1519: above the 1518 standard max).
  static constexpr double kJumboEdgeBytes = 1519.0;

 private:
  template <typename Fn>
  std::vector<TrendPoint> trend(Fn&& value_of) const;

  std::vector<EpochRecord> records_;
  EpochRecord totals_;
};

}  // namespace patchwork::archive
