// Cross-archive federation: merge epoch records from several deployments'
// archives into one queryable archive.
//
// Each testbed deployment writes its own archive with its own epoch index
// sequence, so indices and span labels collide across files. Federation
// resolves this with the origin tag (record.hpp): every record loaded from
// an input is stamped with that input's deployment origin (unless it
// already carries one — re-federating a federated archive keeps the
// original provenance), which makes RecordIdent unique across the union
// and keeps rollup labels distinguishable after cross-origin merges.
//
// The merged sequence is the chronological interleave of the inputs,
// ordered by a deterministic key (start_nanos, origin, first_epoch, level)
// so the output bytes depend only on the input files — never on worker
// count or read scheduling. Input archives are read concurrently through
// util::parallel_map, which preserves input order.
//
// Merging is record-level concatenation, not folding: every input record
// survives verbatim (plus its origin stamp), so querying the merged
// archive gives exactly the same answers as querying the union of the
// inputs. Compaction may later fold across origins; HistCounts and
// TopFlowSketch merges stay sum-invariant across heterogeneous configs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "archive/reader.hpp"
#include "archive/record.hpp"

namespace patchwork::archive {

/// One input archive plus the deployment origin to stamp its records with.
/// An empty origin leaves records tagged as they are (local records stay
/// local — useful when merging *into* this deployment's own view).
struct FederationInput {
  std::string path;
  std::string origin;
};

struct FederationResult {
  OpenError error = OpenError::kNone;
  /// The input that failed to open, when error != kNone.
  std::string failed_path;
  std::size_t archives_read = 0;
  std::size_t records_in = 0;   ///< Live records loaded across all inputs.
  std::size_t records_out = 0;  ///< Records written (== records_in).
  /// Damage diagnostics aggregated across the inputs (federation reads
  /// the logical view, so damage is skipped, not propagated).
  std::uint64_t corrupt_blocks = 0;
  std::uint64_t damaged_tails = 0;
  std::uint64_t bytes_written = 0;

  bool ok() const { return error == OpenError::kNone; }
};

/// Merge the live records of `inputs` into a fresh archive at `out_path`
/// (atomic replace). Deterministic: the output bytes are a pure function
/// of the input file contents and origins, at any worker count.
FederationResult merge_archives(const std::vector<FederationInput>& inputs,
                                const std::string& out_path);

/// The deterministic record order federation writes: by start time, then
/// origin, then epoch span, then level. Exposed so tests and callers can
/// reproduce the interleave on a manual union of records.
bool federated_record_less(const EpochRecord& a, const EpochRecord& b);

}  // namespace patchwork::archive
