// The on-disk archive format.
//
//   file   := header block*
//   header := magic "PWAR" | format_version u16 BE | flags u16 BE (0)
//   block  := payload_len u32 BE
//           | type u8 | payload_version u8 | reserved u16 BE (0)
//           | crc32 u32 BE              (over type..reserved + payload)
//           | payload bytes
//
// Properties the readers rely on:
//   - Append-only: a crash mid-append leaves a truncated tail block, which
//     open() detects (header or payload runs past EOF) and drops; the
//     writer then truncates the file back to the last complete block.
//   - Self-verifying: the CRC covers the type/version bytes and the whole
//     payload, so a flipped byte skips exactly that block (the length field
//     still frames it) instead of poisoning the scan. A corrupted *length*
//     field cannot be reframed, so everything from that point is treated
//     as a damaged tail.
//   - Versioned twice: the file header version gates the framing; each
//     block carries the payload codec version. A reader refuses files (or
//     blocks) newer than it understands rather than misparsing them.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace patchwork::archive {

inline constexpr std::array<std::uint8_t, 4> kMagic = {'P', 'W', 'A', 'R'};
inline constexpr std::uint16_t kFormatVersion = 1;
/// Payload codec v2 added the record origin tag (federation) and the
/// pending-rollup/supersede block types. v1 records still decode.
inline constexpr std::uint8_t kPayloadVersion = 2;

inline constexpr std::size_t kFileHeaderSize = 8;
inline constexpr std::size_t kBlockHeaderSize = 12;

/// Largest payload a scan will accept. A length field above this bound is
/// treated as tail corruption, bounding memory against flipped bits.
inline constexpr std::uint64_t kMaxBlockPayload = 64ull << 20;

/// Largest archive file the bounded readers will load.
inline constexpr std::uint64_t kMaxArchiveBytes = 1ull << 30;

enum class BlockType : std::uint8_t {
  kEpoch = 1,   ///< One raw profiling run.
  kRollup = 2,  ///< A compacted merge of consecutive epochs.
  /// A rollup appended by an incremental compaction commit. Invisible to
  /// queries until a later kSupersede marker commits it; an uncommitted
  /// pending rollup (crash between the two appends) is garbage the next
  /// GC rewrite sheds. Readers older than v2 skip both types and keep
  /// serving the raw records, which stay physically present until GC.
  kPendingRollup = 3,
  /// Commit marker: activates named pending rollups and retires the
  /// records each one replaces (payload: SupersedeMarker, record.hpp).
  kSupersede = 4,
};

/// The 8-byte file header for a fresh archive.
std::vector<std::uint8_t> encode_file_header();

/// Frame one payload as a block (header + CRC + payload appended to `out`).
void append_block(std::vector<std::uint8_t>& out, BlockType type,
                  std::span<const std::uint8_t> payload);

}  // namespace patchwork::archive
