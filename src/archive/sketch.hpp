// Mergeable top-K flow summary (space-saving style).
//
// Each epoch records its heaviest flows here so the archive can answer
// "which flows persist across months" without keeping every flow key ever
// seen. The summary keeps at most `capacity` entries; evictions raise a
// floor that future counts inherit, preserving the space-saving invariant
//   true_count <= count  and  count - error <= true_count.
//
// Merging is a fold: counts and errors add per key; a key absent from one
// side contributes that side's floor (its count there is unknown but
// bounded by the floor). While no merge overflows `capacity`, the fold is
// exact per-key summation — associative and commutative, so any compaction
// grouping yields identical top-K answers. Once truncation kicks in the
// merge is order-sensitive; the compactor and the query layer both fold
// oldest-first so a single prefix rollup still reproduces the raw query's
// fold exactly, and arbitrary groupings stay within the space-saving bound
//   true_count <= count <= true_count + error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace patchwork::archive {

class TopFlowSketch {
 public:
  struct Entry {
    std::string key;          ///< Canonical flow string (FlowKey::to_string).
    std::uint64_t count = 0;  ///< Overestimate of the flow's bytes.
    std::uint64_t error = 0;  ///< Max overcount (count - error is certain).

    bool operator==(const Entry&) const = default;
  };

  explicit TopFlowSketch(std::size_t capacity = 256);

  /// Record `count` for `key` (an exact per-epoch total at extraction
  /// time; inserts of an evicted key re-enter at floor + count).
  void insert(const std::string& key, std::uint64_t count);

  /// Fold `other` into this summary (see the merge rule above).
  void merge(const TopFlowSketch& other);

  /// The `k` heaviest entries, count-descending (key-ascending on ties).
  std::vector<Entry> top(std::size_t k) const;

  /// All entries in canonical order (count desc, error asc, key asc) —
  /// the serialization order, so equal summaries encode identically.
  const std::vector<Entry>& entries() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t floor() const { return floor_; }
  std::size_t size() const { return entries_.size(); }

  /// Whether serialized parts satisfy the sketch's invariants: entries fit
  /// the declared capacity (capacity 0 with entries is hostile input) and
  /// every entry's error bound is at most its count (count - error is the
  /// certain share; a negative certain count cannot come from insert or
  /// merge). Wire decoders must check this before from_parts, because a
  /// sketch violating these invariants makes merge() silently wrong.
  static bool valid_parts(std::size_t capacity,
                          const std::vector<Entry>& entries);

  /// Rebuild from serialized parts (record decode). Defensive against
  /// callers that skipped valid_parts: an undersized capacity is clamped
  /// up to the entry count so the invariants hold by construction.
  static TopFlowSketch from_parts(std::size_t capacity, std::uint64_t floor,
                                  std::vector<Entry> entries);

  bool operator==(const TopFlowSketch& other) const;

 private:
  void canonicalize() const;

  std::size_t capacity_;
  std::uint64_t floor_ = 0;
  mutable bool dirty_ = false;
  mutable std::vector<Entry> entries_;
};

}  // namespace patchwork::archive
