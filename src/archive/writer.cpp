#include "archive/writer.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/file_io.hpp"

namespace patchwork::archive {

OpenError ArchiveWriter::open(const std::string& path) {
  path_ = path;
  next_epoch_index_ = 0;
  records_written_ = 0;

  const auto size = util::file_size_bytes(path);
  if (!size.has_value() || *size == 0) {
    // Fresh archive: header only. Atomic, so a concurrent reader sees
    // either no file or a well-formed empty archive.
    const std::vector<std::uint8_t> header = encode_file_header();
    if (!util::write_file_atomic(path, std::span<const std::uint8_t>(header))) {
      return OpenError::kIo;
    }
    return OpenError::kNone;
  }

  ArchiveReader reader;
  const OpenError error = reader.open(path);
  if (error != OpenError::kNone) return error;
  if (reader.damaged_tail()) {
    if (!util::truncate_file(path, reader.valid_bytes())) {
      return OpenError::kIo;
    }
    obs::registry()
        .counter("patchwork_archive_tail_truncations_total",
                 "Damaged archive tails cut back to the last complete block")
        .add(1);
  }
  for (const EpochRecord& record : reader.records()) {
    next_epoch_index_ = std::max(next_epoch_index_, record.last_epoch + 1);
  }
  return OpenError::kNone;
}

bool ArchiveWriter::append(EpochRecord record) {
  if (record.level == 0) {
    record.first_epoch = record.last_epoch = next_epoch_index_;
  }
  const std::vector<std::uint8_t> payload = encode_record(record);
  std::vector<std::uint8_t> block;
  block.reserve(kBlockHeaderSize + payload.size());
  append_block(block, record.is_rollup() ? BlockType::kRollup
                                         : BlockType::kEpoch,
               payload);
  if (!util::append_file(path_, block)) return false;
  next_epoch_index_ = std::max(next_epoch_index_, record.last_epoch + 1);
  ++records_written_;
  obs::registry()
      .counter("patchwork_archive_records_appended_total",
               "Epoch/rollup records appended to archives")
      .add(1);
  return true;
}

std::vector<std::uint8_t> render_archive(
    const std::vector<EpochRecord>& records) {
  std::vector<std::uint8_t> out = encode_file_header();
  for (const EpochRecord& record : records) {
    const std::vector<std::uint8_t> payload = encode_record(record);
    append_block(out, record.is_rollup() ? BlockType::kRollup
                                         : BlockType::kEpoch,
                 payload);
  }
  return out;
}

bool write_all(const std::string& path,
               const std::vector<EpochRecord>& records) {
  const std::vector<std::uint8_t> image = render_archive(records);
  return util::write_file_atomic(path, std::span<const std::uint8_t>(image));
}

}  // namespace patchwork::archive
