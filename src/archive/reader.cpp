#include "archive/reader.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/byte_io.hpp"
#include "util/crc32.hpp"
#include "util/file_io.hpp"

namespace patchwork::archive {

std::string to_string(OpenError error) {
  switch (error) {
    case OpenError::kNone:
      return "ok";
    case OpenError::kIo:
      return "io error";
    case OpenError::kBadMagic:
      return "not a patchwork archive (bad magic)";
    case OpenError::kVersionTooNew:
      return "archive format newer than this build";
  }
  return "unknown";
}

ScanResult scan_archive_bytes(std::span<const std::uint8_t> bytes) {
  ScanResult result;
  if (bytes.size() < kFileHeaderSize ||
      !std::equal(kMagic.begin(), kMagic.end(), bytes.begin())) {
    result.error = OpenError::kBadMagic;
    return result;
  }
  result.format_version = util::get_be16(bytes, 4);
  if (result.format_version > kFormatVersion) {
    result.error = OpenError::kVersionTooNew;
    return result;
  }

  std::size_t off = kFileHeaderSize;
  result.valid_bytes = off;
  while (off < bytes.size()) {
    if (!util::fits(bytes, off, kBlockHeaderSize)) {
      result.damaged_tail = true;  // Header cut short by a crash.
      break;
    }
    const std::uint64_t len = util::get_be32(bytes, off);
    if (len > kMaxBlockPayload) {
      // A corrupted length field cannot frame the block, so nothing after
      // this point can be trusted to start on a block boundary.
      result.damaged_tail = true;
      break;
    }
    if (!util::fits(bytes, off + kBlockHeaderSize, len)) {
      result.damaged_tail = true;  // Payload cut short by a crash.
      break;
    }
    const std::uint32_t stored_crc = util::get_be32(bytes, off + 8);
    // CRC covers type..reserved (4 bytes) then the payload; the two ranges
    // are not contiguous on disk, so chain the incremental form.
    std::uint32_t crc = util::crc32(bytes.subspan(off + 4, 4));
    crc = util::crc32(bytes.subspan(off + kBlockHeaderSize, len), crc);
    const std::size_t next = off + kBlockHeaderSize + len;
    if (crc != stored_crc) {
      ++result.corrupt_blocks;
    } else {
      ScannedBlock block;
      block.type = static_cast<BlockType>(util::get_u8(bytes, off + 4));
      block.payload_version = util::get_u8(bytes, off + 5);
      const auto payload = bytes.subspan(off + kBlockHeaderSize, len);
      block.payload.assign(payload.begin(), payload.end());
      result.blocks.push_back(std::move(block));
    }
    off = next;
    result.valid_bytes = off;
  }
  return result;
}

OpenError ArchiveReader::open(const std::string& path) {
  auto& corrupt_total = obs::registry().counter(
      "patchwork_archive_corrupt_blocks_total",
      "Archive blocks skipped for CRC mismatch or undecodable payload");
  auto& tail_total = obs::registry().counter(
      "patchwork_archive_damaged_tails_total",
      "Archive opens that found a truncated or unframeable tail");
  auto& read_total = obs::registry().counter(
      "patchwork_archive_records_read_total",
      "Epoch/rollup records successfully decoded from archives");

  records_.clear();
  valid_bytes_ = 0;
  corrupt_blocks_ = 0;
  skipped_newer_ = 0;
  damaged_tail_ = false;

  const auto bytes = util::read_file_bytes(path, kMaxArchiveBytes);
  if (!bytes.has_value()) return OpenError::kIo;
  ScanResult scan = scan_archive_bytes(*bytes);
  if (!scan.ok()) return scan.error;

  valid_bytes_ = scan.valid_bytes;
  corrupt_blocks_ = scan.corrupt_blocks;
  damaged_tail_ = scan.damaged_tail;
  for (const ScannedBlock& block : scan.blocks) {
    if (block.payload_version > kPayloadVersion) {
      ++skipped_newer_;  // Written by a newer build; not ours to guess at.
      continue;
    }
    if (block.type != BlockType::kEpoch &&
        block.type != BlockType::kRollup) {
      ++skipped_newer_;
      continue;
    }
    EpochRecord record;
    if (!decode_record(block.payload, &record)) {
      ++corrupt_blocks_;  // CRC passed but the payload doesn't parse.
      continue;
    }
    records_.push_back(std::move(record));
  }

  if (corrupt_blocks_ > 0) corrupt_total.add(corrupt_blocks_);
  if (damaged_tail_) tail_total.add(1);
  read_total.add(records_.size());
  return OpenError::kNone;
}

}  // namespace patchwork::archive
