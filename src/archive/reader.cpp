#include "archive/reader.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/byte_io.hpp"
#include "util/crc32.hpp"
#include "util/file_io.hpp"

namespace patchwork::archive {

std::string to_string(OpenError error) {
  switch (error) {
    case OpenError::kNone:
      return "ok";
    case OpenError::kIo:
      return "io error";
    case OpenError::kBadMagic:
      return "not a patchwork archive (bad magic)";
    case OpenError::kVersionTooNew:
      return "archive format newer than this build";
  }
  return "unknown";
}

ScanResult scan_archive_bytes(std::span<const std::uint8_t> bytes) {
  ScanResult result;
  if (bytes.size() < kFileHeaderSize ||
      !std::equal(kMagic.begin(), kMagic.end(), bytes.begin())) {
    result.error = OpenError::kBadMagic;
    return result;
  }
  result.format_version = util::get_be16(bytes, 4);
  if (result.format_version > kFormatVersion) {
    result.error = OpenError::kVersionTooNew;
    return result;
  }

  std::size_t off = kFileHeaderSize;
  result.valid_bytes = off;
  while (off < bytes.size()) {
    if (!util::fits(bytes, off, kBlockHeaderSize)) {
      result.damaged_tail = true;  // Header cut short by a crash.
      break;
    }
    const std::uint64_t len = util::get_be32(bytes, off);
    if (len > kMaxBlockPayload) {
      // A corrupted length field cannot frame the block, so nothing after
      // this point can be trusted to start on a block boundary.
      result.damaged_tail = true;
      break;
    }
    if (!util::fits(bytes, off + kBlockHeaderSize, len)) {
      result.damaged_tail = true;  // Payload cut short by a crash.
      break;
    }
    const std::uint32_t stored_crc = util::get_be32(bytes, off + 8);
    // CRC covers type..reserved (4 bytes) then the payload; the two ranges
    // are not contiguous on disk, so chain the incremental form.
    std::uint32_t crc = util::crc32(bytes.subspan(off + 4, 4));
    crc = util::crc32(bytes.subspan(off + kBlockHeaderSize, len), crc);
    const std::size_t next = off + kBlockHeaderSize + len;
    if (crc != stored_crc) {
      ++result.corrupt_blocks;
    } else {
      ScannedBlock block;
      block.type = static_cast<BlockType>(util::get_u8(bytes, off + 4));
      block.payload_version = util::get_u8(bytes, off + 5);
      const auto payload = bytes.subspan(off + kBlockHeaderSize, len);
      block.payload.assign(payload.begin(), payload.end());
      result.blocks.push_back(std::move(block));
    }
    off = next;
    result.valid_bytes = off;
  }
  return result;
}

namespace {

struct Slot {
  EpochRecord record;
  std::uint64_t bytes = 0;
};

/// Where a committed rollup lands when none of its superseded records are
/// present (a replayed marker on an already-GC'd file): keep the sequence
/// chronological so the oldest-first fold convention survives.
std::size_t chronological_position(const std::vector<Slot>& live,
                                   const EpochRecord& record) {
  const auto less = [](const EpochRecord& a, const EpochRecord& b) {
    if (a.start_nanos != b.start_nanos) return a.start_nanos < b.start_nanos;
    return a.first_epoch < b.first_epoch;
  };
  std::size_t pos = live.size();
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (less(record, live[i].record)) {
      pos = i;
      break;
    }
  }
  return pos;
}

}  // namespace

AssembledArchive assemble_blocks(std::vector<ScannedBlock> blocks) {
  AssembledArchive out;
  std::vector<Slot> live;
  std::vector<Slot> pending;

  for (ScannedBlock& block : blocks) {
    const std::uint64_t block_bytes = kBlockHeaderSize + block.payload.size();
    if (block.payload_version > kPayloadVersion) {
      ++out.skipped_newer;  // Written by a newer build; not ours to guess at.
      continue;
    }
    switch (block.type) {
      case BlockType::kEpoch:
      case BlockType::kRollup:
      case BlockType::kPendingRollup: {
        EpochRecord record;
        if (!decode_record(block.payload, block.payload_version, &record)) {
          ++out.undecodable_blocks;  // CRC passed, payload doesn't parse.
          break;
        }
        Slot slot{std::move(record), block_bytes};
        if (block.type == BlockType::kPendingRollup) {
          pending.push_back(std::move(slot));  // Invisible until committed.
        } else {
          live.push_back(std::move(slot));
        }
        break;
      }
      case BlockType::kSupersede: {
        SupersedeMarker marker;
        if (!decode_supersede_marker(block.payload, &marker)) {
          ++out.undecodable_blocks;
          break;
        }
        for (const SupersedeMarker::Commit& commit : marker.commits) {
          // Activate the most recent matching pending rollup. A commit
          // with no pending match is a replay whose work is already done
          // (or whose rollup block was lost to corruption) — ignore it.
          std::size_t take = pending.size();
          for (std::size_t i = pending.size(); i-- > 0;) {
            if (record_ident(pending[i].record) == commit.rollup) {
              take = i;
              break;
            }
          }
          if (take == pending.size()) continue;
          Slot rollup = std::move(pending[take]);
          pending.erase(pending.begin() +
                        static_cast<std::ptrdiff_t>(take));

          // Retire the records it replaces — plus any earlier record with
          // the rollup's own identity, which makes a replayed commit
          // idempotent instead of duplicating the rollup.
          std::vector<std::size_t> retired;
          const auto retire_last_match = [&](const RecordIdent& ident) {
            for (std::size_t i = live.size(); i-- > 0;) {
              if (record_ident(live[i].record) == ident &&
                  std::find(retired.begin(), retired.end(), i) ==
                      retired.end()) {
                retired.push_back(i);
                return;
              }
            }
          };
          retire_last_match(commit.rollup);
          for (const RecordIdent& ident : commit.replaced) {
            retire_last_match(ident);
          }
          std::sort(retired.begin(), retired.end());
          const std::size_t insert_at =
              retired.empty() ? chronological_position(live, rollup.record)
                              : retired.front();
          for (std::size_t i = retired.size(); i-- > 0;) {
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(retired[i]));
            ++out.superseded_records;
          }
          live.insert(live.begin() + static_cast<std::ptrdiff_t>(insert_at),
                      std::move(rollup));
        }
        break;
      }
      default:
        ++out.skipped_newer;  // Unknown block type from a future build.
        break;
    }
  }

  out.orphan_pending = pending.size();
  out.records.reserve(live.size());
  for (Slot& slot : live) {
    out.live_block_bytes += slot.bytes;
    out.records.push_back(std::move(slot.record));
  }
  return out;
}

OpenError ArchiveReader::open(const std::string& path) {
  auto& corrupt_total = obs::registry().counter(
      "patchwork_archive_corrupt_blocks_total",
      "Archive blocks skipped for CRC mismatch or undecodable payload");
  auto& tail_total = obs::registry().counter(
      "patchwork_archive_damaged_tails_total",
      "Archive opens that found a truncated or unframeable tail");
  auto& read_total = obs::registry().counter(
      "patchwork_archive_records_read_total",
      "Epoch/rollup records successfully decoded from archives");

  records_.clear();
  valid_bytes_ = 0;
  corrupt_blocks_ = 0;
  skipped_newer_ = 0;
  superseded_records_ = 0;
  orphan_pending_ = 0;
  live_bytes_ = 0;
  damaged_tail_ = false;

  const auto bytes = util::read_file_bytes(path, kMaxArchiveBytes);
  if (!bytes.has_value()) return OpenError::kIo;
  ScanResult scan = scan_archive_bytes(*bytes);
  if (!scan.ok()) return scan.error;

  valid_bytes_ = scan.valid_bytes;
  damaged_tail_ = scan.damaged_tail;

  AssembledArchive assembled = assemble_blocks(std::move(scan.blocks));
  records_ = std::move(assembled.records);
  corrupt_blocks_ = scan.corrupt_blocks + assembled.undecodable_blocks;
  skipped_newer_ = assembled.skipped_newer;
  superseded_records_ = assembled.superseded_records;
  orphan_pending_ = assembled.orphan_pending;
  live_bytes_ = assembled.live_block_bytes;

  if (corrupt_blocks_ > 0) corrupt_total.add(corrupt_blocks_);
  if (damaged_tail_) tail_total.add(1);
  read_total.add(records_.size());
  return OpenError::kNone;
}

std::uint64_t ArchiveReader::garbage_bytes() const {
  const std::uint64_t accounted = kFileHeaderSize + live_bytes_;
  return valid_bytes_ > accounted ? valid_bytes_ - accounted : 0;
}

}  // namespace patchwork::archive
