#include "archive/query_cache.hpp"

#include "obs/metrics.hpp"
#include "util/file_io.hpp"

namespace patchwork::archive {

namespace {

obs::Counter& cache_counter(const char* name, const char* help) {
  // kWallClock: hit/miss behavior depends on call order and filesystem
  // state, so it stays out of the byte-comparable metrics view.
  return obs::registry().counter(name, help, {},
                                 obs::Determinism::kWallClock);
}

}  // namespace

QueryCache::QueryCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

QueryCache& QueryCache::instance() {
  static QueryCache cache;
  return cache;
}

std::shared_ptr<const ArchiveQuery> QueryCache::get(const std::string& path,
                                                    const QueryWindow& window,
                                                    OpenStatus* status) {
  auto& hits = cache_counter("patchwork_archive_query_cache_hits_total",
                             "Archive queries served from the cache");
  auto& misses = cache_counter("patchwork_archive_query_cache_misses_total",
                               "Archive queries that had to load the file");
  auto& invalidations =
      cache_counter("patchwork_archive_query_cache_invalidations_total",
                    "Cache entries dropped because the file changed");

  const auto size_now = util::file_size_bytes(path);
  const auto mtime_now = util::file_mtime_nanos(path);

  if (size_now && mtime_now) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->path != path || it->window != window) continue;
      if (it->file_size == *size_now && it->file_mtime_nanos == *mtime_now) {
        entries_.splice(entries_.begin(), entries_, it);  // LRU touch.
        hits.add(1);
        if (status != nullptr) *status = entries_.front().status;
        return entries_.front().query;
      }
      entries_.erase(it);  // Stale: the file was appended to or rewritten.
      invalidations.add(1);
      break;
    }
  }

  // Load outside the lock; concurrent misses for the same key may load
  // twice, which is benign (both results are equally fresh).
  misses.add(1);
  OpenStatus loaded_status;
  auto query = std::make_shared<const ArchiveQuery>(
      ArchiveQuery::from_file(path, window, &loaded_status));
  if (status != nullptr) *status = loaded_status;
  if (!loaded_status.ok()) return query;  // Don't cache failures.

  // Re-stat *after* the load: if the file changed while we read it, the
  // recorded identity must not validate a torn read on the next lookup.
  const auto size_after = util::file_size_bytes(path);
  const auto mtime_after = util::file_mtime_nanos(path);
  if (!size_after || !mtime_after || size_after != size_now ||
      mtime_after != mtime_now) {
    return query;  // Unstable while reading; serve it but don't cache.
  }

  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_front(Entry{path, window, *size_after, *mtime_after,
                            loaded_status, query});
  while (entries_.size() > capacity_) entries_.pop_back();
  return query;
}

void QueryCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace patchwork::archive
