// The archive's unit of storage: one epoch's derived profile records.
//
// A raw epoch is one ProfileRun boiled down to what longitudinal queries
// need — global and per-site frame-size histograms, protocol occurrence,
// TCP control and tagging composition, capture-loss accounting, per-site
// load, a top-K flow summary, and the run's manifest (deterministic
// section, embedded verbatim). A rollup is the same struct covering a
// span of epochs, produced by merge_from().
//
// Merge semantics: every field is either a sum (counters, histogram
// buckets, per-site loads joined by site name), a max (largest flow), a
// span extension (first/last epoch, start/duration), or a sketch fold.
// Sums and maxes are commutative and associative, so every sum-derived
// query answer (shares, loads, loss accounting) is invariant under any
// compaction grouping. The sketch is fold-order-sensitive once it
// truncates, so the compactor and the query layer both fold records
// oldest-first: a prefix rollup reproduces the raw query's fold exactly,
// and any grouping keeps top-K counts within the sketch's error bound.
//
// Federation: records carry an `origin` deployment tag (empty for a local,
// unfederated archive). Epoch indices are only unique per deployment, so
// (origin, first_epoch..last_epoch, level) — a RecordIdent — is the
// identity cross-archive merges and supersede markers address records by.
// Merging records from different origins qualifies the span label with
// each side's origin so "week38" from two testbeds stays distinguishable.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "archive/sketch.hpp"

namespace patchwork::archive {

/// A serializable histogram: explicit edges plus per-bucket counts, so the
/// archive is self-describing (no dependence on the writer's bucket
/// tables). Bucket i covers [edges[i], edges[i+1]).
struct HistCounts {
  std::vector<double> edges;
  std::vector<std::uint64_t> counts;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;

  std::uint64_t total() const;
  /// Fraction of all samples at or above `lo`, plus overflow (e.g. lo=1519
  /// gives the jumbo share under the paper edges). A bucket that straddles
  /// `lo` contributes the overlap fraction of its count (uniform-within-
  /// bucket attribution), so off-edge thresholds are no longer undercounted.
  double fraction_at_or_above(double lo) const;
  /// Sum-invariant merge. Identical layouts add bucket-wise; mismatched
  /// layouts are both re-binned into the coarsest common layout (the
  /// intersection of the two edge sets — exact, since neither side's
  /// buckets straddle a shared edge). Buckets outside the common span fall
  /// back to underflow/overflow, so total() is preserved under any merge.
  void merge(const HistCounts& other);

  bool operator==(const HistCounts&) const = default;
};

/// One site's contribution to an epoch (or a rollup's span).
struct SiteEpochLoad {
  std::string site;
  std::uint64_t samples = 0;
  std::uint64_t frames = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t pcap_bytes = 0;
  std::uint64_t switch_drops_suspected = 0;
  HistCounts frame_sizes;

  bool operator==(const SiteEpochLoad&) const = default;
};

struct EpochRecord {
  // --- identity / span ---------------------------------------------------
  std::uint32_t level = 0;  ///< 0 = raw epoch; >=1 = rollup generation.
  std::uint64_t first_epoch = 0;
  std::uint64_t last_epoch = 0;
  std::uint32_t epoch_count = 1;
  std::string label;  ///< "week38", or "week38..week41" for rollups.
  /// Deployment tag for federated archives ("" = local). Epoch indices are
  /// per-deployment, so origin disambiguates colliding indices and labels
  /// when archives from several deployments merge into one.
  std::string origin;
  std::uint64_t start_nanos = 0;
  std::uint64_t duration_nanos = 0;  ///< Span from start to last epoch end.
  double offered_bps_sum = 0.0;  ///< Sum over covered epochs (divide by
                                 ///< epoch_count for the trend average).

  // --- capture-loss accounting -------------------------------------------
  std::uint64_t samples = 0;
  std::uint64_t frames = 0;
  std::uint64_t bad_records = 0;
  std::uint64_t truncated_frames = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t switch_drops_suspected = 0;
  std::uint64_t pcap_bytes = 0;

  // --- profile composition -----------------------------------------------
  HistCounts frame_sizes;
  std::uint64_t occurrence_frames = 0;
  /// Indexed by net::Protocol; sized at extraction time.
  std::vector<std::uint64_t> protocol_occurrences;
  std::uint64_t tcp_frames = 0, tcp_syn = 0, tcp_fin = 0, tcp_rst = 0,
                tcp_pure_ack = 0;
  std::uint64_t tag_frames = 0, vlan_tagged = 0, mpls_tagged = 0,
                both_tagged = 0, untagged = 0;
  /// Sum of per-epoch distinct flow counts (flow *snippets*: a flow alive
  /// in two epochs counts twice — the mergeable reading of "distinct").
  std::uint64_t flow_snippets = 0;
  std::uint64_t largest_flow_bytes = 0;  ///< Max-merge.

  std::vector<SiteEpochLoad> site_loads;  ///< Sorted by site name.
  TopFlowSketch top_flows;

  /// Raw epochs: the run manifest's deterministic section, verbatim.
  /// Rollups drop it (a merged manifest has no meaning).
  std::string manifest_json;

  bool is_rollup() const { return level > 0; }

  /// Fold `other` (the chronologically later record) into this one. When
  /// the origins differ, the span label qualifies each end with its origin
  /// ("testbedA:week3..testbedB:week5") and the rollup's own origin becomes
  /// empty (mixed); same-origin merges keep the tag.
  void merge_from(const EpochRecord& other);

  bool operator==(const EpochRecord&) const = default;
};

/// The identity supersede markers and federation address a record by:
/// epoch indices are per-deployment, so origin is part of the key.
struct RecordIdent {
  std::string origin;
  std::uint32_t level = 0;
  std::uint64_t first_epoch = 0;
  std::uint64_t last_epoch = 0;

  bool operator==(const RecordIdent&) const = default;
};

RecordIdent record_ident(const EpochRecord& record);

/// The payload of a kSupersede block: commits the pending rollups named in
/// `commits` (appended just before the marker) and retires the records each
/// one replaces. The marker is what makes an incremental compaction commit
/// atomic: a pending rollup without a matching marker is invisible, so a
/// crash between the rollup append and the marker append leaves the raw
/// records authoritative and the orphan block as garbage for the next GC.
struct SupersedeMarker {
  struct Commit {
    RecordIdent rollup;                 ///< Pending rollup to activate.
    std::vector<RecordIdent> replaced;  ///< Records it supersedes.

    bool operator==(const Commit&) const = default;
  };
  std::vector<Commit> commits;

  bool operator==(const SupersedeMarker&) const = default;
};

/// Deterministic payload codec (big-endian, length-prefixed strings).
std::vector<std::uint8_t> encode_record(const EpochRecord& record);
/// Strict decode: any out-of-bounds length, trailing garbage, or a top-flow
/// sketch violating its own invariants (entries above capacity, error above
/// count) fails. `payload_version` selects the wire layout: version 1
/// predates the origin tag, version 2 carries it.
bool decode_record(std::span<const std::uint8_t> payload,
                   std::uint8_t payload_version, EpochRecord* out);
/// Current-version convenience (tests, round-trips).
bool decode_record(std::span<const std::uint8_t> payload, EpochRecord* out);

std::vector<std::uint8_t> encode_supersede_marker(const SupersedeMarker& m);
bool decode_supersede_marker(std::span<const std::uint8_t> payload,
                             SupersedeMarker* out);

}  // namespace patchwork::archive
