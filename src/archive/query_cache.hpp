// Read-path response cache for archive queries.
//
// Federation turns "open the archive, fold every record" from a once-a-week
// operation into something dashboards and the live endpoint hit repeatedly,
// often with the same window. QueryCache fronts ArchiveQuery::from_file
// with validation-based caching: entries are keyed by (path, window) and
// carry the file identity (size + mtime nanos) observed at load time. A
// lookup revalidates by stat — if the file changed (archive append, a
// compaction commit, GC), the entry is invalid and the query reloads.
// stat-per-hit keeps the cache coherent without any write-path hooks.
//
// Queries are returned as shared_ptr-to-const so a hit costs one stat and
// one refcount, never a record copy, and an entry evicted mid-use stays
// alive for its holders.
//
// Hit/miss/invalidation counters are registered kWallClock: cache behavior
// depends on call timing and file system state, not the seeded work, so
// it must not leak into the byte-comparable metrics view.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "archive/query.hpp"

namespace patchwork::archive {

class QueryCache {
 public:
  /// `capacity` bounds the number of cached (path, window) entries; least
  /// recently used entries are evicted first.
  explicit QueryCache(std::size_t capacity = 16);

  /// Process-wide instance the CLI and services share.
  static QueryCache& instance();

  /// Cached equivalent of ArchiveQuery::from_file(path, window, status).
  /// Failed opens are not cached (the next call retries the file).
  std::shared_ptr<const ArchiveQuery> get(const std::string& path,
                                          const QueryWindow& window = {},
                                          OpenStatus* status = nullptr);

  void clear();
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string path;
    QueryWindow window;
    std::uint64_t file_size = 0;
    std::uint64_t file_mtime_nanos = 0;
    OpenStatus status;
    std::shared_ptr<const ArchiveQuery> query;
  };

  // LRU list, most recent first. Linear scan is fine at dashboard-scale
  // capacities; correctness lives in the validation, not the lookup.
  mutable std::mutex mutex_;
  std::list<Entry> entries_;
  std::size_t capacity_;
};

}  // namespace patchwork::archive
