#include "archive/format.hpp"

#include "util/byte_io.hpp"
#include "util/crc32.hpp"

namespace patchwork::archive {

std::vector<std::uint8_t> encode_file_header() {
  std::vector<std::uint8_t> out;
  out.reserve(kFileHeaderSize);
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  util::put_be16(out, kFormatVersion);
  util::put_be16(out, 0);  // flags
  return out;
}

void append_block(std::vector<std::uint8_t>& out, BlockType type,
                  std::span<const std::uint8_t> payload) {
  util::put_be32(out, static_cast<std::uint32_t>(payload.size()));
  // The CRC covers type..reserved plus the payload, so it is computed over
  // exactly the bytes written after it (minus the length, which frames the
  // block and is validated by the scan's bounds checks instead).
  std::vector<std::uint8_t> covered;
  covered.reserve(4 + payload.size());
  util::put_u8(covered, static_cast<std::uint8_t>(type));
  util::put_u8(covered, kPayloadVersion);
  util::put_be16(covered, 0);  // reserved
  covered.insert(covered.end(), payload.begin(), payload.end());
  const std::uint32_t crc = util::crc32(covered);
  out.insert(out.end(), covered.begin(), covered.begin() + 4);
  util::put_be32(out, crc);
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace patchwork::archive
