#include "archive/compactor.hpp"

#include <numeric>

#include "archive/writer.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/file_io.hpp"
#include "util/parallel.hpp"

namespace patchwork::archive {

namespace {

std::uint64_t block_bytes(const EpochRecord& record) {
  return kBlockHeaderSize + encode_record(record).size();
}

std::uint64_t image_bytes(const std::vector<std::uint64_t>& sizes) {
  return std::accumulate(sizes.begin(), sizes.end(),
                         std::uint64_t{kFileHeaderSize});
}

/// Whole-file rewrite commit: atomically replaces `path` with the live
/// records, shedding garbage, corrupt blocks, and damaged tails.
void rewrite_live(const std::string& path,
                  const std::vector<EpochRecord>& records,
                  CompactionResult& result) {
  if (!write_all(path, records)) {
    result.error = OpenError::kIo;
    return;
  }
  result.changed = true;
  result.gc = true;
  result.bytes_after = util::file_size_bytes(path).value_or(0);
  obs::registry()
      .counter("patchwork_archive_compactions_total",
               "Archive compactions that rewrote the file")
      .add(1);
}

}  // namespace

CompactionPlan plan_compaction(std::vector<EpochRecord> records,
                               const CompactionOptions& options) {
  const std::size_t group_size = options.group_size < 2 ? 2
                                                        : options.group_size;
  CompactionPlan plan;
  plan.records = std::move(records);
  plan.cover.reserve(plan.records.size());
  for (std::size_t i = 0; i < plan.records.size(); ++i) {
    plan.cover.push_back({i, i + 1});
  }
  std::vector<std::uint64_t> sizes = util::parallel_map(
      plan.records, [](const EpochRecord& r) { return block_bytes(r); });

  while (plan.records.size() > 1 &&
         image_bytes(sizes) > options.storage_budget_bytes) {
    ++plan.passes;

    // Group consecutive records from the oldest end and fold each group
    // left-to-right. The folds are independent, so they run in parallel;
    // each group's result depends only on its members and order, never on
    // the schedule.
    std::vector<std::pair<std::size_t, std::size_t>> groups;  // [begin, end)
    for (std::size_t begin = 0; begin < plan.records.size();
         begin += group_size) {
      groups.push_back(
          {begin, std::min(begin + group_size, plan.records.size())});
    }
    struct Merged {
      EpochRecord record;
      std::uint64_t bytes = 0;
    };
    const std::vector<Merged> merged = util::parallel_map(
        groups, [&](const std::pair<std::size_t, std::size_t>& g) {
          EpochRecord fold = plan.records[g.first];
          for (std::size_t i = g.first + 1; i < g.second; ++i) {
            fold.merge_from(plan.records[i]);
          }
          return Merged{std::move(fold), 0};
        });
    std::vector<std::uint64_t> merged_sizes = util::parallel_map(
        merged, [](const Merged& m) { return block_bytes(m.record); });

    // Accept merges greedily oldest-first: newer epochs keep raw fidelity
    // whenever the budget allows. `projected` starts as the current image
    // and swaps one group's members for its rollup at a time.
    std::uint64_t projected = image_bytes(sizes);
    std::size_t accepted = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (projected <= options.storage_budget_bytes) break;
      std::uint64_t members = 0;
      for (std::size_t i = groups[g].first; i < groups[g].second; ++i) {
        members += sizes[i];
      }
      projected = projected - members + merged_sizes[g];
      ++accepted;
    }
    if (accepted == 0) break;

    std::vector<EpochRecord> next;
    std::vector<std::pair<std::size_t, std::size_t>> next_cover;
    std::vector<std::uint64_t> next_sizes;
    for (std::size_t g = 0; g < accepted; ++g) {
      next.push_back(merged[g].record);
      // A fold's cover is the span of *original input* records it absorbed,
      // composed across passes (its members may themselves be folds).
      next_cover.push_back({plan.cover[groups[g].first].first,
                            plan.cover[groups[g].second - 1].second});
      next_sizes.push_back(merged_sizes[g]);
    }
    const std::size_t tail_begin = groups[accepted - 1].second;
    for (std::size_t i = tail_begin; i < plan.records.size(); ++i) {
      next.push_back(std::move(plan.records[i]));
      next_cover.push_back(plan.cover[i]);
      next_sizes.push_back(sizes[i]);
    }
    if (next.size() >= plan.records.size()) break;  // No shrink: stuck.
    plan.records = std::move(next);
    plan.cover = std::move(next_cover);
    sizes = std::move(next_sizes);
  }
  return plan;
}

std::vector<EpochRecord> compact_records(std::vector<EpochRecord> records,
                                         const CompactionOptions& options,
                                         std::size_t* passes_out) {
  CompactionPlan plan = plan_compaction(std::move(records), options);
  if (passes_out != nullptr) *passes_out = plan.passes;
  return std::move(plan.records);
}

CompactionResult compact_archive(const std::string& path,
                                 const CompactionOptions& options) {
  OBS_SPAN("archive/compact");
  CompactionResult result;

  ArchiveReader reader;
  result.error = reader.open(path);
  if (!result.ok()) return result;
  result.bytes_before = util::file_size_bytes(path).value_or(0);
  result.records_before = reader.records().size();
  const bool dirty = reader.damaged_tail() || reader.corrupt_blocks() > 0;

  std::vector<EpochRecord> input = reader.take_records();
  std::vector<RecordIdent> input_idents;
  input_idents.reserve(input.size());
  for (const EpochRecord& r : input) input_idents.push_back(record_ident(r));

  CompactionPlan plan = plan_compaction(std::move(input), options);
  result.records_after = plan.records.size();
  result.passes = plan.passes;

  if (!options.incremental || dirty) {
    // Legacy mode, or the file carries damage an append cannot shed.
    if (result.passes == 0 && !dirty) {
      result.bytes_after = result.bytes_before;
      return result;  // Under budget and clean: leave bytes untouched.
    }
    rewrite_live(path, plan.records, result);
    return result;
  }

  // Incremental commit: append every new rollup as a pending block, then
  // one supersede marker that commits them all. The marker is the atomicity
  // point — a crash anywhere before it leaves the raw records authoritative
  // and the partial append as garbage (truncated tails are dropped by the
  // next open; complete orphans wait for GC).
  SupersedeMarker marker;
  std::vector<std::uint8_t> commit;
  for (std::size_t i = 0; i < plan.records.size(); ++i) {
    const auto [begin, end] = plan.cover[i];
    if (end - begin <= 1) continue;  // An input record the plan kept as-is.
    append_block(commit, BlockType::kPendingRollup,
                 encode_record(plan.records[i]));
    SupersedeMarker::Commit c;
    c.rollup = record_ident(plan.records[i]);
    c.replaced.assign(input_idents.begin() + static_cast<std::ptrdiff_t>(begin),
                      input_idents.begin() + static_cast<std::ptrdiff_t>(end));
    marker.commits.push_back(std::move(c));
  }
  if (!marker.commits.empty()) {
    append_block(commit, BlockType::kSupersede,
                 encode_supersede_marker(marker));
    if (!util::append_file(path, commit)) {
      result.error = OpenError::kIo;
      return result;
    }
    result.changed = true;
    result.bytes_appended = commit.size();
    result.rollups_committed = marker.commits.size();
    obs::registry()
        .counter("patchwork_archive_incremental_commits_total",
                 "Compaction commits appended as pending rollups + marker")
        .add(1);
  }

  // The commit grew the file while shrinking the live image; rewrite only
  // once garbage crosses the configured fraction (default: never).
  const std::uint64_t file_bytes = result.bytes_before + result.bytes_appended;
  std::uint64_t live = kFileHeaderSize;
  for (const EpochRecord& r : plan.records) live += block_bytes(r);
  const std::uint64_t garbage = file_bytes > live ? file_bytes - live : 0;
  if (file_bytes > 0 && static_cast<double>(garbage) >
                            options.gc_garbage_fraction *
                                static_cast<double>(file_bytes)) {
    rewrite_live(path, plan.records, result);
    return result;
  }
  result.bytes_after = file_bytes;
  return result;
}

CompactionResult gc_archive(const std::string& path) {
  OBS_SPAN("archive/gc");
  CompactionResult result;

  ArchiveReader reader;
  result.error = reader.open(path);
  if (!result.ok()) return result;
  result.bytes_before = util::file_size_bytes(path).value_or(0);
  result.records_before = reader.records().size();
  result.records_after = result.records_before;

  if (reader.garbage_bytes() == 0 && !reader.damaged_tail() &&
      reader.corrupt_blocks() == 0) {
    result.bytes_after = result.bytes_before;
    return result;  // Nothing to shed; leave the file byte-untouched.
  }
  rewrite_live(path, reader.take_records(), result);
  return result;
}

}  // namespace patchwork::archive
