#include "archive/compactor.hpp"

#include <numeric>

#include "archive/writer.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/file_io.hpp"
#include "util/parallel.hpp"

namespace patchwork::archive {

namespace {

std::uint64_t block_bytes(const EpochRecord& record) {
  return kBlockHeaderSize + encode_record(record).size();
}

std::uint64_t image_bytes(const std::vector<std::uint64_t>& sizes) {
  return std::accumulate(sizes.begin(), sizes.end(),
                         std::uint64_t{kFileHeaderSize});
}

}  // namespace

std::vector<EpochRecord> compact_records(std::vector<EpochRecord> records,
                                         const CompactionOptions& options,
                                         std::size_t* passes_out) {
  const std::size_t group_size = options.group_size < 2 ? 2
                                                        : options.group_size;
  std::size_t passes = 0;
  std::vector<std::uint64_t> sizes = util::parallel_map(
      records, [](const EpochRecord& r) { return block_bytes(r); });

  while (records.size() > 1 &&
         image_bytes(sizes) > options.storage_budget_bytes) {
    ++passes;

    // Group consecutive records from the oldest end and fold each group
    // left-to-right. The folds are independent, so they run in parallel;
    // each group's result depends only on its members and order, never on
    // the schedule.
    std::vector<std::pair<std::size_t, std::size_t>> groups;  // [begin, end)
    for (std::size_t begin = 0; begin < records.size();
         begin += group_size) {
      groups.push_back({begin, std::min(begin + group_size, records.size())});
    }
    struct Merged {
      EpochRecord record;
      std::uint64_t bytes = 0;
    };
    const std::vector<Merged> merged = util::parallel_map(
        groups, [&](const std::pair<std::size_t, std::size_t>& g) {
          EpochRecord fold = records[g.first];
          for (std::size_t i = g.first + 1; i < g.second; ++i) {
            fold.merge_from(records[i]);
          }
          return Merged{std::move(fold), 0};
        });
    std::vector<std::uint64_t> merged_sizes = util::parallel_map(
        merged, [](const Merged& m) { return block_bytes(m.record); });

    // Accept merges greedily oldest-first: newer epochs keep raw fidelity
    // whenever the budget allows. `projected` starts as the current image
    // and swaps one group's members for its rollup at a time.
    std::uint64_t projected = image_bytes(sizes);
    std::size_t accepted = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (projected <= options.storage_budget_bytes) break;
      std::uint64_t members = 0;
      for (std::size_t i = groups[g].first; i < groups[g].second; ++i) {
        members += sizes[i];
      }
      projected = projected - members + merged_sizes[g];
      ++accepted;
    }
    if (accepted == 0) break;

    std::vector<EpochRecord> next;
    std::vector<std::uint64_t> next_sizes;
    for (std::size_t g = 0; g < accepted; ++g) {
      next.push_back(merged[g].record);
      next_sizes.push_back(merged_sizes[g]);
    }
    const std::size_t tail_begin = groups[accepted - 1].second;
    for (std::size_t i = tail_begin; i < records.size(); ++i) {
      next.push_back(std::move(records[i]));
      next_sizes.push_back(sizes[i]);
    }
    if (next.size() >= records.size()) break;  // No shrink: cannot converge.
    records = std::move(next);
    sizes = std::move(next_sizes);
  }

  if (passes_out != nullptr) *passes_out = passes;
  return records;
}

CompactionResult compact_archive(const std::string& path,
                                 const CompactionOptions& options) {
  OBS_SPAN("archive/compact");
  CompactionResult result;

  ArchiveReader reader;
  result.error = reader.open(path);
  if (!result.ok()) return result;
  result.bytes_before = util::file_size_bytes(path).value_or(0);
  result.records_before = reader.records().size();

  std::vector<EpochRecord> compacted =
      compact_records(reader.take_records(), options, &result.passes);
  result.records_after = compacted.size();

  if (result.passes == 0 && !reader.damaged_tail() &&
      reader.corrupt_blocks() == 0) {
    result.bytes_after = result.bytes_before;
    return result;  // Already under budget and clean: leave bytes untouched.
  }

  // Commit by atomic replace; rewriting also sheds any corrupt blocks or
  // damaged tail the reader skipped.
  if (!write_all(path, compacted)) {
    result.error = OpenError::kIo;
    return result;
  }
  result.changed = true;
  result.bytes_after = util::file_size_bytes(path).value_or(0);
  obs::registry()
      .counter("patchwork_archive_compactions_total",
               "Archive compactions that rewrote the file")
      .add(1);
  return result;
}

}  // namespace patchwork::archive
