// Fluent construction of wire-format frames.
//
// The builder records a stack of layers and resolves all inter-layer
// plumbing at build() time: EtherType chaining, MPLS bottom-of-stack bits,
// IP protocol numbers, and the length fields that depend on everything
// stacked above. This is what lets the traffic generator express the
// paper's FABRIC encapsulations naturally:
//
//   FrameBuilder()
//       .ethernet(src, dst).vlan(100).mpls(16001).mpls(16002)
//       .pseudowire().ethernet(vm_src, vm_dst)
//       .ipv4(a, b).tcp(49152, 443, tcp_flags::kAck).tls()
//       .pad_to(1514)
//       .build(t);
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "net/frame_store.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"

namespace patchwork::net {

/// Which per-frame field FrameBuilder::build_many_into() patches into each
/// copy of its serialized template. The patched fields are exactly the
/// ones the traffic renderer varies inside a render unit; everything else
/// in a unit's frames is byte-identical, which is what makes the
/// template-stamp fast path legal.
enum class PerFrameField : std::uint8_t {
  kNone,            ///< Frames differ only by timestamp.
  kTcpSeqAndDnsId,  ///< values[i] -> every TCP seq (BE32) + DNS id (BE16).
  kTcpAck,          ///< values[i] -> every TCP ack number (BE32).
};

class FrameBuilder {
 public:
  FrameBuilder() = default;

  FrameBuilder& ethernet(MacAddress src, MacAddress dst);
  FrameBuilder& vlan(std::uint16_t vid, std::uint8_t pcp = 0);
  FrameBuilder& mpls(std::uint32_t label, std::uint8_t ttl = 64);
  FrameBuilder& pseudowire(std::uint16_t sequence = 0);
  FrameBuilder& arp(MacAddress sender_mac, Ipv4Address sender_ip,
                    Ipv4Address target_ip, bool reply = false);
  FrameBuilder& ipv4(Ipv4Address src, Ipv4Address dst, std::uint8_t ttl = 64);
  FrameBuilder& ipv6(Ipv6Address src, Ipv6Address dst,
                     std::uint8_t hop_limit = 64);
  FrameBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port,
                    std::uint8_t flags = tcp_flags::kAck,
                    std::uint32_t seq = 0, std::uint32_t ack = 0);
  FrameBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  FrameBuilder& icmp(std::uint8_t type = 8, std::uint8_t code = 0);
  FrameBuilder& dns(std::uint16_t id, bool response = false);
  FrameBuilder& tls(std::uint8_t content_type = 23);
  FrameBuilder& ntp();
  FrameBuilder& vxlan(std::uint32_t vni);
  /// GRE tunnel header; the payload EtherType chains from the next layer
  /// (inner Ethernet uses transparent Ethernet bridging).
  FrameBuilder& gre();
  FrameBuilder& ssh_banner();
  FrameBuilder& http_request();

  /// Raw application payload of `size` bytes (pattern-filled).
  FrameBuilder& payload(std::size_t size);

  /// Pad the finished frame with payload bytes so its wire length is
  /// exactly `frame_size` (64..9216). No-op if already at least that long.
  FrameBuilder& pad_to(std::size_t frame_size);

  /// Resolve chaining/lengths and emit the frame. The builder can be
  /// reused after build() for another identical stack.
  Frame build(util::Nanos timestamp = 0) const;

  /// Like build(), but serializes straight into `store`'s arena instead of
  /// allocating an owning Frame — the batched-synthesis hot path. Emits
  /// byte-identical output to build() for the same stack.
  void build_into(FrameStore& store, util::Nanos timestamp = 0) const;

  /// Batched build_into(): emit one frame per timestamps[i], all from the
  /// current stack, patching values[i] into the field(s) selected by
  /// `field`. The stack must describe the fields being patched with value
  /// 0 (the template is serialized once, then stamped per frame), so the
  /// output is byte-identical to calling build_into() per frame with
  /// values[i] threaded through the stack. Requires
  /// values.size() == timestamps.size() unless field == kNone.
  void build_many_into(FrameStore& store,
                       std::span<const util::Nanos> timestamps,
                       std::span<const std::uint32_t> values,
                       PerFrameField field) const;

  /// Clear the stack so the builder can describe the next frame while
  /// keeping its buffers' capacity.
  void reset();

  std::size_t layer_count() const { return layers_.size(); }

 private:
  struct Payload {
    std::size_t size = 0;
  };
  using Layer =
      std::variant<EthernetHeader, VlanTag, MplsLabel, PseudoWireControlWord,
                   ArpHeader, Ipv4Header, Ipv6Header, TcpHeader, UdpHeader,
                   IcmpHeader, DnsHeader, TlsRecordHeader, NtpHeader,
                   VxlanHeader, GreHeader, Payload>;
  enum class Marker : std::uint8_t { kNone, kSsh, kHttp };

  std::vector<Layer> layers_;
  std::vector<Marker> markers_;  // Parallel to layers_, for SSH/HTTP text.
  std::size_t pad_to_ = 0;
  /// Working copy resolved by build()/build_into(); a member so repeated
  /// builds reuse its capacity instead of allocating per frame.
  mutable std::vector<Layer> scratch_;
  /// One resolved serialization of the stack, reused as the stamp source
  /// by build_many_into(); a member for the same capacity-reuse reason.
  mutable Bytes template_;

  void push(Layer layer, Marker marker = Marker::kNone);
  /// Pad, resolve chaining/length fields in `layers`, and append the
  /// serialization to `out`.
  void resolve_and_serialize(std::vector<Layer>& layers, Bytes& out) const;
};

}  // namespace patchwork::net
