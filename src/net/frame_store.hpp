// Arena-backed frame storage for the batched synthesis path.
//
// The render hot loop used to materialize every frame as an owning
// net::Frame (one heap vector per packet). A FrameStore instead packs a
// burst's frames back-to-back into one byte arena plus a small metadata
// row per frame, and hands out FrameView slices — the same zero-copy shape
// pcap::FrameView gives the read path. One allocation amortizes across
// the whole burst, and clear() keeps the capacity for the next one.
//
// Lifetime rule: views alias the arena, which may reallocate while frames
// are still being appended. Take views only after the store stops growing
// (the render path builds a whole burst, then reads).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/headers.hpp"
#include "util/units.hpp"

namespace patchwork::net {

/// Non-owning view of one synthesized frame: captured bytes, original wire
/// length, and timestamp. Mirrors pcap::FrameView so capture code can
/// consume either source.
struct FrameView {
  std::span<const std::uint8_t> bytes;
  std::size_t wire_length = 0;
  util::Nanos timestamp = 0;
};

class FrameStore {
 public:
  std::size_t size() const { return meta_.size(); }
  bool empty() const { return meta_.empty(); }
  std::size_t total_bytes() const { return bytes_.size(); }

  /// Drop all frames but keep both buffers' capacity (arena reuse).
  void clear() {
    bytes_.clear();
    meta_.clear();
  }

  void reserve(std::size_t frames, std::size_t bytes) {
    meta_.reserve(frames);
    bytes_.reserve(bytes);
  }

  /// The byte arena. Builders append a frame's serialization directly
  /// here, then commit() the appended range.
  Bytes& arena() { return bytes_; }

  /// Register the frame occupying [start, arena().size()) with the given
  /// timestamp. The wire length is the serialized length (synthesis emits
  /// untruncated frames).
  void commit(std::size_t start, util::Nanos timestamp) {
    meta_.push_back(Meta{start, bytes_.size() - start, timestamp});
  }

  FrameView view(std::size_t i) const {
    const Meta& m = meta_[i];
    return FrameView{
        std::span<const std::uint8_t>(bytes_).subspan(m.offset, m.length),
        m.length, m.timestamp};
  }

 private:
  struct Meta {
    std::size_t offset = 0;
    std::size_t length = 0;
    util::Nanos timestamp = 0;
  };
  Bytes bytes_;
  std::vector<Meta> meta_;
};

}  // namespace patchwork::net
