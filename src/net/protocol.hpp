// Protocol identifiers shared by the packet builder, the dissector, and the
// analysis pipeline's abstract header stacks ("acap", Section 6.2.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace patchwork::net {

/// Every protocol the dissector can identify. The set covers all protocols
/// the paper names in its encapsulation examples and header-occurrence
/// figure: "Ethernet / VLAN / MPLS / MPLS / PseudoWire / Ethernet / IPv4 /
/// TCP / TLS" and "Ethernet / VLAN / MPLS / PseudoWire / Ethernet / IPv6 /
/// SSH".
enum class Protocol : std::uint8_t {
  kEthernet,
  kVlan,         // IEEE 802.1Q
  kMpls,
  kPseudoWire,   // PW Ethernet control word (RFC 4448)
  kArp,
  kIpv4,
  kIpv6,
  kTcp,
  kUdp,
  kIcmp,
  kIcmpv6,
  kDns,
  kTls,
  kSsh,
  kHttp,
  kNtp,
  kVxlan,
  kGre,
  kIperf,        // Payload pattern used by iperf-style bulk streams.
  kPayload,      // Unclassified application payload.
  kTruncated,    // Snaplen cut the frame before this layer completed.
  kMalformed,    // Bytes inconsistent with any known header at this point.
};

inline constexpr std::size_t kProtocolCount =
    static_cast<std::size_t>(Protocol::kMalformed) + 1;

std::string_view to_string(Protocol p);
std::optional<Protocol> protocol_from_string(std::string_view name);

// EtherType values (also used after VLAN tags).
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86DD;
inline constexpr std::uint16_t kEtherTypeMplsUnicast = 0x8847;

// IP protocol numbers.
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::uint8_t kIpProtoGre = 47;
inline constexpr std::uint8_t kIpProtoIcmpv6 = 58;

// GRE protocol-type for transparent Ethernet bridging (RFC 1701 family).
inline constexpr std::uint16_t kEtherTypeTransparentEthernet = 0x6558;

// Well-known ports the dissector uses to classify payloads, mirroring the
// paper's note that "layer-4 ports are often used to classify the payload
// that follows".
inline constexpr std::uint16_t kPortSsh = 22;
inline constexpr std::uint16_t kPortDns = 53;
inline constexpr std::uint16_t kPortHttp = 80;
inline constexpr std::uint16_t kPortNtp = 123;
inline constexpr std::uint16_t kPortTls = 443;
inline constexpr std::uint16_t kPortVxlan = 4789;
inline constexpr std::uint16_t kPortIperf = 5201;

}  // namespace patchwork::net
