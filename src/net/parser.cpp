#include "net/parser.hpp"

#include "util/byte_io.hpp"

namespace patchwork::net {

using util::fits;
using util::get_u8;

std::size_t ParsedFrame::header_depth() const {
  std::size_t depth = 0;
  for (const LayerInfo& l : layers) {
    switch (l.protocol) {
      case Protocol::kPayload:
      case Protocol::kIperf:
      case Protocol::kTruncated:
      case Protocol::kMalformed:
        break;
      default:
        ++depth;
    }
  }
  return depth;
}

bool ParsedFrame::has(Protocol p) const { return count(p) > 0; }

std::size_t ParsedFrame::count(Protocol p) const {
  std::size_t n = 0;
  for (const LayerInfo& l : layers) {
    if (l.protocol == p) ++n;
  }
  return n;
}

std::string ParsedFrame::stack_string() const {
  std::size_t total = layers.empty() ? 0 : layers.size() - 1;  // Separators.
  for (const LayerInfo& l : layers) total += to_string(l.protocol).size();
  std::string out;
  out.reserve(total);
  for (const LayerInfo& l : layers) {
    if (!out.empty()) out += '/';
    out += to_string(l.protocol);
  }
  return out;
}

namespace {

/// Dissection state threaded through the layer walkers.
class Dissector {
 public:
  Dissector(ByteView buf, std::size_t wire_length)
      : buf_(buf), wire_length_(wire_length) {}

  ParsedFrame take(util::Nanos timestamp) {
    ParsedFrame out = std::move(result_);
    out.wire_length = wire_length_;
    out.captured_length = buf_.size();
    out.timestamp = timestamp;
    return out;
  }

  void run() { ethernet(0); }

 private:
  /// True if the capture ends before a header of `need` bytes at `off`
  /// could complete but the original frame did extend that far — i.e. the
  /// snaplen, not the sender, cut it short.
  bool truncated_at(std::size_t off, std::size_t need) const {
    return !fits(buf_, off, need) && off + need <= wire_length_;
  }

  void add(Protocol p, std::size_t off, std::size_t len) {
    result_.layers.push_back(LayerInfo{p, off, len});
  }

  void mark_tail(std::size_t off, std::size_t need) {
    if (truncated_at(off, need)) {
      add(Protocol::kTruncated, off, buf_.size() - off);
    } else if (off < buf_.size()) {
      add(Protocol::kMalformed, off, buf_.size() - off);
    }
  }

  void payload_tail(std::size_t off, Protocol label = Protocol::kPayload) {
    const std::size_t have = buf_.size() > off ? buf_.size() - off : 0;
    const std::size_t wire = wire_length_ > off ? wire_length_ - off : 0;
    if (wire == 0) return;  // Nothing followed on the wire (e.g. bare ACK).
    add(label, off, have);
  }

  void ethernet(std::size_t off) {
    auto eth = EthernetHeader::decode(buf_, off);
    if (!eth) {
      mark_tail(off, EthernetHeader::kSize);
      return;
    }
    add(Protocol::kEthernet, off, EthernetHeader::kSize);
    by_ethertype(eth->ethertype, off + EthernetHeader::kSize);
  }

  void by_ethertype(std::uint16_t ethertype, std::size_t off) {
    switch (ethertype) {
      case kEtherTypeVlan: vlan(off); break;
      case kEtherTypeMplsUnicast: mpls(off); break;
      case kEtherTypeIpv4: ipv4(off); break;
      case kEtherTypeIpv6: ipv6(off); break;
      case kEtherTypeArp: arp(off); break;
      default: payload_tail(off); break;
    }
  }

  void vlan(std::size_t off) {
    auto tag = VlanTag::decode(buf_, off);
    if (!tag) {
      mark_tail(off, VlanTag::kSize);
      return;
    }
    add(Protocol::kVlan, off, VlanTag::kSize);
    result_.vlan_ids.push_back(tag->vid);
    by_ethertype(tag->ethertype, off + VlanTag::kSize);
  }

  void mpls(std::size_t off) {
    auto label = MplsLabel::decode(buf_, off);
    if (!label) {
      mark_tail(off, MplsLabel::kSize);
      return;
    }
    add(Protocol::kMpls, off, MplsLabel::kSize);
    result_.mpls_labels.push_back(label->label);
    const std::size_t next = off + MplsLabel::kSize;
    if (!label->bottom_of_stack) {
      mpls(next);
      return;
    }
    // Below the MPLS stack there is no type field. Use the standard first-
    // nibble heuristic: 4 = IPv4, 6 = IPv6, 0 = pseudowire control word.
    if (!fits(buf_, next, 1)) {
      mark_tail(next, 1);
      return;
    }
    const std::uint8_t nibble = get_u8(buf_, next) >> 4;
    if (nibble == 4) {
      ipv4(next);
    } else if (nibble == 6) {
      ipv6(next);
    } else if (nibble == 0) {
      pseudowire(next);
    } else {
      add(Protocol::kMalformed, next, buf_.size() - next);
    }
  }

  void pseudowire(std::size_t off) {
    auto cw = PseudoWireControlWord::decode(buf_, off);
    if (!cw) {
      mark_tail(off, PseudoWireControlWord::kSize);
      return;
    }
    add(Protocol::kPseudoWire, off, PseudoWireControlWord::kSize);
    ethernet(off + PseudoWireControlWord::kSize);
  }

  void arp(std::size_t off) {
    auto h = ArpHeader::decode(buf_, off);
    if (!h) {
      mark_tail(off, ArpHeader::kSize);
      return;
    }
    add(Protocol::kArp, off, ArpHeader::kSize);
  }

  void ipv4(std::size_t off) {
    auto h = Ipv4Header::decode(buf_, off);
    if (!h) {
      mark_tail(off, Ipv4Header::kSize);
      return;
    }
    add(Protocol::kIpv4, off, Ipv4Header::kSize);
    result_.ipv4 = h;
    by_ip_proto(h->protocol, off + Ipv4Header::kSize);
  }

  void ipv6(std::size_t off) {
    auto h = Ipv6Header::decode(buf_, off);
    if (!h) {
      mark_tail(off, Ipv6Header::kSize);
      return;
    }
    add(Protocol::kIpv6, off, Ipv6Header::kSize);
    result_.ipv6 = h;
    by_ip_proto(h->next_header, off + Ipv6Header::kSize);
  }

  void by_ip_proto(std::uint8_t proto, std::size_t off) {
    switch (proto) {
      case kIpProtoTcp: tcp(off); break;
      case kIpProtoUdp: udp(off); break;
      case kIpProtoIcmp: icmp(off, Protocol::kIcmp); break;
      case kIpProtoIcmpv6: icmp(off, Protocol::kIcmpv6); break;
      case kIpProtoGre: gre(off); break;
      default: payload_tail(off); break;
    }
  }

  void gre(std::size_t off) {
    auto h = GreHeader::decode(buf_, off);
    if (!h) {
      mark_tail(off, GreHeader::kSize);
      return;
    }
    add(Protocol::kGre, off, GreHeader::kSize);
    const std::size_t next = off + GreHeader::kSize;
    if (h->protocol_type == kEtherTypeTransparentEthernet) {
      ethernet(next);
    } else {
      by_ethertype(h->protocol_type, next);
    }
  }

  void tcp(std::size_t off) {
    auto h = TcpHeader::decode(buf_, off);
    if (!h) {
      mark_tail(off, TcpHeader::kSize);
      return;
    }
    add(Protocol::kTcp, off, TcpHeader::kSize);
    result_.tcp = h;
    app_layer(off + TcpHeader::kSize, h->src_port, h->dst_port,
              /*over_tcp=*/true);
  }

  void udp(std::size_t off) {
    auto h = UdpHeader::decode(buf_, off);
    if (!h) {
      mark_tail(off, UdpHeader::kSize);
      return;
    }
    add(Protocol::kUdp, off, UdpHeader::kSize);
    result_.udp = h;
    app_layer(off + UdpHeader::kSize, h->src_port, h->dst_port,
              /*over_tcp=*/false);
  }

  void icmp(std::size_t off, Protocol which) {
    auto h = IcmpHeader::decode(buf_, off);
    if (!h) {
      mark_tail(off, IcmpHeader::kSize);
      return;
    }
    add(which, off, IcmpHeader::kSize);
    payload_tail(off + IcmpHeader::kSize);
  }

  /// Port-based application classification, mirroring the paper's note that
  /// tshark uses layer-4 ports to classify the payload that follows.
  void app_layer(std::size_t off, std::uint16_t src_port,
                 std::uint16_t dst_port, bool over_tcp) {
    const std::size_t wire_rest = wire_length_ > off ? wire_length_ - off : 0;
    if (wire_rest == 0) return;  // e.g. a payload-free TCP ACK.
    auto is_port = [&](std::uint16_t p) {
      return src_port == p || dst_port == p;
    };
    if (over_tcp) {
      if (is_port(kPortTls)) {
        if (auto tls = TlsRecordHeader::decode(buf_, off)) {
          add(Protocol::kTls, off, TlsRecordHeader::kSize);
          payload_tail(off + TlsRecordHeader::kSize);
          return;
        }
        if (truncated_at(off, TlsRecordHeader::kSize)) {
          mark_tail(off, TlsRecordHeader::kSize);
          return;
        }
      }
      if (is_port(kPortSsh) && looks_like_ssh_banner(buf_, off)) {
        add(Protocol::kSsh, off, buf_.size() - off);
        return;
      }
      if (is_port(kPortHttp) && looks_like_http(buf_, off)) {
        add(Protocol::kHttp, off, buf_.size() - off);
        return;
      }
      if (is_port(kPortDns)) {
        dns(off);
        return;
      }
      if (is_port(kPortIperf)) {
        payload_tail(off, Protocol::kIperf);
        return;
      }
      payload_tail(off);
      return;
    }
    // UDP.
    if (is_port(kPortDns)) {
      dns(off);
      return;
    }
    if (is_port(kPortNtp)) {
      if (auto h = NtpHeader::decode(buf_, off)) {
        add(Protocol::kNtp, off, NtpHeader::kSize);
        return;
      }
      if (truncated_at(off, NtpHeader::kSize)) {
        mark_tail(off, NtpHeader::kSize);
        return;
      }
    }
    if (is_port(kPortVxlan)) {
      if (auto h = VxlanHeader::decode(buf_, off)) {
        add(Protocol::kVxlan, off, VxlanHeader::kSize);
        result_.vxlan_vni = h->vni;
        ethernet(off + VxlanHeader::kSize);
        return;
      }
      if (truncated_at(off, VxlanHeader::kSize)) {
        mark_tail(off, VxlanHeader::kSize);
        return;
      }
    }
    if (is_port(kPortIperf)) {
      payload_tail(off, Protocol::kIperf);
      return;
    }
    payload_tail(off);
  }

  void dns(std::size_t off) {
    auto h = DnsHeader::decode(buf_, off);
    if (!h) {
      mark_tail(off, DnsHeader::kSize);
      return;
    }
    add(Protocol::kDns, off, DnsHeader::kSize);
  }

  ByteView buf_;
  std::size_t wire_length_;
  ParsedFrame result_;
};

}  // namespace

ParsedFrame parse_bytes(ByteView bytes, std::size_t wire_length,
                        util::Nanos timestamp) {
  Dissector d(bytes, wire_length);
  d.run();
  return d.take(timestamp);
}

ParsedFrame parse_frame(const Frame& frame) {
  return parse_bytes(frame.bytes(), frame.wire_length(), frame.timestamp());
}

}  // namespace patchwork::net
