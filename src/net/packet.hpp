// The frame as it exists on the wire (or in a capture buffer).
//
// A Frame owns its bytes and remembers both the captured length and the
// original wire length — after snaplen truncation these differ, exactly as
// in a pcap record. Timestamps are simulated nanoseconds.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace patchwork::net {

class Frame {
 public:
  Frame() = default;
  Frame(std::vector<std::uint8_t> bytes, util::Nanos timestamp)
      : bytes_(std::move(bytes)),
        wire_length_(bytes_.size()),
        timestamp_(timestamp) {}

  /// Construct a frame whose bytes were already truncated at capture time.
  /// `wire_length` is the original on-the-wire size.
  Frame(std::vector<std::uint8_t> bytes, std::size_t wire_length,
        util::Nanos timestamp)
      : bytes_(std::move(bytes)),
        wire_length_(wire_length),
        timestamp_(timestamp) {}

  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::size_t captured_length() const { return bytes_.size(); }
  std::size_t wire_length() const { return wire_length_; }
  bool truncated() const { return bytes_.size() < wire_length_; }

  util::Nanos timestamp() const { return timestamp_; }
  void set_timestamp(util::Nanos t) { timestamp_ = t; }

  /// Copy of this frame with at most `snaplen` bytes retained; wire length
  /// is preserved. snaplen of 0 keeps everything.
  Frame truncate(std::size_t snaplen) const;

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t wire_length_ = 0;
  util::Nanos timestamp_ = 0;
};

}  // namespace patchwork::net
