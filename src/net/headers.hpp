// Wire-format header codecs.
//
// Each header type has an `encode` that appends network-order bytes and a
// static `decode` that reads from a byte span at an offset, returning
// nullopt when the remaining bytes cannot hold the header (the normal case
// for snaplen-truncated captures, which the dissector must tolerate).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/addr.hpp"
#include "net/protocol.hpp"

namespace patchwork::net {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  MacAddress dst;
  MacAddress src;
  std::uint16_t ethertype = 0;

  void encode(Bytes& out) const;
  static std::optional<EthernetHeader> decode(ByteView buf, std::size_t off);
};

struct VlanTag {
  static constexpr std::size_t kSize = 4;
  std::uint8_t pcp = 0;       ///< Priority code point (3 bits).
  bool dei = false;           ///< Drop eligible indicator.
  std::uint16_t vid = 0;      ///< VLAN id (12 bits).
  std::uint16_t ethertype = 0;

  void encode(Bytes& out) const;
  static std::optional<VlanTag> decode(ByteView buf, std::size_t off);
};

struct MplsLabel {
  static constexpr std::size_t kSize = 4;
  std::uint32_t label = 0;    ///< 20 bits.
  std::uint8_t tc = 0;        ///< Traffic class (3 bits).
  bool bottom_of_stack = false;
  std::uint8_t ttl = 64;

  void encode(Bytes& out) const;
  static std::optional<MplsLabel> decode(ByteView buf, std::size_t off);
};

/// RFC 4448 Ethernet pseudowire control word: 4 bytes, first nibble 0.
struct PseudoWireControlWord {
  static constexpr std::size_t kSize = 4;
  std::uint16_t sequence = 0;

  void encode(Bytes& out) const;
  static std::optional<PseudoWireControlWord> decode(ByteView buf,
                                                     std::size_t off);
};

struct ArpHeader {
  static constexpr std::size_t kSize = 28;
  std::uint16_t opcode = 1;  ///< 1 = request, 2 = reply.
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  void encode(Bytes& out) const;
  static std::optional<ArpHeader> decode(ByteView buf, std::size_t off);
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  ///< No options supported.
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  ///< Filled by the builder.
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;      ///< Filled by encode().
  Ipv4Address src;
  Ipv4Address dst;

  void encode(Bytes& out) const;
  static std::optional<Ipv4Header> decode(ByteView buf, std::size_t off);
};

struct Ipv6Header {
  static constexpr std::size_t kSize = 40;
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  ///< 20 bits.
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Address src;
  Ipv6Address dst;

  void encode(Bytes& out) const;
  static std::optional<Ipv6Header> decode(ByteView buf, std::size_t off);
};

/// TCP flag bits as they appear in the wire flags byte.
namespace tcp_flags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcp_flags

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  ///< No options supported.
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;

  void encode(Bytes& out) const;
  static std::optional<TcpHeader> decode(ByteView buf, std::size_t off);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< Filled by the builder.
  std::uint16_t checksum = 0;

  void encode(Bytes& out) const;
  static std::optional<UdpHeader> decode(ByteView buf, std::size_t off);
};

struct IcmpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint8_t type = 8;  ///< Echo request.
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  void encode(Bytes& out) const;
  static std::optional<IcmpHeader> decode(ByteView buf, std::size_t off);
};

struct DnsHeader {
  static constexpr std::size_t kSize = 12;
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint16_t question_count = 1;
  std::uint16_t answer_count = 0;

  void encode(Bytes& out) const;
  static std::optional<DnsHeader> decode(ByteView buf, std::size_t off);
};

struct TlsRecordHeader {
  static constexpr std::size_t kSize = 5;
  std::uint8_t content_type = 23;  ///< 22 = handshake, 23 = application data.
  std::uint16_t version = 0x0303;  ///< TLS 1.2 wire version.
  std::uint16_t length = 0;

  void encode(Bytes& out) const;
  static std::optional<TlsRecordHeader> decode(ByteView buf, std::size_t off);
};

struct NtpHeader {
  static constexpr std::size_t kSize = 48;
  std::uint8_t leap_version_mode = 0x23;  ///< v4 client.
  std::uint8_t stratum = 3;

  void encode(Bytes& out) const;
  static std::optional<NtpHeader> decode(ByteView buf, std::size_t off);
};

struct VxlanHeader {
  static constexpr std::size_t kSize = 8;
  std::uint32_t vni = 0;  ///< 24 bits.

  void encode(Bytes& out) const;
  static std::optional<VxlanHeader> decode(ByteView buf, std::size_t off);
};

/// Basic GRE (no checksum/key/sequence options): flags + protocol type.
struct GreHeader {
  static constexpr std::size_t kSize = 4;
  std::uint16_t protocol_type = 0;  ///< EtherType of the payload.

  void encode(Bytes& out) const;
  static std::optional<GreHeader> decode(ByteView buf, std::size_t off);
};

/// Appends the ASCII SSH protocol banner, which is how the dissector
/// recognizes SSH traffic on port 22.
void encode_ssh_banner(Bytes& out);
bool looks_like_ssh_banner(ByteView buf, std::size_t off);

/// Appends a minimal HTTP/1.1 request line.
void encode_http_request(Bytes& out);
bool looks_like_http(ByteView buf, std::size_t off);

}  // namespace patchwork::net
