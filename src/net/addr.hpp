// Address value types: Ethernet MAC, IPv4, IPv6.
//
// Plain aggregate-style value types with total ordering so they can key
// flow tables, plus parse/format for test and report readability.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace patchwork::net {

struct MacAddress {
  std::array<std::uint8_t, 6> bytes{};

  auto operator<=>(const MacAddress&) const = default;

  std::string to_string() const;  ///< "aa:bb:cc:dd:ee:ff"
  static std::optional<MacAddress> parse(std::string_view text);

  /// Locally-administered unicast MAC derived from an integer id; used by
  /// the traffic generator to give VMs stable addresses.
  static MacAddress from_id(std::uint64_t id);

  bool is_broadcast() const;
  bool is_multicast() const { return (bytes[0] & 0x01) != 0; }
};

struct Ipv4Address {
  std::uint32_t value = 0;  ///< Host-order integer, e.g. 10.0.0.1 = 0x0A000001.

  auto operator<=>(const Ipv4Address&) const = default;

  std::string to_string() const;  ///< "10.0.0.1"
  static std::optional<Ipv4Address> parse(std::string_view text);
  static Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                 std::uint8_t c, std::uint8_t d);

  /// True if the address falls in 10.0.0.0/8 — FABRIC slices commonly reuse
  /// this block, which is why the paper's flow classifier must include
  /// virtualization tags.
  bool in_ten_slash_eight() const { return (value >> 24) == 10; }
};

struct Ipv6Address {
  std::array<std::uint8_t, 16> bytes{};

  auto operator<=>(const Ipv6Address&) const = default;

  std::string to_string() const;  ///< Full (non-compressed) hex groups.
  static Ipv6Address from_words(std::array<std::uint16_t, 8> words);
};

}  // namespace patchwork::net
