#include "net/headers.hpp"

#include <algorithm>
#include <cstring>

#include "net/checksum.hpp"
#include "util/byte_io.hpp"

namespace patchwork::net {

using util::fits;
using util::get_be16;
using util::get_be32;
using util::get_u8;
using util::put_be16;
using util::put_be32;
using util::put_u8;

void EthernetHeader::encode(Bytes& out) const {
  out.insert(out.end(), dst.bytes.begin(), dst.bytes.end());
  out.insert(out.end(), src.bytes.begin(), src.bytes.end());
  put_be16(out, ethertype);
}

std::optional<EthernetHeader> EthernetHeader::decode(ByteView buf,
                                                     std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  EthernetHeader h;
  std::copy_n(buf.begin() + off, 6, h.dst.bytes.begin());
  std::copy_n(buf.begin() + off + 6, 6, h.src.bytes.begin());
  h.ethertype = get_be16(buf, off + 12);
  return h;
}

void VlanTag::encode(Bytes& out) const {
  const std::uint16_t tci = static_cast<std::uint16_t>(
      ((pcp & 0x7) << 13) | (dei ? 0x1000 : 0) | (vid & 0x0fff));
  put_be16(out, tci);
  put_be16(out, ethertype);
}

std::optional<VlanTag> VlanTag::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  VlanTag t;
  const std::uint16_t tci = get_be16(buf, off);
  t.pcp = static_cast<std::uint8_t>(tci >> 13);
  t.dei = (tci & 0x1000) != 0;
  t.vid = tci & 0x0fff;
  t.ethertype = get_be16(buf, off + 2);
  return t;
}

void MplsLabel::encode(Bytes& out) const {
  const std::uint32_t word = ((label & 0xfffff) << 12) |
                             (static_cast<std::uint32_t>(tc & 0x7) << 9) |
                             (bottom_of_stack ? 0x100u : 0u) | ttl;
  put_be32(out, word);
}

std::optional<MplsLabel> MplsLabel::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  MplsLabel l;
  const std::uint32_t word = get_be32(buf, off);
  l.label = word >> 12;
  l.tc = static_cast<std::uint8_t>((word >> 9) & 0x7);
  l.bottom_of_stack = (word & 0x100) != 0;
  l.ttl = static_cast<std::uint8_t>(word & 0xff);
  return l;
}

void PseudoWireControlWord::encode(Bytes& out) const {
  // First nibble 0000 distinguishes the control word from an IP payload.
  put_be16(out, 0x0000);
  put_be16(out, sequence);
}

std::optional<PseudoWireControlWord> PseudoWireControlWord::decode(
    ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  if ((get_u8(buf, off) & 0xf0) != 0) return std::nullopt;
  PseudoWireControlWord cw;
  cw.sequence = get_be16(buf, off + 2);
  return cw;
}

void ArpHeader::encode(Bytes& out) const {
  put_be16(out, 1);       // Hardware type: Ethernet.
  put_be16(out, kEtherTypeIpv4);
  put_u8(out, 6);         // Hardware address length.
  put_u8(out, 4);         // Protocol address length.
  put_be16(out, opcode);
  out.insert(out.end(), sender_mac.bytes.begin(), sender_mac.bytes.end());
  put_be32(out, sender_ip.value);
  out.insert(out.end(), target_mac.bytes.begin(), target_mac.bytes.end());
  put_be32(out, target_ip.value);
}

std::optional<ArpHeader> ArpHeader::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  if (get_be16(buf, off) != 1 || get_be16(buf, off + 2) != kEtherTypeIpv4) {
    return std::nullopt;
  }
  ArpHeader h;
  h.opcode = get_be16(buf, off + 6);
  std::copy_n(buf.begin() + off + 8, 6, h.sender_mac.bytes.begin());
  h.sender_ip.value = get_be32(buf, off + 14);
  std::copy_n(buf.begin() + off + 18, 6, h.target_mac.bytes.begin());
  h.target_ip.value = get_be32(buf, off + 24);
  return h;
}

void Ipv4Header::encode(Bytes& out) const {
  const std::size_t start = out.size();
  put_u8(out, 0x45);  // Version 4, IHL 5.
  put_u8(out, dscp << 2);
  put_be16(out, total_length);
  put_be16(out, identification);
  put_be16(out, dont_fragment ? 0x4000 : 0x0000);
  put_u8(out, ttl);
  put_u8(out, protocol);
  put_be16(out, 0);  // Checksum placeholder.
  put_be32(out, src.value);
  put_be32(out, dst.value);
  const std::uint16_t sum =
      internet_checksum({out.data() + start, kSize});
  out[start + 10] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(sum);
}

std::optional<Ipv4Header> Ipv4Header::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  const std::uint8_t version_ihl = get_u8(buf, off);
  if ((version_ihl >> 4) != 4) return std::nullopt;
  if ((version_ihl & 0x0f) < 5) return std::nullopt;
  Ipv4Header h;
  h.dscp = static_cast<std::uint8_t>(get_u8(buf, off + 1) >> 2);
  h.total_length = get_be16(buf, off + 2);
  h.identification = get_be16(buf, off + 4);
  h.dont_fragment = (get_be16(buf, off + 6) & 0x4000) != 0;
  h.ttl = get_u8(buf, off + 8);
  h.protocol = get_u8(buf, off + 9);
  h.checksum = get_be16(buf, off + 10);
  h.src.value = get_be32(buf, off + 12);
  h.dst.value = get_be32(buf, off + 16);
  return h;
}

void Ipv6Header::encode(Bytes& out) const {
  put_be32(out, (0x6u << 28) |
                    (static_cast<std::uint32_t>(traffic_class) << 20) |
                    (flow_label & 0xfffff));
  put_be16(out, payload_length);
  put_u8(out, next_header);
  put_u8(out, hop_limit);
  out.insert(out.end(), src.bytes.begin(), src.bytes.end());
  out.insert(out.end(), dst.bytes.begin(), dst.bytes.end());
}

std::optional<Ipv6Header> Ipv6Header::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  const std::uint32_t word = get_be32(buf, off);
  if ((word >> 28) != 6) return std::nullopt;
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>((word >> 20) & 0xff);
  h.flow_label = word & 0xfffff;
  h.payload_length = get_be16(buf, off + 4);
  h.next_header = get_u8(buf, off + 6);
  h.hop_limit = get_u8(buf, off + 7);
  std::copy_n(buf.begin() + off + 8, 16, h.src.bytes.begin());
  std::copy_n(buf.begin() + off + 24, 16, h.dst.bytes.begin());
  return h;
}

void TcpHeader::encode(Bytes& out) const {
  put_be16(out, src_port);
  put_be16(out, dst_port);
  put_be32(out, seq);
  put_be32(out, ack);
  put_u8(out, 0x50);  // Data offset 5 words.
  put_u8(out, flags);
  put_be16(out, window);
  put_be16(out, checksum);
  put_be16(out, 0);  // Urgent pointer.
}

std::optional<TcpHeader> TcpHeader::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  TcpHeader h;
  h.src_port = get_be16(buf, off);
  h.dst_port = get_be16(buf, off + 2);
  h.seq = get_be32(buf, off + 4);
  h.ack = get_be32(buf, off + 8);
  if ((get_u8(buf, off + 12) >> 4) < 5) return std::nullopt;
  h.flags = get_u8(buf, off + 13);
  h.window = get_be16(buf, off + 14);
  h.checksum = get_be16(buf, off + 16);
  return h;
}

void UdpHeader::encode(Bytes& out) const {
  put_be16(out, src_port);
  put_be16(out, dst_port);
  put_be16(out, length);
  put_be16(out, checksum);
}

std::optional<UdpHeader> UdpHeader::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  UdpHeader h;
  h.src_port = get_be16(buf, off);
  h.dst_port = get_be16(buf, off + 2);
  h.length = get_be16(buf, off + 4);
  h.checksum = get_be16(buf, off + 6);
  return h;
}

void IcmpHeader::encode(Bytes& out) const {
  const std::size_t start = out.size();
  put_u8(out, type);
  put_u8(out, code);
  put_be16(out, 0);
  put_be16(out, identifier);
  put_be16(out, sequence);
  const std::uint16_t sum = internet_checksum({out.data() + start, kSize});
  out[start + 2] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 3] = static_cast<std::uint8_t>(sum);
}

std::optional<IcmpHeader> IcmpHeader::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  IcmpHeader h;
  h.type = get_u8(buf, off);
  h.code = get_u8(buf, off + 1);
  h.checksum = get_be16(buf, off + 2);
  h.identifier = get_be16(buf, off + 4);
  h.sequence = get_be16(buf, off + 6);
  return h;
}

void DnsHeader::encode(Bytes& out) const {
  put_be16(out, id);
  put_be16(out, is_response ? 0x8180 : 0x0100);
  put_be16(out, question_count);
  put_be16(out, answer_count);
  put_be16(out, 0);  // Authority RRs.
  put_be16(out, 0);  // Additional RRs.
}

std::optional<DnsHeader> DnsHeader::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  DnsHeader h;
  h.id = get_be16(buf, off);
  h.is_response = (get_be16(buf, off + 2) & 0x8000) != 0;
  h.question_count = get_be16(buf, off + 4);
  h.answer_count = get_be16(buf, off + 6);
  return h;
}

void TlsRecordHeader::encode(Bytes& out) const {
  put_u8(out, content_type);
  put_be16(out, version);
  put_be16(out, length);
}

std::optional<TlsRecordHeader> TlsRecordHeader::decode(ByteView buf,
                                                       std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  TlsRecordHeader h;
  h.content_type = get_u8(buf, off);
  // Accept only the record types and versions real stacks emit, so random
  // payload bytes do not masquerade as TLS.
  if (h.content_type < 20 || h.content_type > 23) return std::nullopt;
  h.version = get_be16(buf, off + 1);
  if ((h.version >> 8) != 0x03) return std::nullopt;
  h.length = get_be16(buf, off + 3);
  return h;
}

void NtpHeader::encode(Bytes& out) const {
  put_u8(out, leap_version_mode);
  put_u8(out, stratum);
  // Poll, precision, and the timestamp fields are zero-filled: the
  // dissector keys on the first two bytes and the fixed size.
  out.insert(out.end(), kSize - 2, 0);
}

std::optional<NtpHeader> NtpHeader::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  NtpHeader h;
  h.leap_version_mode = get_u8(buf, off);
  const std::uint8_t version = (h.leap_version_mode >> 3) & 0x7;
  if (version < 3 || version > 4) return std::nullopt;
  h.stratum = get_u8(buf, off + 1);
  return h;
}

void VxlanHeader::encode(Bytes& out) const {
  put_u8(out, 0x08);  // I flag: VNI valid.
  put_u8(out, 0);
  put_be16(out, 0);
  put_be32(out, (vni & 0xffffff) << 8);
}

std::optional<VxlanHeader> VxlanHeader::decode(ByteView buf,
                                               std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  if (get_u8(buf, off) != 0x08) return std::nullopt;
  VxlanHeader h;
  h.vni = get_be32(buf, off + 4) >> 8;
  return h;
}

void GreHeader::encode(Bytes& out) const {
  put_be16(out, 0x0000);  // No options, version 0.
  put_be16(out, protocol_type);
}

std::optional<GreHeader> GreHeader::decode(ByteView buf, std::size_t off) {
  if (!fits(buf, off, kSize)) return std::nullopt;
  // Reject option flags/versions this minimal codec does not produce.
  if (get_be16(buf, off) != 0x0000) return std::nullopt;
  GreHeader h;
  h.protocol_type = get_be16(buf, off + 2);
  return h;
}

namespace {
constexpr std::string_view kSshBanner = "SSH-2.0-OpenSSH_9.6\r\n";
constexpr std::string_view kHttpRequest = "GET / HTTP/1.1\r\n";
}  // namespace

void encode_ssh_banner(Bytes& out) {
  out.insert(out.end(), kSshBanner.begin(), kSshBanner.end());
}

bool looks_like_ssh_banner(ByteView buf, std::size_t off) {
  constexpr std::string_view prefix = "SSH-";
  if (!fits(buf, off, prefix.size())) return false;
  return std::memcmp(buf.data() + off, prefix.data(), prefix.size()) == 0;
}

void encode_http_request(Bytes& out) {
  out.insert(out.end(), kHttpRequest.begin(), kHttpRequest.end());
}

bool looks_like_http(ByteView buf, std::size_t off) {
  static constexpr std::string_view kPrefixes[] = {"GET ", "POST", "HTTP",
                                                   "PUT ", "HEAD"};
  for (std::string_view p : kPrefixes) {
    if (fits(buf, off, p.size()) &&
        std::memcmp(buf.data() + off, p.data(), p.size()) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace patchwork::net
