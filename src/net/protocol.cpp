#include "net/protocol.hpp"

#include <array>

namespace patchwork::net {

namespace {
constexpr std::array<std::string_view, kProtocolCount> kNames = {
    "eth",  "vlan", "mpls", "pw",    "arp",  "ipv4",    "ipv6",
    "tcp",  "udp",  "icmp", "icmpv6", "dns", "tls",     "ssh",
    "http", "ntp",  "vxlan", "gre",  "iperf", "data",   "truncated",
    "malformed",
};
}  // namespace

std::string_view to_string(Protocol p) {
  return kNames[static_cast<std::size_t>(p)];
}

std::optional<Protocol> protocol_from_string(std::string_view name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) return static_cast<Protocol>(i);
  }
  return std::nullopt;
}

}  // namespace patchwork::net
