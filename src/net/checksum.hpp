// RFC 1071 internet checksum, used by the IPv4 and ICMP encoders.
#pragma once

#include <cstdint>
#include <span>

namespace patchwork::net {

/// One's-complement sum over `data`; returns the checksum field value.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace patchwork::net
