#include "net/frame_builder.hpp"

#include <algorithm>
#include <cassert>

namespace patchwork::net {

namespace {

constexpr std::size_t kSshBannerSize = 21;   // "SSH-2.0-OpenSSH_9.6\r\n"
constexpr std::size_t kHttpRequestSize = 16; // "GET / HTTP/1.1\r\n"

struct SizeVisitor {
  std::size_t operator()(const EthernetHeader&) const {
    return EthernetHeader::kSize;
  }
  std::size_t operator()(const VlanTag&) const { return VlanTag::kSize; }
  std::size_t operator()(const MplsLabel&) const { return MplsLabel::kSize; }
  std::size_t operator()(const PseudoWireControlWord&) const {
    return PseudoWireControlWord::kSize;
  }
  std::size_t operator()(const ArpHeader&) const { return ArpHeader::kSize; }
  std::size_t operator()(const Ipv4Header&) const { return Ipv4Header::kSize; }
  std::size_t operator()(const Ipv6Header&) const { return Ipv6Header::kSize; }
  std::size_t operator()(const TcpHeader&) const { return TcpHeader::kSize; }
  std::size_t operator()(const UdpHeader&) const { return UdpHeader::kSize; }
  std::size_t operator()(const IcmpHeader&) const { return IcmpHeader::kSize; }
  std::size_t operator()(const DnsHeader&) const { return DnsHeader::kSize; }
  std::size_t operator()(const TlsRecordHeader&) const {
    return TlsRecordHeader::kSize;
  }
  std::size_t operator()(const NtpHeader&) const { return NtpHeader::kSize; }
  std::size_t operator()(const VxlanHeader&) const {
    return VxlanHeader::kSize;
  }
  std::size_t operator()(const GreHeader&) const { return GreHeader::kSize; }
  template <typename P>
  std::size_t operator()(const P& p) const {
    return p.size;  // Payload.
  }
};

void fill_pattern(Bytes& out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::uint8_t>('0' + (i % 10)));
  }
}

}  // namespace

void FrameBuilder::push(Layer layer, Marker marker) {
  layers_.push_back(std::move(layer));
  markers_.push_back(marker);
}

FrameBuilder& FrameBuilder::ethernet(MacAddress src, MacAddress dst) {
  EthernetHeader h;
  h.src = src;
  h.dst = dst;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::vlan(std::uint16_t vid, std::uint8_t pcp) {
  VlanTag t;
  t.vid = vid;
  t.pcp = pcp;
  push(t);
  return *this;
}

FrameBuilder& FrameBuilder::mpls(std::uint32_t label, std::uint8_t ttl) {
  MplsLabel l;
  l.label = label;
  l.ttl = ttl;
  push(l);
  return *this;
}

FrameBuilder& FrameBuilder::pseudowire(std::uint16_t sequence) {
  PseudoWireControlWord cw;
  cw.sequence = sequence;
  push(cw);
  return *this;
}

FrameBuilder& FrameBuilder::arp(MacAddress sender_mac, Ipv4Address sender_ip,
                                Ipv4Address target_ip, bool reply) {
  ArpHeader h;
  h.opcode = reply ? 2 : 1;
  h.sender_mac = sender_mac;
  h.sender_ip = sender_ip;
  h.target_ip = target_ip;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::ipv4(Ipv4Address src, Ipv4Address dst,
                                 std::uint8_t ttl) {
  Ipv4Header h;
  h.src = src;
  h.dst = dst;
  h.ttl = ttl;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::ipv6(Ipv6Address src, Ipv6Address dst,
                                 std::uint8_t hop_limit) {
  Ipv6Header h;
  h.src = src;
  h.dst = dst;
  h.hop_limit = hop_limit;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::tcp(std::uint16_t src_port, std::uint16_t dst_port,
                                std::uint8_t flags, std::uint32_t seq,
                                std::uint32_t ack) {
  TcpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  h.flags = flags;
  h.seq = seq;
  h.ack = ack;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::udp(std::uint16_t src_port,
                                std::uint16_t dst_port) {
  UdpHeader h;
  h.src_port = src_port;
  h.dst_port = dst_port;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::icmp(std::uint8_t type, std::uint8_t code) {
  IcmpHeader h;
  h.type = type;
  h.code = code;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::dns(std::uint16_t id, bool response) {
  DnsHeader h;
  h.id = id;
  h.is_response = response;
  if (response) h.answer_count = 1;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::tls(std::uint8_t content_type) {
  TlsRecordHeader h;
  h.content_type = content_type;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::ntp() {
  push(NtpHeader{});
  return *this;
}

FrameBuilder& FrameBuilder::vxlan(std::uint32_t vni) {
  VxlanHeader h;
  h.vni = vni;
  push(h);
  return *this;
}

FrameBuilder& FrameBuilder::gre() {
  push(GreHeader{});
  return *this;
}

FrameBuilder& FrameBuilder::ssh_banner() {
  push(Payload{kSshBannerSize}, Marker::kSsh);
  return *this;
}

FrameBuilder& FrameBuilder::http_request() {
  push(Payload{kHttpRequestSize}, Marker::kHttp);
  return *this;
}

FrameBuilder& FrameBuilder::payload(std::size_t size) {
  push(Payload{size});
  return *this;
}

FrameBuilder& FrameBuilder::pad_to(std::size_t frame_size) {
  pad_to_ = frame_size;
  return *this;
}

Frame FrameBuilder::build(util::Nanos timestamp) const {
  assert(!layers_.empty());
  scratch_ = layers_;  // Working copy: builder stays reusable + const.
  Bytes out;
  resolve_and_serialize(scratch_, out);
  return Frame(std::move(out), timestamp);
}

void FrameBuilder::build_into(FrameStore& store, util::Nanos timestamp) const {
  assert(!layers_.empty());
  scratch_ = layers_;
  const std::size_t start = store.arena().size();
  resolve_and_serialize(scratch_, store.arena());
  store.commit(start, timestamp);
}

void FrameBuilder::build_many_into(FrameStore& store,
                                   std::span<const util::Nanos> timestamps,
                                   std::span<const std::uint32_t> values,
                                   PerFrameField field) const {
  assert(!layers_.empty());
  assert(field == PerFrameField::kNone || values.size() == timestamps.size());
  // Serialize the stack once. resolve_and_serialize() leaves scratch_
  // holding the *resolved* layers (padding appended), so their sizes give
  // the exact byte offset of every header in the template.
  scratch_ = layers_;
  template_.clear();
  resolve_and_serialize(scratch_, template_);

  // Locate the patch slots. Header layouts are fixed: TcpHeader encodes
  // seq as BE32 at +4 and ack as BE32 at +8; DnsHeader encodes id as BE16
  // at +0. Neither field feeds any resolved length/chaining/checksum
  // field, so stamping them into the serialized bytes is equivalent to
  // re-serializing the stack with the value threaded through.
  struct Slot {
    std::size_t offset;
    bool wide;  ///< true: BE32, false: BE16.
  };
  Slot slots[4];
  std::size_t slot_count = 0;
  auto add_slot = [&](std::size_t offset, bool wide) {
    assert(slot_count < std::size(slots));
    if (slot_count < std::size(slots)) slots[slot_count++] = Slot{offset, wide};
  };
  if (field != PerFrameField::kNone) {
    std::size_t offset = 0;
    for (const Layer& l : scratch_) {
      if (std::holds_alternative<TcpHeader>(l)) {
        add_slot(offset + (field == PerFrameField::kTcpSeqAndDnsId ? 4 : 8),
                 true);
      } else if (field == PerFrameField::kTcpSeqAndDnsId &&
                 std::holds_alternative<DnsHeader>(l)) {
        add_slot(offset, false);
      }
      offset += std::visit(SizeVisitor{}, l);
    }
  }

  Bytes& arena = store.arena();
  const std::size_t needed =
      arena.size() + timestamps.size() * template_.size();
  if (arena.capacity() < needed) {
    arena.reserve(std::max(needed, arena.capacity() + arena.capacity() / 2));
  }
  for (std::size_t i = 0; i < timestamps.size(); ++i) {
    const std::size_t start = arena.size();
    arena.insert(arena.end(), template_.begin(), template_.end());
    for (std::size_t s = 0; s < slot_count; ++s) {
      std::uint8_t* p = arena.data() + start + slots[s].offset;
      const std::uint32_t v = values[i];
      if (slots[s].wide) {
        p[0] = static_cast<std::uint8_t>(v >> 24);
        p[1] = static_cast<std::uint8_t>(v >> 16);
        p[2] = static_cast<std::uint8_t>(v >> 8);
        p[3] = static_cast<std::uint8_t>(v);
      } else {
        p[0] = static_cast<std::uint8_t>(v >> 8);
        p[1] = static_cast<std::uint8_t>(v);
      }
    }
    store.commit(start, timestamps[i]);
  }
}

void FrameBuilder::reset() {
  layers_.clear();
  markers_.clear();
  pad_to_ = 0;
}

void FrameBuilder::resolve_and_serialize(std::vector<Layer>& layers,
                                         Bytes& out) const {
  // Grow (or append) the trailing payload so the frame reaches pad_to_.
  if (pad_to_ > 0) {
    std::size_t total = 0;
    for (const Layer& l : layers) total += std::visit(SizeVisitor{}, l);
    if (total < pad_to_) {
      const std::size_t extra = pad_to_ - total;
      if (auto* p = std::get_if<Payload>(&layers.back());
          p != nullptr && markers_.back() == Marker::kNone) {
        p->size += extra;
      } else {
        layers.push_back(Payload{extra});
      }
    }
  }

  // Suffix sizes: bytes_after[i] = sum of sizes of layers after i.
  std::vector<std::size_t> bytes_after(layers.size(), 0);
  for (std::size_t i = layers.size(); i-- > 1;) {
    bytes_after[i - 1] =
        bytes_after[i] + std::visit(SizeVisitor{}, layers[i]);
  }

  // Resolve chaining and length fields, looking one layer ahead.
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const Layer* next = i + 1 < layers.size() ? &layers[i + 1] : nullptr;
    auto ethertype_of_next = [&]() -> std::uint16_t {
      if (next == nullptr) return 0;
      if (std::holds_alternative<VlanTag>(*next)) return kEtherTypeVlan;
      if (std::holds_alternative<MplsLabel>(*next)) {
        return kEtherTypeMplsUnicast;
      }
      if (std::holds_alternative<Ipv4Header>(*next)) return kEtherTypeIpv4;
      if (std::holds_alternative<Ipv6Header>(*next)) return kEtherTypeIpv6;
      if (std::holds_alternative<ArpHeader>(*next)) return kEtherTypeArp;
      return 0;
    };
    auto ip_proto_of_next = [&]() -> std::uint8_t {
      if (next == nullptr) return 0;
      if (std::holds_alternative<TcpHeader>(*next)) return kIpProtoTcp;
      if (std::holds_alternative<UdpHeader>(*next)) return kIpProtoUdp;
      if (std::holds_alternative<IcmpHeader>(*next)) return kIpProtoIcmp;
      if (std::holds_alternative<GreHeader>(*next)) return kIpProtoGre;
      return 0;
    };
    if (auto* eth = std::get_if<EthernetHeader>(&layers[i])) {
      eth->ethertype = ethertype_of_next();
    } else if (auto* vlan = std::get_if<VlanTag>(&layers[i])) {
      vlan->ethertype = ethertype_of_next();
    } else if (auto* mpls = std::get_if<MplsLabel>(&layers[i])) {
      mpls->bottom_of_stack =
          next == nullptr || !std::holds_alternative<MplsLabel>(*next);
    } else if (auto* ip4 = std::get_if<Ipv4Header>(&layers[i])) {
      ip4->protocol = ip_proto_of_next();
      ip4->total_length =
          static_cast<std::uint16_t>(Ipv4Header::kSize + bytes_after[i]);
    } else if (auto* ip6 = std::get_if<Ipv6Header>(&layers[i])) {
      ip6->next_header = ip_proto_of_next();
      ip6->payload_length = static_cast<std::uint16_t>(bytes_after[i]);
    } else if (auto* udp = std::get_if<UdpHeader>(&layers[i])) {
      udp->length =
          static_cast<std::uint16_t>(UdpHeader::kSize + bytes_after[i]);
    } else if (auto* tls = std::get_if<TlsRecordHeader>(&layers[i])) {
      tls->length = static_cast<std::uint16_t>(bytes_after[i]);
    } else if (auto* gre = std::get_if<GreHeader>(&layers[i])) {
      gre->protocol_type =
          next != nullptr && std::holds_alternative<EthernetHeader>(*next)
              ? kEtherTypeTransparentEthernet
              : ethertype_of_next();
    }
  }

  // Grow geometrically when appending into a shared arena: an exact-fit
  // reserve would reallocate (and copy the whole arena) on every frame,
  // turning a burst render quadratic in its byte size.
  const std::size_t needed =
      out.size() + bytes_after[0] + std::visit(SizeVisitor{}, layers[0]);
  if (out.capacity() < needed) {
    out.reserve(std::max(needed, out.capacity() + out.capacity() / 2));
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (const auto* p = std::get_if<Payload>(&layers[i])) {
      const Marker marker =
          i < markers_.size() ? markers_[i] : Marker::kNone;
      std::size_t remaining = p->size;
      if (marker == Marker::kSsh) {
        encode_ssh_banner(out);
        remaining -= kSshBannerSize;
      } else if (marker == Marker::kHttp) {
        encode_http_request(out);
        remaining -= kHttpRequestSize;
      }
      fill_pattern(out, remaining);
    } else {
      std::visit([&out](const auto& h) {
        if constexpr (!std::is_same_v<std::decay_t<decltype(h)>, Payload>) {
          h.encode(out);
        }
      }, layers[i]);
    }
  }
}

}  // namespace patchwork::net
