#include "net/packet.hpp"

namespace patchwork::net {

Frame Frame::truncate(std::size_t snaplen) const {
  if (snaplen == 0 || bytes_.size() <= snaplen) return *this;
  std::vector<std::uint8_t> cut(bytes_.begin(),
                                bytes_.begin() + static_cast<long>(snaplen));
  return Frame(std::move(cut), wire_length_, timestamp_);
}

}  // namespace patchwork::net
