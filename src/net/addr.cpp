#include "net/addr.hpp"

#include <charconv>
#include <cstdio>

namespace patchwork::net {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  MacAddress mac;
  if (text.size() != 17) return std::nullopt;
  for (int i = 0; i < 6; ++i) {
    const std::size_t pos = static_cast<std::size_t>(i) * 3;
    if (i < 5 && text[pos + 2] != ':') return std::nullopt;
    unsigned value = 0;
    const char* first = text.data() + pos;
    auto [ptr, ec] = std::from_chars(first, first + 2, value, 16);
    if (ec != std::errc() || ptr != first + 2 || value > 0xff) {
      return std::nullopt;
    }
    mac.bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value);
  }
  return mac;
}

MacAddress MacAddress::from_id(std::uint64_t id) {
  MacAddress mac;
  mac.bytes[0] = 0x02;  // Locally administered, unicast.
  mac.bytes[1] = static_cast<std::uint8_t>(id >> 32);
  mac.bytes[2] = static_cast<std::uint8_t>(id >> 24);
  mac.bytes[3] = static_cast<std::uint8_t>(id >> 16);
  mac.bytes[4] = static_cast<std::uint8_t>(id >> 8);
  mac.bytes[5] = static_cast<std::uint8_t>(id);
  return mac;
}

bool MacAddress::is_broadcast() const {
  for (auto b : bytes) {
    if (b != 0xff) return false;
  }
  return true;
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [ptr, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc() || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
    p = ptr;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address{value};
}

Ipv4Address Ipv4Address::from_octets(std::uint8_t a, std::uint8_t b,
                                     std::uint8_t c, std::uint8_t d) {
  return Ipv4Address{(static_cast<std::uint32_t>(a) << 24) |
                     (static_cast<std::uint32_t>(b) << 16) |
                     (static_cast<std::uint32_t>(c) << 8) | d};
}

std::string Ipv6Address::to_string() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf),
                "%02x%02x:%02x%02x:%02x%02x:%02x%02x:"
                "%02x%02x:%02x%02x:%02x%02x:%02x%02x",
                bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5],
                bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11],
                bytes[12], bytes[13], bytes[14], bytes[15]);
  return buf;
}

Ipv6Address Ipv6Address::from_words(std::array<std::uint16_t, 8> words) {
  Ipv6Address addr;
  for (std::size_t i = 0; i < 8; ++i) {
    addr.bytes[2 * i] = static_cast<std::uint8_t>(words[i] >> 8);
    addr.bytes[2 * i + 1] = static_cast<std::uint8_t>(words[i]);
  }
  return addr;
}

}  // namespace patchwork::net
