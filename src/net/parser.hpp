// Frame dissection.
//
// This is the repository's counterpart of the Wireshark protocol dissectors
// the paper's Digest step runs over raw pcaps (Section 6.2.4): it walks a
// frame's bytes and produces the ordered list of headers ("layers"),
// tolerating snaplen truncation, plus the extracted fields the flow
// classifier needs (virtualization tags and network-/transport-layer
// fields).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/protocol.hpp"

namespace patchwork::net {

/// One dissected layer: which protocol, where it sits in the frame, and how
/// many bytes of it were present in the capture.
struct LayerInfo {
  Protocol protocol = Protocol::kPayload;
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// The result of dissecting one frame.
struct ParsedFrame {
  std::vector<LayerInfo> layers;

  // Virtualization tags, outermost first. The paper's flow classifier keys
  // on these so identical 10/8 addresses in different slices stay distinct.
  std::vector<std::uint16_t> vlan_ids;
  std::vector<std::uint32_t> mpls_labels;
  std::optional<std::uint32_t> vxlan_vni;

  // Innermost network layer.
  std::optional<Ipv4Header> ipv4;
  std::optional<Ipv6Header> ipv6;

  // Innermost transport layer.
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;

  std::size_t wire_length = 0;
  std::size_t captured_length = 0;
  util::Nanos timestamp = 0;

  /// Count of real protocol headers (excludes payload/truncated/malformed
  /// pseudo-layers) — the "header stack depth" of Fig. 11.
  std::size_t header_depth() const;

  bool has(Protocol p) const;
  std::size_t count(Protocol p) const;

  /// Render as "eth/vlan/mpls/mpls/pw/eth/ipv4/tcp/tls".
  std::string stack_string() const;
};

/// Dissect a frame starting from an Ethernet header.
ParsedFrame parse_frame(const Frame& frame);

/// Dissect raw bytes (used by the pcap-reading analysis path).
ParsedFrame parse_bytes(ByteView bytes, std::size_t wire_length,
                        util::Nanos timestamp);

}  // namespace patchwork::net
