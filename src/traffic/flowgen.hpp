// Flow specification and frame synthesis.
//
// A FlowSpec pins down everything needed to render a flow's frames on the
// wire: the underlay encapsulation (VLAN / MPLS stack / pseudowire + inner
// Ethernet), addressing, the application archetype, and sizing. The
// generator then renders a sample window's worth of interleaved frames —
// both directions, since a mirrored port clones Tx and Rx (Section 3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/frame_builder.hpp"
#include "net/packet.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace patchwork::traffic {

struct FlowSpec {
  FlowApp app = FlowApp::kIperfTcp;

  // Underlay encapsulation (outermost first).
  std::optional<std::uint16_t> vlan_id;
  std::vector<std::uint32_t> mpls_labels;
  bool pseudowire = false;  ///< Implies an inner Ethernet after the labels.

  bool ipv6 = false;
  net::MacAddress src_mac;
  net::MacAddress dst_mac;
  net::Ipv4Address src_ip;
  net::Ipv4Address dst_ip;
  net::Ipv6Address src_ip6;
  net::Ipv6Address dst_ip6;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  std::size_t data_frame_size = 1986;  ///< Wire bytes for full data frames.
  std::uint64_t total_bytes = 0;       ///< Intended flow volume.
  /// True for a high-rate stream of short messages (small-message sites):
  /// bulk byte share despite sub-MTU frames.
  bool message_stream = false;
};

/// Draw a flow consistent with a site's profile.
FlowSpec draw_flow(util::Rng& rng, const SiteWorkloadProfile& profile);

/// Render a single data frame of `flow` at `t` (direction src -> dst).
net::Frame make_data_frame(const FlowSpec& flow, util::Nanos t,
                           std::uint32_t seq = 0);

/// Render a reverse-direction pure-ACK frame (TCP flows only); these are
/// the minimum-size "Ethernet / VLAN / MPLS / IPv4 / TCP" frames the paper
/// observes filling the 65-127 B bucket.
net::Frame make_ack_frame(const FlowSpec& flow, util::Nanos t,
                          std::uint32_t ack = 0);

/// True when the app rides TCP (and therefore produces an ACK stream).
bool app_is_tcp(FlowApp app);

/// One rendered sample window from a mirrored port.
struct WindowTraffic {
  std::vector<net::Frame> frames;  ///< Time-ordered.
  double offered_pps = 0.0;        ///< True rate these frames represent.
  double offered_bps = 0.0;
  std::size_t flow_count = 0;      ///< Distinct flows contributing.
};

struct WindowParams {
  util::Nanos duration = 20 * util::kSecond;  ///< Paper's sample length.
  double target_bps = 0.0;      ///< Aggregate rate crossing the port.
  std::size_t max_frames = 20000;  ///< Rendering cap (scaled sampling).
};

/// Synthesize the traffic a mirrored port would deliver during one sample
/// window at a site with `profile`. Frames are a representative rendering:
/// when the true frame count exceeds `max_frames`, a uniform thinning is
/// applied but `offered_pps` reports the true rate.
WindowTraffic generate_window(util::Rng& rng,
                              const SiteWorkloadProfile& profile,
                              const WindowParams& params);

}  // namespace patchwork::traffic
