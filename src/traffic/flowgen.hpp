// Flow specification and frame synthesis.
//
// A FlowSpec pins down everything needed to render a flow's frames on the
// wire: the underlay encapsulation (VLAN / MPLS stack / pseudowire + inner
// Ethernet), addressing, the application archetype, and sizing. The
// generator then renders a sample window's worth of interleaved frames —
// both directions, since a mirrored port clones Tx and Rx (Section 3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/frame_builder.hpp"
#include "net/packet.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace patchwork::traffic {

struct FlowSpec {
  FlowApp app = FlowApp::kIperfTcp;

  // Underlay encapsulation (outermost first).
  std::optional<std::uint16_t> vlan_id;
  std::vector<std::uint32_t> mpls_labels;
  bool pseudowire = false;  ///< Implies an inner Ethernet after the labels.

  bool ipv6 = false;
  net::MacAddress src_mac;
  net::MacAddress dst_mac;
  net::Ipv4Address src_ip;
  net::Ipv4Address dst_ip;
  net::Ipv6Address src_ip6;
  net::Ipv6Address dst_ip6;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  std::size_t data_frame_size = 1986;  ///< Wire bytes for full data frames.
  std::uint64_t total_bytes = 0;       ///< Intended flow volume.
  /// True for a high-rate stream of short messages (small-message sites):
  /// bulk byte share despite sub-MTU frames.
  bool message_stream = false;
};

/// Draw a flow consistent with a site's profile.
FlowSpec draw_flow(util::Rng& rng, const SiteWorkloadProfile& profile);

/// Render a single data frame of `flow` at `t` (direction src -> dst).
net::Frame make_data_frame(const FlowSpec& flow, util::Nanos t,
                           std::uint32_t seq = 0);

/// Render a reverse-direction pure-ACK frame (TCP flows only); these are
/// the minimum-size "Ethernet / VLAN / MPLS / IPv4 / TCP" frames the paper
/// observes filling the 65-127 B bucket.
net::Frame make_ack_frame(const FlowSpec& flow, util::Nanos t,
                          std::uint32_t ack = 0);

/// True when the app rides TCP (and therefore produces an ACK stream).
bool app_is_tcp(FlowApp app);

/// One rendered sample window from a mirrored port.
struct WindowTraffic {
  std::vector<net::Frame> frames;  ///< Time-ordered.
  double offered_pps = 0.0;        ///< True rate these frames represent.
  double offered_bps = 0.0;
  std::size_t flow_count = 0;      ///< Distinct flows contributing.
};

struct WindowParams {
  util::Nanos duration = 20 * util::kSecond;  ///< Paper's sample length.
  double target_bps = 0.0;      ///< Aggregate rate crossing the port.
  std::size_t max_frames = 20000;  ///< Rendering cap (scaled sampling).
};

// Substream layout of one sample window's counter-based render. All
// stochastic phases hang off a per-window root Rng via split(), so each
// phase reads an independent stream and no phase's consumption shifts
// another's draws — the precondition for decomposing a render into
// schedulable subtasks with byte-identical output.
inline constexpr std::uint64_t kWindowPlanStream = 0;      ///< plan_window().
inline constexpr std::uint64_t kWindowDeliveryStream = 1;  ///< Loss thinning.
inline constexpr std::uint64_t kWindowCaptureStream = 2;   ///< CaptureSession.
/// Render unit u draws timestamps from split(kWindowUnitStreamBase + u).
inline constexpr std::uint64_t kWindowUnitStreamBase = 16;

/// One independently renderable slice of a window: every frame of one
/// flow in one direction (data or ACK). Frame j of a unit is a pure
/// function of (unit stream, j), so units can be rendered whole, split
/// into bursts, or re-rendered — always producing the same bytes.
struct RenderUnit {
  FlowSpec flow;
  bool acks = false;          ///< Reverse-direction pure-ACK frames.
  std::uint64_t frames = 0;   ///< Rendered frame count for this unit.
  /// Inclusive timestamp bounds for the unit's frames, clamped to the
  /// window by render_unit(). The defaults span the whole window (the mix
  /// model's shape); the event-driven planner narrows them to each flow's
  /// active interval. Still pure counter addressing: the bounds only
  /// change the range draw j maps into, never which draw a frame reads.
  util::Nanos ts_lo = 0;
  util::Nanos ts_hi = ~std::uint64_t{0};
};

/// The deterministic plan for one window: which flows contribute, how many
/// frames each unit renders, and the true offered rates they represent.
struct WindowPlan {
  std::vector<RenderUnit> units;
  double offered_pps = 0.0;
  double offered_bps = 0.0;
  std::size_t flow_count = 0;
  std::uint64_t planned_frames = 0;  ///< Sum of units[*].frames.
};

/// Draw the window plan (flow population, shares, per-unit frame counts)
/// from `rng` — the kWindowPlanStream substream. Consumes rng sequentially;
/// everything downstream of the returned plan is counter-addressed.
WindowPlan plan_window(util::Rng& rng, const SiteWorkloadProfile& profile,
                       const WindowParams& params);

/// Render frames [begin, end) of `unit` into `store`, drawing timestamp j
/// from `draws.bounded_at(j, ...)`. `builder` is reused scratch; the bytes
/// appended depend only on (unit, draws, j) — not on the [begin, end)
/// batching.
void render_unit(const RenderUnit& unit, const util::RngBlock& draws,
                 util::Nanos duration, std::uint64_t begin, std::uint64_t end,
                 net::FrameBuilder& builder, net::FrameStore& store);

/// Synthesize the traffic a mirrored port would deliver during one sample
/// window at a site with `profile`. Frames are a representative rendering:
/// when the true frame count exceeds `max_frames`, a uniform thinning is
/// applied but `offered_pps` reports the true rate. Composes plan_window()
/// + render_unit() serially; forks one child off `rng` so the caller's
/// stream advances exactly once per window.
WindowTraffic generate_window(util::Rng& rng,
                              const SiteWorkloadProfile& profile,
                              const WindowParams& params);

}  // namespace patchwork::traffic
