// Per-site workload profiles.
//
// Section 8.2's central observation is that "FABRIC sites have diverse
// traffic characteristics, suggesting diverse yet persistent workloads"
// (finding B1): some sites run simple throughput experiments (few
// protocols, jumbo-heavy), others host experiments with many
// application-layer headers (finding B2). A SiteWorkloadProfile captures
// one site's persistent mix; make_site_profiles() draws a federation's
// worth of diverse profiles calibrated to the paper's aggregates:
//   * frame sizes — 74.7% in 1519-2047 B, 14.15% in 65-127 B (Fig. 15),
//   * IPv6 <= ~2% of frames (finding B6),
//   * most traffic VLAN/MPLS-tagged with deep underlay stacks (Fig. 12),
//   * heavy-tailed flow sizes (most < 100 B, elephants ~100 GB).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace patchwork::traffic {

/// Application archetypes a flow can carry. Each maps to a distinct header
/// stack in the generator.
enum class FlowApp : std::uint8_t {
  kIperfTcp,   ///< Bulk TCP throughput test (jumbo-heavy, plus ACK stream).
  kIperfUdp,   ///< Bulk UDP throughput test.
  kTls,        ///< TCP/443 application traffic.
  kSsh,        ///< TCP/22 interactive.
  kHttp,       ///< TCP/80.
  kDns,        ///< UDP/53 request/response pairs.
  kNtp,        ///< UDP/123.
  kIcmp,       ///< Ping.
  kArp,        ///< Address resolution chatter.
  kVxlan,      ///< Overlay experiment: UDP/4789 carrying inner Ethernet.
  kGre,        ///< Overlay experiment: GRE tunnel carrying inner Ethernet.
};
inline constexpr std::size_t kFlowAppCount =
    static_cast<std::size_t>(FlowApp::kGre) + 1;

std::string_view to_string(FlowApp app);

/// How the site's underlay encapsulates tenant traffic. FABRIC tags
/// slices' frames with VLAN and MPLS labels, often terminating in a
/// pseudowire that carries the tenant's own Ethernet (Section 8.2's
/// example stacks).
struct EncapsulationProfile {
  double vlan_probability = 0.95;
  double mpls_probability = 0.85;      ///< Given VLAN.
  double second_mpls_probability = 0.4;  ///< Given MPLS.
  double pseudowire_probability = 0.75;  ///< Given MPLS: PW + inner Ethernet.
};

struct SiteWorkloadProfile {
  std::uint32_t site_index = 0;

  /// Relative weight of each FlowApp in new flows at this site.
  std::vector<double> app_weights = std::vector<double>(kFlowAppCount, 1.0);

  EncapsulationProfile encapsulation;

  /// Fraction of IP flows that are IPv6.
  double ipv6_fraction = 0.019;

  /// Data-frame payload sizing: bulk flows use MTU-filling frames of
  /// `mtu_frame_size` wire bytes (jumbo when > 1518).
  std::size_t mtu_frame_size = 1986;
  /// Fraction of bulk data frames that use the jumbo MTU (vs 1514).
  double jumbo_fraction = 0.85;
  /// Small-message experiment site (e.g. RPC/latency benchmarks): bulk
  /// flows move short 128-511 B messages instead of MTU segments. These
  /// sites populate the paper's 128-255 B bucket.
  bool small_message_site = false;

  /// Lognormal parameters for the number of concurrent flows contributing
  /// to a 20 s sample at a busy port (Fig. 13).
  double flow_count_mu = 6.2;
  double flow_count_sigma = 1.1;

  /// Heavy-tail parameters for total flow size in bytes.
  double flow_size_alpha = 0.55;
  double flow_size_min = 64.0;
  double flow_size_max = 1e11;  ///< ~100 GB elephants.

  /// Per-port persistent utilization draw (see engine.cpp): the busier the
  /// site, the higher its scale.
  double utilization_scale = 1.0;

  /// Number of distinct apps this site's experiments actually use —
  /// diversity differs per site (finding B2).
  std::size_t active_apps() const;
};

/// Draw per-site profiles for `site_count` sites. Deterministic in `rng`.
std::vector<SiteWorkloadProfile> make_site_profiles(util::Rng& rng,
                                                    std::size_t site_count);

}  // namespace patchwork::traffic
