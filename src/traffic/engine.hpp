// Traffic engine: binds workload profiles to a federation and drives port
// loads over time.
//
// Rate plane: every switch port gets a persistent base utilization (drawn
// from a distribution calibrated to Section 5's finding that 50% of ports
// sit at <= 38% utilization while some run at line rate), modulated by the
// testbed-wide ActivityModel. Packet plane: for any port and window the
// engine renders the frames its mirror would deliver, consistent with the
// port's current rate and the site's workload profile.
#pragma once

#include <vector>

#include "testbed/activity_model.hpp"
#include "testbed/federation.hpp"
#include "traffic/flowgen.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace patchwork::traffic {

class TrafficEngine {
 public:
  /// Burst structure of port activity (finding B3: "FABRIC link
  /// utilization is often low, but it sometimes spikes to capacity.
  /// Background network activity is highly variable"). A port transmits in
  /// bursts: during a fraction `duty_cycle` of each of its activity
  /// periods it runs near its drawn peak utilization; otherwise it idles
  /// at `idle_fraction` of that peak. The default duty cycle calibrates
  /// the testbed-wide aggregate to Fig. 6's ~4 Tbps peak week.
  struct Params {
    double duty_cycle = 0.03;
    double idle_fraction = 0.015;
    double min_burst_period_hours = 0.5;
    double max_burst_period_hours = 3.0;
  };

  TrafficEngine(testbed::Federation& fed, const testbed::ActivityModel& activity,
                std::vector<SiteWorkloadProfile> profiles, util::Rng rng,
                Params params);
  TrafficEngine(testbed::Federation& fed,
                const testbed::ActivityModel& activity,
                std::vector<SiteWorkloadProfile> profiles, util::Rng rng)
      : TrafficEngine(fed, activity, std::move(profiles), rng, Params()) {}

  /// Recompute every port's Tx/Rx rates for simulated time `now` (which is
  /// mapped onto the year via `year_start_offset`). Call before advancing
  /// switch counters.
  void update_loads(util::Nanos now);

  /// Persistent base utilization of a port (before activity modulation).
  double base_utilization(testbed::GlobalPortId port) const;

  /// Override a port's persistent base utilization (values above 1 pin the
  /// port at line rate regardless of seasonal modulation). Used by tests
  /// and benches to stage hot ports.
  void set_base_utilization(testbed::GlobalPortId port, double value);

  /// Render one sample window of mirrored traffic from `port` at `now`.
  /// `directions` selects which channels the mirror clones.
  WindowTraffic window_for_port(
      testbed::GlobalPortId port, util::Nanos now, util::Nanos duration,
      std::size_t max_frames = 20000,
      testbed::MirrorDirections directions =
          testbed::MirrorDirections::kBoth);

  const SiteWorkloadProfile& profile(testbed::SiteId site) const {
    return profiles_.at(site.value);
  }

  /// Map simulated time to a fraction of the year, for seasonality.
  double year_fraction(util::Nanos now) const;

  /// Offset into the year at t=0 (e.g. start the simulation in December).
  void set_year_start_offset(util::Nanos offset) { year_offset_ = offset; }

  const Params& params() const { return params_; }

 private:
  testbed::Federation& fed_;
  const testbed::ActivityModel& activity_;
  std::vector<SiteWorkloadProfile> profiles_;
  util::Rng rng_;
  Params params_;
  util::Nanos year_offset_ = 0;
  /// base_util_[site][port]: the port's peak (in-burst) utilization.
  std::vector<std::vector<double>> base_util_;
  /// Slowly-varying per-port jitter phase, for sample-to-sample variation.
  std::vector<std::vector<double>> phase_;
  /// Per-port burst period (hours) for the on/off activity process.
  std::vector<std::vector<double>> burst_period_;
};

/// Draw from the port-utilization distribution of Section 5: median ~0.38,
/// a long upper tail, and a ~4% chance of a line-rate port.
double draw_port_utilization(util::Rng& rng, double scale);

}  // namespace patchwork::traffic
