#include "traffic/flowgen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <span>

#include "net/protocol.hpp"

namespace patchwork::traffic {

bool app_is_tcp(FlowApp app) {
  switch (app) {
    case FlowApp::kIperfTcp:
    case FlowApp::kTls:
    case FlowApp::kSsh:
    case FlowApp::kHttp:
      return true;
    default:
      return false;
  }
}

namespace {

std::uint16_t app_dst_port(FlowApp app) {
  switch (app) {
    case FlowApp::kIperfTcp:
    case FlowApp::kIperfUdp: return net::kPortIperf;
    case FlowApp::kTls: return net::kPortTls;
    case FlowApp::kSsh: return net::kPortSsh;
    case FlowApp::kHttp: return net::kPortHttp;
    case FlowApp::kDns: return net::kPortDns;
    case FlowApp::kNtp: return net::kPortNtp;
    case FlowApp::kVxlan: return net::kPortVxlan;
    default: return 0;
  }
}

/// Typical wire frame size for non-bulk applications.
std::size_t app_frame_size(util::Rng& rng, FlowApp app) {
  switch (app) {
    case FlowApp::kDns: return rng.uniform_u64(84, 140);
    case FlowApp::kNtp: return 110;
    case FlowApp::kArp: return 64;
    case FlowApp::kIcmp: return 98;
    case FlowApp::kSsh: return rng.uniform_u64(90, 500);
    case FlowApp::kHttp: return rng.uniform_u64(180, 1460);
    case FlowApp::kTls: return rng.uniform_u64(140, 1514);
    default: return 1514;
  }
}

}  // namespace

FlowSpec draw_flow(util::Rng& rng, const SiteWorkloadProfile& profile) {
  FlowSpec flow;
  flow.app = static_cast<FlowApp>(rng.weighted_index(profile.app_weights));

  const EncapsulationProfile& enc = profile.encapsulation;
  if (rng.chance(enc.vlan_probability)) {
    flow.vlan_id = static_cast<std::uint16_t>(rng.uniform_u64(2, 4000));
  }
  // ARP stays in the local segment: VLAN at most.
  if (flow.app != FlowApp::kArp && rng.chance(enc.mpls_probability)) {
    flow.mpls_labels.push_back(
        static_cast<std::uint32_t>(rng.uniform_u64(16000, 17000)));
    if (rng.chance(enc.second_mpls_probability)) {
      flow.mpls_labels.push_back(
          static_cast<std::uint32_t>(rng.uniform_u64(17000, 18000)));
    }
    flow.pseudowire = rng.chance(enc.pseudowire_probability);
  }

  flow.ipv6 = flow.app != FlowApp::kArp && flow.app != FlowApp::kVxlan &&
              flow.app != FlowApp::kGre && rng.chance(profile.ipv6_fraction);

  flow.src_mac = net::MacAddress::from_id(rng.bits() & 0xffffffffffull);
  flow.dst_mac = net::MacAddress::from_id(rng.bits() & 0xffffffffffull);
  // FABRIC slices commonly reuse 10/8 — the reason flows must be keyed on
  // virtualization tags too. A large share of slices are built from the
  // same scripted templates and land on the conventional 10.0.0.x
  // addresses, so address collisions between slices are the norm, not the
  // exception.
  const bool scripted_template = rng.chance(0.5);
  if (scripted_template) {
    flow.src_ip = net::Ipv4Address::from_octets(
        10, 0, 0, static_cast<std::uint8_t>(rng.uniform_u64(1, 16)));
    do {
      flow.dst_ip = net::Ipv4Address::from_octets(
          10, 0, 0, static_cast<std::uint8_t>(rng.uniform_u64(1, 16)));
    } while (flow.dst_ip == flow.src_ip);
  } else {
    flow.src_ip = net::Ipv4Address::from_octets(
        10, static_cast<std::uint8_t>(rng.uniform_u64(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_u64(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_u64(1, 254)));
    flow.dst_ip = net::Ipv4Address::from_octets(
        10, static_cast<std::uint8_t>(rng.uniform_u64(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_u64(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_u64(1, 254)));
  }
  std::array<std::uint16_t, 8> words{};
  words[0] = 0xfd00;
  for (std::size_t i = 1; i < 8; ++i) {
    words[i] = static_cast<std::uint16_t>(rng.bits());
  }
  flow.src_ip6 = net::Ipv6Address::from_words(words);
  for (std::size_t i = 1; i < 8; ++i) {
    words[i] = static_cast<std::uint16_t>(rng.bits());
  }
  flow.dst_ip6 = net::Ipv6Address::from_words(words);

  // Scripted experiments pin their client port (iperf --cport and
  // friends), so the same narrow port range recurs across slices.
  flow.src_port =
      scripted_template
          ? static_cast<std::uint16_t>(rng.uniform_u64(49152, 49167))
          : static_cast<std::uint16_t>(rng.uniform_u64(32768, 60999));
  flow.dst_port = app_dst_port(flow.app);

  // MTU-filling flows: throughput tools always, and most heavy TLS/HTTP
  // transfers (interactive TLS/HTTP sessions keep their mid-size frames).
  bool mtu_filling =
      flow.app == FlowApp::kIperfTcp || flow.app == FlowApp::kIperfUdp ||
      flow.app == FlowApp::kVxlan || flow.app == FlowApp::kGre;
  if ((flow.app == FlowApp::kTls || flow.app == FlowApp::kHttp) &&
      rng.chance(0.7)) {
    mtu_filling = true;
  }
  if (mtu_filling && profile.small_message_site) {
    // Message-based experiments: "bulk" means a stream of short frames.
    flow.data_frame_size = rng.uniform_u64(130, 511);
    flow.message_stream = true;
  } else if (mtu_filling) {
    flow.data_frame_size = rng.chance(profile.jumbo_fraction)
                               ? profile.mtu_frame_size
                               : 1514;
  } else {
    flow.data_frame_size = app_frame_size(rng, flow.app);
  }
  flow.total_bytes = static_cast<std::uint64_t>(rng.pareto(
      profile.flow_size_min, profile.flow_size_max, profile.flow_size_alpha));
  return flow;
}

namespace {

/// Stack the underlay encapsulation onto `b` and return whether an inner
/// Ethernet was emitted (pseudowire case).
void build_underlay(net::FrameBuilder& b, const FlowSpec& flow) {
  b.ethernet(flow.src_mac, flow.dst_mac);
  if (flow.vlan_id) b.vlan(*flow.vlan_id);
  for (std::uint32_t label : flow.mpls_labels) b.mpls(label);
  if (!flow.mpls_labels.empty() && flow.pseudowire) {
    b.pseudowire();
    b.ethernet(flow.src_mac, flow.dst_mac);
  }
}

void build_network(net::FrameBuilder& b, const FlowSpec& flow,
                   bool reverse = false) {
  if (flow.ipv6) {
    b.ipv6(reverse ? flow.dst_ip6 : flow.src_ip6,
           reverse ? flow.src_ip6 : flow.dst_ip6);
  } else {
    b.ipv4(reverse ? flow.dst_ip : flow.src_ip,
           reverse ? flow.src_ip : flow.dst_ip);
  }
}

/// Describe one data frame of `flow` on `b`. Returns false for an
/// unreachable app value (caller emits an empty frame).
bool fill_data_frame(net::FrameBuilder& b, const FlowSpec& flow,
                     std::uint32_t seq) {
  using net::tcp_flags::kAck;
  using net::tcp_flags::kPsh;
  switch (flow.app) {
    case FlowApp::kArp:
      b.ethernet(flow.src_mac, flow.dst_mac);
      if (flow.vlan_id) b.vlan(*flow.vlan_id);
      b.arp(flow.src_mac, flow.src_ip, flow.dst_ip);
      b.pad_to(std::max<std::size_t>(flow.data_frame_size, 64));
      return true;
    case FlowApp::kIcmp:
      build_underlay(b, flow);
      build_network(b, flow);
      b.icmp(8, 0).payload(48).pad_to(flow.data_frame_size);
      return true;
    case FlowApp::kDns:
      build_underlay(b, flow);
      build_network(b, flow);
      b.udp(flow.src_port, flow.dst_port)
          .dns(static_cast<std::uint16_t>(seq))
          .payload(24)
          .pad_to(flow.data_frame_size);
      return true;
    case FlowApp::kNtp:
      build_underlay(b, flow);
      build_network(b, flow);
      b.udp(flow.src_port, flow.dst_port).ntp().pad_to(flow.data_frame_size);
      return true;
    case FlowApp::kIperfUdp:
      build_underlay(b, flow);
      build_network(b, flow);
      b.udp(flow.src_port, flow.dst_port).pad_to(flow.data_frame_size);
      return true;
    case FlowApp::kVxlan: {
      build_underlay(b, flow);
      build_network(b, flow);
      b.udp(flow.src_port, flow.dst_port)
          .vxlan(flow.mpls_labels.empty()
                     ? 4096u
                     : flow.mpls_labels.front() & 0xffffffu);
      // Inner tenant frame.
      b.ethernet(flow.dst_mac, flow.src_mac);
      b.ipv4(flow.src_ip, flow.dst_ip);
      b.tcp(flow.src_port, net::kPortIperf, kAck | kPsh, seq);
      b.pad_to(flow.data_frame_size);
      return true;
    }
    case FlowApp::kGre: {
      build_underlay(b, flow);
      b.ipv4(flow.src_ip, flow.dst_ip);
      b.gre();
      // Inner tenant frame through the tunnel.
      b.ethernet(flow.dst_mac, flow.src_mac);
      b.ipv4(flow.src_ip, flow.dst_ip);
      b.tcp(flow.src_port, net::kPortIperf, kAck | kPsh, seq);
      b.pad_to(flow.data_frame_size);
      return true;
    }
    case FlowApp::kTls:
      build_underlay(b, flow);
      build_network(b, flow);
      b.tcp(flow.src_port, flow.dst_port, kAck | kPsh, seq)
          .tls(23)
          .pad_to(flow.data_frame_size);
      return true;
    case FlowApp::kSsh:
      build_underlay(b, flow);
      build_network(b, flow);
      b.tcp(flow.src_port, flow.dst_port, kAck | kPsh, seq)
          .ssh_banner()
          .pad_to(flow.data_frame_size);
      return true;
    case FlowApp::kHttp:
      build_underlay(b, flow);
      build_network(b, flow);
      b.tcp(flow.src_port, flow.dst_port, kAck | kPsh, seq)
          .http_request()
          .pad_to(flow.data_frame_size);
      return true;
    case FlowApp::kIperfTcp:
      build_underlay(b, flow);
      build_network(b, flow);
      b.tcp(flow.src_port, flow.dst_port, kAck | kPsh, seq)
          .payload(1)
          .pad_to(flow.data_frame_size);
      return true;
  }
  return false;
}

void fill_ack_frame(net::FrameBuilder& b, const FlowSpec& flow,
                    std::uint32_t ack) {
  assert(app_is_tcp(flow.app));
  build_underlay(b, flow);
  build_network(b, flow, /*reverse=*/true);
  b.tcp(flow.dst_port, flow.src_port, net::tcp_flags::kAck, 0, ack);
  // Tagged ACK minis land in the paper's dominant small bucket (65-127 B).
  b.pad_to(68);
}

}  // namespace

net::Frame make_data_frame(const FlowSpec& flow, util::Nanos t,
                           std::uint32_t seq) {
  net::FrameBuilder b;
  if (!fill_data_frame(b, flow, seq)) {
    // Unreachable; keep the compiler satisfied.
    return net::Frame({}, t);
  }
  return b.build(t);
}

net::Frame make_ack_frame(const FlowSpec& flow, util::Nanos t,
                          std::uint32_t ack) {
  net::FrameBuilder b;
  fill_ack_frame(b, flow, ack);
  return b.build(t);
}

WindowPlan plan_window(util::Rng& rng, const SiteWorkloadProfile& profile,
                       const WindowParams& params) {
  WindowPlan plan;
  plan.offered_bps = params.target_bps;
  if (params.target_bps <= 0.0) return plan;
  const double duration_s = util::to_seconds(params.duration);
  const double window_bytes = params.target_bps * duration_s / 8.0;

  // How many flows contribute to this window.
  std::size_t flow_count = static_cast<std::size_t>(
      rng.lognormal(profile.flow_count_mu, profile.flow_count_sigma));
  flow_count = std::clamp<std::size_t>(flow_count, 1, 60000);
  plan.flow_count = flow_count;

  // Draw flows and heavy-tailed byte shares. Rendering draws at most
  // ~max_frames frames, but true counts determine offered_pps.
  // Byte shares are heavy-tailed (a few elephants dominate the window),
  // and only bulk-capable applications can be elephants: a DNS or ARP
  // flow contributes a handful of frames no matter its share.
  struct Contribution {
    FlowSpec flow;
    double data_frames = 0.0;  ///< True count in the window.
    double ack_frames = 0.0;
  };
  // A flow can be an elephant only if it moves MTU-filling data frames or
  // is a deliberate message stream; interactive TLS/HTTP sessions and
  // chatter protocols stay mice.
  auto is_bulk = [](const FlowSpec& flow) {
    return flow.data_frame_size >= 1514 || flow.message_stream;
  };
  std::vector<Contribution> contribs;
  contribs.reserve(flow_count);
  std::vector<double> shares(flow_count);
  double share_sum = 0.0;
  for (std::size_t i = 0; i < flow_count; ++i) {
    Contribution c;
    c.flow = draw_flow(rng, profile);
    shares[i] = rng.pareto(1.0, 1e6, 0.6) * (is_bulk(c.flow) ? 30.0 : 1.0);
    share_sum += shares[i];
    contribs.push_back(std::move(c));
  }
  double true_total_frames = 0.0;
  for (std::size_t i = 0; i < flow_count; ++i) {
    Contribution& c = contribs[i];
    double byte_budget = window_bytes * shares[i] / share_sum;
    if (!is_bulk(c.flow)) {
      // Chatter protocols: a few dozen frames at most in 20 s.
      byte_budget = std::min(
          byte_budget, 50.0 * static_cast<double>(c.flow.data_frame_size));
    }
    c.data_frames = std::max(
        1.0, byte_budget / static_cast<double>(c.flow.data_frame_size));
    if (app_is_tcp(c.flow.app)) {
      // Delayed ACKs over jumbo segments: roughly one ACK per five data
      // frames, matching the paper's 74.7% / 14.15% bucket split.
      c.ack_frames = c.data_frames / 5.0;
    }
    true_total_frames += c.data_frames + c.ack_frames;
  }

  plan.offered_pps = true_total_frames / duration_s;
  const double keep =
      true_total_frames <= static_cast<double>(params.max_frames)
          ? 1.0
          : static_cast<double>(params.max_frames) / true_total_frames;

  // Fix every unit's rendered count now (including the fractional-frame
  // coin flip), so rendering consumes no sequential randomness at all.
  for (Contribution& c : contribs) {
    auto plan_unit = [&](double true_count, bool acks) {
      const double expected = true_count * keep;
      std::uint64_t n = static_cast<std::uint64_t>(expected);
      if (rng.chance(expected - static_cast<double>(n))) ++n;
      if (n == 0) return;
      plan.units.push_back(RenderUnit{c.flow, acks, n});
      plan.planned_frames += n;
    };
    plan_unit(c.data_frames, false);
    if (c.ack_frames > 0.0) plan_unit(c.ack_frames, true);
  }
  return plan;
}

void render_unit(const RenderUnit& unit, const util::RngBlock& draws,
                 util::Nanos duration, std::uint64_t begin, std::uint64_t end,
                 net::FrameBuilder& builder, net::FrameStore& store) {
  if (begin >= end) return;
  // Within a unit, frames differ only in timestamp and the TCP seq / ack /
  // DNS id derived from the frame index. Describe the stack once with the
  // varying field zeroed, bulk-draw the per-frame values in
  // struct-of-arrays chunks, and let the builder stamp the burst.
  builder.reset();
  net::PerFrameField field = net::PerFrameField::kTcpSeqAndDnsId;
  bool buildable = true;
  if (unit.acks) {
    fill_ack_frame(builder, unit.flow, 0);
    field = net::PerFrameField::kTcpAck;
  } else {
    buildable = fill_data_frame(builder, unit.flow, 0);
  }

  // Timestamp range: the unit's active interval clamped into the window.
  const util::Nanos lo = std::min(unit.ts_lo, duration - 1);
  const util::Nanos hi = std::clamp(unit.ts_hi, lo, duration - 1);

  // Chunked SoA scratch: large enough to amortize the vector RNG kernel
  // dispatch, small enough to stay on a worker's stack.
  constexpr std::size_t kChunk = 1024;
  util::Nanos ts[kChunk];
  std::uint32_t vals[kChunk];
  for (std::uint64_t j = begin; j < end;) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, end - j));
    // Draw j is frame j's timestamp: pure counter addressing, so any
    // [begin, end) burst decomposition renders identical bytes.
    draws.bounded_fill(j, lo, hi, std::span<util::Nanos>(ts, n));
    for (std::size_t i = 0; i < n; ++i) {
      vals[i] = static_cast<std::uint32_t>(j + i) * 1000;
    }
    if (buildable) {
      builder.build_many_into(store, std::span<const util::Nanos>(ts, n),
                              std::span<const std::uint32_t>(vals, n), field);
    } else {
      // Unreachable app value: one empty frame per timestamp.
      for (std::size_t i = 0; i < n; ++i) {
        store.commit(store.arena().size(), ts[i]);
      }
    }
    j += n;
  }
}

WindowTraffic generate_window(util::Rng& rng,
                              const SiteWorkloadProfile& profile,
                              const WindowParams& params) {
  WindowTraffic out;
  if (params.target_bps <= 0.0) return out;
  // One fork advances the caller's stream exactly once per window (so a
  // traffic engine reusing its Rng still gets distinct windows), then the
  // window's phases hang off the child by substream id.
  util::Rng child = rng.fork();
  util::Rng plan_rng = child.split(kWindowPlanStream);
  const WindowPlan plan = plan_window(plan_rng, profile, params);
  out.offered_pps = plan.offered_pps;
  out.offered_bps = plan.offered_bps;
  out.flow_count = plan.flow_count;

  net::FrameStore store;
  net::FrameBuilder builder;
  store.reserve(plan.planned_frames, plan.planned_frames * 96);
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    const util::RngBlock draws(child.split(kWindowUnitStreamBase + u));
    render_unit(plan.units[u], draws, params.duration, 0,
                plan.units[u].frames, builder, store);
  }

  // Total order (timestamp, synthesis index): the index tiebreak makes the
  // merge independent of sort stability and of how units were batched.
  std::vector<std::size_t> order(store.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const util::Nanos ta = store.view(a).timestamp;
    const util::Nanos tb = store.view(b).timestamp;
    return ta != tb ? ta < tb : a < b;
  });
  out.frames.reserve(order.size());
  for (std::size_t idx : order) {
    const net::FrameView v = store.view(idx);
    out.frames.emplace_back(
        std::vector<std::uint8_t>(v.bytes.begin(), v.bytes.end()),
        v.wire_length, v.timestamp);
  }
  return out;
}

}  // namespace patchwork::traffic
