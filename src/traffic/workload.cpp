#include "traffic/workload.hpp"

#include <algorithm>
#include <array>

namespace patchwork::traffic {

std::string_view to_string(FlowApp app) {
  switch (app) {
    case FlowApp::kIperfTcp: return "iperf-tcp";
    case FlowApp::kIperfUdp: return "iperf-udp";
    case FlowApp::kTls: return "tls";
    case FlowApp::kSsh: return "ssh";
    case FlowApp::kHttp: return "http";
    case FlowApp::kDns: return "dns";
    case FlowApp::kNtp: return "ntp";
    case FlowApp::kIcmp: return "icmp";
    case FlowApp::kArp: return "arp";
    case FlowApp::kVxlan: return "vxlan";
    case FlowApp::kGre: return "gre";
  }
  return "?";
}

std::size_t SiteWorkloadProfile::active_apps() const {
  return static_cast<std::size_t>(
      std::count_if(app_weights.begin(), app_weights.end(),
                    [](double w) { return w > 0.0; }));
}

std::vector<SiteWorkloadProfile> make_site_profiles(util::Rng& rng,
                                                    std::size_t site_count) {
  std::vector<SiteWorkloadProfile> out;
  out.reserve(site_count);
  for (std::size_t i = 0; i < site_count; ++i) {
    SiteWorkloadProfile p;
    p.site_index = static_cast<std::uint32_t>(i);

    // Site archetype: ~40% are throughput-experiment sites (iperf-
    // dominated, very few protocols), the rest are mixed-application
    // sites with varying diversity.
    const bool throughput_site = rng.chance(0.4);
    std::fill(p.app_weights.begin(), p.app_weights.end(), 0.0);
    auto set = [&](FlowApp a, double w) {
      p.app_weights[static_cast<std::size_t>(a)] = w;
    };
    if (throughput_site) {
      set(FlowApp::kIperfTcp, 20.0);
      if (rng.chance(0.5)) set(FlowApp::kIperfUdp, 4.0);
      set(FlowApp::kSsh, 0.3);   // Management sessions.
      set(FlowApp::kArp, 0.2);
      if (rng.chance(0.3)) set(FlowApp::kIcmp, 0.2);
    } else {
      set(FlowApp::kIperfTcp, rng.uniform(2.0, 10.0));
      set(FlowApp::kTls, rng.uniform(1.0, 8.0));
      set(FlowApp::kSsh, rng.uniform(0.2, 2.0));
      if (rng.chance(0.7)) set(FlowApp::kHttp, rng.uniform(0.3, 4.0));
      if (rng.chance(0.8)) set(FlowApp::kDns, rng.uniform(0.2, 1.5));
      if (rng.chance(0.5)) set(FlowApp::kNtp, rng.uniform(0.05, 0.4));
      if (rng.chance(0.6)) set(FlowApp::kIcmp, rng.uniform(0.1, 0.6));
      set(FlowApp::kArp, rng.uniform(0.1, 0.5));
      if (rng.chance(0.35)) set(FlowApp::kVxlan, rng.uniform(0.5, 3.0));
      if (rng.chance(0.25)) set(FlowApp::kGre, rng.uniform(0.5, 2.5));
      if (rng.chance(0.4)) set(FlowApp::kIperfUdp, rng.uniform(0.5, 3.0));
    }

    // Encapsulation depth varies mildly per site; most traffic is tagged.
    p.encapsulation.vlan_probability = rng.uniform(0.85, 0.99);
    p.encapsulation.mpls_probability = rng.uniform(0.7, 0.95);
    p.encapsulation.second_mpls_probability = rng.uniform(0.2, 0.6);
    p.encapsulation.pseudowire_probability = rng.uniform(0.55, 0.9);

    // IPv6 share: tiny almost everywhere (finding B6), with a couple of
    // sites experimenting more heavily.
    p.ipv6_fraction = rng.chance(0.12) ? rng.uniform(0.05, 0.12)
                                       : rng.uniform(0.0, 0.02);

    // Frame sizing: most sites are jumbo-heavy (finding B5); a few favour
    // standard 1514 B MTUs or small-packet workloads.
    // Deterministic mix of sizing archetypes so every federation has the
    // paper's variety: mostly jumbo-heavy sites, a band of moderate ones,
    // and a few small-frame sites (the S11/S12 of Fig. 15) of which some
    // run message-based experiments.
    const double size_archetype = rng.uniform();
    const bool forced_small = i % 11 == 5;  // ~3 of 30 sites.
    if (!forced_small && size_archetype < 0.68) {
      p.jumbo_fraction = rng.uniform(0.92, 0.995);  // e.g. the paper's S3, S7.
      p.mtu_frame_size = 1536 + 2 * rng.uniform_u64(0, 250);  // 1536-2036 B.
    } else if (!forced_small) {
      p.jumbo_fraction = rng.uniform(0.82, 0.95);
      p.mtu_frame_size = 1600 + 2 * rng.uniform_u64(0, 200);
    } else {
      p.jumbo_fraction = rng.uniform(0.05, 0.4);  // e.g. S11, S12.
      p.mtu_frame_size = 1590 + 2 * rng.uniform_u64(0, 100);
      // Most of the small-frame sites run message-based experiments whose
      // "bulk" traffic is short frames; they also tend to move fewer
      // bytes than throughput experiments.
      if (rng.chance(0.67)) {
        p.small_message_site = true;
        p.utilization_scale *= 0.35;
      }
    }

    // Flow-count scale per sample: lognormal body under ~3000 with a tail
    // beyond 20000 (Fig. 13).
    p.flow_count_mu = rng.uniform(4.0, 7.2);
    p.flow_count_sigma = rng.uniform(0.7, 1.4);

    p.utilization_scale = rng.uniform(0.5, 1.5);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace patchwork::traffic
