#include "traffic/engine.hpp"

#include <algorithm>
#include <cmath>

namespace patchwork::traffic {

double draw_port_utilization(util::Rng& rng, double scale) {
  double u;
  const double archetype = rng.uniform();
  if (archetype < 0.04) {
    u = 1.0;  // Line-rate ports exist (R4.Q1).
  } else if (archetype < 0.14) {
    u = rng.uniform(0.5, 0.98);  // Busy experiment ports.
  } else if (archetype < 0.30) {
    u = rng.uniform(0.0, 0.05);  // Nearly idle.
  } else {
    // Body: median of the overall mixture lands near 0.38.
    u = rng.uniform(0.08, 0.75);
  }
  return std::clamp(u * scale, 0.0, 1.0);
}

TrafficEngine::TrafficEngine(testbed::Federation& fed,
                             const testbed::ActivityModel& activity,
                             std::vector<SiteWorkloadProfile> profiles,
                             util::Rng rng, Params params)
    : fed_(fed),
      activity_(activity),
      profiles_(std::move(profiles)),
      rng_(rng),
      params_(params) {
  base_util_.resize(fed_.site_count());
  phase_.resize(fed_.site_count());
  burst_period_.resize(fed_.site_count());
  for (testbed::SiteId sid : fed_.site_ids()) {
    const testbed::Site& site = fed_.site(sid);
    const double scale = profiles_.at(sid.value).utilization_scale;
    auto& utils = base_util_[sid.value];
    auto& phases = phase_[sid.value];
    auto& periods = burst_period_[sid.value];
    utils.resize(site.tor().port_count());
    phases.resize(site.tor().port_count());
    periods.resize(site.tor().port_count());
    for (std::size_t p = 0; p < utils.size(); ++p) {
      utils[p] = draw_port_utilization(rng_, scale);
      phases[p] = rng_.uniform(0.0, 2.0 * M_PI);
      periods[p] = rng_.uniform(params_.min_burst_period_hours,
                                params_.max_burst_period_hours);
    }
  }
}

double TrafficEngine::year_fraction(util::Nanos now) const {
  const double year_ns = 365.0 * static_cast<double>(util::kDay);
  double f = std::fmod(static_cast<double>(now + year_offset_), year_ns) /
             year_ns;
  if (f < 0.0) f += 1.0;
  return f;
}

double TrafficEngine::base_utilization(testbed::GlobalPortId port) const {
  return base_util_.at(port.site.value).at(port.port.value);
}

void TrafficEngine::set_base_utilization(testbed::GlobalPortId port,
                                         double value) {
  base_util_.at(port.site.value).at(port.port.value) = value;
}

void TrafficEngine::update_loads(util::Nanos now) {
  const double season = activity_.at_year_fraction(year_fraction(now));
  const double t_hours = util::to_seconds(now) / 3600.0;
  for (testbed::SiteId sid : fed_.site_ids()) {
    testbed::Site& site = fed_.site(sid);
    const SiteWorkloadProfile& prof = profiles_.at(sid.value);
    for (std::uint32_t p = 0; p < site.tor().port_count(); ++p) {
      testbed::SwitchPort& port = site.tor().mutable_port(testbed::PortId{p});
      // On/off burst process: a port transmits near its peak utilization
      // only during a `duty_cycle` fraction of each of its activity
      // periods. This yields B3's "often low, sometimes spikes" profile
      // and calibrates the Fig. 6 aggregate. A higher seasonal multiplier
      // lengthens bursts (more experiments running).
      const double period = burst_period_[sid.value][p];
      const double pos = std::fmod(
          t_hours / period + phase_[sid.value][p] / (2.0 * M_PI), 1.0);
      const double duty = std::min(1.0, params_.duty_cycle * season);
      const bool in_burst = pos < duty;
      // Wobble keeps successive samples from being identical.
      const double wobble =
          1.0 + 0.35 * std::sin(t_hours / 5.3 + phase_[sid.value][p]) +
          0.2 * std::sin(t_hours / 0.9 + 2.0 * phase_[sid.value][p]);
      const double level = in_burst ? 1.0 : params_.idle_fraction;
      const double util = std::clamp(
          base_util_[sid.value][p] * level * std::max(0.0, wobble), 0.0,
          1.0);
      const double rate = util * port.line_rate_bps();
      // Tx/Rx asymmetry: data direction dominates.
      port.set_rates(rate, rate * 0.55);
      // Mean frame size follows the site's jumbo share; ACK minis drag the
      // mean down a little.
      const double mean_frame =
          prof.jumbo_fraction * static_cast<double>(prof.mtu_frame_size) +
          (1.0 - prof.jumbo_fraction) * 700.0;
      port.set_mean_frame_size(mean_frame);
    }
  }
}

WindowTraffic TrafficEngine::window_for_port(
    testbed::GlobalPortId port, util::Nanos now, util::Nanos duration,
    std::size_t max_frames, testbed::MirrorDirections directions) {
  const testbed::Site& site = fed_.site(port.site);
  const testbed::SwitchPort& p = site.tor().port(port.port);
  WindowParams params;
  params.duration = duration;
  switch (directions) {
    case testbed::MirrorDirections::kBoth:
      params.target_bps = p.tx_rate_bps() + p.rx_rate_bps();
      break;
    case testbed::MirrorDirections::kTxOnly:
      params.target_bps = p.tx_rate_bps();
      break;
    case testbed::MirrorDirections::kRxOnly:
      params.target_bps = p.rx_rate_bps();
      break;
  }
  params.max_frames = max_frames;
  (void)now;
  return generate_window(rng_, profiles_.at(port.site.value), params);
}

}  // namespace patchwork::traffic
