// Console table rendering for the benchmark harnesses, which must print the
// same rows/series the paper's tables and figures report.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace patchwork::util {

/// Fixed-column text table with aligned output, e.g.
///
///   Frame Size (B) | Rate (Gbps) | Cores | Loss (%)
///   ---------------+-------------+-------+---------
///   1514           | 100         | 5     | 0.67
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Render with a header separator to `out`.
  void print(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers used by benches.
std::string fmt_double(double v, int precision);
std::string fmt_percent(double fraction, int precision);  ///< 0.147 -> "14.7%"

}  // namespace patchwork::util
