#include "util/csv.hpp"

#include <cassert>
#include <charconv>
#include <system_error>

namespace patchwork::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {
void write_row(std::ostream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out << ',';
    out << csv_escape(cells[i]);
  }
  out << '\n';
}

std::string format_double(double v) {
  // Shortest round-trip form: the default ostream precision (6 significant
  // digits) silently rounded analysis output, so distinct values could
  // collide in the CSVs. to_chars emits exactly the digits needed for the
  // value to parse back bit-identical.
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  assert(ec == std::errc());
  return std::string(buf, end);
}
}  // namespace

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(out), columns_(columns.size()) {
  assert(columns_ > 0);
  write_row(out_, columns);
}

CsvWriter& CsvWriter::begin_row() {
  assert(current_.empty());
  return *this;
}

CsvWriter& CsvWriter::add(std::string_view value) {
  current_.emplace_back(value);
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  current_.push_back(format_double(value));
  return *this;
}

CsvWriter& CsvWriter::add(std::uint64_t value) {
  current_.push_back(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  current_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  assert(current_.size() == columns_);
  write_row(out_, current_);
  current_.clear();
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string_view> values) {
  begin_row();
  for (auto v : values) add(v);
  end_row();
}

}  // namespace patchwork::util
