// LZ-style compression for the gathering phase.
//
// Section 6.2.3: "the captured traffic (as pcap files) and logs are
// compressed and downloaded to the coordinator." Truncated-header pcaps
// are highly repetitive (encapsulation bytes repeat frame after frame), so
// even a simple LZ77 with a 64 KiB window gets strong ratios. The format
// is self-contained: a token stream of literals and (distance, length)
// back-references.
//
// Format: magic "PWZ1", u32 original size, then tokens:
//   0x00 len  <len literal bytes>           (len in [1, 255])
//   0x01 dist_lo dist_hi len                (match: dist in [1, 65535],
//                                            len in [4, 255])
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace patchwork::util {

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> data);

/// Returns nullopt on malformed input (bad magic, truncated stream, or a
/// back-reference outside the produced output).
std::optional<std::vector<std::uint8_t>> decompress(
    std::span<const std::uint8_t> data);

/// Compressed size / original size (1.0 when original is empty).
double compression_ratio(std::span<const std::uint8_t> original,
                         std::span<const std::uint8_t> compressed);

}  // namespace patchwork::util
