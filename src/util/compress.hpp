// LZ-style compression for the gathering phase.
//
// Section 6.2.3: "the captured traffic (as pcap files) and logs are
// compressed and downloaded to the coordinator." Truncated-header pcaps
// are highly repetitive (encapsulation bytes repeat frame after frame), so
// even a simple LZ77 with a 64 KiB window gets strong ratios. The format
// is self-contained: a token stream of literals and (distance, length)
// back-references.
//
// Format: magic "PWZ1", u32 original size, then tokens:
//   0x00 len  <len literal bytes>           (len in [1, 255])
//   0x01 dist_lo dist_hi len                (match: dist in [1, 65535],
//                                            len in [4, 255])
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace patchwork::util {

/// Reusable compression context: keeps the match hash table allocated
/// across calls and invalidates stale entries by epoch tag instead of
/// refilling, so a worker compressing many pcaps pays the table allocation
/// once. Output is byte-identical to the free compress() for any input
/// sequence. Not thread-safe; use one per worker.
class Compressor {
 public:
  std::vector<std::uint8_t> compress(std::span<const std::uint8_t> data);

 private:
  /// Slot = (epoch << 32) | position; a slot is live only when its epoch
  /// tag matches epoch_, which makes clearing the table O(1) per call.
  std::vector<std::uint64_t> table_;
  std::uint32_t epoch_ = 0;
};

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> data);

/// Returns nullopt on malformed input (bad magic, truncated stream, or a
/// back-reference outside the produced output).
std::optional<std::vector<std::uint8_t>> decompress(
    std::span<const std::uint8_t> data);

/// Compressed size / original size (1.0 when original is empty).
double compression_ratio(std::span<const std::uint8_t> original,
                         std::span<const std::uint8_t> compressed);

}  // namespace patchwork::util
