// Time, size, and rate units used throughout the Patchwork codebase.
//
// All simulated time is kept in integer nanoseconds (see sim::Clock); all
// sizes in bytes; all rates in bits per second carried in doubles. These
// helpers exist so call sites read as "5 * kMillisecond" or "Gbps(100)"
// rather than bare magic numbers.
#pragma once

#include <cstdint>

namespace patchwork::util {

// --- Time (nanoseconds) ------------------------------------------------
using Nanos = std::uint64_t;

inline constexpr Nanos kNanosecond = 1;
inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;
inline constexpr Nanos kMinute = 60 * kSecond;
inline constexpr Nanos kHour = 60 * kMinute;
inline constexpr Nanos kDay = 24 * kHour;

/// Convert nanoseconds to fractional seconds.
constexpr double to_seconds(Nanos ns) { return static_cast<double>(ns) / 1e9; }

/// Convert fractional seconds to nanoseconds (saturating at 0 for negatives).
constexpr Nanos from_seconds(double s) {
  return s <= 0.0 ? 0 : static_cast<Nanos>(s * 1e9);
}

// --- Sizes (bytes) ------------------------------------------------------
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

// --- Rates (bits per second) -------------------------------------------
constexpr double Kbps(double v) { return v * 1e3; }
constexpr double Mbps(double v) { return v * 1e6; }
constexpr double Gbps(double v) { return v * 1e9; }
constexpr double Tbps(double v) { return v * 1e12; }

/// Bits-per-second carried by `bytes` transmitted over `dur` nanoseconds.
constexpr double rate_bps(std::uint64_t bytes, Nanos dur) {
  return dur == 0 ? 0.0 : static_cast<double>(bytes) * 8.0 / to_seconds(dur);
}

/// Time on the wire for `bytes` at `bps` bits per second.
constexpr Nanos transmit_time(std::uint64_t bytes, double bps) {
  return bps <= 0.0 ? 0 : from_seconds(static_cast<double>(bytes) * 8.0 / bps);
}

}  // namespace patchwork::util
