// CRC32 (IEEE 802.3 polynomial, reflected) for the archive block format.
//
// Each archive block stores the CRC of its payload so a flipped byte on
// disk is detected at open time and the block is skipped instead of
// poisoning every query that reads past it.
#pragma once

#include <cstdint>
#include <span>

namespace patchwork::util {

/// CRC32 of `bytes`, continuing from `seed` (pass the previous return value
/// to checksum data incrementally; the default starts a fresh checksum).
/// crc32(a+b) == crc32(b, crc32(a)).
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 0);

}  // namespace patchwork::util
