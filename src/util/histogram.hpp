// Histograms used across the analysis pipeline and the host model.
//
// Histogram     — fixed user-supplied bucket edges (frame-size bins, etc.).
// Log2Histogram — power-of-two buckets, matching the bpftrace-style
//                 log-scaled latency histograms the paper uses in App. B.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace patchwork::util {

/// Histogram over user-supplied bucket boundaries.
///
/// Buckets are [edge[i], edge[i+1]) for i in [0, n-2], plus an implicit
/// overflow bucket for values >= the last edge and an underflow bucket for
/// values < the first edge.
class Histogram {
 public:
  /// `edges` must be strictly increasing and contain at least two entries.
  explicit Histogram(std::vector<double> edges);

  void add(double value, std::uint64_t count = 1);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  double bucket_lo(std::size_t i) const { return edges_.at(i); }
  double bucket_hi(std::size_t i) const { return edges_.at(i + 1); }

  /// Fraction of all samples (including under/overflow) in bucket i.
  double fraction(std::size_t i) const;

  /// Human-readable label like "[65, 128)".
  std::string bucket_label(std::size_t i) const;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Power-of-two histogram: bucket k holds values in [2^k, 2^(k+1)).
///
/// Matches bpftrace's `hist()` output, which Appendix B of the paper uses to
/// measure sys_writev() latencies. `rounded_up_sum()` implements the paper's
/// conservative accounting: each sample contributes its bucket's *upper*
/// bound, because high-latency calls dominate frame loss.
class Log2Histogram {
 public:
  Log2Histogram() = default;

  void add(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t total() const { return total_; }

  /// Number of occupied buckets (highest index + 1).
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t k) const;

  /// Lower/upper bound of bucket k: [2^k, 2^(k+1)).
  static std::uint64_t bucket_lo(std::size_t k) { return 1ull << k; }
  static std::uint64_t bucket_hi(std::size_t k) { return 2ull << k; }

  /// Sum of samples where each sample counts as its bucket's upper bound
  /// (the paper's "if latency falls in [32K,64K] ns, use 64K ns" rule).
  std::uint64_t rounded_up_sum() const;

  /// Same, but only over buckets whose lower bound is >= `min_value` —
  /// implements the paper's Appendix B rule of excluding the average case
  /// and summing only the high-latency buckets that dominate frame loss.
  std::uint64_t rounded_up_sum_above(std::uint64_t min_value) const;

  /// Exact sum of the raw values as added (for comparison with the above).
  std::uint64_t exact_sum() const { return exact_sum_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t exact_sum_ = 0;
};

}  // namespace patchwork::util
