#include "util/histogram.hpp"

#include <cassert>
#include <sstream>

namespace patchwork::util {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  assert(edges_.size() >= 2);
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    assert(edges_[i] > edges_[i - 1]);
  }
  counts_.assign(edges_.size() - 1, 0);
}

void Histogram::add(double value, std::uint64_t count) {
  total_ += count;
  if (value < edges_.front()) {
    underflow_ += count;
    return;
  }
  if (value >= edges_.back()) {
    overflow_ += count;
    return;
  }
  // Binary search for the bucket containing `value`.
  std::size_t lo = 0, hi = counts_.size() - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi + 1) / 2;
    if (value >= edges_[mid]) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  counts_[lo] += count;
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

std::string Histogram::bucket_label(std::size_t i) const {
  std::ostringstream os;
  os << "[" << edges_.at(i) << ", " << edges_.at(i + 1) << ")";
  return os.str();
}

void Log2Histogram::add(std::uint64_t value, std::uint64_t count) {
  std::size_t k = 0;
  while ((2ull << k) <= value && k < 62) ++k;
  if (counts_.size() <= k) counts_.resize(k + 1, 0);
  counts_[k] += count;
  total_ += count;
  exact_sum_ += value * count;
}

std::uint64_t Log2Histogram::bucket(std::size_t k) const {
  return k < counts_.size() ? counts_[k] : 0;
}

std::uint64_t Log2Histogram::rounded_up_sum() const {
  return rounded_up_sum_above(0);
}

std::uint64_t Log2Histogram::rounded_up_sum_above(
    std::uint64_t min_value) const {
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    if (bucket_lo(k) < min_value) continue;
    sum += counts_[k] * bucket_hi(k);
  }
  return sum;
}

}  // namespace patchwork::util
