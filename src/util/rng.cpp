#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/philox_simd.hpp"

namespace patchwork::util {

namespace {

/// SplitMix64 output function — one bijective avalanche step, used to turn
/// (seed, stream_id) into a well-mixed child seed.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::split(std::uint64_t stream_id) const {
  // Two chained SplitMix64 steps decorrelate nearby (seed, id) pairs;
  // nothing is drawn from engine_, so the parent sequence is untouched.
  // The mixed seed becomes the child's Philox key, so the child's whole
  // draw table is addressable from (parent seed, stream id) alone.
  return Rng(splitmix64(splitmix64(seed_) ^ splitmix64(stream_id)));
}

Rng Rng::split(std::uint64_t stream_id, std::uint64_t substream_id) const {
  return split(stream_id).split(substream_id);
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::uint64_t> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::pareto(double lo, double hi, double alpha) {
  assert(lo > 0.0 && hi > lo && alpha > 0.0);
  // Inverse-CDF sampling of a bounded Pareto.
  const double u = uniform(0.0, 1.0);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  std::poisson_distribution<std::uint64_t> d(mean);
  return d(engine_);
}

WeightedTable::WeightedTable(std::span<const double> weights) {
  assert(!weights.empty());
  cumulative_.reserve(weights.size());
  double prefix = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    prefix += w;
    cumulative_.push_back(prefix);
  }
  assert(total() > 0.0);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  assert(!weights.empty());
  // Cumulative-comparison semantics, kept bit-identical to the
  // WeightedTable path: both draw uniform(0, total) for the same
  // sequentially-summed total and return the first index whose prefix sum
  // exceeds the draw.
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  const double x = uniform(0.0, total);
  double prefix = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    prefix += weights[i];
    if (x < prefix) return i;
  }
  return weights.size() - 1;  // Floating-point edge: land on the last bucket.
}

std::size_t Rng::weighted_index(const WeightedTable& table) {
  assert(table.size() > 0);
  const double x = uniform(0.0, table.total());
  // First prefix > x — the same predicate the linear scan applies.
  const auto it = std::upper_bound(table.cumulative_.begin(),
                                   table.cumulative_.end(), x);
  if (it == table.cumulative_.end()) return table.size() - 1;
  return static_cast<std::size_t>(it - table.cumulative_.begin());
}

std::uint64_t RngBlock::bounded_at(std::uint64_t j, std::uint64_t lo,
                                   std::uint64_t hi) const {
  assert(lo <= hi);
  const std::uint64_t range = hi - lo + 1;  // 0 means the full 2^64 span.
  if (range == 0) return at(j);
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(at(j)) * range;
  return lo + static_cast<std::uint64_t>(wide >> 64);
}

namespace {

/// Stack chunk for the fills that transform raw draws into another type:
/// large enough to amortize the kernel dispatch, small enough to live on
/// any worker's stack.
constexpr std::size_t kFillChunk = 1024;

}  // namespace

void RngBlock::raw_fill(std::uint64_t j0, std::span<std::uint64_t> out) const {
  philox_bulk(engine_.seed(), j0, out.size(), out.data());
}

void RngBlock::uniform01_fill(std::uint64_t j0, std::span<double> out) const {
  std::uint64_t raw[kFillChunk];
  for (std::size_t done = 0; done < out.size();) {
    const std::size_t n = std::min(kFillChunk, out.size() - done);
    philox_bulk(engine_.seed(), j0 + done, n, raw);
    for (std::size_t i = 0; i < n; ++i) {
      out[done + i] = static_cast<double>(raw[i] >> 11) * 0x1.0p-53;
    }
    done += n;
  }
}

void RngBlock::bounded_fill(std::uint64_t j0, std::uint64_t lo,
                            std::uint64_t hi,
                            std::span<std::uint64_t> out) const {
  assert(lo <= hi);
  raw_fill(j0, out);  // In place: each raw draw maps to its bounded value.
  const std::uint64_t range = hi - lo + 1;  // 0 means the full 2^64 span.
  if (range == 0) return;
  for (std::uint64_t& v : out) {
    const unsigned __int128 wide = static_cast<unsigned __int128>(v) * range;
    v = lo + static_cast<std::uint64_t>(wide >> 64);
  }
}

void RngBlock::chance_fill(std::uint64_t j0, double p,
                           std::span<std::uint8_t> out) const {
  if (p <= 0.0) {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    return;
  }
  if (p >= 1.0) {
    std::fill(out.begin(), out.end(), std::uint8_t{1});
    return;
  }
  std::uint64_t raw[kFillChunk];
  for (std::size_t done = 0; done < out.size();) {
    const std::size_t n = std::min(kFillChunk, out.size() - done);
    philox_bulk(engine_.seed(), j0 + done, n, raw);
    for (std::size_t i = 0; i < n; ++i) {
      out[done + i] = static_cast<std::uint8_t>(
          static_cast<double>(raw[i] >> 11) * 0x1.0p-53 < p);
    }
    done += n;
  }
}

}  // namespace patchwork::util
