#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace patchwork::util {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  assert(!columns_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << " | ";
      out << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
    }
    out << '\n';
  };
  print_row(columns_);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) out << "-+-";
    out << std::string(widths[i], '-');
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

}  // namespace patchwork::util
