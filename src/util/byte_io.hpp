// Endian-explicit primitive serialization used by the header codecs and the
// pcap reader/writer. Network byte order is big-endian; the pcap format is
// little-endian, so both directions are provided.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace patchwork::util {

// --- Big-endian (network order) appenders -------------------------------
inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
inline void put_be16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
inline void put_be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
inline void put_be64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_be32(out, static_cast<std::uint32_t>(v >> 32));
  put_be32(out, static_cast<std::uint32_t>(v));
}

// --- Big-endian readers (bounds are the caller's responsibility; use
// `fits` to check) --------------------------------------------------------
inline bool fits(std::span<const std::uint8_t> buf, std::size_t off,
                 std::size_t len) {
  return off <= buf.size() && len <= buf.size() - off;
}
inline std::uint8_t get_u8(std::span<const std::uint8_t> buf,
                           std::size_t off) {
  return buf[off];
}
inline std::uint16_t get_be16(std::span<const std::uint8_t> buf,
                              std::size_t off) {
  return static_cast<std::uint16_t>((buf[off] << 8) | buf[off + 1]);
}
inline std::uint32_t get_be32(std::span<const std::uint8_t> buf,
                              std::size_t off) {
  return (static_cast<std::uint32_t>(buf[off]) << 24) |
         (static_cast<std::uint32_t>(buf[off + 1]) << 16) |
         (static_cast<std::uint32_t>(buf[off + 2]) << 8) |
         static_cast<std::uint32_t>(buf[off + 3]);
}
inline std::uint64_t get_be64(std::span<const std::uint8_t> buf,
                              std::size_t off) {
  return (static_cast<std::uint64_t>(get_be32(buf, off)) << 32) |
         get_be32(buf, off + 4);
}

// --- Little-endian (pcap file format) ------------------------------------
inline void put_le16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
inline void put_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
inline std::uint16_t get_le16(std::span<const std::uint8_t> buf,
                              std::size_t off) {
  return static_cast<std::uint16_t>(buf[off] | (buf[off + 1] << 8));
}
inline std::uint32_t get_le32(std::span<const std::uint8_t> buf,
                              std::size_t off) {
  return static_cast<std::uint32_t>(buf[off]) |
         (static_cast<std::uint32_t>(buf[off + 1]) << 8) |
         (static_cast<std::uint32_t>(buf[off + 2]) << 16) |
         (static_cast<std::uint32_t>(buf[off + 3]) << 24);
}

}  // namespace patchwork::util
