#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>
#include <utility>

namespace patchwork::util {

namespace {

// Set while a thread is executing inside ThreadPool::worker_loop(); lets
// parallel_for() detect nesting and degrade to serial instead of
// deadlocking on a pool that is busy running the caller itself.
thread_local bool t_on_worker = false;

// Identity of the pool worker running on this thread (work-stealing path):
// which pool, and which per-worker deque belongs to it.
thread_local const void* t_worker_pool = nullptr;
thread_local std::size_t t_worker_index = 0;

// Incremented while a thread executes the body of its own parallel_for
// region (caller threads participate in their region's strand loop, so
// nesting can occur off pool workers too).
thread_local std::size_t t_region_depth = 0;

std::optional<std::size_t>& thread_count_override() {
  static std::optional<std::size_t> value;
  return value;
}

std::atomic<TaskStealObserver> g_steal_observer{nullptr};

}  // namespace

void set_task_steal_observer(TaskStealObserver observer) {
  g_steal_observer.store(observer, std::memory_order_release);
}

namespace {
void notify_steal_observer() {
  if (TaskStealObserver observer =
          g_steal_observer.load(std::memory_order_acquire)) {
    observer();
  }
}
}  // namespace

TaskGroup::~TaskGroup() {
  if (pending_.load(std::memory_order_acquire) != 0) {
    try {
      wait();
    } catch (...) {
      // Destructor drain: the error has nowhere to go.
    }
  }
}

void TaskGroup::spawn(std::function<void()> task) {
  pool_.spawn(*this, std::move(task));
}

void TaskGroup::wait() { pool_.wait(*this); }

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  deques_.resize(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  group_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure_size(std::size_t threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return;
  if (deques_.size() < threads) deques_.resize(threads);
  while (workers_.size() < threads) {
    const std::size_t index = workers_.size();
    workers_.emplace_back([this, index] { worker_loop(index); });
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> future = wrapped.get_future();
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!workers_.empty()) {
      queue_.push_back(
          QueuedTask{std::move(wrapped), std::chrono::steady_clock::now()});
      note_queue_depth_locked();
      cv_.notify_one();
      return future;
    }
  }
  run_task(wrapped);  // Serial mode: run inline; the future carries throws.
  return future;
}

void ThreadPool::note_queue_depth_locked() {
  // Sample the high-water mark after the increment: any task that had to
  // queue behind a worker leaves a mark >= 1. Counts both the legacy FIFO
  // and the group deques.
  const std::uint64_t depth =
      queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t seen = queue_depth_high_water_.load(std::memory_order_relaxed);
  while (depth > seen && !queue_depth_high_water_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

void ThreadPool::spawn(TaskGroup& group, std::function<void()> task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  group.pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!workers_.empty() && !stopping_) {
      std::size_t target;
      if (t_worker_pool == this) {
        target = t_worker_index;  // Own deque: LIFO locality.
      } else {
        target = next_deque_++ % deques_.size();
      }
      deques_[target].push_back(GroupTask{&group, std::move(task)});
      ++group_tasks_queued_;
      note_queue_depth_locked();
      cv_.notify_one();
      group_cv_.notify_all();  // A helping waiter may want to steal this.
      return;
    }
  }
  // No workers (serial mode): run inline, same contract as submit().
  GroupTask inline_task{&group, std::move(task)};
  run_group_task(inline_task);
}

bool ThreadPool::take_group_task_locked(std::size_t self,
                                        const TaskGroup* only,
                                        GroupTask& out, bool& stole) {
  if (self != kNoWorker && self < deques_.size()) {
    std::deque<GroupTask>& own = deques_[self];
    if (only == nullptr) {
      if (!own.empty()) {
        out = std::move(own.back());
        own.pop_back();
        --group_tasks_queued_;
        queue_depth_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    } else {
      // Waiting worker: newest matching task first (descendants of the
      // waited group sit at the back of the owner's deque).
      for (std::size_t i = own.size(); i-- > 0;) {
        if (own[i].group == only) {
          out = std::move(own[i]);
          own.erase(own.begin() + static_cast<std::ptrdiff_t>(i));
          --group_tasks_queued_;
          queue_depth_.fetch_sub(1, std::memory_order_relaxed);
          return true;
        }
      }
    }
  }
  if (group_tasks_queued_ == 0) return false;
  for (std::size_t d = 0; d < deques_.size(); ++d) {
    if (d == self) continue;
    std::deque<GroupTask>& victim = deques_[d];
    for (std::size_t i = 0; i < victim.size(); ++i) {
      if (only != nullptr && victim[i].group != only) continue;
      out = std::move(victim[i]);
      victim.erase(victim.begin() + static_cast<std::ptrdiff_t>(i));
      --group_tasks_queued_;
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      stole = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::wait(TaskGroup& group) {
  const bool is_worker = t_worker_pool == this;
  const std::size_t self = is_worker ? t_worker_index : kNoWorker;
  for (;;) {
    GroupTask task;
    bool have = false;
    bool stole = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        // Only tasks of the waited group are eligible — helping an
        // unrelated group could recurse without bound.
        if (take_group_task_locked(self, &group, task, stole)) {
          have = true;
          break;
        }
        if (group.pending_.load(std::memory_order_acquire) == 0) break;
        group_cv_.wait(lock);
      }
    }
    if (!have) break;
    if (stole) notify_steal_observer();
    run_group_task(task);
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = std::exchange(group.first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.queue_depth_high_water =
      queue_depth_high_water_.load(std::memory_order_relaxed);
  s.task_wait_ns_total = task_wait_ns_total_.load(std::memory_order_relaxed);
  s.task_run_ns_total = task_run_ns_total_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::reset_stats() {
  tasks_submitted_.store(0, std::memory_order_relaxed);
  tasks_executed_.store(0, std::memory_order_relaxed);
  // queue_depth_ is live bookkeeping, not a counter: leave it alone.
  queue_depth_high_water_.store(0, std::memory_order_relaxed);
  task_wait_ns_total_.store(0, std::memory_order_relaxed);
  task_run_ns_total_.store(0, std::memory_order_relaxed);
  tasks_stolen_.store(0, std::memory_order_relaxed);
}

void ThreadPool::run_task(std::packaged_task<void()>& task) {
  const auto start = std::chrono::steady_clock::now();
  task();  // packaged_task stores any exception in its future.
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  task_run_ns_total_.fetch_add(static_cast<std::uint64_t>(ns),
                               std::memory_order_relaxed);
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::run_group_task(GroupTask& task) {
  const auto start = std::chrono::steady_clock::now();
  try {
    task.fn();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!task.group->first_error_) {
      task.group->first_error_ = std::current_exception();
    }
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  task_run_ns_total_.fetch_add(static_cast<std::uint64_t>(ns),
                               std::memory_order_relaxed);
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  if (task.group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task down. The empty lock/unlock pairs with the waiter's
    // predicate check, so the notify cannot slip between its pending_
    // load and its sleep.
    { std::lock_guard<std::mutex> lock(mutex_); }
    group_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  t_on_worker = true;
  t_worker_pool = this;
  t_worker_index = index;
  for (;;) {
    std::packaged_task<void()> task;
    GroupTask group_task;
    bool have_group_task = false;
    bool stole = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || group_tasks_queued_ > 0;
      });
      if (!queue_.empty()) {
        QueuedTask queued = std::move(queue_.front());
        queue_.pop_front();
        queue_depth_.fetch_sub(1, std::memory_order_relaxed);
        const auto wait_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - queued.enqueued)
                .count();
        task_wait_ns_total_.fetch_add(static_cast<std::uint64_t>(wait_ns),
                                      std::memory_order_relaxed);
        task = std::move(queued.task);
      } else if (take_group_task_locked(index, nullptr, group_task, stole)) {
        have_group_task = true;
      } else if (stopping_) {
        return;  // Both queues drained.
      } else {
        continue;  // Raced with another worker; re-wait.
      }
    }
    if (have_group_task) {
      if (stole) notify_steal_observer();
      run_group_task(group_task);
    } else {
      run_task(task);
    }
  }
}

ThreadPool& shared_pool() {
  // Meyers singleton: created empty on first use, grown on demand by
  // parallel_for(), joined during static destruction. Workers are only
  // ever added, so thread IDs observed by one call remain valid pool
  // workers for every later call.
  static ThreadPool pool(0);
  return pool;
}

std::size_t parallel_region_depth() { return t_region_depth; }

namespace detail {
ParallelRegionScope::ParallelRegionScope() { ++t_region_depth; }
ParallelRegionScope::~ParallelRegionScope() { --t_region_depth; }
}  // namespace detail

std::size_t thread_count() {
  if (thread_count_override().has_value()) return *thread_count_override();
  if (const char* env = std::getenv("PATCHWORK_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void set_thread_count(std::optional<std::size_t> n) {
  thread_count_override() = n;
}

}  // namespace patchwork::util
