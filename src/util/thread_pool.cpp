#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace patchwork::util {

namespace {

// Set while a thread is executing inside ThreadPool::worker_loop(); lets
// parallel_for() detect nesting and degrade to serial instead of
// deadlocking on a pool that is busy running the caller itself.
thread_local bool t_on_worker = false;

// Incremented while a thread executes the body of its own parallel_for
// region (caller threads participate in their region's strand loop, so
// nesting can occur off pool workers too).
thread_local std::size_t t_region_depth = 0;

std::optional<std::size_t>& thread_count_override() {
  static std::optional<std::size_t> value;
  return value;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure_size(std::size_t threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return;
  while (workers_.size() < threads) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> future = wrapped.get_future();
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!workers_.empty()) {
      queue_.push_back(
          QueuedTask{std::move(wrapped), std::chrono::steady_clock::now()});
      // Sample the high-water mark after the increment: any task that had
      // to queue behind a worker leaves a mark >= 1.
      const std::uint64_t depth =
          queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
      std::uint64_t seen =
          queue_depth_high_water_.load(std::memory_order_relaxed);
      while (depth > seen && !queue_depth_high_water_.compare_exchange_weak(
                                 seen, depth, std::memory_order_relaxed)) {
      }
      cv_.notify_one();
      return future;
    }
  }
  run_task(wrapped);  // Serial mode: run inline; the future carries throws.
  return future;
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.queue_depth_high_water =
      queue_depth_high_water_.load(std::memory_order_relaxed);
  s.task_wait_ns_total = task_wait_ns_total_.load(std::memory_order_relaxed);
  s.task_run_ns_total = task_run_ns_total_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::reset_stats() {
  tasks_submitted_.store(0, std::memory_order_relaxed);
  tasks_executed_.store(0, std::memory_order_relaxed);
  // queue_depth_ is live bookkeeping, not a counter: leave it alone.
  queue_depth_high_water_.store(0, std::memory_order_relaxed);
  task_wait_ns_total_.store(0, std::memory_order_relaxed);
  task_run_ns_total_.store(0, std::memory_order_relaxed);
}

void ThreadPool::run_task(std::packaged_task<void()>& task) {
  const auto start = std::chrono::steady_clock::now();
  task();  // packaged_task stores any exception in its future.
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  task_run_ns_total_.fetch_add(static_cast<std::uint64_t>(ns),
                               std::memory_order_relaxed);
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      QueuedTask queued = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      const auto wait_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - queued.enqueued)
              .count();
      task_wait_ns_total_.fetch_add(static_cast<std::uint64_t>(wait_ns),
                                    std::memory_order_relaxed);
      task = std::move(queued.task);
    }
    run_task(task);
  }
}

ThreadPool& shared_pool() {
  // Meyers singleton: created empty on first use, grown on demand by
  // parallel_for(), joined during static destruction. Workers are only
  // ever added, so thread IDs observed by one call remain valid pool
  // workers for every later call.
  static ThreadPool pool(0);
  return pool;
}

std::size_t parallel_region_depth() { return t_region_depth; }

namespace detail {
ParallelRegionScope::ParallelRegionScope() { ++t_region_depth; }
ParallelRegionScope::~ParallelRegionScope() { --t_region_depth; }
}  // namespace detail

std::size_t thread_count() {
  if (thread_count_override().has_value()) return *thread_count_override();
  if (const char* env = std::getenv("PATCHWORK_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void set_thread_count(std::optional<std::size_t> n) {
  thread_count_override() = n;
}

}  // namespace patchwork::util
