#include "util/logging.hpp"

#include <algorithm>
#include <sstream>

namespace patchwork::util {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void Logger::log(Nanos time, LogLevel level, std::string_view component,
                 std::string_view message) {
  if (level < min_level_) return;
  records_.push_back(LogRecord{time, level, std::string(component),
                               std::string(message)});
}

std::vector<LogRecord> Logger::at_least(LogLevel level) const {
  std::vector<LogRecord> out;
  std::copy_if(records_.begin(), records_.end(), std::back_inserter(out),
               [level](const LogRecord& r) { return r.level >= level; });
  return out;
}

std::vector<LogRecord> Logger::for_component(
    std::string_view component) const {
  std::vector<LogRecord> out;
  std::copy_if(
      records_.begin(), records_.end(), std::back_inserter(out),
      [component](const LogRecord& r) { return r.component == component; });
  return out;
}

std::size_t Logger::count_containing(std::string_view needle) const {
  return static_cast<std::size_t>(std::count_if(
      records_.begin(), records_.end(), [needle](const LogRecord& r) {
        return r.message.find(needle) != std::string::npos;
      }));
}

void Logger::merge(const Logger& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
  std::stable_sort(records_.begin(), records_.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.time < b.time;
                   });
}

std::string Logger::render() const {
  std::ostringstream os;
  for (const LogRecord& r : records_) {
    os << "t=" << to_seconds(r.time) << "s " << to_string(r.level) << " ["
       << r.component << "] " << r.message << '\n';
  }
  return os.str();
}

}  // namespace patchwork::util
