#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

namespace patchwork::util {

namespace {

std::atomic<std::uint64_t> g_dropped_total{0};

// Live-sink state. Loggers live on many threads (one per site in the
// parallel render path), so the sink is guarded by one global mutex — the
// live mirror is an operator convenience, not a hot path.
struct LiveSinkState {
  std::mutex mutex;
  bool resolved = false;  ///< Env consulted / set_live_sink() called.
  std::optional<LiveSinkSpec> spec;
  std::ofstream file;     ///< Open iff spec && !spec->path.empty().
};

LiveSinkState& live_sink_state() {
  static LiveSinkState* state = new LiveSinkState();  // Leaked: see obs.
  return *state;
}

void open_sink_file_locked(LiveSinkState& state) {
  state.file = std::ofstream();
  if (state.spec && !state.spec->path.empty()) {
    state.file.open(state.spec->path, std::ios::app);
    if (!state.file) state.spec->path.clear();  // Fall back to stderr.
  }
}

void live_emit(Nanos time, LogLevel level, std::string_view component,
               std::string_view message) {
  LiveSinkState& state = live_sink_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.resolved) {
    state.resolved = true;
    if (const char* env = std::getenv("PATCHWORK_LOG")) {
      state.spec = parse_live_sink_spec(env);
      open_sink_file_locked(state);
    }
  }
  if (!state.spec || level < state.spec->min_level) return;
  std::ostream& out = state.spec->path.empty()
                          ? static_cast<std::ostream&>(std::cerr)
                          : state.file;
  out << "t=" << to_seconds(time) << "s " << to_string(level) << " ["
      << component << "] " << message << '\n';
  out.flush();
}

}  // namespace

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

std::optional<LiveSinkSpec> parse_live_sink_spec(std::string_view spec) {
  LiveSinkSpec out;
  const std::size_t colon = spec.find(':');
  const std::string_view level_text =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  const std::optional<LogLevel> level = parse_log_level(level_text);
  if (!level) return std::nullopt;
  out.min_level = *level;
  if (colon != std::string_view::npos) {
    out.path = std::string(spec.substr(colon + 1));
  }
  return out;
}

void set_live_sink(std::optional<LiveSinkSpec> spec) {
  LiveSinkState& state = live_sink_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.resolved = true;
  state.spec = std::move(spec);
  open_sink_file_locked(state);
}

std::uint64_t logger_dropped_total() {
  return g_dropped_total.load(std::memory_order_relaxed);
}

void Logger::log(Nanos time, LogLevel level, std::string_view component,
                 std::string_view message) {
  if (level < min_level_) return;
  live_emit(time, level, component, message);
  records_.push_back(LogRecord{time, level, std::string(component),
                               std::string(message)});
  if (capacity_ != 0 && records_.size() > capacity_) {
    // Evict oldest-first. The eviction count depends only on this logger's
    // own record sequence, so the process-wide total stays deterministic.
    const std::size_t excess = records_.size() - capacity_;
    records_.erase(records_.begin(),
                   records_.begin() + static_cast<std::ptrdiff_t>(excess));
    dropped_ += excess;
    g_dropped_total.fetch_add(excess, std::memory_order_relaxed);
  }
}

std::vector<LogRecord> Logger::at_least(LogLevel level) const {
  std::vector<LogRecord> out;
  std::copy_if(records_.begin(), records_.end(), std::back_inserter(out),
               [level](const LogRecord& r) { return r.level >= level; });
  return out;
}

std::vector<LogRecord> Logger::for_component(
    std::string_view component) const {
  std::vector<LogRecord> out;
  std::copy_if(
      records_.begin(), records_.end(), std::back_inserter(out),
      [component](const LogRecord& r) { return r.component == component; });
  return out;
}

std::size_t Logger::count_containing(std::string_view needle) const {
  return static_cast<std::size_t>(std::count_if(
      records_.begin(), records_.end(), [needle](const LogRecord& r) {
        return r.message.find(needle) != std::string::npos;
      }));
}

void Logger::merge(const Logger& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
  std::stable_sort(records_.begin(), records_.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.time < b.time;
                   });
}

std::string Logger::render() const {
  std::ostringstream os;
  for (const LogRecord& r : records_) {
    os << "t=" << to_seconds(r.time) << "s " << to_string(r.level) << " ["
       << r.component << "] " << r.message << '\n';
  }
  return os.str();
}

}  // namespace patchwork::util
