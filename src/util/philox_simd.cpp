#include "util/philox_simd.hpp"

#include <array>
#include <atomic>
#include <cstdlib>

#include "util/philox.hpp"
#include "util/philox_simd_kernels.hpp"

namespace patchwork::util {

namespace {

using BlocksFn = void (*)(std::uint64_t, std::uint64_t, std::size_t,
                          std::uint64_t*);

BlocksFn kernel_for(SimdTier tier) {
  switch (tier) {
#if defined(PATCHWORK_HAVE_AVX2)
    case SimdTier::kAvx2:
      return philox_blocks_avx2;
#endif
#if defined(PATCHWORK_HAVE_SSE42)
    case SimdTier::kSse4:
      return philox_blocks_sse42;
#endif
    default:
      return philox_blocks_scalar;
  }
}

/// CPU probe, evaluated once. Tiers the build did not compile are never
/// offered even if the CPU could run them.
SimdTier probe_best_tier() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#if defined(PATCHWORK_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
#if defined(PATCHWORK_HAVE_SSE42)
  if (__builtin_cpu_supports("sse4.2")) return SimdTier::kSse4;
#endif
#endif
  return SimdTier::kScalar;
}

constexpr std::uint8_t kUnresolved = 0xff;

/// Active tier, or kUnresolved before the first simd_bulk()/simd_tier()
/// call (and after reset_simd_tier()). Atomic so tests can flip tiers while
/// pool workers draw: any racing call dispatches to one tier or the other,
/// both of which produce identical bytes.
std::atomic<std::uint8_t> g_active{kUnresolved};

SimdTier resolve_from_env() {
  if (const char* env = std::getenv("PATCHWORK_SIMD")) {
    if (std::optional<SimdTier> tier = parse_simd_tier(env);
        tier && simd_tier_supported(*tier)) {
      return *tier;
    }
  }
  return best_simd_tier();
}

}  // namespace

std::string_view to_string(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSse4: return "sse4";
    case SimdTier::kAvx2: return "avx2";
  }
  return "scalar";
}

std::optional<SimdTier> parse_simd_tier(std::string_view name) {
  if (name == "scalar") return SimdTier::kScalar;
  if (name == "sse4" || name == "sse4.2" || name == "sse42") {
    return SimdTier::kSse4;
  }
  if (name == "avx2") return SimdTier::kAvx2;
  return std::nullopt;
}

SimdTier best_simd_tier() {
  static const SimdTier best = probe_best_tier();
  return best;
}

bool simd_tier_supported(SimdTier tier) {
  return static_cast<std::uint8_t>(tier) <=
         static_cast<std::uint8_t>(best_simd_tier());
}

SimdTier simd_tier() {
  std::uint8_t active = g_active.load(std::memory_order_relaxed);
  if (active == kUnresolved) {
    // First call (or post-reset): resolve env/auto. compare_exchange so a
    // concurrent set_simd_tier() is not clobbered.
    const std::uint8_t resolved =
        static_cast<std::uint8_t>(resolve_from_env());
    if (g_active.compare_exchange_strong(active, resolved,
                                         std::memory_order_relaxed)) {
      active = resolved;
    }
  }
  return static_cast<SimdTier>(active);
}

bool set_simd_tier(SimdTier tier) {
  if (!simd_tier_supported(tier)) return false;
  g_active.store(static_cast<std::uint8_t>(tier), std::memory_order_relaxed);
  return true;
}

void reset_simd_tier() {
  g_active.store(kUnresolved, std::memory_order_relaxed);
}

void philox_blocks_scalar(std::uint64_t key, std::uint64_t b0,
                          std::size_t nblocks, std::uint64_t* out) {
  const std::array<std::uint32_t, 2> k{static_cast<std::uint32_t>(key),
                                       static_cast<std::uint32_t>(key >> 32)};
  auto one = [&](std::uint64_t b, std::uint64_t* two) {
    const std::array<std::uint32_t, 4> o = philox4x32_10(
        {static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(b >> 32), 0,
         0},
        k);
    two[0] = o[0] | (static_cast<std::uint64_t>(o[1]) << 32);
    two[1] = o[2] | (static_cast<std::uint64_t>(o[3]) << 32);
  };
  // Four independent blocks per step: enough ILP for the multiplier
  // pipeline, and the shape auto-vectorizers recognize.
  std::size_t i = 0;
  for (; i + 4 <= nblocks; i += 4) {
    one(b0 + i, out + 2 * i);
    one(b0 + i + 1, out + 2 * i + 2);
    one(b0 + i + 2, out + 2 * i + 4);
    one(b0 + i + 3, out + 2 * i + 6);
  }
  for (; i < nblocks; ++i) one(b0 + i, out + 2 * i);
}

void philox_bulk(std::uint64_t key, std::uint64_t j0, std::size_t n,
                 std::uint64_t* out) {
  if (n == 0) return;
  const BlocksFn blocks = kernel_for(simd_tier());
  std::size_t i = 0;
  // Odd head: draw j0 is word 1 of its block; compute the pair, keep one.
  if ((j0 & 1) != 0) {
    std::uint64_t pair[2];
    blocks(key, j0 >> 1, 1, pair);
    out[0] = pair[1];
    i = 1;
  }
  // Aligned middle: whole blocks land straight in the output buffer.
  const std::size_t pairs = (n - i) / 2;
  if (pairs > 0) blocks(key, (j0 + i) >> 1, pairs, out + i);
  i += 2 * pairs;
  // Odd tail: one draw left, word 0 of the next block.
  if (i < n) {
    std::uint64_t pair[2];
    blocks(key, (j0 + i) >> 1, 1, pair);
    out[i] = pair[0];
  }
}

}  // namespace patchwork::util
