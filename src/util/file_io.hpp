// Bounded, explicit file IO for artifact writers (archive, metrics
// snapshots).
//
// Two rules:
//   1. Reads are bounded: callers state the largest file they are prepared
//      to hold, so a corrupt length field or a runaway artifact cannot
//      balloon memory.
//   2. Visible writes are atomic: write_file_atomic renders into a
//      temporary sibling and renames it over the target, so a reader never
//      observes a half-written snapshot.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace patchwork::util {

/// Read a whole file. Returns nullopt when the file cannot be opened or is
/// larger than `max_bytes` (a bound, not a truncation: oversized files are
/// rejected outright so a corrupt artifact fails loudly).
std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path, std::uint64_t max_bytes);

/// Write `bytes` to `path` via a temporary sibling + rename. Returns false
/// on any IO failure; the target is either fully replaced or untouched.
bool write_file_atomic(const std::string& path, std::string_view bytes);
bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Append `bytes` to `path` (creating it if absent). Returns false on IO
/// failure. Not atomic — the archive writer layers its own checksummed
/// framing with truncation recovery on top.
bool append_file(const std::string& path, std::span<const std::uint8_t> bytes);

/// Size of `path` in bytes, or nullopt if it cannot be stat'ed.
std::optional<std::uint64_t> file_size_bytes(const std::string& path);

/// Last-modification time of `path` in nanoseconds since the filesystem
/// clock's epoch, or nullopt if it cannot be stat'ed. Only meaningful for
/// comparing against earlier readings of the same path (cache validation);
/// the epoch is unspecified across platforms.
std::optional<std::uint64_t> file_mtime_nanos(const std::string& path);

/// Shrink `path` to exactly `new_size` bytes (the archive's corrupt-tail
/// recovery). Returns false on failure or if the file is smaller already.
bool truncate_file(const std::string& path, std::uint64_t new_size);

}  // namespace patchwork::util
