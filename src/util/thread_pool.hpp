// A small fixed-size thread pool — the concurrency substrate for the
// offline analysis pipeline (Fig. 9: Digest -> Index -> Analyze -> Process)
// and any future subsystem that wants multi-core fan-out.
//
// Design rules, in priority order:
//   1. Determinism first. The pool never reorders *results*: callers own
//      output slots indexed by task, so byte-identical output falls out of
//      the structure regardless of worker interleaving.
//   2. Serial fallback. A pool of size 0 runs every task inline on the
//      submitting thread — the same code path tests pin to compare parallel
//      output against, and the mode `PATCHWORK_THREADS=0` selects.
//   3. Exceptions propagate. A task that throws surfaces its exception to
//      the caller through the returned future, never to std::terminate.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace patchwork::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 workers means submit() runs tasks inline.
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers; outstanding queued tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task. The future completes when the task returns and
  /// carries any exception the task threw.
  std::future<void> submit(std::function<void()> task);

  /// True when called from inside one of this pool's workers.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Worker-thread count the parallel primitives use:
/// explicit set_thread_count() override, else the `PATCHWORK_THREADS`
/// environment variable, else std::thread::hardware_concurrency().
/// 0 means "run serially on the calling thread".
std::size_t thread_count();

/// Override the thread count (tests and benches pin 0/1/2/8 with this).
/// std::nullopt restores env/hardware resolution.
void set_thread_count(std::optional<std::size_t> n);

}  // namespace patchwork::util
