// A small thread pool — the concurrency substrate for the offline
// analysis pipeline (Fig. 9: Digest -> Index -> Analyze -> Process), the
// online per-site profiling path, and any future subsystem that wants
// multi-core fan-out.
//
// Design rules, in priority order:
//   1. Determinism first. The pool never reorders *results*: callers own
//      output slots indexed by task, so byte-identical output falls out of
//      the structure regardless of worker interleaving.
//   2. Serial fallback. A pool of size 0 runs every task inline on the
//      submitting thread — the same code path tests pin to compare parallel
//      output against, and the mode `PATCHWORK_THREADS=0` selects.
//   3. Exceptions propagate. A task that throws surfaces its exception to
//      the caller through the returned future, never to std::terminate.
//
// Lifecycle: the parallel primitives (util/parallel.hpp) no longer build a
// pool per call. They route through shared_pool(), a lazily-initialized
// process-lifetime pool that grows on demand (workers are spawned once and
// reused; the pool never shrinks). Per-call pools remain constructible for
// tests and special cases.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace patchwork::util {

/// Scheduling telemetry folded from a pool's internal counters. All values
/// are schedule-dependent (wall-clock class in obs terms) except that
/// queue_depth_high_water is guaranteed >= 1 whenever any task was queued
/// behind a worker — it is sampled at enqueue time, after the increment.
struct PoolStats {
  std::uint64_t tasks_submitted = 0;  ///< submit()+spawn() calls (inline too).
  std::uint64_t tasks_executed = 0;
  std::uint64_t queue_depth = 0;      ///< Currently enqueued, not yet started.
  std::uint64_t queue_depth_high_water = 0;
  std::uint64_t task_wait_ns_total = 0;  ///< Enqueue -> dequeue, summed.
  std::uint64_t task_run_ns_total = 0;   ///< Task body execution, summed.
  std::uint64_t tasks_stolen = 0;  ///< Group tasks taken off another
                                   ///< worker's deque (or by a waiter).
};

class ThreadPool;

/// A family of subtasks scheduled on a ThreadPool's work-stealing path.
/// spawn() pushes a task onto a per-worker deque (LIFO for the owner, FIFO
/// for thieves); wait() blocks until every spawned task has finished,
/// *helping* while it waits — the waiting thread runs tasks of this group
/// itself instead of idling, so a hot sample that fans out into many
/// bursts never parks the thread that decomposed it.
///
/// Determinism contract: the group imposes no ordering — callers must
/// address output slots (and RNG draws) by task index, exactly as with
/// parallel_for. Exceptions: the first throwing task wins; wait()
/// rethrows it after the group drains. A group is reusable after wait()
/// returns. Groups may nest (a group task may spawn and wait on its own
/// group); a waiting thread only helps with tasks of the group it waits
/// on, which keeps helper recursion bounded by the spawn tree's depth.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  /// Drains (and swallows) any still-pending tasks — a group must not
  /// outlive work referencing it.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue one task. Runs inline when the pool has no workers.
  void spawn(std::function<void()> task);

  /// Help until every spawned task completed; rethrows the first captured
  /// exception.
  void wait();

 private:
  friend class ThreadPool;
  ThreadPool& pool_;
  std::atomic<std::uint64_t> pending_{0};
  std::exception_ptr first_error_;  ///< Guarded by the pool's mutex.
};

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 workers means submit() runs tasks inline.
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers; outstanding queued tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const;

  /// Grow the pool to at least `threads` workers. Existing workers keep
  /// running (and keep their thread IDs); only the shortfall is spawned.
  /// Never shrinks. Safe to call concurrently with submit().
  void ensure_size(std::size_t threads);

  /// Enqueue one task. The future completes when the task returns and
  /// carries any exception the task threw. When the pool has no workers
  /// the task runs inline on the calling thread.
  std::future<void> submit(std::function<void()> task);

  /// True when called from inside one of this pool's workers.
  static bool on_worker_thread();

  /// Work-stealing spawn used by TaskGroup::spawn(). A worker pushes onto
  /// its own deque (LIFO pop keeps the cache warm and bounds helper
  /// recursion); an outside thread deals round-robin across worker deques.
  /// Idle workers and helping waiters steal from the front (FIFO), so the
  /// oldest — typically largest — subtask migrates first.
  void spawn(TaskGroup& group, std::function<void()> task);

  /// TaskGroup::wait() body: run/steal tasks of `group` until none remain
  /// in flight, sleeping only when no group task is available anywhere.
  void wait(TaskGroup& group);

  /// Snapshot of the scheduling counters (relaxed reads; exact once the
  /// pool is quiescent).
  PoolStats stats() const;

  /// Zero every stats counter (including the high-water mark). Telemetry
  /// resets between runs go through here because max-folded marks cannot be
  /// re-baselined by subtraction.
  void reset_stats();

 private:
  struct QueuedTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct GroupTask {
    TaskGroup* group = nullptr;
    std::function<void()> fn;
  };

  void run_task(std::packaged_task<void()>& task);
  void run_group_task(GroupTask& task);
  /// Pop from the caller's own deque (back, any group) or steal from
  /// another deque (front; restricted to `only` when non-null). Caller
  /// must hold mutex_. `self` is the worker index or kNoWorker. Sets
  /// `stole` when the task came off another worker's deque; the caller
  /// reports it to the steal observer only after dropping mutex_ (the
  /// observer may take unrelated locks — calling it under the pool mutex
  /// would order pool-before-observer against exposition paths that
  /// sample pool stats while holding their own locks).
  bool take_group_task_locked(std::size_t self, const TaskGroup* only,
                              GroupTask& out, bool& stole);
  void note_queue_depth_locked();
  void worker_loop(std::size_t index);

  static constexpr std::size_t kNoWorker = ~std::size_t{0};

  mutable std::mutex mutex_;
  std::condition_variable cv_;        ///< Workers: any task available/stop.
  std::condition_variable group_cv_;  ///< Waiters: group progress/spawn.
  std::deque<QueuedTask> queue_;
  /// Per-worker group-task deques (parallel to workers_); guarded by
  /// mutex_ — group tasks are burst-sized, so the lock is cold next to
  /// the task bodies.
  std::vector<std::deque<GroupTask>> deques_;
  std::size_t group_tasks_queued_ = 0;  ///< Sum over deques_; under mutex_.
  std::size_t next_deque_ = 0;          ///< Round-robin cursor for spawns
                                        ///< from non-worker threads.
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> tasks_submitted_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> queue_depth_high_water_{0};
  std::atomic<std::uint64_t> task_wait_ns_total_{0};
  std::atomic<std::uint64_t> task_run_ns_total_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
};

/// Observer invoked on the thief thread, after the pool mutex is
/// released, each time a group task migrates off another worker's deque.
/// The obs trace layer installs one to surface steals on the
/// flight-recorder timeline; pass nullptr to clear. The hook is a bare
/// function pointer read with one relaxed load on the steal path —
/// uninstalled, the cost is that load.
using TaskStealObserver = void (*)();
void set_task_steal_observer(TaskStealObserver observer);

/// The process-lifetime pool the parallel primitives fan out on. Created
/// empty on first use and grown on demand by parallel_for(); workers
/// persist until process exit, so a hot loop calling parallel_for at high
/// frequency pays no per-call thread churn.
ThreadPool& shared_pool();

/// Depth of parallel_for() regions the calling thread is currently inside
/// (on either a pool worker or a caller thread participating in its own
/// region). Nested parallel_for calls see depth > 0 and degrade to serial
/// instead of re-entering the shared pool.
std::size_t parallel_region_depth();

namespace detail {
/// RAII marker for one parallel_for region on the current thread.
struct ParallelRegionScope {
  ParallelRegionScope();
  ~ParallelRegionScope();
};
}  // namespace detail

/// Worker-thread count the parallel primitives use:
/// explicit set_thread_count() override, else the `PATCHWORK_THREADS`
/// environment variable, else std::thread::hardware_concurrency().
/// 0 means "run serially on the calling thread".
std::size_t thread_count();

/// Override the thread count (tests and benches pin 0/1/2/8 with this).
/// std::nullopt restores env/hardware resolution.
void set_thread_count(std::optional<std::size_t> n);

}  // namespace patchwork::util
