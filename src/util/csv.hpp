// CSV emission for the Process step of the analysis pipeline (Section 6.2.4
// of the paper: "the Process step produces CSV files that describe different
// aspects of the profile").
//
// CsvWriter targets any std::ostream so tests can write to a stringstream
// and benches to stdout or files.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace patchwork::util {

class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> columns);

  /// Begin a new row; values are appended with add().
  CsvWriter& begin_row();
  CsvWriter& add(std::string_view value);
  CsvWriter& add(double value);
  CsvWriter& add(std::uint64_t value);
  CsvWriter& add(std::int64_t value);
  /// Flush the current row; asserts the column count matches the header.
  void end_row();

  /// Convenience: a full row of string cells in one call.
  void row(std::initializer_list<std::string_view> values);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::vector<std::string> current_;
  std::size_t rows_ = 0;
};

/// Quote a CSV field if it contains a comma, quote, or newline.
std::string csv_escape(std::string_view field);

}  // namespace patchwork::util
