// AVX2 Philox4x32-10 kernel: 4 blocks per register, 8 per step.
//
// Lane layout: each 256-bit register holds FOUR blocks, one per 64-bit
// lane, with the live 32-bit counter/key word in the lane's low half and
// zeros above. That costs half the register, but it buys exact arithmetic
// for free: _mm256_mul_epu32 multiplies the low 32 bits of each 64-bit
// lane into a full 64-bit product — precisely the 32x32->64 multiply at
// the heart of a Philox round — so hi/lo extraction is a shift and a mask,
// never a cross-lane shuffle. Counter-to-lane mapping is block b+lane for
// lanes 0..3; lane indices are materialized by a 64-bit add, so the
// 2^32 carry in the split {lo32, hi32} counter happens per-lane before the
// words are ever split. The main loop runs two 4-block groups per
// iteration (8 independent counters) to cover the multiplier latency.
//
// This TU is compiled with a per-file -mavx2 (see src/util/CMakeLists.txt)
// and only ever entered through runtime dispatch, so building it does not
// raise the binary's baseline ISA.
#include "util/philox_simd_kernels.hpp"

#if defined(PATCHWORK_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace patchwork::util {

namespace {

constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;

struct Group4 {
  __m256i c0, c1, c2, c3;  // Four blocks' counter words, one per u64 lane.
};

inline Group4 load_counters(std::uint64_t b0, __m256i mask32) {
  // Full 64-bit block indices per lane; the add carries into the high
  // word, which then becomes counter word 1 — the scalar {lo32(b),
  // hi32(b)} split, vectorized.
  const __m256i b = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(b0)),
      _mm256_set_epi64x(3, 2, 1, 0));
  return Group4{_mm256_and_si256(b, mask32), _mm256_srli_epi64(b, 32),
                _mm256_setzero_si256(), _mm256_setzero_si256()};
}

inline void round4(Group4& g, __m256i k0, __m256i k1, __m256i mul0,
                   __m256i mul1, __m256i mask32) {
  const __m256i p0 = _mm256_mul_epu32(g.c0, mul0);
  const __m256i p1 = _mm256_mul_epu32(g.c2, mul1);
  const __m256i c0 = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_srli_epi64(p1, 32), g.c1), k0);
  const __m256i c1 = _mm256_and_si256(p1, mask32);
  const __m256i c2 = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_srli_epi64(p0, 32), g.c3), k1);
  const __m256i c3 = _mm256_and_si256(p0, mask32);
  g = Group4{c0, c1, c2, c3};
}

inline void store_words(const Group4& g, std::uint64_t* out) {
  // Word 0 of a block is out0|out1<<32, word 1 is out2|out3<<32; the
  // output buffer wants them interleaved per block.
  const __m256i w0 = _mm256_or_si256(g.c0, _mm256_slli_epi64(g.c1, 32));
  const __m256i w1 = _mm256_or_si256(g.c2, _mm256_slli_epi64(g.c3, 32));
  const __m256i lo = _mm256_unpacklo_epi64(w0, w1);  // {b0w0,b0w1,b2w0,b2w1}
  const __m256i hi = _mm256_unpackhi_epi64(w0, w1);  // {b1w0,b1w1,b3w0,b3w1}
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                      _mm256_permute2x128_si256(lo, hi, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4),
                      _mm256_permute2x128_si256(lo, hi, 0x31));
}

}  // namespace

void philox_blocks_avx2(std::uint64_t key, std::uint64_t b0,
                        std::size_t nblocks, std::uint64_t* out) {
  const __m256i mask32 = _mm256_set1_epi64x(0xffffffffll);
  const __m256i mul0 = _mm256_set1_epi64x(kMul0);
  const __m256i mul1 = _mm256_set1_epi64x(kMul1);
  // Weyl increments live in the low dword of each lane; _mm256_add_epi32
  // wraps them mod 2^32 in place while the zeroed high dwords stay zero.
  const __m256i weyl0 = _mm256_set1_epi64x(kWeyl0);
  const __m256i weyl1 = _mm256_set1_epi64x(kWeyl1);
  const __m256i key0 =
      _mm256_set1_epi64x(static_cast<std::uint32_t>(key));
  const __m256i key1 =
      _mm256_set1_epi64x(static_cast<std::uint32_t>(key >> 32));

  std::size_t i = 0;
  for (; i + 8 <= nblocks; i += 8) {
    // Two interleaved groups: 8 independent counters per step.
    Group4 a = load_counters(b0 + i, mask32);
    Group4 b = load_counters(b0 + i + 4, mask32);
    __m256i k0 = key0, k1 = key1;
    for (int round = 0; round < 10; ++round) {
      if (round > 0) {
        k0 = _mm256_add_epi32(k0, weyl0);
        k1 = _mm256_add_epi32(k1, weyl1);
      }
      round4(a, k0, k1, mul0, mul1, mask32);
      round4(b, k0, k1, mul0, mul1, mask32);
    }
    store_words(a, out + 2 * i);
    store_words(b, out + 2 * i + 8);
  }
  for (; i + 4 <= nblocks; i += 4) {
    Group4 a = load_counters(b0 + i, mask32);
    __m256i k0 = key0, k1 = key1;
    for (int round = 0; round < 10; ++round) {
      if (round > 0) {
        k0 = _mm256_add_epi32(k0, weyl0);
        k1 = _mm256_add_epi32(k1, weyl1);
      }
      round4(a, k0, k1, mul0, mul1, mask32);
    }
    store_words(a, out + 2 * i);
  }
  if (i < nblocks) philox_blocks_scalar(key, b0 + i, nblocks - i, out + 2 * i);
}

}  // namespace patchwork::util

#endif  // PATCHWORK_HAVE_AVX2 && __AVX2__
