#include "util/file_io.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace patchwork::util {

std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path, std::uint64_t max_bytes) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamoff size = in.tellg();
  if (size < 0 || static_cast<std::uint64_t>(size) > max_bytes) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  if (!bytes.empty() &&
      !in.read(reinterpret_cast<char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()))) {
    return std::nullopt;
  }
  return bytes;
}

namespace {

bool write_atomic_impl(const std::string& path, const char* data,
                       std::size_t size) {
  // A per-path temporary name keeps concurrent writers of *different*
  // targets apart; concurrent writers of the same target race benignly
  // (rename is atomic, last writer wins with a complete file).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(data, static_cast<std::streamsize>(size));
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view bytes) {
  return write_atomic_impl(path, bytes.data(), bytes.size());
}

bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  return write_atomic_impl(
      path, reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

bool append_file(const std::string& path,
                 std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<std::uint64_t> file_size_bytes(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  return static_cast<std::uint64_t>(size);
}

std::optional<std::uint64_t> file_mtime_nanos(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return std::nullopt;
  const auto since_epoch =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch());
  return static_cast<std::uint64_t>(since_epoch.count());
}

bool truncate_file(const std::string& path, std::uint64_t new_size) {
  const auto current = file_size_bytes(path);
  if (!current || *current < new_size) return false;
  std::error_code ec;
  std::filesystem::resize_file(path, new_size, ec);
  return !ec;
}

}  // namespace patchwork::util
