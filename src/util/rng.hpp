// Deterministic random number generation.
//
// Every stochastic component in the repository draws from a util::Rng that
// is seeded explicitly, so experiments and tests are reproducible
// run-to-run. Rng also provides the small set of distributions the traffic
// and testbed models need (heavy tails included), and `fork()` for handing
// independent streams to sub-components without sharing state.
//
// The engine underneath is counter-based (Philox4x32-10, util/philox.hpp):
// the j-th draw of a stream is a pure O(1) function of (stream seed, j).
// That gives the data plane two primitives beyond sequential drawing:
//   * Rng::at(j) — random access into this stream's raw draw sequence;
//   * RngBlock — a const, shareable view of a stream that subtasks index
//     by counter, so a sample's render can split into bursts whose bytes
//     are independent of scheduling.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "util/philox.hpp"

namespace patchwork::util {

class RngBlock;

/// Prepared cumulative-weight table for repeated weighted_index() draws
/// from the same weights: build once (O(n)), draw O(log n). The table
/// path picks bit-identical indices to the one-shot
/// Rng::weighted_index(weights) — both compare the same uniform draw
/// against the same sequentially-summed prefixes.
class WeightedTable {
 public:
  /// `weights`: unnormalized, non-negative, at least one positive entry.
  explicit WeightedTable(std::span<const double> weights);

  std::size_t size() const { return cumulative_.size(); }
  double total() const { return cumulative_.empty() ? 0.0 : cumulative_.back(); }

 private:
  friend class Rng;
  std::vector<double> cumulative_;  ///< Sequential prefix sums of weights.
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Derive an independent generator; the child stream does not perturb the
  /// parent beyond the single draw used to seed it.
  Rng fork() { return Rng(engine_()); }

  /// Derive the `stream_id`-th child stream of this generator's *seed*.
  /// Unlike fork(), split() consumes nothing from the parent: it depends
  /// only on the construction seed and the stream id, so existing
  /// single-stream draw sequences are unchanged by adding split() calls,
  /// and split(id) yields the same child no matter when (or from which
  /// thread ordering) it is invoked. Distinct stream ids give streams that
  /// are independent for practical purposes (seeds are mixed through
  /// SplitMix64 into distinct Philox keys).
  Rng split(std::uint64_t stream_id) const;

  /// Two-level substream: split(a, b) == split(a).split(b), without
  /// materializing the intermediate generator. The coordinator addresses
  /// per-sample render streams as split(site_id, sample_index), so the
  /// bytes of sample k at site s depend only on (run seed, s, k) — never
  /// on which worker renders them or in what order.
  Rng split(std::uint64_t stream_id, std::uint64_t substream_id) const;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Normal distribution (mean, stddev).
  double normal(double mean, double stddev);

  /// Log-normal distribution parameterized by the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential distribution with the given mean (not rate).
  double exponential(double mean);

  /// Bounded Pareto: heavy-tailed draw in [lo, hi] with shape alpha.
  /// Used for flow sizes and slice durations, both of which the paper
  /// reports as heavy-tailed.
  double pareto(double lo, double hi, double alpha);

  /// Poisson distribution with the given mean.
  std::uint64_t poisson(double mean);

  /// Index drawn from a discrete distribution given by `weights`
  /// (unnormalized, non-negative, at least one positive entry). O(n);
  /// repeat callers should prepare a WeightedTable instead.
  std::size_t weighted_index(std::span<const double> weights);

  /// O(log n) draw from a prepared table; picks the same index the
  /// one-shot overload would for the same engine state and weights.
  std::size_t weighted_index(const WeightedTable& table);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Raw 64 random bits (sequential).
  std::uint64_t bits() { return engine_(); }

  /// The j-th raw draw of this stream, counted from construction — the
  /// value the j-th bits() call returns (distribution helpers may consume
  /// several raw draws each). O(1); ignores and preserves the sequential
  /// position.
  std::uint64_t at(std::uint64_t j) const { return engine_.at(j); }

 private:
  friend class RngBlock;
  std::uint64_t seed_;  ///< Construction seed; the root of split() streams.
  PhiloxEngine engine_;
};

/// Counter-addressed const view of an Rng's stream. Subtasks rendering
/// disjoint index ranges of one logical sequence share a single RngBlock
/// (it is immutable and thread-safe) and address draws by position, so the
/// value consumed for item j is a pure function of (stream, j) — never of
/// how the items were batched or scheduled.
class RngBlock {
 public:
  explicit RngBlock(const Rng& rng) : engine_(rng.seed_) {}

  /// Raw draw j of the stream.
  std::uint64_t at(std::uint64_t j) const { return engine_.at(j); }

  /// Draw j mapped to [0, 1) with 53 random bits.
  double uniform01_at(std::uint64_t j) const {
    return static_cast<double>(at(j) >> 11) * 0x1.0p-53;
  }

  /// Draw j mapped to the inclusive range [lo, hi] (Lemire reduction).
  /// Requires lo <= hi.
  std::uint64_t bounded_at(std::uint64_t j, std::uint64_t lo,
                           std::uint64_t hi) const;

  /// Bernoulli trial with probability p, decided by draw j.
  bool chance_at(std::uint64_t j, double p) const {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01_at(j) < p;
  }

  // Bulk draws: fill a buffer with a contiguous counter range in one pass
  // through the vectorized Philox kernels (util/philox_simd.hpp). Each
  // fill is draw-for-draw identical to its *_at counterpart — out[i] is
  // exactly what the scalar call with counter j0+i returns, on every ISA
  // tier — so batched consumers can switch freely between the forms.

  /// out[i] = at(j0 + i).
  void raw_fill(std::uint64_t j0, std::span<std::uint64_t> out) const;

  /// out[i] = uniform01_at(j0 + i).
  void uniform01_fill(std::uint64_t j0, std::span<double> out) const;

  /// out[i] = bounded_at(j0 + i, lo, hi). Same 128-bit Lemire reduction,
  /// applied lane-by-lane to the bulk raw draws; the reduction is
  /// rejection-free, so the bulk path never consumes extra draws and
  /// cannot drift from the scalar one mid-buffer.
  void bounded_fill(std::uint64_t j0, std::uint64_t lo, std::uint64_t hi,
                    std::span<std::uint64_t> out) const;

  /// out[i] = chance_at(j0 + i, p) as 0/1.
  void chance_fill(std::uint64_t j0, double p,
                   std::span<std::uint8_t> out) const;

 private:
  PhiloxEngine engine_;  ///< Never advanced; used only through at().
};

}  // namespace patchwork::util
