// Deterministic random number generation.
//
// Every stochastic component in the repository draws from a util::Rng that
// is seeded explicitly, so experiments and tests are reproducible
// run-to-run. Rng also provides the small set of distributions the traffic
// and testbed models need (heavy tails included), and `fork()` for handing
// independent streams to sub-components without sharing state.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace patchwork::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Derive an independent generator; the child stream does not perturb the
  /// parent beyond the single draw used to seed it.
  Rng fork() { return Rng(engine_()); }

  /// Derive the `stream_id`-th child stream of this generator's *seed*.
  /// Unlike fork(), split() consumes nothing from the parent: it depends
  /// only on the construction seed and the stream id, so existing
  /// single-stream draw sequences are unchanged by adding split() calls,
  /// and split(id) yields the same child no matter when (or from which
  /// thread ordering) it is invoked. Distinct stream ids give streams that
  /// are independent for practical purposes (seeds are mixed through
  /// SplitMix64, the recommended seeder for mt19937_64).
  Rng split(std::uint64_t stream_id) const;

  /// Two-level substream: split(a, b) == split(a).split(b), without
  /// materializing the intermediate generator. The coordinator addresses
  /// per-sample render streams as split(site_id, sample_index), so the
  /// bytes of sample k at site s depend only on (run seed, s, k) — never
  /// on which worker renders them or in what order.
  Rng split(std::uint64_t stream_id, std::uint64_t substream_id) const;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Normal distribution (mean, stddev).
  double normal(double mean, double stddev);

  /// Log-normal distribution parameterized by the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential distribution with the given mean (not rate).
  double exponential(double mean);

  /// Bounded Pareto: heavy-tailed draw in [lo, hi] with shape alpha.
  /// Used for flow sizes and slice durations, both of which the paper
  /// reports as heavy-tailed.
  double pareto(double lo, double hi, double alpha);

  /// Poisson distribution with the given mean.
  std::uint64_t poisson(double mean);

  /// Index drawn from a discrete distribution given by `weights`
  /// (unnormalized, non-negative, at least one positive entry).
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Raw 64 random bits.
  std::uint64_t bits() { return engine_(); }

 private:
  std::uint64_t seed_;  ///< Construction seed; the root of split() streams.
  std::mt19937_64 engine_;
};

}  // namespace patchwork::util
