// parallel_for / parallel_map on top of the shared process-lifetime
// ThreadPool.
//
// Both primitives are *deterministic by construction*: every index writes
// only its own output slot, so results are identical to the serial loop for
// any thread count. Work is handed out through an atomic cursor (dynamic
// scheduling) — cheap tasks don't idle workers behind an expensive one, and
// because results land by index, the schedule never shows in the output.
//
// No pool is constructed per call: strands are submitted to shared_pool(),
// which spawns its workers once and reuses them for the life of the
// process. The calling thread always runs one strand itself, so a call
// makes progress even when every shared worker is busy serving another
// concurrent parallel_for.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <future>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace patchwork::util {

/// Invoke fn(i) for every i in [0, n), fanned out over `threads` strands
/// (default: thread_count()), one of which runs on the calling thread.
/// Blocks until all indices complete. The first exception thrown by any
/// fn(i) is rethrown on the calling thread.
/// Runs serially when threads <= 1, n <= 1, or when already inside a
/// parallel region — on a pool worker or in a caller-side strand — so
/// nested parallelism degrades instead of deadlocking.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t threads = thread_count()) {
  if (n == 0) return;
  if (threads <= 1 || n == 1 || ThreadPool::on_worker_thread() ||
      parallel_region_depth() > 0) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t strands = threads < n ? threads : n;
  std::atomic<std::size_t> cursor{0};
  auto run_strand = [&cursor, n, &fn] {
    detail::ParallelRegionScope region;
    for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < n; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  ThreadPool& pool = shared_pool();
  pool.ensure_size(strands - 1);  // The caller itself runs the last strand.
  std::vector<std::future<void>> done;
  done.reserve(strands - 1);
  for (std::size_t w = 0; w + 1 < strands; ++w) {
    done.push_back(pool.submit(run_strand));
  }
  std::exception_ptr first_error;
  try {
    run_strand();
  } catch (...) {
    first_error = std::current_exception();
  }
  // Drain every strand before rethrowing so no task outlives the frame the
  // closures point into; get() rethrows the first stored exception.
  for (std::future<void>& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Map fn over `items`, preserving input order in the result vector.
/// The result type must be default-constructible (slots are pre-allocated
/// so workers never contend on the output container).
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn,
                  std::size_t threads = thread_count())
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> {
  std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> out(
      items.size());
  parallel_for(
      items.size(), [&](std::size_t i) { out[i] = fn(items[i]); }, threads);
  return out;
}

}  // namespace patchwork::util
