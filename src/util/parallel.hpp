// parallel_for / parallel_map on top of ThreadPool.
//
// Both primitives are *deterministic by construction*: every index writes
// only its own output slot, so results are identical to the serial loop for
// any thread count. Work is handed out through an atomic cursor (dynamic
// scheduling) — cheap tasks don't idle workers behind an expensive one, and
// because results land by index, the schedule never shows in the output.
#pragma once

#include <atomic>
#include <cstddef>
#include <future>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace patchwork::util {

/// Invoke fn(i) for every i in [0, n), fanned out over `threads` workers
/// (default: thread_count()). Blocks until all indices complete. The first
/// exception thrown by any fn(i) is rethrown on the calling thread.
/// Runs serially when threads <= 1, n <= 1, or when already called from a
/// pool worker (nested parallelism degrades instead of deadlocking).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t threads = thread_count()) {
  if (n == 0) return;
  if (threads <= 1 || n == 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t workers = threads < n ? threads : n;
  ThreadPool pool(workers);
  std::atomic<std::size_t> cursor{0};
  std::vector<std::future<void>> done;
  done.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    done.push_back(pool.submit([&cursor, n, &fn] {
      for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
           i < n; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    }));
  }
  // Drain every worker before rethrowing so no task outlives the frame the
  // closures point into; get() rethrows the first stored exception.
  std::exception_ptr first_error;
  for (std::future<void>& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Map fn over `items`, preserving input order in the result vector.
/// The result type must be default-constructible (slots are pre-allocated
/// so workers never contend on the output container).
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn,
                  std::size_t threads = thread_count())
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> {
  std::vector<std::decay_t<std::invoke_result_t<Fn&, const T&>>> out(
      items.size());
  parallel_for(
      items.size(), [&](std::size_t i) { out[i] = fn(items[i]); }, threads);
  return out;
}

}  // namespace patchwork::util
