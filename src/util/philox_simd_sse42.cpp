// SSE4.2 Philox4x32-10 kernel: 2 blocks per register, 4 per step.
//
// Same lane discipline as the AVX2 kernel (see philox_simd_avx2.cpp): each
// 128-bit register holds TWO blocks, one per 64-bit lane, live 32-bit word
// in the low half. _mm_mul_epu32 gives the exact 32x32->64 round multiply,
// _mm_add_epi32 wraps the Weyl key schedule mod 2^32 in place, and the
// 2^32 block-counter carry is handled by a full 64-bit lane add before the
// counter is split into words. Two interleaved 2-block groups per
// iteration keep 4 independent counters in flight.
//
// Compiled with a per-file -msse4.2 (src/util/CMakeLists.txt) and reached
// only through runtime dispatch.
#include "util/philox_simd_kernels.hpp"

#if defined(PATCHWORK_HAVE_SSE42) && defined(__SSE4_2__)

#include <emmintrin.h>
#include <smmintrin.h>

namespace patchwork::util {

namespace {

constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;

struct Group2 {
  __m128i c0, c1, c2, c3;  // Two blocks' counter words, one per u64 lane.
};

inline Group2 load_counters(std::uint64_t b0, __m128i mask32) {
  const __m128i b = _mm_add_epi64(
      _mm_set1_epi64x(static_cast<long long>(b0)), _mm_set_epi64x(1, 0));
  return Group2{_mm_and_si128(b, mask32), _mm_srli_epi64(b, 32),
                _mm_setzero_si128(), _mm_setzero_si128()};
}

inline void round2(Group2& g, __m128i k0, __m128i k1, __m128i mul0,
                   __m128i mul1, __m128i mask32) {
  const __m128i p0 = _mm_mul_epu32(g.c0, mul0);
  const __m128i p1 = _mm_mul_epu32(g.c2, mul1);
  const __m128i c0 =
      _mm_xor_si128(_mm_xor_si128(_mm_srli_epi64(p1, 32), g.c1), k0);
  const __m128i c1 = _mm_and_si128(p1, mask32);
  const __m128i c2 =
      _mm_xor_si128(_mm_xor_si128(_mm_srli_epi64(p0, 32), g.c3), k1);
  const __m128i c3 = _mm_and_si128(p0, mask32);
  g = Group2{c0, c1, c2, c3};
}

inline void store_words(const Group2& g, std::uint64_t* out) {
  const __m128i w0 = _mm_or_si128(g.c0, _mm_slli_epi64(g.c1, 32));
  const __m128i w1 = _mm_or_si128(g.c2, _mm_slli_epi64(g.c3, 32));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out),
                   _mm_unpacklo_epi64(w0, w1));  // {b0w0, b0w1}
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2),
                   _mm_unpackhi_epi64(w0, w1));  // {b1w0, b1w1}
}

}  // namespace

void philox_blocks_sse42(std::uint64_t key, std::uint64_t b0,
                         std::size_t nblocks, std::uint64_t* out) {
  const __m128i mask32 = _mm_set1_epi64x(0xffffffffll);
  const __m128i mul0 = _mm_set1_epi64x(kMul0);
  const __m128i mul1 = _mm_set1_epi64x(kMul1);
  const __m128i weyl0 = _mm_set1_epi64x(kWeyl0);
  const __m128i weyl1 = _mm_set1_epi64x(kWeyl1);
  const __m128i key0 = _mm_set1_epi64x(static_cast<std::uint32_t>(key));
  const __m128i key1 = _mm_set1_epi64x(static_cast<std::uint32_t>(key >> 32));

  std::size_t i = 0;
  for (; i + 4 <= nblocks; i += 4) {
    Group2 a = load_counters(b0 + i, mask32);
    Group2 b = load_counters(b0 + i + 2, mask32);
    __m128i k0 = key0, k1 = key1;
    for (int round = 0; round < 10; ++round) {
      if (round > 0) {
        k0 = _mm_add_epi32(k0, weyl0);
        k1 = _mm_add_epi32(k1, weyl1);
      }
      round2(a, k0, k1, mul0, mul1, mask32);
      round2(b, k0, k1, mul0, mul1, mask32);
    }
    store_words(a, out + 2 * i);
    store_words(b, out + 2 * i + 4);
  }
  for (; i + 2 <= nblocks; i += 2) {
    Group2 a = load_counters(b0 + i, mask32);
    __m128i k0 = key0, k1 = key1;
    for (int round = 0; round < 10; ++round) {
      if (round > 0) {
        k0 = _mm_add_epi32(k0, weyl0);
        k1 = _mm_add_epi32(k1, weyl1);
      }
      round2(a, k0, k1, mul0, mul1, mask32);
    }
    store_words(a, out + 2 * i);
  }
  if (i < nblocks) philox_blocks_scalar(key, b0 + i, nblocks - i, out + 2 * i);
}

}  // namespace patchwork::util

#endif  // PATCHWORK_HAVE_SSE42 && __SSE4_2__
