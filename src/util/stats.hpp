// Small statistics helpers shared by the infrastructure study, the analysis
// pipeline, and the benchmark harnesses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace patchwork::util {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Population variance.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set, `p` in [0,100], linear interpolation.
/// Copies and sorts; fine for analysis-sized data.
double percentile(std::span<const double> values, double p);

/// Several percentiles of one sample set, sorting the copy only once.
/// Result order matches `ps`; each entry equals percentile(values, p)
/// exactly. Use this instead of repeated percentile() calls when an
/// analysis reads p50/p95/p99 off the same data.
std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ps);

/// Empirical CDF evaluated at `x`: fraction of samples <= x.
double ecdf_at(std::span<const double> sorted_values, double x);

/// (x, F(x)) pairs of the empirical CDF at each distinct sample value.
std::vector<std::pair<double, double>> ecdf(std::vector<double> values);

}  // namespace patchwork::util
