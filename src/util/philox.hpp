// Counter-based random number generation (Philox4x32-10).
//
// Philox (Salmon et al., "Parallel Random Numbers: As Easy as 1, 2, 3",
// SC'11) is a keyed bijection: block(counter, key) is a 128-bit
// pseudo-random function of a 128-bit counter and a 64-bit key. That shape
// is what makes the data plane's intra-sample decomposition legal — the
// j-th draw of a stream is a pure function of (key, j), so any subtask can
// compute any draw in O(1) without replaying the draws before it, and the
// rendered bytes cannot depend on which worker rendered which slice.
//
// The constants and round structure follow the reference implementation
// (Random123); the golden-vector test pins the exact outputs so a wrong
// multiplier or Weyl constant cannot slip in silently.
#pragma once

#include <array>
#include <cstdint>

namespace patchwork::util {

/// One Philox4x32-10 block: encrypt a 128-bit counter under a 64-bit key.
/// Pure function — the golden vectors in tests/util/philox_test.cpp are
/// checked against the Random123 known-answer outputs.
constexpr std::array<std::uint32_t, 4> philox4x32_10(
    std::array<std::uint32_t, 4> ctr, std::array<std::uint32_t, 2> key) {
  constexpr std::uint32_t kMul0 = 0xD2511F53u;
  constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // Golden ratio.
  constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1.
  for (int round = 0; round < 10; ++round) {
    if (round > 0) {
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * ctr[0];
    const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * ctr[2];
    ctr = {static_cast<std::uint32_t>(p1 >> 32) ^ ctr[1] ^ key[0],
           static_cast<std::uint32_t>(p1),
           static_cast<std::uint32_t>(p0 >> 32) ^ ctr[3] ^ key[1],
           static_cast<std::uint32_t>(p0)};
  }
  return ctr;
}

/// Counter-based engine over 64-bit draws, usable both as a sequential
/// UniformRandomBitGenerator (for the std:: distributions util::Rng wraps)
/// and as a random-access stream: at(j) returns the j-th draw of the
/// sequence in O(1), independent of the engine's current position.
///
/// Layout: the 64-bit seed is the Philox key; draw j lives in word (j & 1)
/// of block (j >> 1), whose counter is {lo32(block), hi32(block), 0, 0}.
/// Each block yields two 64-bit words assembled from the four 32-bit
/// outputs. A stream therefore holds 2^65 draws — no practical sequence
/// exhausts it.
class PhiloxEngine {
 public:
  using result_type = std::uint64_t;

  explicit PhiloxEngine(std::uint64_t seed)
      : key_{static_cast<std::uint32_t>(seed),
             static_cast<std::uint32_t>(seed >> 32)} {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next sequential draw. Equals at(p) where p is the number of draws
  /// made so far; one block is cached so consecutive draws share a keying.
  result_type operator()() {
    const std::uint64_t j = next_++;
    const std::uint64_t block = j >> 1;
    if (!cached_ || block != cached_block_) {
      words_ = block_words(block);
      cached_block_ = block;
      cached_ = true;
    }
    return words_[j & 1];
  }

  /// The j-th draw of this stream, counted from construction. O(1), does
  /// not advance (or depend on) the sequential position.
  result_type at(std::uint64_t j) const { return block_words(j >> 1)[j & 1]; }

  /// Draws consumed by operator() so far.
  std::uint64_t position() const { return next_; }

  /// The construction seed (= the Philox key). The bulk kernels
  /// (util/philox_simd.hpp) address this engine's exact draw table from
  /// (seed, j) alone.
  std::uint64_t seed() const {
    return key_[0] | (static_cast<std::uint64_t>(key_[1]) << 32);
  }

 private:
  std::array<std::uint64_t, 2> block_words(std::uint64_t block) const {
    const std::array<std::uint32_t, 4> ctr = {
        static_cast<std::uint32_t>(block),
        static_cast<std::uint32_t>(block >> 32), 0, 0};
    const std::array<std::uint32_t, 4> out = philox4x32_10(ctr, key_);
    return {out[0] | (static_cast<std::uint64_t>(out[1]) << 32),
            out[2] | (static_cast<std::uint64_t>(out[3]) << 32)};
  }

  std::array<std::uint32_t, 2> key_;
  std::uint64_t next_ = 0;
  std::uint64_t cached_block_ = 0;
  bool cached_ = false;
  std::array<std::uint64_t, 2> words_{};
};

}  // namespace patchwork::util
