// Internal kernel contracts shared by the per-tier translation units.
//
// Each kernel writes the two 64-bit output words of Philox4x32-10 blocks
// [b0, b0+nblocks) of the stream keyed by `key` into out[0..2*nblocks):
// out[2*i] and out[2*i+1] are words 0 and 1 of block b0+i, assembled
// exactly as PhiloxEngine::block_words() assembles them. Kernels own the
// whole range including any non-vector-width remainder; the dispatcher in
// philox_simd.cpp never splits a call across tiers.
//
// The SSE4.2/AVX2 TUs are compiled with per-file -msse4.2 / -mavx2 flags
// (never globally), and are only added to the build — together with the
// PATCHWORK_HAVE_* macro that advertises them here — when the compiler
// supports the flag on an x86 target. Nothing outside util/ includes this
// header.
#pragma once

#include <cstddef>
#include <cstdint>

namespace patchwork::util {

void philox_blocks_scalar(std::uint64_t key, std::uint64_t b0,
                          std::size_t nblocks, std::uint64_t* out);

#if defined(PATCHWORK_HAVE_SSE42)
void philox_blocks_sse42(std::uint64_t key, std::uint64_t b0,
                         std::size_t nblocks, std::uint64_t* out);
#endif

#if defined(PATCHWORK_HAVE_AVX2)
void philox_blocks_avx2(std::uint64_t key, std::uint64_t b0,
                        std::size_t nblocks, std::uint64_t* out);
#endif

}  // namespace patchwork::util
