// Vectorized Philox4x32-10 bulk generation with runtime CPU dispatch.
//
// PR 6 made every data-plane draw counter-addressed: draw j of a stream is
// philox(key, j), a pure function. That shape is exactly what SIMD wants —
// N independent counters are N independent lanes, with no cross-lane state
// to carry. philox_bulk() fills a buffer with a contiguous counter range of
// a stream, computing 4-8 blocks per step on AVX2, 2-4 on SSE4.2, and a
// scalar-unrolled fallback everywhere else. Every tier produces bytes
// identical to PhiloxEngine::at(): Philox is exact 32-bit integer
// arithmetic, so lane width cannot change a single output bit, and the
// golden-vector tests (tests/util/philox_simd_test.cpp) pin each tier
// against the Random123 known answers.
//
// Dispatch is per-call, not per-build: one binary carries all compiled
// tiers, picks the widest one the CPU reports at runtime, and can be
// overridden by the PATCHWORK_SIMD env knob (or set_simd_tier(), which the
// profiler wires to its config). A per-call relaxed atomic load costs
// nothing next to ten Philox rounds, and it keeps the override testable:
// the determinism suites force each tier in one process and assert the
// rendered bytes never move.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace patchwork::util {

/// Instruction-set tiers for the bulk Philox kernels, narrowest first.
/// Which tiers exist in a binary depends on the build
/// (PATCHWORK_SIMD_KERNELS + compiler support, see src/util/CMakeLists.txt);
/// which of those run depends on the host CPU.
enum class SimdTier : std::uint8_t {
  kScalar = 0,  ///< Portable unrolled fallback; always available.
  kSse4 = 1,    ///< 128-bit lanes: 2 blocks per register, 4 per step.
  kAvx2 = 2,    ///< 256-bit lanes: 4 blocks per register, 8 per step.
};

/// Stable lowercase names: "scalar", "sse4", "avx2" — the PATCHWORK_SIMD
/// knob's vocabulary.
std::string_view to_string(SimdTier tier);

/// Parse a knob value ("scalar" | "sse4" | "avx2"); nullopt on anything
/// else.
std::optional<SimdTier> parse_simd_tier(std::string_view name);

/// True when `tier` was compiled in AND the host CPU can execute it.
/// kScalar is always supported.
bool simd_tier_supported(SimdTier tier);

/// The widest supported tier on this host/build.
SimdTier best_simd_tier();

/// The tier philox_bulk() dispatches to right now. Resolution order:
/// explicit set_simd_tier() > PATCHWORK_SIMD env var > best_simd_tier().
/// An env value naming an unsupported or unknown tier is ignored.
SimdTier simd_tier();

/// Force the active tier. Returns false (and changes nothing) if the tier
/// is not supported on this host/build.
bool set_simd_tier(SimdTier tier);

/// Drop any explicit override and re-resolve from the environment.
void reset_simd_tier();

/// Fill out[0..n) with raw draws at(j0) .. at(j0+n-1) of the Philox stream
/// keyed by `key` — the same draw table util::PhiloxEngine(seed=key)
/// exposes (draw j = 64-bit word (j&1) of block (j>>1)). Dispatches on the
/// active tier per call; all tiers are byte-identical. j0 may be odd and n
/// arbitrary; the counter range may cross the 2^32 block-counter carry.
void philox_bulk(std::uint64_t key, std::uint64_t j0, std::size_t n,
                 std::uint64_t* out);

}  // namespace patchwork::util
