#include "util/compress.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/byte_io.hpp"

namespace patchwork::util {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'P', 'W', 'Z', '1'};
constexpr std::size_t kWindow = 65535;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 255;
constexpr std::size_t kMaxLiteralRun = 255;
constexpr std::size_t kHashSlots = 1 << 15;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;  // Fold into kHashSlots bits.
}

void flush_literals(std::vector<std::uint8_t>& out,
                    std::span<const std::uint8_t> data, std::size_t start,
                    std::size_t end) {
  while (start < end) {
    const std::size_t run = std::min(kMaxLiteralRun, end - start);
    out.push_back(0x00);
    out.push_back(static_cast<std::uint8_t>(run));
    out.insert(out.end(), data.begin() + static_cast<long>(start),
               data.begin() + static_cast<long>(start + run));
    start += run;
  }
}

}  // namespace

std::vector<std::uint8_t> Compressor::compress(
    std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_le32(out, static_cast<std::uint32_t>(data.size()));

  // Hash table of the most recent position for each 4-byte prefix.
  // Bumping the epoch retires every slot from previous calls without
  // touching the memory; only a 32-bit epoch wrap forces a refill.
  if (table_.empty()) table_.assign(kHashSlots, 0);
  if (++epoch_ == 0) {
    std::fill(table_.begin(), table_.end(), 0);
    epoch_ = 1;
  }
  std::size_t pos = 0;
  std::size_t literal_start = 0;
  while (pos + kMinMatch <= data.size()) {
    const std::uint32_t slot = hash4(data.data() + pos) % kHashSlots;
    const std::uint64_t entry = table_[slot];
    const bool live = static_cast<std::uint32_t>(entry >> 32) == epoch_;
    const std::uint32_t candidate = static_cast<std::uint32_t>(entry);
    table_[slot] = (static_cast<std::uint64_t>(epoch_) << 32) |
                   static_cast<std::uint32_t>(pos);

    std::size_t match_len = 0;
    if (live && candidate < pos && pos - candidate <= kWindow) {
      const std::size_t limit = std::min(kMaxMatch, data.size() - pos);
      while (match_len < limit &&
             data[candidate + match_len] == data[pos + match_len]) {
        ++match_len;
      }
    }
    if (match_len >= kMinMatch) {
      flush_literals(out, data, literal_start, pos);
      const std::size_t dist = pos - candidate;
      out.push_back(0x01);
      out.push_back(static_cast<std::uint8_t>(dist & 0xff));
      out.push_back(static_cast<std::uint8_t>(dist >> 8));
      out.push_back(static_cast<std::uint8_t>(match_len));
      pos += match_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  flush_literals(out, data, literal_start, data.size());
  return out;
}

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> data) {
  Compressor scratch;
  return scratch.compress(data);
}

std::optional<std::vector<std::uint8_t>> decompress(
    std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  if (std::memcmp(data.data(), kMagic.data(), kMagic.size()) != 0) {
    return std::nullopt;
  }
  const std::uint32_t original = get_le32(data, 4);
  std::vector<std::uint8_t> out;
  out.reserve(original);
  std::size_t pos = 8;
  while (pos < data.size()) {
    const std::uint8_t token = data[pos++];
    if (token == 0x00) {
      if (pos >= data.size()) return std::nullopt;
      const std::size_t run = data[pos++];
      if (run == 0 || pos + run > data.size()) return std::nullopt;
      out.insert(out.end(), data.begin() + static_cast<long>(pos),
                 data.begin() + static_cast<long>(pos + run));
      pos += run;
    } else if (token == 0x01) {
      if (pos + 3 > data.size()) return std::nullopt;
      const std::size_t dist = data[pos] | (data[pos + 1] << 8);
      const std::size_t len = data[pos + 2];
      pos += 3;
      if (dist == 0 || dist > out.size() || len < kMinMatch) {
        return std::nullopt;
      }
      // Byte-by-byte so overlapping matches replicate correctly.
      const std::size_t start = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(out[start + i]);
      }
    } else {
      return std::nullopt;
    }
  }
  if (out.size() != original) return std::nullopt;
  return out;
}

double compression_ratio(std::span<const std::uint8_t> original,
                         std::span<const std::uint8_t> compressed) {
  if (original.empty()) return 1.0;
  return static_cast<double>(compressed.size()) /
         static_cast<double>(original.size());
}

}  // namespace patchwork::util
