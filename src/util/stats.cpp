#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace patchwork::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {

/// Shared interpolation kernel over an already-sorted sample vector.
double percentile_of_sorted(const std::vector<double>& v, double p) {
  assert(p >= 0.0 && p <= 100.0);
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace

double percentile(std::span<const double> values, double p) {
  assert(!values.empty());
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  return percentile_of_sorted(v, p);
}

std::vector<double> percentiles(std::span<const double> values,
                                std::span<const double> ps) {
  assert(!values.empty());
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile_of_sorted(v, p));
  return out;
}

double ecdf_at(std::span<const double> sorted_values, double x) {
  if (sorted_values.empty()) return 0.0;
  const auto it =
      std::upper_bound(sorted_values.begin(), sorted_values.end(), x);
  return static_cast<double>(it - sorted_values.begin()) /
         static_cast<double>(sorted_values.size());
}

std::vector<std::pair<double, double>> ecdf(std::vector<double> values) {
  std::vector<std::pair<double, double>> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    out.emplace_back(values[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

}  // namespace patchwork::util
