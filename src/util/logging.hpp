// Structured instance logging.
//
// Section 6.2.2: "Patchwork creates logs at every instance to capture a
// variety of network- and host-related statistics that can help users
// notice problems", and the logs travel with the capture to the coordinator
// for offline inspection. Logger therefore records into an in-memory buffer
// (retrievable, filterable) rather than only writing to a stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace patchwork::util {

enum class LogLevel : std::uint8_t { kDebug, kInfo, kWarn, kError };

std::string_view to_string(LogLevel level);

/// Parse "debug"/"info"/"warn"/"error" (case-insensitive).
std::optional<LogLevel> parse_log_level(std::string_view text);

/// A live mirror for log records: everything at or above min_level is also
/// written, as it happens, to stderr (path empty) or appended to a file.
/// Configured process-wide from the PATCHWORK_LOG=level[:path] environment
/// knob, or explicitly via set_live_sink().
struct LiveSinkSpec {
  LogLevel min_level = LogLevel::kInfo;
  std::string path;  ///< Empty = stderr.
};

/// Parse a PATCHWORK_LOG value ("warn", "debug:/tmp/run.log", ...).
/// Returns nullopt on an unrecognized level.
std::optional<LiveSinkSpec> parse_live_sink_spec(std::string_view spec);

/// Override the live sink (tests, CLIs). nullopt disables it and restores
/// nothing — the env variable is only consulted once at first log.
void set_live_sink(std::optional<LiveSinkSpec> spec);

/// Total records evicted by bounded-buffer loggers, process-wide. Read by
/// the obs registry as patchwork_log_dropped_records_total.
std::uint64_t logger_dropped_total();

struct LogRecord {
  Nanos time = 0;           ///< Simulated time of the event.
  LogLevel level = LogLevel::kInfo;
  std::string component;    ///< e.g. "profiler/SITE3", "dpdk-writer".
  std::string message;
};

/// In-memory, append-only log. Cheap to move around with a capture bundle.
class Logger {
 public:
  Logger() = default;
  explicit Logger(LogLevel min_level) : min_level_(min_level) {}

  void log(Nanos time, LogLevel level, std::string_view component,
           std::string_view message);

  void debug(Nanos t, std::string_view c, std::string_view m) {
    log(t, LogLevel::kDebug, c, m);
  }
  void info(Nanos t, std::string_view c, std::string_view m) {
    log(t, LogLevel::kInfo, c, m);
  }
  void warn(Nanos t, std::string_view c, std::string_view m) {
    log(t, LogLevel::kWarn, c, m);
  }
  void error(Nanos t, std::string_view c, std::string_view m) {
    log(t, LogLevel::kError, c, m);
  }

  const std::vector<LogRecord>& records() const { return records_; }

  /// Records at or above `level`.
  std::vector<LogRecord> at_least(LogLevel level) const;

  /// Records whose component matches exactly.
  std::vector<LogRecord> for_component(std::string_view component) const;

  /// Number of records containing `needle` in their message.
  std::size_t count_containing(std::string_view needle) const;

  /// Merge another logger's records (used when gathering instance logs at
  /// the coordinator). Records keep their original timestamps.
  void merge(const Logger& other);

  /// Render all records as "t=<sec>s LEVEL [component] message" lines.
  std::string render() const;

  void clear() { records_.clear(); }

  /// Bound the in-memory buffer: once more than `cap` records are held the
  /// oldest is evicted (and counted in dropped()). 0 restores the unbounded
  /// default. Long-lived instances use this so a chatty run cannot grow the
  /// log without limit before post-run retrieval.
  void set_capacity(std::size_t cap) { capacity_ = cap; }
  std::size_t capacity() const { return capacity_; }

  /// Records evicted by the bounded-buffer mode since construction.
  std::uint64_t dropped() const { return dropped_; }

 private:
  LogLevel min_level_ = LogLevel::kDebug;
  std::size_t capacity_ = 0;  ///< 0 = unbounded.
  std::uint64_t dropped_ = 0;
  std::vector<LogRecord> records_;
};

}  // namespace patchwork::util
