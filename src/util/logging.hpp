// Structured instance logging.
//
// Section 6.2.2: "Patchwork creates logs at every instance to capture a
// variety of network- and host-related statistics that can help users
// notice problems", and the logs travel with the capture to the coordinator
// for offline inspection. Logger therefore records into an in-memory buffer
// (retrievable, filterable) rather than only writing to a stream.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace patchwork::util {

enum class LogLevel : std::uint8_t { kDebug, kInfo, kWarn, kError };

std::string_view to_string(LogLevel level);

struct LogRecord {
  Nanos time = 0;           ///< Simulated time of the event.
  LogLevel level = LogLevel::kInfo;
  std::string component;    ///< e.g. "profiler/SITE3", "dpdk-writer".
  std::string message;
};

/// In-memory, append-only log. Cheap to move around with a capture bundle.
class Logger {
 public:
  Logger() = default;
  explicit Logger(LogLevel min_level) : min_level_(min_level) {}

  void log(Nanos time, LogLevel level, std::string_view component,
           std::string_view message);

  void debug(Nanos t, std::string_view c, std::string_view m) {
    log(t, LogLevel::kDebug, c, m);
  }
  void info(Nanos t, std::string_view c, std::string_view m) {
    log(t, LogLevel::kInfo, c, m);
  }
  void warn(Nanos t, std::string_view c, std::string_view m) {
    log(t, LogLevel::kWarn, c, m);
  }
  void error(Nanos t, std::string_view c, std::string_view m) {
    log(t, LogLevel::kError, c, m);
  }

  const std::vector<LogRecord>& records() const { return records_; }

  /// Records at or above `level`.
  std::vector<LogRecord> at_least(LogLevel level) const;

  /// Records whose component matches exactly.
  std::vector<LogRecord> for_component(std::string_view component) const;

  /// Number of records containing `needle` in their message.
  std::size_t count_containing(std::string_view needle) const;

  /// Merge another logger's records (used when gathering instance logs at
  /// the coordinator). Records keep their original timestamps.
  void merge(const Logger& other);

  /// Render all records as "t=<sec>s LEVEL [component] message" lines.
  std::string render() const;

  void clear() { records_.clear(); }

 private:
  LogLevel min_level_ = LogLevel::kDebug;
  std::vector<LogRecord> records_;
};

}  // namespace patchwork::util
