// The Patchwork coordinator (Fig. 7).
//
// Runs outside the testbed: configures Patchwork, starts it on the chosen
// sites (all production sites in all-experiment mode, or the slice's sites
// in single-experiment mode), downloads the samples, and yields resources
// back. Site profilers are independent; a site that fails to allocate does
// not affect the others (requirement R3).
#pragma once

#include <string>
#include <vector>

#include "analysis/digest.hpp"
#include "core/config.hpp"
#include "core/environment.hpp"
#include "core/profiler.hpp"

namespace patchwork::core {

struct SiteRunReport {
  testbed::SiteId site;
  std::string site_name;
  RunOutcome outcome = RunOutcome::kFailed;
  std::uint32_t instances = 0;
  std::uint32_t backoffs = 0;
  std::optional<testbed::AllocError> error;
  std::uint64_t samples = 0;
  std::uint64_t pcap_bytes = 0;
  /// Bytes actually transferred to the coordinator (Section 6.2.3: the
  /// captures are compressed before download).
  std::uint64_t transferred_bytes = 0;
};

/// Everything one coordinator invocation produces: the gathered captures
/// (input to the analysis pipeline) and the per-site deployment reports
/// (the data behind Fig. 10).
struct ProfileRun {
  ProfileMode mode = ProfileMode::kAllExperiment;
  std::vector<analysis::RawCapture> captures;
  std::vector<SiteRunReport> reports;

  std::size_t outcome_count(RunOutcome o) const;
  double success_fraction() const;  ///< Success + degraded, as Fig. 10 counts.
};

class Coordinator {
 public:
  /// Applies config.simd_tier (when set) to the process-wide vector
  /// kernel dispatch before any rendering happens.
  Coordinator(Environment& env, ProfilerConfig config);

  /// All-experiment mode over every production site. Sites restricted to
  /// teaching (EDUKY) are skipped, as in Section 8.1.1.
  ProfileRun run_all_experiment();

  /// All-experiment mode focused on specific sites.
  ProfileRun run_on_sites(const std::vector<testbed::SiteId>& sites);

  /// Single-experiment mode: profile only the switch ports a slice uses.
  /// Patchwork monitors those ports with the fixed-port policy.
  ProfileRun run_single_experiment(
      const std::vector<testbed::GlobalPortId>& slice_ports);

 private:
  ProfileRun run_sites(const std::vector<testbed::SiteId>& sites,
                       ProfileMode mode,
                       const std::vector<testbed::GlobalPortId>* slice_ports);

  Environment& env_;
  ProfilerConfig config_;
};

}  // namespace patchwork::core
