// Testbed abstraction layer.
//
// Section 9 (future work): "Porting Patchwork to run on other testbeds
// would involve designing an abstraction layer to interface with APIs from
// different testbeds, in order to acquire and manage testbed resources for
// Patchwork." TestbedBackend is that layer: the minimal set of operations
// Patchwork's workflow needs — capture-node leasing, port mirroring,
// windowed port-rate telemetry, and data-plane sampling — with the
// testbed's identity hidden behind the interface.
//
// Two concrete backends ship here, both running on the simulation
// substrate but exposing different testbeds: a FABRIC-like federation site
// (FPGA offload, deep MPLS/pseudowire underlay, 100G ports) and an
// Emulab-like site (no programmable NICs, VLAN-only tagging, 25G ports).
// The contract test suite (tests/core/testbed_backend_test.cpp) runs the
// same expectations over both.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/environment.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/allocator.hpp"
#include "testbed/ids.hpp"
#include "traffic/flowgen.hpp"
#include "util/units.hpp"

namespace patchwork::core {

class TestbedBackend {
 public:
  virtual ~TestbedBackend() = default;

  virtual std::string name() const = 0;

  // --- Resource discovery & leasing ---------------------------------------
  /// NICs still available for capture nodes.
  virtual std::size_t available_capture_nics() const = 0;
  /// Whether the testbed offers on-NIC offload (FABRIC: Alveo FPGAs).
  virtual bool supports_offload() const = 0;

  /// A leased capture node: a VM plus the switch ports its capture NIC
  /// exposes (the mirror destinations).
  struct CaptureLease {
    std::uint64_t id = 0;
    std::vector<testbed::PortId> destinations;
  };
  virtual std::variant<CaptureLease, testbed::AllocError>
  acquire_capture_node() = 0;
  virtual void release(const CaptureLease& lease) = 0;

  // --- Port mirroring -------------------------------------------------------
  virtual bool mirror(testbed::PortId source, testbed::PortId destination) = 0;
  virtual bool retarget(testbed::PortId old_source,
                        testbed::PortId new_source) = 0;
  virtual bool unmirror(testbed::PortId source) = 0;

  // --- Telemetry --------------------------------------------------------------
  /// Per-port rates over the trailing window, busiest first. Ports already
  /// in mirror sessions are included (callers filter).
  virtual std::vector<telemetry::PortRate> port_rates(
      util::Nanos window) const = 0;

  // --- Data plane & time -----------------------------------------------------
  /// The frames a mirror of `source` delivers during a window starting now.
  virtual traffic::WindowTraffic sample(testbed::PortId source,
                                        util::Nanos duration,
                                        std::size_t max_frames) = 0;
  virtual void advance(util::Nanos dt) = 0;
  virtual util::Nanos now() const = 0;
};

/// A self-contained simulated testbed (substrate + telemetry + traffic)
/// exposed through the backend interface. Owns its world.
class SimBackendWorld;

struct SimBackendOptions {
  std::string name = "fabric-sim";
  std::uint64_t seed = 1;
  testbed::FederationSpec federation;  ///< Shape of the simulated testbed.
  bool offload = true;                 ///< Advertise on-NIC offload.
  bool vlan_only_underlay = false;     ///< Emulab-style tagging (no MPLS).
};

std::unique_ptr<TestbedBackend> make_sim_backend(SimBackendOptions options);

/// FABRIC flavour: 100G ports, FPGA offload, MPLS/pseudowire underlay.
std::unique_ptr<TestbedBackend> make_fabric_like_backend(
    std::uint64_t seed = 1);

/// Emulab flavour: 25G ports, fewer capture NICs, VLAN-only tagging, no
/// offload — the "far fewer network resources" the paper notes other
/// testbeds have (Section 7).
std::unique_ptr<TestbedBackend> make_emulab_like_backend(
    std::uint64_t seed = 1);

}  // namespace patchwork::core
