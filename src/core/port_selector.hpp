// Port cycling heuristics (Section 6.2.2).
//
// "To sample all ports of interest, Patchwork cycles between ports...
// By default, Patchwork uses a 'busiest ports bias, 1/n other non-idle
// port' heuristic — that is, during every n-1 cycles it picks a random
// non-idle port, and during the other cycles it picks the busiest port
// that has not been sampled during the last n cycles. ... Users can also
// add their own heuristics."
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/ids.hpp"
#include "util/rng.hpp"

namespace patchwork::core {

/// User-supplied heuristic: given this cycle's candidate ports with their
/// recent rates, return the chosen port (or nullopt to skip this slot).
using CustomHeuristic = std::function<std::optional<testbed::PortId>(
    const std::vector<telemetry::PortRate>&, std::uint32_t cycle)>;

class PortSelector {
 public:
  PortSelector(const SamplingPlan& plan, util::Rng& rng,
               std::vector<testbed::PortId> fixed_ports = {},
               CustomHeuristic custom = nullptr)
      : plan_(&plan),
        rng_(&rng),
        fixed_ports_(std::move(fixed_ports)),
        custom_(std::move(custom)) {}

  /// Pick the port to mirror for the next cycle. `rates` must carry every
  /// candidate port of the site (uplinks and downlinks), with ports
  /// already being mirrored by other instances removed by the caller.
  std::optional<testbed::PortId> next(
      const std::vector<telemetry::PortRate>& rates);

  std::uint32_t cycles_run() const { return cycle_; }

  /// Recent (port, cycle) picks, pruned to the largest lookback window any
  /// policy consults — bounded regardless of run length, so fairness
  /// analyses see only the live window.
  const std::vector<std::pair<testbed::PortId, std::uint32_t>>&
  sample_history() const {
    return history_;
  }

 private:
  std::optional<testbed::PortId> busiest_bias(
      const std::vector<telemetry::PortRate>& rates);
  bool sampled_recently(testbed::PortId port, std::uint32_t lookback) const;
  void record(testbed::PortId port);
  std::uint32_t max_lookback() const;

  // Pointers (not references) so selectors are assignable and can live in
  // resizable slot containers. Never null.
  const SamplingPlan* plan_;
  util::Rng* rng_;
  std::vector<testbed::PortId> fixed_ports_;
  CustomHeuristic custom_;
  std::uint32_t cycle_ = 0;
  std::vector<std::pair<testbed::PortId, std::uint32_t>> history_;
};

}  // namespace patchwork::core
