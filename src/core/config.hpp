// Patchwork run configuration (requirement R5: Tunable Fidelity).
//
// Section 6.2.2: "The user sets the duration of each sample, number of
// samples in each run, and the number of runs between cycles. The user
// also configures packet truncation size and capture pre-processing."
// Defaults follow the paper's production profile runs: 200 B truncation,
// 20 s samples at 5-minute intervals over 12-24 hours.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "capture/config.hpp"
#include "core/scaler.hpp"
#include "flowsched/config.hpp"
#include "testbed/allocator.hpp"
#include "testbed/ids.hpp"
#include "util/units.hpp"

namespace patchwork::core {

/// Port selection methods of Section 6.2.2. The default is the "busiest
/// ports bias, 1/n other non-idle port" heuristic; the others are the
/// alternatives the paper lists, plus user-supplied heuristics.
enum class PortPolicy : std::uint8_t {
  kBusiestBias,   ///< Default heuristic.
  kFixed,         ///< Sampling fixed ports (no cycling).
  kUplinksOnly,   ///< Sampling only uplink ports.
  kRoundRobinAll, ///< Cycling between all ports, including idle ones.
  kCustom,        ///< User-provided heuristic.
};

std::string_view to_string(PortPolicy p);

struct SamplingPlan {
  util::Nanos sample_duration = 20 * util::kSecond;
  util::Nanos sample_interval = 5 * util::kMinute;
  std::uint32_t samples_per_run = 3;
  std::uint32_t runs_per_cycle = 1;
  std::uint32_t cycles = 4;

  PortPolicy policy = PortPolicy::kBusiestBias;
  /// The "n" of the busiest-bias heuristic: during every n-1 cycles a
  /// random non-idle port is picked; during the other cycle, the busiest
  /// port not sampled in the last n cycles.
  std::uint32_t busiest_bias_n = 4;
  /// MFlib window used to rank ports by recent rate.
  util::Nanos rate_window = 15 * util::kMinute;
  /// Ports below this total rate count as idle for the heuristics.
  double idle_threshold_bps = 1e6;
  /// Rendering cap for a sample window's packet-level traffic. The true
  /// offered rate is preserved; only the rendered frame count is bounded.
  std::size_t max_frames_per_sample = 20000;
};

struct ProfilerConfig {
  SamplingPlan plan;
  capture::CaptureConfig capture;
  /// Ports for the kFixed policy (and the slice's ports in
  /// single-experiment mode).
  std::vector<testbed::PortId> fixed_ports;
  /// Profiling instances to request per site; 0 = one per available
  /// dedicated NIC (each instance = 1 VM + 1 dual-port dedicated NIC).
  std::uint32_t desired_instances = 0;
  /// Iterative back-off attempts before declaring the site failed.
  std::uint32_t max_backoffs = 3;
  /// Probability per run that a Patchwork instance crashes (the paper's
  /// "Incomplete" outcomes were "a bug in Patchwork that has since been
  /// fixed"); modelled so Fig. 10 can be reproduced.
  double crash_probability = 0.01;
  /// Testbed allocator behaviour (transient backend failure rate etc.);
  /// benches vary this to recreate Fig. 10's bad-backend days.
  testbed::Allocator::Tuning allocator;

  /// Runtime scaling (Section 6.3 limitation 2 / Section 9 future work):
  /// when enabled, the profiler re-evaluates its footprint between cycles
  /// and grows into idle capacity or sheds extra instances under
  /// contention, per the scaler's nice factor.
  bool dynamic_scaling = false;
  DynamicScaler::Policy scaling;
  /// Telemetry normalization for the activity signal: testbed-wide Tx at
  /// "normal" load. Used to derive TestbedPressure::activity_level.
  double nominal_testbed_bps = 1.5e12;

  /// Compress captures for the gathering-phase download (Section 6.2.3).
  /// The coordinator round-trips each pcap through the compressor and
  /// records the transfer size.
  bool compress_transfers = true;

  /// Congestion mitigation: Section 1 requirement (5) says researchers
  /// "must devise a mechanism to detect or mitigate" mirror
  /// oversubscription. Detection is always on; with this flag Patchwork
  /// also reacts by dropping the mirror to Tx-only, trading the Rx channel
  /// for a complete Tx sample.
  bool congestion_mitigation = false;

  /// Frames per synthesis subtask when a sample's render is decomposed for
  /// the work-stealing pool. 0 = PATCHWORK_RENDER_BATCH env var, falling
  /// back to 1024. Output bytes are invariant to this value (and to the
  /// worker count); it only tunes scheduling granularity.
  std::size_t render_batch_frames = 0;

  /// Which traffic model plans each sample window: the per-window
  /// population mix (default) or the event-driven flow generator
  /// (arrivals, Pareto durations, Zipf popularity, churn — src/flowsched).
  /// Either way the plan runs on the kWindowPlanStream substream and
  /// rendering stays counter-addressed, so the determinism contract is
  /// model-independent.
  flowsched::FlowModelConfig flow_model;

  /// ISA tier for the vectorized Philox synthesis kernels: "avx2", "sse4",
  /// or "scalar". Empty = PATCHWORK_SIMD env var, falling back to the best
  /// tier the CPU supports. Output bytes are invariant to this value (the
  /// determinism suite pins it); it only trades draw throughput. An
  /// unknown or unsupported tier is ignored with the same fallback.
  std::string simd_tier;
};

/// Which experiments the profiler may observe (Section 4's Goal): all
/// traffic on the sites, or only the ports belonging to one slice.
enum class ProfileMode : std::uint8_t { kAllExperiment, kSingleExperiment };

std::string_view to_string(ProfileMode m);

}  // namespace patchwork::core
