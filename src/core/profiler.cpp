#include "core/profiler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "flowsched/event_gen.hpp"
#include "net/frame_store.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pcap/pcap.hpp"
#include "traffic/flowgen.hpp"
#include "util/thread_pool.hpp"

namespace patchwork::core {

namespace {

// Control-plane events. Everything here runs on the serial coordinator
// thread (Phase 1 of run_sites), so the counts are trivially deterministic.
struct ProfilerMetrics {
  obs::Counter& backoffs = obs::registry().counter(
      "patchwork_profiler_backoffs_total",
      "Allocation back-off steps taken during setup");
  obs::Counter& port_cycles = obs::registry().counter(
      "patchwork_profiler_port_cycles_total",
      "Mirror-source changes applied by port cycling");
  obs::Counter& congestion_detections = obs::registry().counter(
      "patchwork_profiler_congestion_events_total",
      "Congestion-detector verdicts and responses",
      {{"event", "detected"}});
  obs::Counter& congestion_mitigations = obs::registry().counter(
      "patchwork_profiler_congestion_events_total",
      "Congestion-detector verdicts and responses",
      {{"event", "mitigated_tx_only"}});
  obs::Counter& storage_admissions = obs::registry().counter(
      "patchwork_profiler_storage_admissions_total",
      "Samples admitted by the storage watchdog");
  obs::Counter& storage_admitted_bytes = obs::registry().counter(
      "patchwork_profiler_storage_admitted_bytes_total",
      "Worst-case bytes charged against storage budgets");
  obs::Counter& watchdog_storage = obs::registry().counter(
      "patchwork_profiler_watchdog_terminations_total",
      "Runs the watchdog cut short, by cause", {{"cause", "storage"}});
  obs::Counter& watchdog_crash = obs::registry().counter(
      "patchwork_profiler_watchdog_terminations_total",
      "Runs the watchdog cut short, by cause", {{"cause", "crash"}});
  obs::Counter& scale_ups = obs::registry().counter(
      "patchwork_profiler_scale_events_total",
      "Dynamic-scaling footprint changes", {{"direction", "up"}});
  obs::Counter& scale_downs = obs::registry().counter(
      "patchwork_profiler_scale_events_total",
      "Dynamic-scaling footprint changes", {{"direction", "down"}});
};

ProfilerMetrics& profiler_metrics() {
  static ProfilerMetrics m;
  return m;
}

}  // namespace

std::string_view to_string(RunOutcome o) {
  switch (o) {
    case RunOutcome::kSuccess: return "success";
    case RunOutcome::kDegraded: return "degraded";
    case RunOutcome::kFailed: return "failed";
    case RunOutcome::kIncomplete: return "incomplete";
  }
  return "?";
}

SiteProfiler::SiteProfiler(Environment& env, testbed::SiteId site,
                           ProfilerConfig config, host::HostSpec host)
    : env_(env),
      site_(site),
      config_(std::move(config)),
      host_(host),
      allocator_(env.federation().site(site), env.rng(), config_.allocator),
      component_("profiler/" + env.federation().site(site).name()) {}

std::uint32_t SiteProfiler::monitored_port_slots() const {
  return static_cast<std::uint32_t>(slots_.size());
}

std::uint64_t SiteProfiler::storage_budget() const {
  if (!grant_) return 0;
  std::uint64_t total = 0;
  for (const testbed::GrantedVm& vm : grant_->vms) {
    total += vm.footprint.storage;
  }
  return total;
}

SetupResult SiteProfiler::setup() {
  SetupResult result;
  testbed::Site& site = env_.federation().site(site_);

  // Resource discovery via the testbed's API (Section 6.2.1).
  const std::size_t nics_available =
      site.count_available_nics(testbed::NicKind::kDedicatedConnectX);
  std::uint32_t want = config_.desired_instances > 0
                           ? config_.desired_instances
                           : static_cast<std::uint32_t>(nics_available);
  if (want == 0) {
    result.error = testbed::AllocError::kNoDedicatedNic;
    log_.error(env_.clock().now(), component_,
               "setup: no dedicated NICs available at site");
    setup_result_ = result;
    return result;
  }

  // Iterative back-off: shrink the request by one listening node (VM +
  // dedicated NIC) whenever the allocation simulation says it cannot fit.
  std::uint32_t backoffs = 0;
  while (true) {
    testbed::SliceRequest request;
    request.site = site_;
    request.vms.assign(want, testbed::VmRequest{});  // Patchwork defaults.

    if (auto err = allocator_.can_satisfy(request)) {
      if (want > 1 && backoffs < config_.max_backoffs) {
        ++backoffs;
        --want;
        profiler_metrics().backoffs.add();
        log_.warn(env_.clock().now(), component_,
                  "setup: back-off to " + std::to_string(want) +
                      " instance(s): " + std::string(to_string(*err)));
        continue;
      }
      result.error = err;
      result.backoffs_used = backoffs;
      log_.error(env_.clock().now(), component_,
                 "setup: allocation simulation failed: " +
                     std::string(to_string(*err)));
      setup_result_ = result;
      return result;
    }

    testbed::AllocResult alloc = allocator_.allocate(request);
    env_.advance(alloc.latency);  // Allocation takes real time.
    if (!alloc.ok()) {
      // Transient backend errors are not recoverable by shrinking.
      result.error = alloc.error;
      result.backoffs_used = backoffs;
      log_.error(env_.clock().now(), component_,
                 "setup: allocation failed: " +
                     std::string(to_string(*alloc.error)));
      setup_result_ = result;
      return result;
    }
    grant_ = std::move(alloc.grant);
    result.ok = true;
    result.instances_granted = want;
    result.backoffs_used = backoffs;
    result.allocation_latency = alloc.latency;
    break;
  }

  // Each dedicated NIC exposes two switch ports: two mirror destinations.
  add_slots_for_grant(*grant_, /*grant_tag=*/-1);
  log_.info(env_.clock().now(), component_,
            "setup: granted " + std::to_string(result.instances_granted) +
                " instance(s), " + std::to_string(slots_.size()) +
                " mirror destination port(s), backoffs=" +
                std::to_string(backoffs));
  setup_result_ = result;
  return result;
}

void SiteProfiler::add_slots_for_grant(const testbed::SliceGrant& grant,
                                       int grant_tag) {
  testbed::Site& site = env_.federation().site(site_);
  for (const testbed::GrantedVm& vm : grant.vms) {
    for (testbed::PortId dest : vm.nic_ports) {
      std::vector<testbed::PortId> fixed = config_.fixed_ports;
      if (config_.plan.policy == PortPolicy::kUplinksOnly) {
        fixed = site.tor().ports_of_kind(testbed::PortKind::kUplink);
      }
      slots_.push_back(MirrorSlot{
          dest, std::nullopt,
          PortSelector(config_.plan, env_.rng(), std::move(fixed)),
          grant_tag});
    }
  }
}

std::uint32_t SiteProfiler::current_instances() const {
  return setup_result_.instances_granted +
         static_cast<std::uint32_t>(extra_grants_.size());
}

TestbedPressure SiteProfiler::observe_pressure() const {
  TestbedPressure pressure;
  const testbed::Site& site = env_.federation().site(site_);
  // Dedicated-NIC contention from the inventory Patchwork can already
  // query. The signal is the fraction of NICs *outside this profiler's
  // own footprint* that other slices hold — when everything we left
  // behind is taken, other researchers are starved and a polite profiler
  // should shed.
  std::size_t ours_count = 0, total = 0, held_by_others = 0;
  for (const testbed::Nic& nic : site.nics()) {
    if (nic.kind != testbed::NicKind::kDedicatedConnectX) continue;
    ++total;
    if (!nic.allocated_to) continue;
    bool ours = grant_ && *nic.allocated_to == grant_->slice;
    for (const testbed::SliceGrant& g : extra_grants_) {
      ours = ours || *nic.allocated_to == g.slice;
    }
    if (ours) {
      ++ours_count;
    } else {
      ++held_by_others;
    }
  }
  const std::size_t contested = total > ours_count ? total - ours_count : 0;
  pressure.nic_contention =
      contested == 0 ? 1.0
                     : static_cast<double>(held_by_others) /
                           static_cast<double>(contested);
  // Activity from telemetry, normalized to the configured nominal load.
  const double total_bps =
      env_.mflib().testbed_total_tx_bps(config_.plan.rate_window);
  pressure.activity_level =
      config_.nominal_testbed_bps > 0
          ? total_bps / config_.nominal_testbed_bps
          : 1.0;
  return pressure;
}

void SiteProfiler::rescale() {
  const DynamicScaler scaler(config_.scaling);
  testbed::Site& site = env_.federation().site(site_);
  const TestbedPressure pressure = observe_pressure();
  const std::size_t nics_free =
      site.count_available_nics(testbed::NicKind::kDedicatedConnectX);
  const std::uint32_t current = current_instances();
  const std::uint32_t target =
      scaler.target_instances(current, pressure, nics_free);
  if (target > current) {
    // Grow by one listening node (1 VM + 1 dedicated dual-port NIC).
    testbed::SliceRequest request;
    request.site = site_;
    request.vms.push_back(testbed::VmRequest{});
    if (allocator_.can_satisfy(request)) return;  // Opportunity vanished.
    testbed::AllocResult alloc = allocator_.allocate(request);
    env_.advance(alloc.latency);
    if (!alloc.ok()) return;  // Transient failure; try again next cycle.
    extra_grants_.push_back(std::move(*alloc.grant));
    add_slots_for_grant(extra_grants_.back(),
                        static_cast<int>(extra_grants_.size()) - 1);
    ++scale_ups_;
    profiler_metrics().scale_ups.add();
    log_.info(env_.clock().now(), component_,
              "scale-up: now " + std::to_string(current_instances()) +
                  " instance(s) (pressure " +
                  std::to_string(pressure.combined()) + ")");
  } else if (target < current && !extra_grants_.empty()) {
    // Shed the most recent extra instance; the baseline never shrinks.
    const int tag = static_cast<int>(extra_grants_.size()) - 1;
    for (MirrorSlot& slot : slots_) {
      if (slot.grant_tag == tag && slot.source) {
        site.tor().remove_mirror(*slot.source);
      }
    }
    std::erase_if(slots_,
                  [tag](const MirrorSlot& s) { return s.grant_tag == tag; });
    allocator_.release(extra_grants_.back());
    extra_grants_.pop_back();
    ++scale_downs_;
    profiler_metrics().scale_downs.add();
    log_.info(env_.clock().now(), component_,
              "scale-down (nice): now " +
                  std::to_string(current_instances()) +
                  " instance(s) (pressure " +
                  std::to_string(pressure.combined()) + ")");
  }
}

std::vector<telemetry::PortRate> SiteProfiler::candidate_rates() const {
  const testbed::Site& site = env_.federation().site(site_);
  std::vector<telemetry::PortRate> rates =
      env_.mflib().site_rates_sorted(site_, config_.plan.rate_window);
  // Exclude mirror members and our own NIC-facing ports.
  std::vector<testbed::PortId> excluded;
  for (const MirrorSlot& slot : slots_) excluded.push_back(slot.destination);
  std::erase_if(rates, [&](const telemetry::PortRate& r) {
    if (site.tor().port_is_mirror_member(r.port.port)) return true;
    return std::find(excluded.begin(), excluded.end(), r.port.port) !=
           excluded.end();
  });
  return rates;
}

void SiteProfiler::cycle_ports() {
  testbed::Site& site = env_.federation().site(site_);
  for (MirrorSlot& slot : slots_) {
    const std::vector<telemetry::PortRate> rates = candidate_rates();
    const auto chosen = slot.selector.next(rates);
    if (!chosen) continue;
    if (slot.source) {
      if (*slot.source == *chosen) continue;
      // Port cycling keeps the NIC/VM fixed and changes only the mirror
      // source (Fig. 7).
      if (!site.tor().retarget_mirror(*slot.source, *chosen)) {
        log_.warn(env_.clock().now(), component_,
                  "cycle: retarget to p" + std::to_string(chosen->value) +
                      " failed");
        continue;
      }
      // A congestion-mitigated session returns to both channels on its
      // new port; mitigation re-triggers there if needed.
      site.tor().set_mirror_directions(*chosen,
                                       testbed::MirrorDirections::kBoth);
    } else {
      testbed::MirrorSession session{*chosen,
                                     testbed::MirrorDirections::kBoth,
                                     slot.destination};
      if (!site.tor().add_mirror(session)) {
        log_.warn(env_.clock().now(), component_,
                  "cycle: add_mirror on p" + std::to_string(chosen->value) +
                      " failed");
        continue;
      }
    }
    slot.source = chosen;
    profiler_metrics().port_cycles.add();
    log_.info(env_.clock().now(), component_,
              "cycle: mirroring p" + std::to_string(chosen->value) +
                  " -> p" + std::to_string(slot.destination.value));
  }
}

bool SiteProfiler::take_sample(MirrorSlot& slot, std::uint32_t cycle,
                               std::uint32_t run, std::uint32_t sample) {
  if (!slot.source) return false;
  testbed::Site& site = env_.federation().site(site_);
  auto session = site.tor().mirror_for_source(*slot.source);
  if (!session) return false;

  // Congestion inference from telemetry (not ground truth).
  CongestionDetector detector(env_.mflib(), config_.plan.rate_window);
  CongestionVerdict verdict = detector.assess(
      site_, *session,
      site.tor().port(slot.destination).line_rate_bps());
  if (verdict.likely_dropping) {
    profiler_metrics().congestion_detections.add();
    log_.warn(env_.clock().now(), component_,
              "congestion: mirror on p" +
                  std::to_string(slot.source->value) +
                  " likely dropping (offered " +
                  std::to_string(verdict.offered_bps / 1e9) + " Gbps)");
    if (config_.congestion_mitigation &&
        session->directions == testbed::MirrorDirections::kBoth) {
      // Mitigation: keep the Tx channel complete rather than sampling
      // both channels with switch-side losses.
      site.tor().set_mirror_directions(*slot.source,
                                       testbed::MirrorDirections::kTxOnly);
      session = site.tor().mirror_for_source(*slot.source);
      verdict = detector.assess(
          site_, *session,
          site.tor().port(slot.destination).line_rate_bps());
      profiler_metrics().congestion_mitigations.add();
      log_.info(env_.clock().now(), component_,
                "congestion: mitigated by dropping p" +
                    std::to_string(slot.source->value) +
                    " mirror to Tx-only");
    }
  }

  // Snapshot the data-plane inputs instead of rendering here. The mirrored
  // rate is read from the source port per the (post-mitigation) session
  // directions — the same rule TrafficEngine::window_for_port applies — so
  // rendering later needs no access to the live switch state.
  const testbed::SwitchPort& source_port = site.tor().port(*slot.source);
  PendingSample pending;
  pending.source = *slot.source;
  pending.cycle = cycle;
  pending.run = run;
  pending.sample = sample;
  pending.start = env_.clock().now();
  switch (session->directions) {
    case testbed::MirrorDirections::kBoth:
      pending.target_bps = source_port.tx_rate_bps() + source_port.rx_rate_bps();
      break;
    case testbed::MirrorDirections::kTxOnly:
      pending.target_bps = source_port.tx_rate_bps();
      break;
    case testbed::MirrorDirections::kRxOnly:
      pending.target_bps = source_port.rx_rate_bps();
      break;
  }
  pending.delivery = site.tor().mirror_delivery_fraction(*session);
  pending.drop_fraction = verdict.estimated_drop_fraction;

  // Storage admission: the pcap is not serialized yet, so the watchdog
  // charges the format's upper bound for one sample.
  const std::uint64_t admitted_bytes =
      pcap::kGlobalHeaderSize +
      static_cast<std::uint64_t>(config_.plan.max_frames_per_sample) *
          (config_.capture.snaplen + pcap::kRecordHeaderSize);
  storage_admitted_ += admitted_bytes;
  profiler_metrics().storage_admissions.add();
  profiler_metrics().storage_admitted_bytes.add(admitted_bytes);

  std::ostringstream msg;
  msg << "sample c" << cycle << "/r" << run << "/s" << sample
      << " p" << slot.source->value << " scheduled: target="
      << pending.target_bps << "bps delivery=" << pending.delivery;
  log_.info(env_.clock().now(), component_, msg.str());
  pending_.push_back(pending);
  return true;
}

namespace {

/// Effective synthesis burst size: config wins, then the
/// PATCHWORK_RENDER_BATCH env knob, then 1024. Never 0.
std::size_t resolve_render_batch(std::size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("PATCHWORK_RENDER_BATCH")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return 1024;
}

}  // namespace

analysis::RawCapture SiteProfiler::render_sample(std::size_t k,
                                                 util::Rng& rng) const {
  // Per-sample wall latency (kWallClock) plus a deterministic render count.
  OBS_SPAN_ARGS("profiler/render_sample",
                .site = static_cast<std::int64_t>(site_.value),
                .sample = static_cast<std::int64_t>(k));
  const PendingSample& p = pending_.at(k);
  const testbed::Site& site = env_.federation().site(site_);
  const traffic::SiteWorkloadProfile& profile = env_.traffic().profile(site_);

  // The sample's stochastic phases hang off `rng` by substream id (see
  // flowgen.hpp): the plan is drawn sequentially, then every downstream
  // draw is counter-addressed, so the rendered bytes depend only on the
  // per-sample seed — never on batch scheduling or worker count.
  traffic::WindowParams params;
  params.duration = config_.plan.sample_duration;
  params.target_bps = p.target_bps;
  params.max_frames = config_.plan.max_frames_per_sample;
  util::Rng plan_rng = rng.split(traffic::kWindowPlanStream);
  traffic::WindowPlan plan;
  {
    // The plan is the render's only sequential phase; its wall share vs
    // the counter-addressed synthesis below is what the flow-churn
    // ablation bench breaks out.
    OBS_SPAN_ARGS("render/plan",
                  .site = static_cast<std::int64_t>(site_.value),
                  .sample = static_cast<std::int64_t>(k));
    plan = config_.flow_model.model == flowsched::FlowModel::kEvent
               ? flowsched::plan_event_window(plan_rng, profile, params,
                                              config_.flow_model)
               : traffic::plan_window(plan_rng, profile, params);
  }
  double offered_pps = plan.offered_pps;

  // Synthesis: decompose units into fixed-size bursts, each rendering a
  // counter range of its unit into a private arena. Bursts are work-stolen
  // subtasks when the pool has workers; the decomposition itself depends
  // only on the plan and the batch knob.
  struct Burst {
    std::size_t unit = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    net::FrameStore store;
  };
  const std::size_t batch = resolve_render_batch(config_.render_batch_frames);
  std::vector<Burst> bursts;
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    for (std::uint64_t b = 0; b < plan.units[u].frames;
         b += static_cast<std::uint64_t>(batch)) {
      Burst burst;
      burst.unit = u;
      burst.begin = b;
      burst.end = std::min(plan.units[u].frames,
                           b + static_cast<std::uint64_t>(batch));
      bursts.push_back(std::move(burst));
    }
  }
  std::vector<util::RngBlock> unit_draws;
  unit_draws.reserve(plan.units.size());
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    unit_draws.emplace_back(
        rng.split(traffic::kWindowUnitStreamBase + static_cast<uint64_t>(u)));
  }
  {
    OBS_SPAN_ARGS("render/synthesis",
                  .site = static_cast<std::int64_t>(site_.value),
                  .sample = static_cast<std::int64_t>(k));
    // Burst index for the trace timeline: position in the decomposition,
    // itself deterministic (plan + batch knob only). The event is
    // trace-only (obs::trace::ScopedEvent) so per-burst instrumentation
    // registers no metric families — the deterministic exposition is
    // byte-identical with tracing on or off.
    auto render_burst = [&](Burst& burst) {
      const obs::trace::ScopedEvent trace_burst(
          "render_unit",
          {.site = static_cast<std::int64_t>(site_.value),
           .sample = static_cast<std::int64_t>(k),
           .burst = &burst - bursts.data()});
      net::FrameBuilder builder;
      traffic::render_unit(plan.units[burst.unit], unit_draws[burst.unit],
                           params.duration, burst.begin, burst.end, builder,
                           burst.store);
    };
    util::ThreadPool& pool = util::shared_pool();
    if (bursts.size() > 1 && util::thread_count() > 1 && pool.size() > 0) {
      util::TaskGroup group(pool);
      for (Burst& burst : bursts) {
        group.spawn([&render_burst, &burst] { render_burst(burst); });
      }
      group.wait();
    } else {
      for (Burst& burst : bursts) render_burst(burst);
    }
  }

  // Merge to the window's total order (timestamp, unit, counter) — fully
  // determined by the plan, so identical for every decomposition.
  struct Ref {
    const Burst* burst;
    std::size_t local;
    util::Nanos ts;
    std::size_t unit;
    std::uint64_t j;
  };
  std::vector<Ref> refs;
  refs.reserve(plan.planned_frames);
  for (const Burst& burst : bursts) {
    for (std::size_t i = 0; i < burst.store.size(); ++i) {
      refs.push_back(Ref{&burst, i, burst.store.view(i).timestamp, burst.unit,
                         burst.begin + i});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.unit != b.unit) return a.unit < b.unit;
    return a.j < b.j;
  });

  // Switch egress-capacity rule: oversubscribed mirrors silently lose
  // frames. Decided per frame by its position in the merged order, on the
  // delivery substream.
  std::vector<net::FrameView> views;
  views.reserve(refs.size());
  if (p.delivery < 1.0) {
    const util::RngBlock delivery(
        rng.split(traffic::kWindowDeliveryStream));
    // Bulk Bernoulli keep/drop decisions (draw j == merged position j,
    // matching the scalar chance_at contract), then a branch-light scan.
    std::vector<std::uint8_t> keep(refs.size());
    delivery.chance_fill(0, p.delivery, keep);
    for (std::size_t j = 0; j < refs.size(); ++j) {
      if (keep[j] != 0) {
        views.push_back(refs[j].burst->store.view(refs[j].local));
      }
    }
    offered_pps *= p.delivery;
  } else {
    for (const Ref& ref : refs) {
      views.push_back(ref.burst->store.view(ref.local));
    }
  }

  // Capture through the configured method, on its own substream.
  util::Rng capture_rng = rng.split(traffic::kWindowCaptureStream);
  capture::CaptureSession capturer(config_.capture, host_, capture_rng);
  capture::CaptureResult captured = [&] {
    OBS_SPAN_ARGS("render/capture",
                  .site = static_cast<std::int64_t>(site_.value),
                  .sample = static_cast<std::int64_t>(k));
    return capturer.run(std::span<const net::FrameView>(views), offered_pps);
  }();

  analysis::RawCapture raw;
  raw.site = site.name();
  raw.port = p.source.value;
  raw.start = p.start;
  raw.duration = config_.plan.sample_duration;
  raw.switch_drops_suspected = static_cast<std::uint64_t>(
      p.drop_fraction * offered_pps * util::to_seconds(raw.duration));
  raw.pcap = std::move(captured.pcap);

  std::ostringstream msg;
  msg << "sample c" << p.cycle << "/r" << p.run << "/s" << p.sample
      << " p" << p.source.value << ": offered=" << captured.stats.offered
      << " captured=" << captured.stats.captured
      << " capacity_loss=" << captured.stats.dropped_capacity
      << " flows~" << plan.flow_count;
  raw.logs.info(p.start, component_, msg.str());
  return raw;
}

void SiteProfiler::commit_rendered(
    std::vector<analysis::RawCapture> rendered) {
  assert(rendered.size() == pending_.size());
  captures_.reserve(captures_.size() + rendered.size());
  for (analysis::RawCapture& raw : rendered) {
    // Replay the sample's render summary into the instance log, exactly as
    // the serial path used to write it — sample order keeps the site log
    // deterministic no matter which workers rendered which samples.
    log_.merge(raw.logs);
    captures_.push_back(std::move(raw));
  }
  pending_.clear();
}

void SiteProfiler::render_pending(util::Rng& rng) {
  if (pending_.empty()) return;
  std::vector<analysis::RawCapture> rendered;
  rendered.reserve(pending_.size());
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    util::Rng sample_rng = rng.split(k);
    rendered.push_back(render_sample(k, sample_rng));
  }
  commit_rendered(std::move(rendered));
}

RunOutcome SiteProfiler::run() {
  if (!setup_result_.ok) return RunOutcome::kFailed;
  const SamplingPlan& plan = config_.plan;
  for (std::uint32_t cycle = 0; cycle < plan.cycles; ++cycle) {
    // Re-evaluate the footprint between cycles (but not before the very
    // first one: setup just sized the baseline).
    if (config_.dynamic_scaling && lifetime_cycles_ > 0) rescale();
    ++lifetime_cycles_;
    cycle_ports();
    for (std::uint32_t run = 0; run < plan.runs_per_cycle; ++run) {
      // Watchdog: the paper's "Incomplete" runs — e.g. an instance that
      // ran out of storage, or the since-fixed crash bug.
      if (env_.rng().chance(config_.crash_probability)) {
        crashed_ = true;
        profiler_metrics().watchdog_crash.add();
        log_.error(env_.clock().now(), component_,
                   "watchdog: instance terminated unexpectedly");
        return RunOutcome::kIncomplete;
      }
      if (storage_budget() > 0 && storage_admitted_ > storage_budget()) {
        crashed_ = true;
        profiler_metrics().watchdog_storage.add();
        log_.error(env_.clock().now(), component_,
                   "watchdog: storage budget exhausted (" +
                       std::to_string(storage_admitted_) +
                       " bytes admitted)");
        return RunOutcome::kIncomplete;
      }
      for (std::uint32_t s = 0; s < plan.samples_per_run; ++s) {
        for (MirrorSlot& slot : slots_) take_sample(slot, cycle, run, s);
        env_.advance(plan.sample_interval);
      }
    }
  }
  return setup_result_.backoffs_used > 0 ? RunOutcome::kDegraded
                                         : RunOutcome::kSuccess;
}

std::vector<analysis::RawCapture> SiteProfiler::gather() {
  // Standalone callers (tests, benches) may gather without an explicit
  // render pass; fall back to a stream forked off the environment RNG. The
  // coordinator always renders first — with a per-site child of the run
  // seed — so this draw never happens on its path.
  if (!pending_.empty()) {
    util::Rng fallback = env_.rng().fork();
    render_pending(fallback);
  }
  // Instance logs travel with the captures (Section 6.2.2); attach the
  // profiler's own log to the first capture of the bundle.
  if (!captures_.empty()) captures_.front().logs.merge(log_);
  return std::move(captures_);
}

void SiteProfiler::teardown() {
  testbed::Site& site = env_.federation().site(site_);
  for (MirrorSlot& slot : slots_) {
    if (slot.source) site.tor().remove_mirror(*slot.source);
    slot.source.reset();
  }
  for (const testbed::SliceGrant& g : extra_grants_) {
    allocator_.release(g);
  }
  extra_grants_.clear();
  if (grant_) {
    allocator_.release(*grant_);
    grant_.reset();
  }
  slots_.clear();
  log_.info(env_.clock().now(), component_, "teardown: resources yielded");
}

}  // namespace patchwork::core
