#include "core/scaler.hpp"

namespace patchwork::core {

std::uint32_t DynamicScaler::target_instances(
    std::uint32_t current, const TestbedPressure& pressure,
    std::size_t nics_free) const {
  const double p = pressure.combined();
  std::uint32_t target = current;
  if (p >= shed_threshold()) {
    // Contended: shed one instance per decision — gradual, so a transient
    // spike does not collapse the profiler.
    if (target > policy_.min_instances) --target;
  } else if (p <= grow_threshold() && nics_free > 0) {
    // Idle testbed and an opportunity is available: grow by one.
    if (target < policy_.max_instances) ++target;
  }
  return std::clamp(target, policy_.min_instances, policy_.max_instances);
}

}  // namespace patchwork::core
