// Shared runtime context for a Patchwork deployment on the simulated
// testbed: the clock, the federation, telemetry, and the traffic plane.
//
// advance() is the single place where simulated time moves during a
// profiling run; it keeps port rates, switch counters, and MFlib's
// 5-minute SNMP polling consistent.
#pragma once

#include "sim/clock.hpp"
#include "telemetry/mflib.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace patchwork::core {

class Environment {
 public:
  Environment(sim::Clock& clock, testbed::Federation& fed,
              telemetry::MfLib& mflib, traffic::TrafficEngine& traffic,
              util::Rng& rng,
              util::Nanos poll_interval = telemetry::kDefaultPollInterval)
      : clock_(clock),
        fed_(fed),
        mflib_(mflib),
        traffic_(traffic),
        rng_(rng),
        poll_interval_(poll_interval) {}

  sim::Clock& clock() { return clock_; }
  testbed::Federation& federation() { return fed_; }
  telemetry::MfLib& mflib() { return mflib_; }
  traffic::TrafficEngine& traffic() { return traffic_; }
  util::Rng& rng() { return rng_; }

  /// Advance simulated time by `dt`, stepping traffic loads, switch
  /// counters, and SNMP polls along the way.
  void advance(util::Nanos dt);

 private:
  sim::Clock& clock_;
  testbed::Federation& fed_;
  telemetry::MfLib& mflib_;
  traffic::TrafficEngine& traffic_;
  util::Rng& rng_;
  util::Nanos poll_interval_;
  util::Nanos next_poll_ = 0;
};

}  // namespace patchwork::core
