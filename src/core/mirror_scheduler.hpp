// Shared mirror-port scheduling.
//
// Design limitation (1) in Section 6.3: "Resources cannot be shared across
// Patchwork instances ... only a single FABRIC user at a time can mirror a
// specific switch port. Sharing could be achieved by having an
// intermediate layer that schedules the use of mirrored ports on behalf of
// more than one FABRIC user." This is that intermediate layer: users
// submit mirror requests; the scheduler multiplexes them over a fixed set
// of mirror-destination ports, time-slicing long captures (quantum-bounded
// leases) and arbitrating fairly between users (least-recently-served
// first).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "testbed/switch.hpp"
#include "util/units.hpp"

namespace patchwork::core {

using MirrorRequestId = std::uint64_t;

struct MirrorRequest {
  std::string user;
  testbed::PortId source;  ///< The port the user wants mirrored.
  testbed::MirrorDirections directions = testbed::MirrorDirections::kBoth;
  util::Nanos duration = 0;  ///< Total mirroring time wanted.
};

struct MirrorLease {
  MirrorRequestId request = 0;
  std::string user;
  testbed::PortId source;
  testbed::PortId destination;
  testbed::MirrorDirections directions = testbed::MirrorDirections::kBoth;
  util::Nanos started = 0;
  util::Nanos expires = 0;  ///< End of this quantum.
};

class MirrorScheduler {
 public:
  struct Policy {
    /// Longest uninterrupted lease; longer requests are sliced into
    /// quanta so waiting users get turns.
    util::Nanos quantum = 10 * util::kMinute;
  };

  MirrorScheduler(testbed::ToRSwitch& tor,
                  std::vector<testbed::PortId> destinations, Policy policy);
  MirrorScheduler(testbed::ToRSwitch& tor,
                  std::vector<testbed::PortId> destinations)
      : MirrorScheduler(tor, std::move(destinations), Policy()) {}

  /// Queue a request. Returns its id; the request is served when a
  /// destination slot and its source port are free.
  MirrorRequestId submit(MirrorRequest request);

  /// Cancel a pending request or revoke an active lease as of `now`.
  /// Revoking an active lease credits the user's service time with the
  /// quantum consumed so far — otherwise a cancel-and-resubmit loop would
  /// accrue zero service and permanently win the least-served arbitration,
  /// starving every other user.
  bool cancel(MirrorRequestId id, util::Nanos now);

  /// Advance to `now`: expire leases whose quantum ended (requeueing
  /// unfinished requests with their remaining time) and install new
  /// leases on free slots. Call before reading active leases.
  void tick(util::Nanos now);

  const std::vector<MirrorLease>& active() const { return active_; }
  std::optional<MirrorLease> lease_on(testbed::PortId destination) const;
  std::size_t pending_count() const { return pending_.size(); }
  bool is_pending(MirrorRequestId id) const;

  /// Remaining requested time for a pending/active request (0 if done or
  /// unknown).
  util::Nanos remaining(MirrorRequestId id) const;

  /// Total mirroring time each user has received so far.
  const std::map<std::string, util::Nanos>& service_time() const {
    return served_;
  }

  std::uint64_t leases_granted() const { return leases_granted_; }

 private:
  struct Pending {
    MirrorRequestId id;
    MirrorRequest request;
    util::Nanos remaining;
    std::uint64_t sequence;  ///< FIFO tie-break.
  };

  void expire_leases(util::Nanos now);
  void fill_slots(util::Nanos now);
  bool source_busy(testbed::PortId source) const;

  testbed::ToRSwitch& tor_;
  std::vector<testbed::PortId> destinations_;
  Policy policy_;
  std::deque<Pending> pending_;
  std::vector<MirrorLease> active_;
  std::map<MirrorRequestId, util::Nanos> active_remaining_;
  std::map<std::string, util::Nanos> served_;
  MirrorRequestId next_id_ = 1;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t leases_granted_ = 0;
};

}  // namespace patchwork::core
