#include "core/port_selector.hpp"

#include <algorithm>

namespace patchwork::core {

std::string_view to_string(PortPolicy p) {
  switch (p) {
    case PortPolicy::kBusiestBias: return "busiest-bias";
    case PortPolicy::kFixed: return "fixed";
    case PortPolicy::kUplinksOnly: return "uplinks-only";
    case PortPolicy::kRoundRobinAll: return "round-robin-all";
    case PortPolicy::kCustom: return "custom";
  }
  return "?";
}

std::string_view to_string(ProfileMode m) {
  return m == ProfileMode::kAllExperiment ? "all-experiment"
                                          : "single-experiment";
}

bool PortSelector::sampled_recently(testbed::PortId port,
                                    std::uint32_t lookback) const {
  const std::uint32_t floor =
      cycle_ >= lookback ? cycle_ - lookback : 0;
  for (const auto& [p, c] : history_) {
    if (p == port && c >= floor) return true;
  }
  return false;
}

std::uint32_t PortSelector::max_lookback() const {
  // The only consumer of history_ is sampled_recently(), whose largest
  // lookback is busiest_bias's n (floored at 2 like busiest_bias itself).
  return std::max<std::uint32_t>(2, plan_->busiest_bias_n);
}

void PortSelector::record(testbed::PortId port) {
  history_.emplace_back(port, cycle_);
  // Prune entries that have aged out of every lookback window. Entries are
  // appended in cycle order, so the stale prefix is contiguous; without
  // this, a 13-month deployment grows history_ by one entry per cycle and
  // sampled_recently() degrades to an O(lifetime) scan.
  const std::uint32_t lookback = max_lookback();
  const std::uint32_t floor = cycle_ >= lookback ? cycle_ - lookback : 0;
  auto first_live = history_.begin();
  while (first_live != history_.end() && first_live->second < floor) {
    ++first_live;
  }
  history_.erase(history_.begin(), first_live);
}

std::optional<testbed::PortId> PortSelector::busiest_bias(
    const std::vector<telemetry::PortRate>& rates) {
  // Non-idle candidates, already sorted busiest-first by MfLib.
  std::vector<const telemetry::PortRate*> non_idle;
  for (const telemetry::PortRate& r : rates) {
    if (r.total() >= plan_->idle_threshold_bps) non_idle.push_back(&r);
  }
  if (non_idle.empty()) {
    // Nothing active: fall back to a uniformly random candidate so the
    // profiler still gathers (empty) evidence rather than stalling.
    if (rates.empty()) return std::nullopt;
    return rates[rng_->uniform_u64(0, rates.size() - 1)].port.port;
  }
  const std::uint32_t n = std::max<std::uint32_t>(2, plan_->busiest_bias_n);
  if (cycle_ % n == 0) {
    // Busiest-port cycle: the busiest port not sampled in the last n
    // cycles.
    for (const telemetry::PortRate* r : non_idle) {
      if (!sampled_recently(r->port.port, n)) return r->port.port;
    }
    // All busy ports were recently sampled; take the busiest anyway.
    return non_idle.front()->port.port;
  }
  // Random non-idle cycle.
  return non_idle[rng_->uniform_u64(0, non_idle.size() - 1)]->port.port;
}

std::optional<testbed::PortId> PortSelector::next(
    const std::vector<telemetry::PortRate>& rates) {
  std::optional<testbed::PortId> chosen;
  switch (plan_->policy) {
    case PortPolicy::kBusiestBias:
      chosen = busiest_bias(rates);
      break;
    case PortPolicy::kFixed: {
      if (!fixed_ports_.empty()) {
        chosen = fixed_ports_[cycle_ % fixed_ports_.size()];
      }
      break;
    }
    case PortPolicy::kUplinksOnly: {
      // Candidates are pre-filtered by the caller to the site's ports; we
      // restrict to those flagged as uplinks via the fixed list.
      std::vector<testbed::PortId> uplinks = fixed_ports_;
      if (!uplinks.empty()) {
        chosen = uplinks[cycle_ % uplinks.size()];
      }
      break;
    }
    case PortPolicy::kRoundRobinAll: {
      if (!rates.empty()) {
        // Deterministic sweep over every port, idle ones included.
        std::vector<testbed::PortId> all;
        for (const auto& r : rates) all.push_back(r.port.port);
        std::sort(all.begin(), all.end());
        chosen = all[cycle_ % all.size()];
      }
      break;
    }
    case PortPolicy::kCustom:
      if (custom_) chosen = custom_(rates, cycle_);
      break;
  }
  if (chosen) record(*chosen);
  ++cycle_;
  return chosen;
}

}  // namespace patchwork::core
