#include "core/environment.hpp"

#include <algorithm>

namespace patchwork::core {

void Environment::advance(util::Nanos dt) {
  const util::Nanos target = clock_.now() + dt;
  while (clock_.now() < target) {
    // Step at most one minute at a time so load changes and poll
    // boundaries are honoured even across long advances.
    util::Nanos step = std::min<util::Nanos>(util::kMinute,
                                             target - clock_.now());
    if (next_poll_ > clock_.now()) {
      step = std::min(step, next_poll_ - clock_.now());
    }
    traffic_.update_loads(clock_.now());
    fed_.advance(step);
    clock_.advance_by(step);
    if (clock_.now() >= next_poll_) {
      mflib_.poll_all(clock_.now());
      next_poll_ = clock_.now() + poll_interval_;
    }
  }
}

}  // namespace patchwork::core
