#include "core/congestion.hpp"

#include <algorithm>

namespace patchwork::core {

CongestionVerdict CongestionDetector::assess(
    testbed::SiteId site, const testbed::MirrorSession& session,
    double egress_line_rate_bps) const {
  CongestionVerdict verdict;
  verdict.egress_capacity_bps = egress_line_rate_bps;
  const auto rate =
      mflib_.port_rate({site, session.source}, rate_window_);
  if (!rate) return verdict;  // No telemetry yet: assume healthy.
  switch (session.directions) {
    case testbed::MirrorDirections::kTxOnly:
      verdict.offered_bps = rate->tx_bps;
      break;
    case testbed::MirrorDirections::kRxOnly:
      verdict.offered_bps = rate->rx_bps;
      break;
    case testbed::MirrorDirections::kBoth:
      verdict.offered_bps = rate->tx_bps + rate->rx_bps;
      break;
  }
  if (verdict.offered_bps > egress_line_rate_bps &&
      egress_line_rate_bps > 0.0) {
    verdict.likely_dropping = true;
    verdict.estimated_drop_fraction =
        1.0 - egress_line_rate_bps / verdict.offered_bps;
  }
  return verdict;
}

}  // namespace patchwork::core
