#include "core/coordinator.hpp"

#include <algorithm>

#include "util/compress.hpp"

namespace patchwork::core {

std::size_t ProfileRun::outcome_count(RunOutcome o) const {
  return static_cast<std::size_t>(
      std::count_if(reports.begin(), reports.end(),
                    [o](const SiteRunReport& r) { return r.outcome == o; }));
}

double ProfileRun::success_fraction() const {
  if (reports.empty()) return 0.0;
  const std::size_t good = outcome_count(RunOutcome::kSuccess) +
                           outcome_count(RunOutcome::kDegraded);
  return static_cast<double>(good) / static_cast<double>(reports.size());
}

ProfileRun Coordinator::run_all_experiment() {
  std::vector<testbed::SiteId> sites;
  for (testbed::SiteId id : env_.federation().site_ids()) {
    if (env_.federation().site(id).teaching_only()) continue;
    sites.push_back(id);
  }
  return run_sites(sites, ProfileMode::kAllExperiment, nullptr);
}

ProfileRun Coordinator::run_on_sites(
    const std::vector<testbed::SiteId>& sites) {
  return run_sites(sites, ProfileMode::kAllExperiment, nullptr);
}

ProfileRun Coordinator::run_single_experiment(
    const std::vector<testbed::GlobalPortId>& slice_ports) {
  std::vector<testbed::SiteId> sites;
  for (const testbed::GlobalPortId& p : slice_ports) {
    if (std::find(sites.begin(), sites.end(), p.site) == sites.end()) {
      sites.push_back(p.site);
    }
  }
  return run_sites(sites, ProfileMode::kSingleExperiment, &slice_ports);
}

ProfileRun Coordinator::run_sites(
    const std::vector<testbed::SiteId>& sites, ProfileMode mode,
    const std::vector<testbed::GlobalPortId>* slice_ports) {
  ProfileRun out;
  out.mode = mode;
  for (testbed::SiteId site : sites) {
    ProfilerConfig config = config_;
    if (mode == ProfileMode::kSingleExperiment && slice_ports != nullptr) {
      // Single-experiment mode can only monitor the slice's own ports.
      config.plan.policy = PortPolicy::kFixed;
      config.fixed_ports.clear();
      for (const testbed::GlobalPortId& p : *slice_ports) {
        if (p.site == site) config.fixed_ports.push_back(p.port);
      }
    }
    SiteProfiler profiler(env_, site, config);
    SiteRunReport report;
    report.site = site;
    report.site_name = env_.federation().site(site).name();

    const SetupResult setup = profiler.setup();
    report.instances = setup.instances_granted;
    report.backoffs = setup.backoffs_used;
    report.error = setup.error;
    if (!setup.ok) {
      report.outcome = RunOutcome::kFailed;
      out.reports.push_back(std::move(report));
      continue;
    }
    report.outcome = profiler.run();
    std::vector<analysis::RawCapture> captures = profiler.gather();
    report.samples = captures.size();
    for (analysis::RawCapture& c : captures) {
      report.pcap_bytes += c.pcap.size();
      if (config.compress_transfers) {
        // The download path of Fig. 7 step 4: compress at the site,
        // transfer, decompress at the coordinator.
        const std::vector<std::uint8_t> wire = util::compress(c.pcap);
        report.transferred_bytes += wire.size();
        auto restored = util::decompress(wire);
        if (restored.has_value()) {
          c.pcap = std::move(*restored);
        }
      } else {
        report.transferred_bytes += c.pcap.size();
      }
    }
    if (mode == ProfileMode::kSingleExperiment && slice_ports != nullptr) {
      // Keep only captures of the slice's ports (access control:
      // single-experiment users cannot see other users' traffic).
      std::erase_if(captures, [&](const analysis::RawCapture& c) {
        return std::none_of(slice_ports->begin(), slice_ports->end(),
                            [&](const testbed::GlobalPortId& p) {
                              return p.site == site &&
                                     p.port.value == c.port;
                            });
      });
    }
    std::move(captures.begin(), captures.end(),
              std::back_inserter(out.captures));
    profiler.teardown();
    out.reports.push_back(std::move(report));
  }
  return out;
}

}  // namespace patchwork::core
