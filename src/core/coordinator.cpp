#include "core/coordinator.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/scrape_server.hpp"
#include "obs/span.hpp"
#include "util/compress.hpp"
#include "util/parallel.hpp"
#include "util/philox_simd.hpp"

namespace patchwork::core {

Coordinator::Coordinator(Environment& env, ProfilerConfig config)
    : env_(env), config_(std::move(config)) {
  // Config wins over the PATCHWORK_SIMD env var and the CPU probe; an
  // unknown or unsupported tier silently keeps the default resolution
  // (the knob is a throughput tuner, never a correctness switch).
  if (!config_.simd_tier.empty()) {
    if (const auto tier = util::parse_simd_tier(config_.simd_tier)) {
      util::set_simd_tier(*tier);
    }
  }
}

std::size_t ProfileRun::outcome_count(RunOutcome o) const {
  return static_cast<std::size_t>(
      std::count_if(reports.begin(), reports.end(),
                    [o](const SiteRunReport& r) { return r.outcome == o; }));
}

double ProfileRun::success_fraction() const {
  if (reports.empty()) return 0.0;
  const std::size_t good = outcome_count(RunOutcome::kSuccess) +
                           outcome_count(RunOutcome::kDegraded);
  return static_cast<double>(good) / static_cast<double>(reports.size());
}

ProfileRun Coordinator::run_all_experiment() {
  std::vector<testbed::SiteId> sites;
  for (testbed::SiteId id : env_.federation().site_ids()) {
    if (env_.federation().site(id).teaching_only()) continue;
    sites.push_back(id);
  }
  return run_sites(sites, ProfileMode::kAllExperiment, nullptr);
}

ProfileRun Coordinator::run_on_sites(
    const std::vector<testbed::SiteId>& sites) {
  return run_sites(sites, ProfileMode::kAllExperiment, nullptr);
}

ProfileRun Coordinator::run_single_experiment(
    const std::vector<testbed::GlobalPortId>& slice_ports) {
  std::vector<testbed::SiteId> sites;
  for (const testbed::GlobalPortId& p : slice_ports) {
    if (std::find(sites.begin(), sites.end(), p.site) == sites.end()) {
      sites.push_back(p.site);
    }
  }
  return run_sites(sites, ProfileMode::kSingleExperiment, &slice_ports);
}

ProfileRun Coordinator::run_sites(
    const std::vector<testbed::SiteId>& sites, ProfileMode mode,
    const std::vector<testbed::GlobalPortId>* slice_ports) {
  ProfileRun out;
  out.mode = mode;

  // Live phase marker for /healthz scrapers: 1 control, 2 render, 3 merge,
  // back to 0 (idle) on return. Wall-clock class — a point-in-time reading
  // depends on when the scrape lands.
  obs::Gauge& phase = obs::run_phase_gauge();
  struct PhaseReset {
    obs::Gauge& gauge;
    ~PhaseReset() { gauge.set(0.0); }
  } phase_reset{phase};

  // One data-plane seed for the whole run, drawn before any site touches
  // the environment RNG: site i renders from split(site id), so its pcap
  // bytes depend only on (run seed, site) — never on which worker thread
  // renders it or in what order.
  const util::Rng stream_root(env_.rng().bits());

  struct SiteWork {
    std::unique_ptr<SiteProfiler> profiler;
    ProfilerConfig config;
    SiteRunReport report;
    std::vector<analysis::RawCapture> captures;
    bool sampled = false;
  };
  std::vector<SiteWork> work(sites.size());

  // Phase 1 — control plane, serial in site order. Allocation with
  // back-off, port selection, mirror sessions, congestion handling, and
  // the sampling decisions all mutate shared simulation state (clock,
  // switches, telemetry, environment RNG), so they stay single-threaded
  // and deterministic.
  {
    phase.set(1.0);
    OBS_SPAN_SIM("run_sites/control", &env_.clock());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const testbed::SiteId site = sites[i];
      SiteWork& w = work[i];
      w.config = config_;
      if (mode == ProfileMode::kSingleExperiment && slice_ports != nullptr) {
        // Single-experiment mode can only monitor the slice's own ports.
        w.config.plan.policy = PortPolicy::kFixed;
        w.config.fixed_ports.clear();
        for (const testbed::GlobalPortId& p : *slice_ports) {
          if (p.site == site) w.config.fixed_ports.push_back(p.port);
        }
      }
      w.profiler = std::make_unique<SiteProfiler>(env_, site, w.config);
      w.report.site = site;
      w.report.site_name = env_.federation().site(site).name();

      const SetupResult setup = w.profiler->setup();
      w.report.instances = setup.instances_granted;
      w.report.backoffs = setup.backoffs_used;
      w.report.error = setup.error;
      if (!setup.ok) {
        w.report.outcome = RunOutcome::kFailed;
        continue;
      }
      w.report.outcome = w.profiler->run();
      w.sampled = true;
    }
  }

  // Phase 2 — data plane, one task per (site, sample). Rendering (frame
  // synthesis, capture serialization) and the transfer compression
  // round-trip touch only the sample's own snapshot plus immutable
  // workload profiles, so every pending sample across every site fans out
  // across the shared pool as its own subtask. A testbed-wide profile
  // dominated by one hot site therefore still fills the pool: wall-clock
  // scales with total samples, not with the slowest site.
  {
    phase.set(2.0);
    OBS_SPAN("run_sites/render");

    // Flatten the work-list. Sample k of site i renders from
    // Rng(run_seed).split(site).split(k), so its bytes depend only on
    // (run seed, site, k) — independent of scheduling.
    struct RenderTask {
      std::size_t site_index = 0;
      std::size_t sample = 0;
    };
    struct RenderedSample {
      analysis::RawCapture capture;
      std::uint64_t pcap_bytes = 0;
      std::uint64_t transferred_bytes = 0;
    };
    std::vector<RenderTask> tasks;
    std::vector<std::vector<RenderedSample>> rendered(work.size());
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!work[i].sampled) continue;
      const std::size_t n = work[i].profiler->pending_sample_count();
      rendered[i].resize(n);
      for (std::size_t k = 0; k < n; ++k) tasks.push_back({i, k});
    }

    auto render_one = [&](std::size_t t) {
      const RenderTask& task = tasks[t];
      SiteWork& w = work[task.site_index];
      RenderedSample& slot = rendered[task.site_index][task.sample];
      util::Rng rng =
          stream_root.split(sites[task.site_index].value, task.sample);
      slot.capture = w.profiler->render_sample(task.sample, rng);
      slot.pcap_bytes = slot.capture.pcap.size();
      if (w.config.compress_transfers) {
        // The download path of Fig. 7 step 4: compress at the site,
        // transfer, decompress at the coordinator. The compression scratch
        // (a 32 K-slot hash table) is reused across every sample the same
        // worker compresses.
        static thread_local util::Compressor t_compressor;
        const std::vector<std::uint8_t> wire = [&] {
          OBS_SPAN_ARGS("render/compress",
                        .site = static_cast<std::int64_t>(
                            sites[task.site_index].value),
                        .sample = static_cast<std::int64_t>(task.sample));
          return t_compressor.compress(slot.capture.pcap);
        }();
        slot.transferred_bytes = wire.size();
        auto restored = util::decompress(wire);
        if (restored.has_value()) {
          slot.capture.pcap = std::move(*restored);
        }
      } else {
        slot.transferred_bytes = slot.capture.pcap.size();
      }
    };
    // One work-stealing task per (site, sample); the synthesis inside a
    // sample sub-spawns per-burst tasks into the same pool, so a skewed
    // hot-site workload still saturates every worker instead of serializing
    // behind the heaviest sample.
    const std::size_t threads = util::thread_count();
    if (tasks.size() <= 1 || threads <= 1) {
      for (std::size_t t = 0; t < tasks.size(); ++t) render_one(t);
    } else {
      util::ThreadPool& pool = util::shared_pool();
      pool.ensure_size(threads - 1);  // The waiting caller helps too.
      util::TaskGroup group(pool);
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        group.spawn([&render_one, t] { render_one(t); });
      }
      group.wait();
    }

    // Hand each site its captures back in sample order; the per-sample
    // byte accounting sums in the same order the per-site loop used to.
    for (std::size_t i = 0; i < work.size(); ++i) {
      SiteWork& w = work[i];
      if (!w.sampled) continue;
      std::vector<analysis::RawCapture> captures;
      captures.reserve(rendered[i].size());
      for (RenderedSample& r : rendered[i]) {
        w.report.pcap_bytes += r.pcap_bytes;
        w.report.transferred_bytes += r.transferred_bytes;
        captures.push_back(std::move(r.capture));
      }
      w.profiler->commit_rendered(std::move(captures));
      w.captures = w.profiler->gather();
      w.report.samples = w.captures.size();
    }
  }

  // Phase 3 — merge in site order; teardown mutates switch/allocator
  // state, so it is serial again.
  phase.set(3.0);
  OBS_SPAN("run_sites/merge");
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const testbed::SiteId site = sites[i];
    SiteWork& w = work[i];
    obs::registry()
        .counter("patchwork_coordinator_site_runs_total",
                 "Per-site profiling outcomes",
                 {{"outcome", std::string(to_string(w.report.outcome))}})
        .add();
    if (w.sampled) {
      if (mode == ProfileMode::kSingleExperiment && slice_ports != nullptr) {
        // Keep only captures of the slice's ports (access control:
        // single-experiment users cannot see other users' traffic).
        std::erase_if(w.captures, [&](const analysis::RawCapture& c) {
          return std::none_of(slice_ports->begin(), slice_ports->end(),
                              [&](const testbed::GlobalPortId& p) {
                                return p.site == site &&
                                       p.port.value == c.port;
                              });
        });
      }
      std::move(w.captures.begin(), w.captures.end(),
                std::back_inserter(out.captures));
      w.profiler->teardown();
    }
    out.reports.push_back(std::move(w.report));
  }
  return out;
}

}  // namespace patchwork::core
