// Runtime resource scaling with a "nice" factor.
//
// Design limitation (2) in Section 6.3 and the Section 9 future work:
// Patchwork's resources are fixed at start-up; "adding dynamic scaling
// could improve Patchwork's performance (e.g., by taking advantage of
// offloading opportunities that become available at runtime) and
// flexibility (e.g., by having a 'nice' factor for the profiler to scale
// down its use of resources if the testbed is being highly utilized by
// other researchers)."
//
// DynamicScaler is the decision policy: given the testbed pressure it
// observes (how contended dedicated NICs are, how busy the testbed is) it
// returns the instance count a profiler *should* be running. SiteProfiler
// applies the decision between cycles by acquiring or yielding extra
// listening nodes on top of its start-up baseline.
#pragma once

#include <algorithm>
#include <cstdint>

namespace patchwork::core {

/// What the profiler can observe about contention at runtime.
struct TestbedPressure {
  /// Fraction of the site's dedicated NICs held by other slices.
  double nic_contention = 0.0;
  /// Testbed-wide activity relative to its long-run norm (1 = normal);
  /// derived from telemetry or the slice count.
  double activity_level = 1.0;

  /// Scalar pressure in [0, 1]: the scheduler reacts to whichever signal
  /// is more constrained.
  double combined() const {
    const double activity = std::clamp((activity_level - 0.5) / 2.0, 0.0, 1.0);
    return std::clamp(std::max(nic_contention, activity), 0.0, 1.0);
  }
};

class DynamicScaler {
 public:
  struct Policy {
    /// Politeness in [0, 1]: 0 grabs whatever is free, 1 never grows and
    /// sheds extras at the slightest contention.
    double nice = 0.5;
    std::uint32_t min_instances = 1;
    std::uint32_t max_instances = 6;
    /// Base pressure thresholds at nice = 0 (shifted down as nice rises).
    /// shed_above > 1 at nice = 0 means a fully greedy profiler never
    /// sheds voluntarily.
    double grow_below = 0.6;
    double shed_above = 1.05;
  };

  explicit DynamicScaler(Policy policy) : policy_(policy) {}
  DynamicScaler() : DynamicScaler(Policy()) {}

  /// Effective thresholds after the nice factor: a polite profiler grows
  /// only into a very idle testbed and sheds early.
  double grow_threshold() const {
    return policy_.grow_below * (1.0 - policy_.nice);
  }
  double shed_threshold() const {
    return policy_.shed_above * (1.0 - 0.7 * policy_.nice);
  }

  /// Desired instance count given the current one, observed pressure, and
  /// how many dedicated NICs are actually free to take.
  std::uint32_t target_instances(std::uint32_t current,
                                 const TestbedPressure& pressure,
                                 std::size_t nics_free) const;

  const Policy& policy() const { return policy_; }

 private:
  Policy policy_;
};

}  // namespace patchwork::core
