// Switch-side congestion detection (requirement R3 / Section 6.2.2).
//
// Port mirroring funnels a port's Tx *and* Rx channels into a single
// egress channel; when Mirrored(Tx) + Mirrored(Rx) exceeds the egress line
// rate, "frames will simply be dropped at the switch before they are
// transmitted". Patchwork cannot see those drops in its own capture, so it
// "queries the switch for the rates of Mirrored(Tx) and Mirrored(Rx), to
// infer whether frames are likely being dropped" — that inference lives
// here, and its verdict is logged with every sample.
#pragma once

#include <cstdint>
#include <optional>

#include "telemetry/mflib.hpp"
#include "testbed/switch.hpp"
#include "util/units.hpp"

namespace patchwork::core {

struct CongestionVerdict {
  bool likely_dropping = false;
  double offered_bps = 0.0;       ///< Mirrored(Tx) + Mirrored(Rx).
  double egress_capacity_bps = 0.0;
  /// Estimated fraction of mirrored frames lost at the switch.
  double estimated_drop_fraction = 0.0;

  /// Expected drops over a sample window at `offered_pps`.
  std::uint64_t estimated_drops(double offered_pps,
                                util::Nanos window) const {
    return static_cast<std::uint64_t>(estimated_drop_fraction * offered_pps *
                                      util::to_seconds(window));
  }
};

class CongestionDetector {
 public:
  CongestionDetector(const telemetry::MfLib& mflib, util::Nanos rate_window)
      : mflib_(mflib), rate_window_(rate_window) {}

  /// Assess the mirror feeding `dest` from `source` at `site`. Uses the
  /// telemetry rates of the mirrored port (as Patchwork does at runtime),
  /// not ground truth from the switch model.
  CongestionVerdict assess(testbed::SiteId site,
                           const testbed::MirrorSession& session,
                           double egress_line_rate_bps) const;

 private:
  const telemetry::MfLib& mflib_;
  util::Nanos rate_window_;
};

}  // namespace patchwork::core
