#include "core/mirror_scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace patchwork::core {

MirrorScheduler::MirrorScheduler(testbed::ToRSwitch& tor,
                                 std::vector<testbed::PortId> destinations,
                                 Policy policy)
    : tor_(tor), destinations_(std::move(destinations)), policy_(policy) {
  assert(!destinations_.empty());
  assert(policy_.quantum > 0);
}

MirrorRequestId MirrorScheduler::submit(MirrorRequest request) {
  assert(request.duration > 0);
  const MirrorRequestId id = next_id_++;
  const util::Nanos remaining = request.duration;
  pending_.push_back(
      Pending{id, std::move(request), remaining, next_sequence_++});
  return id;
}

bool MirrorScheduler::cancel(MirrorRequestId id, util::Nanos now) {
  const auto it = std::find_if(
      pending_.begin(), pending_.end(),
      [id](const Pending& p) { return p.id == id; });
  if (it != pending_.end()) {
    pending_.erase(it);
    return true;
  }
  const auto lease = std::find_if(
      active_.begin(), active_.end(),
      [id](const MirrorLease& l) { return l.request == id; });
  if (lease != active_.end()) {
    // Credit the elapsed quantum, clamped to the lease window: the user
    // held the port for that long even though the lease never expired.
    const util::Nanos end = std::clamp(now, lease->started, lease->expires);
    served_[lease->user] += end - lease->started;
    tor_.remove_mirror(lease->source);
    active_remaining_.erase(id);
    active_.erase(lease);
    return true;
  }
  return false;
}

bool MirrorScheduler::is_pending(MirrorRequestId id) const {
  return std::any_of(pending_.begin(), pending_.end(),
                     [id](const Pending& p) { return p.id == id; });
}

util::Nanos MirrorScheduler::remaining(MirrorRequestId id) const {
  for (const Pending& p : pending_) {
    if (p.id == id) return p.remaining;
  }
  const auto it = active_remaining_.find(id);
  return it == active_remaining_.end() ? 0 : it->second;
}

std::optional<MirrorLease> MirrorScheduler::lease_on(
    testbed::PortId destination) const {
  for (const MirrorLease& l : active_) {
    if (l.destination == destination) return l;
  }
  return std::nullopt;
}

bool MirrorScheduler::source_busy(testbed::PortId source) const {
  // Either the hardware is already mirroring it (possibly for a lease we
  // granted) or any mirror member conflict exists.
  return tor_.port_is_mirror_member(source);
}

void MirrorScheduler::expire_leases(util::Nanos now) {
  std::vector<MirrorLease> keep;
  for (MirrorLease& lease : active_) {
    if (lease.expires > now) {
      keep.push_back(lease);
      continue;
    }
    // The quantum consumed ends at lease.expires even if tick() runs late.
    const util::Nanos used = lease.expires - lease.started;
    served_[lease.user] += used;
    tor_.remove_mirror(lease.source);
    util::Nanos& rem = active_remaining_[lease.request];
    rem = rem > used ? rem - used : 0;
    if (rem > 0) {
      // Unfinished: back to the queue with the remaining time. Keeps its
      // original id so callers can track it.
      pending_.push_back(Pending{lease.request,
                                 MirrorRequest{lease.user, lease.source,
                                               lease.directions, rem},
                                 rem, next_sequence_++});
    }
    active_remaining_.erase(lease.request);
  }
  active_ = std::move(keep);
}

void MirrorScheduler::fill_slots(util::Nanos now) {
  for (testbed::PortId dest : destinations_) {
    if (lease_on(dest).has_value()) continue;
    // Pick the admissible pending request whose user has the least
    // accumulated service time; FIFO within a user.
    auto best = pending_.end();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (source_busy(it->request.source)) continue;
      if (it->request.source == dest) continue;
      if (best == pending_.end()) {
        best = it;
        continue;
      }
      const util::Nanos best_served = served_[best->request.user];
      const util::Nanos it_served = served_[it->request.user];
      if (it_served < best_served ||
          (it_served == best_served && it->sequence < best->sequence)) {
        best = it;
      }
    }
    if (best == pending_.end()) continue;
    testbed::MirrorSession session{best->request.source,
                                   best->request.directions, dest};
    if (!tor_.add_mirror(session)) {
      // Hardware refused (e.g. destination became a mirror member out of
      // band); leave the request queued.
      continue;
    }
    MirrorLease lease;
    lease.request = best->id;
    lease.user = best->request.user;
    lease.source = best->request.source;
    lease.destination = dest;
    lease.directions = best->request.directions;
    lease.started = now;
    lease.expires = now + std::min(policy_.quantum, best->remaining);
    active_remaining_[best->id] = best->remaining;
    active_.push_back(lease);
    ++leases_granted_;
    pending_.erase(best);
  }
}

void MirrorScheduler::tick(util::Nanos now) {
  expire_leases(now);
  fill_slots(now);
}

}  // namespace patchwork::core
