#include "core/testbed_backend.hpp"

#include <map>

#include "sim/clock.hpp"
#include "testbed/activity_model.hpp"
#include "testbed/federation.hpp"
#include "traffic/engine.hpp"
#include "traffic/workload.hpp"

namespace patchwork::core {

namespace {

class SimBackend final : public TestbedBackend {
 public:
  explicit SimBackend(SimBackendOptions options)
      : options_(std::move(options)),
        rng_(options_.seed),
        fed_(testbed::make_fabric_like_federation(rng_, options_.federation)),
        mflib_(fed_),
        traffic_(fed_, activity_, make_profiles(), rng_.fork()),
        env_(clock_, fed_, mflib_, traffic_, rng_),
        allocator_(fed_.site(kSite), rng_, no_failures()) {
    env_.advance(11 * util::kMinute);  // Telemetry warm-up.
  }

  std::string name() const override { return options_.name; }

  std::size_t available_capture_nics() const override {
    return fed_.site(kSite).count_available_nics(
        testbed::NicKind::kDedicatedConnectX);
  }

  bool supports_offload() const override {
    return options_.offload && fed_.site(kSite).has_fpga();
  }

  std::variant<CaptureLease, testbed::AllocError> acquire_capture_node()
      override {
    testbed::SliceRequest request;
    request.site = kSite;
    request.vms.push_back(testbed::VmRequest{});
    testbed::AllocResult result = allocator_.allocate(request);
    env_.advance(result.latency);
    if (!result.ok()) return *result.error;
    CaptureLease lease;
    lease.id = next_lease_++;
    for (const testbed::GrantedVm& vm : result.grant->vms) {
      for (testbed::PortId p : vm.nic_ports) lease.destinations.push_back(p);
    }
    grants_[lease.id] = std::move(*result.grant);
    return lease;
  }

  void release(const CaptureLease& lease) override {
    const auto it = grants_.find(lease.id);
    if (it == grants_.end()) return;
    allocator_.release(it->second);
    grants_.erase(it);
  }

  bool mirror(testbed::PortId source, testbed::PortId destination) override {
    return fed_.site(kSite).tor().add_mirror(
        {source, testbed::MirrorDirections::kBoth, destination});
  }

  bool retarget(testbed::PortId old_source,
                testbed::PortId new_source) override {
    return fed_.site(kSite).tor().retarget_mirror(old_source, new_source);
  }

  bool unmirror(testbed::PortId source) override {
    return fed_.site(kSite).tor().remove_mirror(source);
  }

  std::vector<telemetry::PortRate> port_rates(
      util::Nanos window) const override {
    return mflib_.site_rates_sorted(kSite, window);
  }

  traffic::WindowTraffic sample(testbed::PortId source, util::Nanos duration,
                                std::size_t max_frames) override {
    traffic::WindowTraffic window = traffic_.window_for_port(
        {kSite, source}, clock_.now(), duration, max_frames);
    // Honour the switch's mirror-capacity rule if a session exists.
    const auto session = fed_.site(kSite).tor().mirror_for_source(source);
    if (session.has_value()) {
      const double delivery =
          fed_.site(kSite).tor().mirror_delivery_fraction(*session);
      if (delivery < 1.0) {
        std::vector<net::Frame> kept;
        for (net::Frame& f : window.frames) {
          if (rng_.chance(delivery)) kept.push_back(std::move(f));
        }
        window.frames = std::move(kept);
        window.offered_pps *= delivery;
      }
    }
    env_.advance(duration);
    return window;
  }

  void advance(util::Nanos dt) override { env_.advance(dt); }
  util::Nanos now() const override { return clock_.now(); }

 private:
  static constexpr testbed::SiteId kSite{0};

  static testbed::Allocator::Tuning no_failures() {
    testbed::Allocator::Tuning t;
    t.backend_failure_rate = 0.0;
    return t;
  }

  std::vector<traffic::SiteWorkloadProfile> make_profiles() {
    auto profiles = traffic::make_site_profiles(rng_, fed_.site_count());
    if (options_.vlan_only_underlay) {
      for (auto& p : profiles) {
        // Emulab-style isolation: VLANs, no MPLS/pseudowire underlay.
        p.encapsulation.mpls_probability = 0.0;
        p.encapsulation.pseudowire_probability = 0.0;
      }
    }
    return profiles;
  }

  SimBackendOptions options_;
  util::Rng rng_;
  sim::Clock clock_;
  testbed::ActivityModel activity_;
  testbed::Federation fed_;
  telemetry::MfLib mflib_;
  traffic::TrafficEngine traffic_;
  Environment env_;
  testbed::Allocator allocator_;
  std::map<std::uint64_t, testbed::SliceGrant> grants_;
  std::uint64_t next_lease_ = 1;
};

}  // namespace

std::unique_ptr<TestbedBackend> make_sim_backend(SimBackendOptions options) {
  return std::make_unique<SimBackend>(std::move(options));
}

std::unique_ptr<TestbedBackend> make_fabric_like_backend(std::uint64_t seed) {
  SimBackendOptions options;
  options.name = "fabric-sim";
  options.seed = seed;
  options.offload = true;
  options.federation.fpga_site_fraction = 1.0;  // Site 0 gets an FPGA.
  return make_sim_backend(std::move(options));
}

std::unique_ptr<TestbedBackend> make_emulab_like_backend(std::uint64_t seed) {
  SimBackendOptions options;
  options.name = "emulab-sim";
  options.seed = seed;
  options.offload = false;
  options.vlan_only_underlay = true;
  options.federation.sites = 4;            // A single-cluster testbed.
  options.federation.port_rate_bps = 25e9;  // Far fewer network resources.
  options.federation.min_dedicated_nics = 1;
  options.federation.max_dedicated_nics = 2;
  options.federation.fpga_site_fraction = 0.0;
  options.federation.min_downlinks = 8;
  options.federation.max_downlinks = 16;
  return make_sim_backend(std::move(options));
}

}  // namespace patchwork::core
