// Per-site Patchwork profiling instance group.
//
// One SiteProfiler owns everything Patchwork does inside a single FABRIC
// site (Section 6.2): the setup phase with iterative back-off, the
// sampling phase with port cycling and congestion detection, the watchdog,
// and the gathering of pcaps + logs for the coordinator. Instances at
// different sites are fully independent (requirement R3) — the coordinator
// simply runs one SiteProfiler per site.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/digest.hpp"
#include "capture/session.hpp"
#include "core/config.hpp"
#include "core/congestion.hpp"
#include "core/environment.hpp"
#include "core/port_selector.hpp"
#include "host/host_system.hpp"
#include "testbed/allocator.hpp"
#include "util/logging.hpp"

namespace patchwork::core {

/// Outcome classification used by Fig. 10.
enum class RunOutcome : std::uint8_t {
  kSuccess,     ///< Full allocation, sampling completed.
  kDegraded,    ///< Completed after scaling down via back-off.
  kFailed,      ///< Could not allocate resources / backend error.
  kIncomplete,  ///< Instance crashed mid-run (watchdog caught it).
};

std::string_view to_string(RunOutcome o);

struct SetupResult {
  bool ok = false;
  std::uint32_t instances_granted = 0;
  std::uint32_t backoffs_used = 0;
  std::optional<testbed::AllocError> error;
  util::Nanos allocation_latency = 0;
};

class SiteProfiler {
 public:
  SiteProfiler(Environment& env, testbed::SiteId site, ProfilerConfig config,
               host::HostSpec host = {});

  /// Setup phase (Section 6.2.1): discover resources, run an allocation
  /// simulation, request the slice, backing off on scarcity.
  SetupResult setup();

  /// Sampling phase (Section 6.2.2): cycles x runs x samples, with port
  /// cycling, congestion detection, watchdog, and instance logging.
  ///
  /// Control/data split: run() executes only the control plane — port
  /// cycling, mirror (re)configuration, congestion detection and
  /// mitigation, the watchdog — and snapshots every sampling decision as a
  /// PendingSample. The data plane (traffic synthesis, capture, pcap
  /// serialization) is rendered later by render_pending(), so the
  /// coordinator can fan sites out across worker threads while the shared
  /// simulation state is only ever touched serially.
  RunOutcome run();

  /// Render the data plane for every sample run() decided to take: frame
  /// synthesis from the snapshotted port rates, mirror-delivery thinning,
  /// and the configured capture path. Sample k renders from `rng.split(k)`
  /// (see render_sample), so a caller that pins the stream (the coordinator
  /// splits one child stream per site off the run seed) gets byte-identical
  /// pcaps regardless of which thread renders which sample. Touches no
  /// shared simulation state — safe to run concurrently across
  /// SiteProfilers. Equivalent to render_sample over every k followed by
  /// commit_rendered.
  void render_pending(util::Rng& rng);

  /// Render ONE pending sample (index k into the run() snapshot order) from
  /// its own RNG substream. Const and free of shared mutable state — the
  /// coordinator schedules every (site, sample) pair as an independent pool
  /// task, so wall-clock scales with total samples rather than with the
  /// slowest site. The per-sample log line lands in the returned capture's
  /// log bundle; commit_rendered replays it into the instance log.
  analysis::RawCapture render_sample(std::size_t k, util::Rng& rng) const;

  /// Accept the rendered captures back, in sample order (rendered[k] must
  /// come from render_sample(k)): appends them to the gather() bundle,
  /// replays their log lines into the instance log, and clears the pending
  /// snapshot. Serial — call from one thread after all renders complete.
  void commit_rendered(std::vector<analysis::RawCapture> rendered);

  /// Samples recorded by run() and not yet rendered.
  std::size_t pending_sample_count() const { return pending_.size(); }

  /// Gathering phase (Section 6.2.3): hand the pcaps + logs over. The
  /// profiler keeps nothing. Standalone callers may skip render_pending();
  /// gather() then renders with a stream forked from the environment RNG.
  std::vector<analysis::RawCapture> gather();

  /// Yield resources back to the testbed (Fig. 7, step 5).
  void teardown();

  const util::Logger& log() const { return log_; }
  const SetupResult& setup_result() const { return setup_result_; }
  std::uint32_t monitored_port_slots() const;

  // --- Dynamic scaling (Section 6.3 limitation 2) -------------------------
  /// Instances currently held: the start-up baseline plus runtime extras.
  std::uint32_t current_instances() const;
  /// The contention signal the scaler reacts to, derived from the site's
  /// NIC inventory and testbed-wide telemetry.
  TestbedPressure observe_pressure() const;
  std::uint32_t scale_ups() const { return scale_ups_; }
  std::uint32_t scale_downs() const { return scale_downs_; }

  /// Storage granted to this profiler's slice (watchdog budget).
  std::uint64_t storage_budget() const;

 private:
  struct MirrorSlot {
    testbed::PortId destination;        ///< Our NIC-facing port.
    std::optional<testbed::PortId> source;  ///< Currently mirrored port.
    PortSelector selector;
    /// -1 for baseline slots; otherwise the index into extra_grants_ that
    /// owns this slot (so shedding releases the right resources).
    int grant_tag = -1;
  };

  /// Apply one scaling decision between cycles (dynamic_scaling only).
  void rescale();
  void add_slots_for_grant(const testbed::SliceGrant& grant, int grant_tag);

  /// Candidate rates for cycling: every site port not already in a mirror
  /// and not one of our NIC ports.
  std::vector<telemetry::PortRate> candidate_rates() const;
  void cycle_ports();
  bool take_sample(MirrorSlot& slot, std::uint32_t cycle, std::uint32_t run,
                   std::uint32_t sample);

  /// One control-plane sampling decision, snapshotted by take_sample() and
  /// rendered later by render_pending(). Holds everything the data plane
  /// needs so rendering reads no mutable simulation state.
  struct PendingSample {
    testbed::PortId source;
    std::uint32_t cycle = 0;
    std::uint32_t run = 0;
    std::uint32_t sample = 0;
    util::Nanos start = 0;           ///< Clock time of the decision.
    double target_bps = 0.0;         ///< Mirrored rate per session directions.
    double delivery = 1.0;           ///< Mirror delivery fraction.
    double drop_fraction = 0.0;      ///< Congestion-estimated drop fraction.
  };

  Environment& env_;
  testbed::SiteId site_;
  ProfilerConfig config_;
  host::HostSpec host_;
  testbed::Allocator allocator_;
  util::Logger log_;
  std::string component_;

  SetupResult setup_result_;
  std::optional<testbed::SliceGrant> grant_;
  std::vector<testbed::SliceGrant> extra_grants_;  ///< Runtime scale-ups.
  std::vector<MirrorSlot> slots_;
  std::vector<PendingSample> pending_;
  std::vector<analysis::RawCapture> captures_;
  /// Worst-case storage admitted by the watchdog. Rendering is deferred, so
  /// admission charges the pcap-format upper bound per sample instead of
  /// the realized size: global header + max_frames * (snaplen + record
  /// header).
  std::uint64_t storage_admitted_ = 0;
  std::uint32_t scale_ups_ = 0;
  std::uint32_t scale_downs_ = 0;
  std::uint64_t lifetime_cycles_ = 0;
  bool crashed_ = false;
};

}  // namespace patchwork::core
