// Per-site Patchwork profiling instance group.
//
// One SiteProfiler owns everything Patchwork does inside a single FABRIC
// site (Section 6.2): the setup phase with iterative back-off, the
// sampling phase with port cycling and congestion detection, the watchdog,
// and the gathering of pcaps + logs for the coordinator. Instances at
// different sites are fully independent (requirement R3) — the coordinator
// simply runs one SiteProfiler per site.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/digest.hpp"
#include "capture/session.hpp"
#include "core/config.hpp"
#include "core/congestion.hpp"
#include "core/environment.hpp"
#include "core/port_selector.hpp"
#include "host/host_system.hpp"
#include "testbed/allocator.hpp"
#include "util/logging.hpp"

namespace patchwork::core {

/// Outcome classification used by Fig. 10.
enum class RunOutcome : std::uint8_t {
  kSuccess,     ///< Full allocation, sampling completed.
  kDegraded,    ///< Completed after scaling down via back-off.
  kFailed,      ///< Could not allocate resources / backend error.
  kIncomplete,  ///< Instance crashed mid-run (watchdog caught it).
};

std::string_view to_string(RunOutcome o);

struct SetupResult {
  bool ok = false;
  std::uint32_t instances_granted = 0;
  std::uint32_t backoffs_used = 0;
  std::optional<testbed::AllocError> error;
  util::Nanos allocation_latency = 0;
};

class SiteProfiler {
 public:
  SiteProfiler(Environment& env, testbed::SiteId site, ProfilerConfig config,
               host::HostSpec host = {});

  /// Setup phase (Section 6.2.1): discover resources, run an allocation
  /// simulation, request the slice, backing off on scarcity.
  SetupResult setup();

  /// Sampling phase (Section 6.2.2): cycles x runs x samples, with port
  /// cycling, congestion detection, watchdog, and instance logging.
  RunOutcome run();

  /// Gathering phase (Section 6.2.3): hand the pcaps + logs over. The
  /// profiler keeps nothing.
  std::vector<analysis::RawCapture> gather();

  /// Yield resources back to the testbed (Fig. 7, step 5).
  void teardown();

  const util::Logger& log() const { return log_; }
  const SetupResult& setup_result() const { return setup_result_; }
  std::uint32_t monitored_port_slots() const;

  // --- Dynamic scaling (Section 6.3 limitation 2) -------------------------
  /// Instances currently held: the start-up baseline plus runtime extras.
  std::uint32_t current_instances() const;
  /// The contention signal the scaler reacts to, derived from the site's
  /// NIC inventory and testbed-wide telemetry.
  TestbedPressure observe_pressure() const;
  std::uint32_t scale_ups() const { return scale_ups_; }
  std::uint32_t scale_downs() const { return scale_downs_; }

  /// Storage granted to this profiler's slice (watchdog budget).
  std::uint64_t storage_budget() const;

 private:
  struct MirrorSlot {
    testbed::PortId destination;        ///< Our NIC-facing port.
    std::optional<testbed::PortId> source;  ///< Currently mirrored port.
    PortSelector selector;
    /// -1 for baseline slots; otherwise the index into extra_grants_ that
    /// owns this slot (so shedding releases the right resources).
    int grant_tag = -1;
  };

  /// Apply one scaling decision between cycles (dynamic_scaling only).
  void rescale();
  void add_slots_for_grant(const testbed::SliceGrant& grant, int grant_tag);

  /// Candidate rates for cycling: every site port not already in a mirror
  /// and not one of our NIC ports.
  std::vector<telemetry::PortRate> candidate_rates() const;
  void cycle_ports();
  bool take_sample(MirrorSlot& slot, std::uint32_t cycle, std::uint32_t run,
                   std::uint32_t sample);

  Environment& env_;
  testbed::SiteId site_;
  ProfilerConfig config_;
  host::HostSpec host_;
  testbed::Allocator allocator_;
  util::Logger log_;
  std::string component_;

  SetupResult setup_result_;
  std::optional<testbed::SliceGrant> grant_;
  std::vector<testbed::SliceGrant> extra_grants_;  ///< Runtime scale-ups.
  std::vector<MirrorSlot> slots_;
  std::vector<analysis::RawCapture> captures_;
  std::uint64_t stored_bytes_ = 0;
  std::uint32_t scale_ups_ = 0;
  std::uint32_t scale_downs_ = 0;
  std::uint64_t lifetime_cycles_ = 0;
  bool crashed_ = false;
};

}  // namespace patchwork::core
