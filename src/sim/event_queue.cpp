#include "sim/event_queue.hpp"

#include <cassert>

namespace patchwork::sim {

void EventQueue::schedule_at(util::Nanos when, Action action) {
  assert(when >= clock_.now());
  events_.push(Event{when, next_sequence_++, std::move(action)});
}

void EventQueue::schedule_every(util::Nanos period, util::Nanos until,
                                Action action) {
  assert(period > 0);
  for (util::Nanos t = clock_.now() + period; t < until; t += period) {
    events_.push(Event{t, next_sequence_++, action});
  }
}

std::size_t EventQueue::run_until(util::Nanos horizon) {
  std::size_t executed = 0;
  while (!events_.empty() && events_.top().when <= horizon) {
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the action by re-pushing is wasteful, so pop into a local.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    clock_.advance_to(ev.when);
    ev.action();
    ++executed;
  }
  // Time passes up to the horizon even if later events remain queued.
  if (clock_.now() < horizon) {
    clock_.advance_to(horizon);
  }
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!events_.empty()) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    clock_.advance_to(ev.when);
    ev.action();
    ++executed;
  }
  return executed;
}

}  // namespace patchwork::sim
