// Discrete-event simulation core.
//
// A minimal but complete engine: schedule closures at absolute or relative
// simulated times, run until quiescence or a horizon. Ties are broken by
// insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/clock.hpp"
#include "util/units.hpp"

namespace patchwork::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  explicit EventQueue(Clock& clock) : clock_(clock) {}

  /// Schedule `action` at absolute simulated time `when` (>= now).
  void schedule_at(util::Nanos when, Action action);

  /// Schedule `action` `delay` nanoseconds from now.
  void schedule_in(util::Nanos delay, Action action) {
    schedule_at(clock_.now() + delay, std::move(action));
  }

  /// Schedule a repeating action every `period` ns, starting at now+period,
  /// until `until` (exclusive). The action receives no arguments; it can
  /// read the clock.
  void schedule_every(util::Nanos period, util::Nanos until, Action action);

  /// Run events in time order until the queue empties or the next event is
  /// past `horizon`. Returns the number of events executed.
  std::size_t run_until(util::Nanos horizon);

  /// Run until the queue is empty.
  std::size_t run_all();

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }
  Clock& clock() { return clock_; }

 private:
  struct Event {
    util::Nanos when;
    std::uint64_t sequence;  ///< FIFO among same-time events.
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  Clock& clock_;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace patchwork::sim
