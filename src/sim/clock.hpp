// Simulated time.
//
// Nothing in the repository reads wall-clock time; every component that
// needs "now" holds a reference to a sim::Clock advanced by the event loop
// (or directly by phase drivers). Time is integer nanoseconds from
// experiment start.
#pragma once

#include <cassert>

#include "util/units.hpp"

namespace patchwork::sim {

class Clock {
 public:
  util::Nanos now() const { return now_; }

  /// Monotonic advance; asserts against time travel.
  void advance_to(util::Nanos t) {
    assert(t >= now_);
    now_ = t;
  }
  void advance_by(util::Nanos delta) { now_ += delta; }

 private:
  util::Nanos now_ = 0;
};

}  // namespace patchwork::sim
