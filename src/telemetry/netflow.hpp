// NetFlow v5 generation and collection.
//
// Section 4: "In previous work, we set up NetFlow generation and
// collection within a single FABRIC experiment to assess the detail we
// could obtain" — concluding that operator-style summaries are too coarse
// for testbed users. This module implements that comparison point for
// real: a v5 flow cache with active/idle timeouts fed by dissected frames,
// a byte-exact v5 exporter (24-byte header + 48-byte records, up to 30 per
// datagram), and a collector that parses the export stream back.
//
// Deliberate v5 limitations are preserved: IPv4 only, unidirectional
// flows, no virtualization tags — exactly the blind spots Patchwork's
// tag-aware classifier fixes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/parser.hpp"
#include "util/units.hpp"

namespace patchwork::telemetry {

/// One NetFlow v5 flow record (the 48-byte wire struct's useful fields).
struct NetflowRecord {
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint32_t packets = 0;
  std::uint32_t octets = 0;
  std::uint32_t first_ms = 0;  ///< SysUptime at first packet.
  std::uint32_t last_ms = 0;   ///< SysUptime at last packet.
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t tcp_flags = 0;  ///< OR of all packets' flags.
  std::uint8_t protocol = 0;
};

inline constexpr std::size_t kNetflowHeaderSize = 24;
inline constexpr std::size_t kNetflowRecordSize = 48;
inline constexpr std::size_t kNetflowMaxRecordsPerPacket = 30;

/// v5 flow cache: aggregates packets into unidirectional flows and expires
/// them by the classic active/idle timeout rules.
class NetflowCache {
 public:
  struct Config {
    util::Nanos active_timeout = 60 * util::kSecond;
    util::Nanos idle_timeout = 15 * util::kSecond;
  };

  NetflowCache() : NetflowCache(Config()) {}
  explicit NetflowCache(Config config) : config_(config) {}

  /// Observe one dissected frame at absolute time `now`. Non-IPv4 frames
  /// are ignored (v5 is IPv4-only). Returns true if the frame was counted.
  bool observe(const net::ParsedFrame& frame, util::Nanos now);

  /// Expire flows per the timeout rules as of `now`; expired records move
  /// to the export queue.
  void sweep(util::Nanos now);

  /// Expire everything (end of metering).
  void flush(util::Nanos now);

  /// Records expired so far (drained by the exporter).
  std::vector<NetflowRecord> drain();

  std::size_t active_flows() const { return flows_.size(); }
  std::uint64_t ignored_frames() const { return ignored_; }

 private:
  struct Key {
    std::uint32_t src = 0, dst = 0;
    std::uint16_t sport = 0, dport = 0;
    std::uint8_t proto = 0;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    NetflowRecord record;
    /// Octets accumulate in 64 bits: a long-lived flow used to wrap the
    /// record's uint32 silently before the active timeout exported it. The
    /// 32-bit wire field is refreshed from this on every observation, and
    /// a flow about to exceed it is exported and restarted (emit-and-reset)
    /// so no octet is ever lost to truncation.
    std::uint64_t octets = 0;
    util::Nanos first = 0;
    util::Nanos last = 0;
  };

  Config config_;
  std::map<Key, Entry> flows_;
  std::vector<NetflowRecord> expired_;
  std::uint64_t ignored_ = 0;
};

/// Serialize records into v5 export datagrams (several if > 30 records).
std::vector<std::vector<std::uint8_t>> netflow_export(
    std::vector<NetflowRecord> records, util::Nanos sys_uptime,
    std::uint32_t& flow_sequence);

/// Parse one export datagram. Returns nullopt on a malformed packet
/// (wrong version, inconsistent count/size).
struct NetflowPacket {
  std::uint32_t sys_uptime_ms = 0;
  std::uint32_t flow_sequence = 0;
  std::vector<NetflowRecord> records;
};
std::optional<NetflowPacket> netflow_collect(
    std::span<const std::uint8_t> datagram);

}  // namespace patchwork::telemetry
