// NetFlow v5 generation and collection.
//
// Section 4: "In previous work, we set up NetFlow generation and
// collection within a single FABRIC experiment to assess the detail we
// could obtain" — concluding that operator-style summaries are too coarse
// for testbed users. This module implements that comparison point for
// real: a v5 flow cache with active/idle timeouts fed by dissected frames,
// a byte-exact v5 exporter (24-byte header + 48-byte records, up to 30 per
// datagram), and a collector that parses the export stream back.
//
// Deliberate v5 limitations are preserved: IPv4 only, unidirectional
// flows, no virtualization tags — exactly the blind spots Patchwork's
// tag-aware classifier fixes.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "net/parser.hpp"
#include "util/units.hpp"

namespace patchwork::telemetry {

/// One NetFlow v5 flow record (the 48-byte wire struct's useful fields).
struct NetflowRecord {
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint32_t packets = 0;
  std::uint32_t octets = 0;
  std::uint32_t first_ms = 0;  ///< SysUptime at first packet.
  std::uint32_t last_ms = 0;   ///< SysUptime at last packet.
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t tcp_flags = 0;  ///< OR of all packets' flags.
  std::uint8_t protocol = 0;
};

inline constexpr std::size_t kNetflowHeaderSize = 24;
inline constexpr std::size_t kNetflowRecordSize = 48;
inline constexpr std::size_t kNetflowMaxRecordsPerPacket = 30;

/// v5 flow cache: aggregates packets into unidirectional flows and expires
/// them by the classic active/idle timeout rules.
class NetflowCache {
 public:
  struct Config {
    util::Nanos active_timeout = 60 * util::kSecond;
    util::Nanos idle_timeout = 15 * util::kSecond;
    /// Cache capacity in flows; 0 = unbounded (the legacy behaviour).
    /// When full, admitting a new flow evicts a deterministic victim: the
    /// flow with the oldest last-seen time, smallest key on ties — never
    /// an address- or hash-order accident, so an eviction storm drains
    /// identically on every run and worker count.
    std::size_t max_flows = 0;
  };

  /// Why a flow left the cache. Timeout expiries are attributed to the
  /// rule whose deadline passed first (idle wins exact ties): a flow that
  /// went quiet is an idle expiry even when it is also old enough for the
  /// active timeout.
  enum class EvictCause : std::uint8_t {
    kCapacity,  ///< Displaced by a new flow under max_flows pressure.
    kIdle,      ///< idle_timeout without a packet.
    kActive,    ///< active_timeout since the first packet.
    kFlush,     ///< flush() at end of metering.
  };
  static constexpr std::size_t kEvictCauses = 4;

  NetflowCache() : NetflowCache(Config()) {}
  explicit NetflowCache(Config config) : config_(config) {}

  /// Observe one dissected frame at absolute time `now`. Non-IPv4 frames
  /// are ignored (v5 is IPv4-only). Returns true if the frame was counted.
  bool observe(const net::ParsedFrame& frame, util::Nanos now);

  /// Expire flows per the timeout rules as of `now`; expired records move
  /// to the export queue.
  void sweep(util::Nanos now);

  /// Expire everything (end of metering).
  void flush(util::Nanos now);

  /// Records expired so far (drained by the exporter).
  std::vector<NetflowRecord> drain();

  std::size_t active_flows() const { return flows_.size(); }
  std::uint64_t ignored_frames() const { return ignored_; }
  /// Flows that left the cache for `cause` so far. The same counts feed
  /// the obs registry as patchwork_netflow_evictions_total{cause=...}.
  std::uint64_t evictions(EvictCause cause) const {
    return evictions_[static_cast<std::size_t>(cause)];
  }

 private:
  struct Key {
    std::uint32_t src = 0, dst = 0;
    std::uint16_t sport = 0, dport = 0;
    std::uint8_t proto = 0;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    NetflowRecord record;
    /// Octets accumulate in 64 bits: a long-lived flow used to wrap the
    /// record's uint32 silently before the active timeout exported it. The
    /// 32-bit wire field is refreshed from this on every observation, and
    /// a flow about to exceed it is exported and restarted (emit-and-reset)
    /// so no octet is ever lost to truncation.
    std::uint64_t octets = 0;
    util::Nanos first = 0;
    util::Nanos last = 0;
  };

  /// Export `it`'s record, count it against `cause`, and drop the flow
  /// (and its recency-index entry). Returns the next iterator.
  std::map<Key, Entry>::iterator expire(std::map<Key, Entry>::iterator it,
                                        EvictCause cause);

  Config config_;
  std::map<Key, Entry> flows_;
  /// Recency index: (last-seen, key), kept in lockstep with flows_. Its
  /// begin() is the capacity-eviction victim — an ordered, content-only
  /// criterion, so victim choice is reproducible by construction.
  std::set<std::pair<util::Nanos, Key>> by_last_;
  std::vector<NetflowRecord> expired_;
  std::uint64_t ignored_ = 0;
  std::array<std::uint64_t, kEvictCauses> evictions_{};
};

/// Serialize records into v5 export datagrams (several if > 30 records).
std::vector<std::vector<std::uint8_t>> netflow_export(
    std::vector<NetflowRecord> records, util::Nanos sys_uptime,
    std::uint32_t& flow_sequence);

/// Parse one export datagram. Returns nullopt on a malformed packet
/// (wrong version, inconsistent count/size).
struct NetflowPacket {
  std::uint32_t sys_uptime_ms = 0;
  std::uint32_t flow_sequence = 0;
  std::vector<NetflowRecord> records;
};
std::optional<NetflowPacket> netflow_collect(
    std::span<const std::uint8_t> datagram);

}  // namespace patchwork::telemetry
