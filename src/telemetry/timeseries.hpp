// Time-series storage for polled telemetry.
//
// FABRIC stores SNMP-polled switch readings in a Prometheus database
// queried through MFlib (Section 3). This in-memory store provides the same
// access pattern: append-only (series key -> samples), range queries, and
// windowed rate derivation from monotonically-increasing counters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace patchwork::telemetry {

struct Sample {
  util::Nanos time = 0;
  double value = 0.0;
};

class TimeSeriesDb {
 public:
  void append(const std::string& series, util::Nanos time, double value);

  /// Samples in [from, to), in time order.
  std::vector<Sample> range(const std::string& series, util::Nanos from,
                            util::Nanos to) const;

  std::optional<Sample> latest(const std::string& series) const;

  /// Average derivative (per second) of a counter series over the window
  /// ending at the latest sample and extending back `window` ns. Returns
  /// nullopt with fewer than two samples in the window.
  std::optional<double> windowed_rate(const std::string& series,
                                      util::Nanos window) const;

  std::size_t series_count() const { return series_.size(); }
  std::size_t sample_count(const std::string& series) const;
  std::vector<std::string> series_names() const;

 private:
  std::map<std::string, std::vector<Sample>> series_;
};

}  // namespace patchwork::telemetry
