#include "telemetry/mflib.hpp"

#include <algorithm>

namespace patchwork::telemetry {

std::string port_series_name(testbed::GlobalPortId port,
                             testbed::Direction dir) {
  return to_string(port) +
         (dir == testbed::Direction::kTx ? "/tx_bytes" : "/rx_bytes");
}

void MfLib::poll_all(util::Nanos now) {
  for (testbed::SiteId sid : fed_.site_ids()) {
    const testbed::Site& site = fed_.site(sid);
    for (std::uint32_t p = 0; p < site.tor().port_count(); ++p) {
      const testbed::GlobalPortId gp{sid, testbed::PortId{p}};
      const testbed::PortCounters& c =
          site.tor().port(testbed::PortId{p}).counters();
      db_.append(port_series_name(gp, testbed::Direction::kTx), now,
                 static_cast<double>(c.tx_bytes));
      db_.append(port_series_name(gp, testbed::Direction::kRx), now,
                 static_cast<double>(c.rx_bytes));
    }
  }
  ++polls_;
}

std::optional<PortRate> MfLib::port_rate(testbed::GlobalPortId port,
                                         util::Nanos window) const {
  const auto tx =
      db_.windowed_rate(port_series_name(port, testbed::Direction::kTx),
                        window);
  const auto rx =
      db_.windowed_rate(port_series_name(port, testbed::Direction::kRx),
                        window);
  if (!tx || !rx) return std::nullopt;
  PortRate out;
  out.port = port;
  out.tx_bps = *tx * 8.0;  // Counters are bytes; rates are bits/s.
  out.rx_bps = *rx * 8.0;
  return out;
}

std::vector<PortRate> MfLib::site_rates_sorted(testbed::SiteId site,
                                               util::Nanos window) const {
  std::vector<PortRate> out;
  const testbed::Site& s = fed_.site(site);
  for (std::uint32_t p = 0; p < s.tor().port_count(); ++p) {
    if (auto r = port_rate({site, testbed::PortId{p}}, window)) {
      out.push_back(*r);
    }
  }
  std::sort(out.begin(), out.end(), [](const PortRate& a, const PortRate& b) {
    return a.total() > b.total();
  });
  return out;
}

double MfLib::testbed_total_tx_bps(util::Nanos window) const {
  double total = 0.0;
  for (testbed::SiteId sid : fed_.site_ids()) {
    const testbed::Site& s = fed_.site(sid);
    for (std::uint32_t p = 0; p < s.tor().port_count(); ++p) {
      if (auto r = port_rate({sid, testbed::PortId{p}}, window)) {
        total += r->tx_bps;
      }
    }
  }
  return total;
}

}  // namespace patchwork::telemetry
