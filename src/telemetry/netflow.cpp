#include "telemetry/netflow.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "util/byte_io.hpp"

namespace patchwork::telemetry {

namespace {

/// One counter per eviction cause, resolved once. The counts are sums of
/// deterministic per-frame work, so the family stays in the
/// byte-comparable exposition.
obs::Counter& eviction_counter(NetflowCache::EvictCause cause) {
  static const std::array<obs::Counter*, NetflowCache::kEvictCauses>
      counters = [] {
        constexpr std::string_view kName = "patchwork_netflow_evictions_total";
        constexpr std::string_view kHelp =
            "Flows expired out of the NetflowCache, by cause.";
        std::array<obs::Counter*, NetflowCache::kEvictCauses> c{};
        c[0] = &obs::registry().counter(kName, kHelp, {{"cause", "capacity"}});
        c[1] = &obs::registry().counter(kName, kHelp, {{"cause", "idle"}});
        c[2] = &obs::registry().counter(kName, kHelp, {{"cause", "active"}});
        c[3] = &obs::registry().counter(kName, kHelp, {{"cause", "flush"}});
        return c;
      }();
  return *counters[static_cast<std::size_t>(cause)];
}

}  // namespace

std::map<NetflowCache::Key, NetflowCache::Entry>::iterator
NetflowCache::expire(std::map<Key, Entry>::iterator it, EvictCause cause) {
  expired_.push_back(it->second.record);
  ++evictions_[static_cast<std::size_t>(cause)];
  eviction_counter(cause).add();
  by_last_.erase({it->second.last, it->first});
  return flows_.erase(it);
}

bool NetflowCache::observe(const net::ParsedFrame& frame, util::Nanos now) {
  if (!frame.ipv4) {
    ++ignored_;
    return false;
  }
  Key key;
  key.src = frame.ipv4->src.value;
  key.dst = frame.ipv4->dst.value;
  key.proto = frame.ipv4->protocol;
  if (frame.tcp) {
    key.sport = frame.tcp->src_port;
    key.dport = frame.tcp->dst_port;
  } else if (frame.udp) {
    key.sport = frame.udp->src_port;
    key.dport = frame.udp->dst_port;
  }
  auto it = flows_.find(key);
  if (it == flows_.end()) {
    // Bounded cache under admission pressure: evict the stalest flow
    // (oldest last-seen, smallest key on ties — by_last_'s begin()) to
    // make room. Content-ordered, so an eviction storm picks the same
    // victims in the same order on every run.
    if (config_.max_flows > 0 && flows_.size() >= config_.max_flows &&
        !by_last_.empty()) {
      expire(flows_.find(by_last_.begin()->second), EvictCause::kCapacity);
    }
    it = flows_.emplace(key, Entry{}).first;
  } else {
    by_last_.erase({it->second.last, key});
  }
  Entry& entry = it->second;
  if (entry.record.packets == 0) {
    entry.record.src_addr = key.src;
    entry.record.dst_addr = key.dst;
    entry.record.src_port = key.sport;
    entry.record.dst_port = key.dport;
    entry.record.protocol = key.proto;
    entry.first = now;
  } else if (entry.octets + frame.wire_length >
             std::numeric_limits<std::uint32_t>::max()) {
    // Emit-and-reset: the v5 wire format caps octets at 2^32 - 1, so
    // export the flow as-is and restart it at this packet rather than
    // silently wrapping the counter.
    expired_.push_back(entry.record);
    const NetflowRecord fresh{key.src, key.dst, 0, 0, 0, 0,
                              key.sport, key.dport, 0, key.proto};
    entry.record = fresh;
    entry.octets = 0;
    entry.first = now;
  }
  entry.last = now;
  by_last_.insert({now, key});
  entry.record.packets += 1;
  entry.octets += frame.wire_length;
  entry.record.octets = static_cast<std::uint32_t>(entry.octets);
  if (frame.tcp) entry.record.tcp_flags |= frame.tcp->flags;
  entry.record.first_ms =
      static_cast<std::uint32_t>(entry.first / util::kMillisecond);
  entry.record.last_ms =
      static_cast<std::uint32_t>(entry.last / util::kMillisecond);
  return true;
}

void NetflowCache::sweep(util::Nanos now) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    const Entry& e = it->second;
    const bool idle = now >= e.last && now - e.last >= config_.idle_timeout;
    const bool active_too_long =
        now >= e.first && now - e.first >= config_.active_timeout;
    if (idle || active_too_long) {
      // Attribute the expiry to the rule whose deadline passed first
      // (idle wins ties): a quiet flow is an idle expiry even when it is
      // also old enough for the active timeout.
      const EvictCause cause =
          !idle ? EvictCause::kActive
                : (!active_too_long ||
                   e.last + config_.idle_timeout <=
                       e.first + config_.active_timeout)
                      ? EvictCause::kIdle
                      : EvictCause::kActive;
      it = expire(it, cause);
    } else {
      ++it;
    }
  }
}

void NetflowCache::flush(util::Nanos) {
  for (auto it = flows_.begin(); it != flows_.end();) {
    it = expire(it, EvictCause::kFlush);
  }
}

std::vector<NetflowRecord> NetflowCache::drain() {
  std::vector<NetflowRecord> out = std::move(expired_);
  expired_.clear();
  return out;
}

std::vector<std::vector<std::uint8_t>> netflow_export(
    std::vector<NetflowRecord> records, util::Nanos sys_uptime,
    std::uint32_t& flow_sequence) {
  std::vector<std::vector<std::uint8_t>> datagrams;
  std::size_t pos = 0;
  while (pos < records.size()) {
    const std::size_t n =
        std::min(kNetflowMaxRecordsPerPacket, records.size() - pos);
    std::vector<std::uint8_t> out;
    out.reserve(kNetflowHeaderSize + n * kNetflowRecordSize);
    util::put_be16(out, 5);  // Version.
    util::put_be16(out, static_cast<std::uint16_t>(n));
    util::put_be32(out, static_cast<std::uint32_t>(sys_uptime /
                                                   util::kMillisecond));
    util::put_be32(out, static_cast<std::uint32_t>(
                            sys_uptime / util::kSecond));  // unix_secs.
    util::put_be32(out, static_cast<std::uint32_t>(
                            sys_uptime % util::kSecond));  // unix_nsecs.
    util::put_be32(out, flow_sequence);
    util::put_be16(out, 0);  // engine type/id.
    util::put_be16(out, 0);  // sampling interval.
    for (std::size_t i = 0; i < n; ++i) {
      const NetflowRecord& r = records[pos + i];
      util::put_be32(out, r.src_addr);
      util::put_be32(out, r.dst_addr);
      util::put_be32(out, 0);  // nexthop.
      util::put_be16(out, 0);  // input ifindex.
      util::put_be16(out, 0);  // output ifindex.
      util::put_be32(out, r.packets);
      util::put_be32(out, r.octets);
      util::put_be32(out, r.first_ms);
      util::put_be32(out, r.last_ms);
      util::put_be16(out, r.src_port);
      util::put_be16(out, r.dst_port);
      util::put_u8(out, 0);  // pad1.
      util::put_u8(out, r.tcp_flags);
      util::put_u8(out, r.protocol);
      util::put_u8(out, 0);  // tos.
      util::put_be16(out, 0);  // src_as.
      util::put_be16(out, 0);  // dst_as.
      util::put_u8(out, 0);  // src_mask.
      util::put_u8(out, 0);  // dst_mask.
      util::put_be16(out, 0);  // pad2.
    }
    flow_sequence += static_cast<std::uint32_t>(n);
    datagrams.push_back(std::move(out));
    pos += n;
  }
  return datagrams;
}

std::optional<NetflowPacket> netflow_collect(
    std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kNetflowHeaderSize) return std::nullopt;
  if (util::get_be16(datagram, 0) != 5) return std::nullopt;
  const std::uint16_t count = util::get_be16(datagram, 2);
  if (count == 0 || count > kNetflowMaxRecordsPerPacket) return std::nullopt;
  if (datagram.size() !=
      kNetflowHeaderSize + static_cast<std::size_t>(count) *
                               kNetflowRecordSize) {
    return std::nullopt;
  }
  NetflowPacket packet;
  packet.sys_uptime_ms = util::get_be32(datagram, 4);
  packet.flow_sequence = util::get_be32(datagram, 16);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::size_t off =
        kNetflowHeaderSize + static_cast<std::size_t>(i) * kNetflowRecordSize;
    NetflowRecord r;
    r.src_addr = util::get_be32(datagram, off);
    r.dst_addr = util::get_be32(datagram, off + 4);
    r.packets = util::get_be32(datagram, off + 16);
    r.octets = util::get_be32(datagram, off + 20);
    r.first_ms = util::get_be32(datagram, off + 24);
    r.last_ms = util::get_be32(datagram, off + 28);
    r.src_port = util::get_be16(datagram, off + 32);
    r.dst_port = util::get_be16(datagram, off + 34);
    r.tcp_flags = util::get_u8(datagram, off + 37);
    r.protocol = util::get_u8(datagram, off + 38);
    packet.records.push_back(r);
  }
  return packet;
}

}  // namespace patchwork::telemetry
