#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace patchwork::telemetry {

void TimeSeriesDb::append(const std::string& series, util::Nanos time,
                          double value) {
  std::vector<Sample>& v = series_[series];
  assert(v.empty() || v.back().time <= time);
  v.push_back(Sample{time, value});
}

std::vector<Sample> TimeSeriesDb::range(const std::string& series,
                                        util::Nanos from,
                                        util::Nanos to) const {
  std::vector<Sample> out;
  const auto it = series_.find(series);
  if (it == series_.end()) return out;
  for (const Sample& s : it->second) {
    if (s.time >= from && s.time < to) out.push_back(s);
  }
  return out;
}

std::optional<Sample> TimeSeriesDb::latest(const std::string& series) const {
  const auto it = series_.find(series);
  if (it == series_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::optional<double> TimeSeriesDb::windowed_rate(const std::string& series,
                                                  util::Nanos window) const {
  const auto it = series_.find(series);
  if (it == series_.end() || it->second.size() < 2) return std::nullopt;
  const Sample& last = it->second.back();
  const util::Nanos from = last.time >= window ? last.time - window : 0;
  // First sample at or after `from`.
  const auto lo = std::lower_bound(
      it->second.begin(), it->second.end(), from,
      [](const Sample& s, util::Nanos t) { return s.time < t; });
  if (lo == it->second.end() || lo->time >= last.time) return std::nullopt;
  const double dv = last.value - lo->value;
  const double dt = util::to_seconds(last.time - lo->time);
  if (dt <= 0.0) return std::nullopt;
  return dv / dt;
}

std::size_t TimeSeriesDb::sample_count(const std::string& series) const {
  const auto it = series_.find(series);
  return it == series_.end() ? 0 : it->second.size();
}

std::vector<std::string> TimeSeriesDb::series_names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, _] : series_) out.push_back(name);
  return out;
}

}  // namespace patchwork::telemetry
