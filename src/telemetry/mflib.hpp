// MFlib-style telemetry front-end.
//
// Models FABRIC's Measurement Framework path: an SNMP poller reads every
// switch port's counters on a fixed cadence (the paper's study uses
// "5-minute samples of Tx and Rx rates for all switch ports at every
// FABRIC rack"), stores them in a time-series DB, and exposes the queries
// Patchwork needs at runtime: windowed port rates (for the busiest-port
// cycling heuristic and congestion inference) and aggregate activity (for
// the Fig. 6 style utilization study).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "telemetry/timeseries.hpp"
#include "testbed/federation.hpp"
#include "util/units.hpp"

namespace patchwork::telemetry {

inline constexpr util::Nanos kDefaultPollInterval = 5 * util::kMinute;

std::string port_series_name(testbed::GlobalPortId port,
                             testbed::Direction dir);

struct PortRate {
  testbed::GlobalPortId port;
  double tx_bps = 0.0;
  double rx_bps = 0.0;

  double total() const { return tx_bps + rx_bps; }
};

class MfLib {
 public:
  explicit MfLib(const testbed::Federation& fed) : fed_(fed) {}

  /// SNMP sweep: record every port's Tx/Rx byte counters at time `now`.
  void poll_all(util::Nanos now);

  std::uint64_t polls_completed() const { return polls_; }

  /// Windowed Tx/Rx rate of one port (bps), derived from counters.
  std::optional<PortRate> port_rate(testbed::GlobalPortId port,
                                    util::Nanos window) const;

  /// All ports of a site with a defined rate over the window, sorted by
  /// total rate descending — the input to the "busiest port" heuristic.
  std::vector<PortRate> site_rates_sorted(testbed::SiteId site,
                                          util::Nanos window) const;

  /// Sum of Tx rates across every switch port in the federation — the
  /// "data-transfer activity in FABRIC's network" of Fig. 6.
  double testbed_total_tx_bps(util::Nanos window) const;

  const TimeSeriesDb& db() const { return db_; }

 private:
  const testbed::Federation& fed_;
  TimeSeriesDb db_;
  std::uint64_t polls_ = 0;
};

}  // namespace patchwork::telemetry
