// Classic libpcap file format reader/writer.
//
// All three of Patchwork's capture methods "produce pcap files"
// (Section 6.2.2), and the offline Digest step consumes them
// (Section 6.2.4). The implementation here emits byte-exact classic pcap
// (magic 0xa1b2c3d4, microsecond timestamps, or the 0xa1b23c4d nanosecond
// variant), LINKTYPE_ETHERNET, so files round-trip through this code and
// would be readable by external tools.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace patchwork::pcap {

enum class TimestampResolution : std::uint8_t { kMicro, kNano };

inline constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;
inline constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
inline constexpr std::uint32_t kLinkTypeEthernet = 1;
inline constexpr std::size_t kGlobalHeaderSize = 24;
inline constexpr std::size_t kRecordHeaderSize = 16;

/// Serializes frames into an in-memory pcap byte stream. The byte stream is
/// what the capture engines hand to the host storage model and what the
/// gathering phase ships to the coordinator.
class PcapWriter {
 public:
  explicit PcapWriter(std::uint32_t snaplen = 65535,
                      TimestampResolution res = TimestampResolution::kMicro);

  /// Appends one record. The frame is truncated to the writer's snaplen;
  /// the record's orig_len preserves the wire length.
  void write(const net::Frame& frame);

  /// Zero-copy variant: appends one record from raw bytes + wire length.
  /// Returns a mutable span over the record's payload inside the stream so
  /// callers can edit in place (e.g. anonymization) after the copy. The
  /// span is valid until the next write or take_buffer().
  std::span<std::uint8_t> write_record(std::span<const std::uint8_t> bytes,
                                       std::size_t wire_length,
                                       util::Nanos timestamp);

  std::uint64_t frames_written() const { return frames_; }
  std::uint64_t bytes_written() const { return buffer_.size(); }

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> take_buffer();

 private:
  std::uint32_t snaplen_;
  TimestampResolution resolution_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t frames_ = 0;
};

struct PcapFileInfo {
  TimestampResolution resolution = TimestampResolution::kMicro;
  std::uint32_t snaplen = 0;
  std::uint32_t link_type = 0;
};

/// Non-owning view of one pcap record: a zero-copy slice of the reader's
/// buffer plus the record metadata. Valid only until the reader that
/// produced it is destroyed or moved — the digest hot path consumes each
/// view before pulling the next, so nothing escapes the reader's lifetime.
struct FrameView {
  std::span<const std::uint8_t> bytes;  ///< Captured (possibly truncated).
  std::size_t wire_length = 0;          ///< Original on-the-wire size.
  util::Nanos timestamp = 0;

  bool truncated() const { return bytes.size() < wire_length; }
};

/// Streaming reader over an in-memory pcap byte stream.
class PcapReader {
 public:
  /// Returns nullopt if the magic/global header is invalid.
  static std::optional<PcapReader> open(std::vector<std::uint8_t> bytes);

  const PcapFileInfo& info() const { return info_; }

  /// Next record as a zero-copy view into the reader's buffer, or nullopt
  /// at end of stream. A record whose header or body extends past the
  /// buffer ends the stream; a record whose lengths are merely inconsistent
  /// (incl > orig) is skipped and the scan resyncs at the following record.
  /// Both cases count in `bad_records`.
  std::optional<FrameView> next_view();

  /// Like next_view(), but copies the bytes into an owning net::Frame.
  std::optional<net::Frame> next();

  std::uint64_t frames_read() const { return frames_; }
  std::uint64_t bad_records() const { return bad_records_; }

 private:
  PcapReader(std::vector<std::uint8_t> bytes, PcapFileInfo info)
      : bytes_(std::move(bytes)), info_(info), offset_(kGlobalHeaderSize) {}

  std::vector<std::uint8_t> bytes_;
  PcapFileInfo info_;
  std::size_t offset_;
  std::uint64_t frames_ = 0;
  std::uint64_t bad_records_ = 0;
};

/// Total pcap stream size for `frames` records of `captured_bytes` payload
/// each — used by the capacity planner and the storage model.
constexpr std::uint64_t pcap_stream_size(std::uint64_t frames,
                                         std::uint64_t captured_bytes) {
  return kGlobalHeaderSize + frames * (kRecordHeaderSize + captured_bytes);
}

}  // namespace patchwork::pcap
