#include "pcap/pcap.hpp"

#include <algorithm>

#include "util/byte_io.hpp"

namespace patchwork::pcap {

using util::get_le16;
using util::get_le32;
using util::put_le16;
using util::put_le32;

PcapWriter::PcapWriter(std::uint32_t snaplen, TimestampResolution res)
    : snaplen_(snaplen), resolution_(res) {
  put_le32(buffer_, res == TimestampResolution::kMicro ? kMagicMicro
                                                       : kMagicNano);
  put_le16(buffer_, 2);  // Version major.
  put_le16(buffer_, 4);  // Version minor.
  put_le32(buffer_, 0);  // thiszone.
  put_le32(buffer_, 0);  // sigfigs.
  put_le32(buffer_, snaplen_);
  put_le32(buffer_, kLinkTypeEthernet);
}

void PcapWriter::write(const net::Frame& frame) {
  write_record(frame.bytes(), frame.wire_length(), frame.timestamp());
}

std::span<std::uint8_t> PcapWriter::write_record(
    std::span<const std::uint8_t> bytes, std::size_t wire_length,
    util::Nanos timestamp) {
  // Truncate by slicing the input bytes rather than materializing a cut
  // Frame — this is the per-record hot loop of the DPDK writer model.
  if (snaplen_ != 0 && bytes.size() > snaplen_) bytes = bytes.first(snaplen_);
  const std::size_t needed =
      buffer_.size() + kRecordHeaderSize + bytes.size();
  if (buffer_.capacity() < needed) {
    // Keep growth geometric; a bare reserve(needed) per record would pin
    // capacity to size and turn the append loop quadratic.
    buffer_.reserve(std::max(needed, buffer_.capacity() * 2));
  }
  const util::Nanos ts = timestamp;
  const std::uint32_t sec = static_cast<std::uint32_t>(ts / util::kSecond);
  const std::uint32_t frac =
      resolution_ == TimestampResolution::kMicro
          ? static_cast<std::uint32_t>((ts % util::kSecond) /
                                       util::kMicrosecond)
          : static_cast<std::uint32_t>(ts % util::kSecond);
  put_le32(buffer_, sec);
  put_le32(buffer_, frac);
  put_le32(buffer_, static_cast<std::uint32_t>(bytes.size()));
  put_le32(buffer_, static_cast<std::uint32_t>(wire_length));
  const std::size_t payload_at = buffer_.size();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  ++frames_;
  return std::span<std::uint8_t>(buffer_).subspan(payload_at, bytes.size());
}

std::vector<std::uint8_t> PcapWriter::take_buffer() {
  std::vector<std::uint8_t> out = std::move(buffer_);
  buffer_.clear();
  frames_ = 0;
  return out;
}

std::optional<PcapReader> PcapReader::open(std::vector<std::uint8_t> bytes) {
  if (bytes.size() < kGlobalHeaderSize) return std::nullopt;
  const std::uint32_t magic = get_le32(bytes, 0);
  PcapFileInfo info;
  if (magic == kMagicMicro) {
    info.resolution = TimestampResolution::kMicro;
  } else if (magic == kMagicNano) {
    info.resolution = TimestampResolution::kNano;
  } else {
    return std::nullopt;
  }
  if (get_le16(bytes, 4) != 2) return std::nullopt;  // Version major.
  info.snaplen = get_le32(bytes, 16);
  info.link_type = get_le32(bytes, 20);
  return PcapReader(std::move(bytes), info);
}

std::optional<FrameView> PcapReader::next_view() {
  // Loop so a record with inconsistent lengths is skipped in place and the
  // scan resyncs at the record that follows it.
  for (;;) {
    if (offset_ + kRecordHeaderSize > bytes_.size()) {
      if (offset_ != bytes_.size()) {
        ++bad_records_;  // Trailing partial header, counted once.
        offset_ = bytes_.size();
      }
      return std::nullopt;
    }
    const std::uint32_t sec = get_le32(bytes_, offset_);
    const std::uint32_t frac = get_le32(bytes_, offset_ + 4);
    const std::uint32_t incl = get_le32(bytes_, offset_ + 8);
    const std::uint32_t orig = get_le32(bytes_, offset_ + 12);
    offset_ += kRecordHeaderSize;
    if (offset_ + incl > bytes_.size()) {
      // Body extends past the buffer: no resync point exists.
      ++bad_records_;
      offset_ = bytes_.size();
      return std::nullopt;
    }
    if (incl > orig) {
      // Corrupt lengths but the body fits — skip just this record.
      ++bad_records_;
      offset_ += incl;
      continue;
    }
    FrameView view;
    view.bytes = std::span<const std::uint8_t>(bytes_).subspan(offset_, incl);
    view.wire_length = orig;
    view.timestamp =
        static_cast<util::Nanos>(sec) * util::kSecond +
        (info_.resolution == TimestampResolution::kMicro
             ? static_cast<util::Nanos>(frac) * util::kMicrosecond
             : static_cast<util::Nanos>(frac));
    offset_ += incl;
    ++frames_;
    return view;
  }
}

std::optional<net::Frame> PcapReader::next() {
  const std::optional<FrameView> view = next_view();
  if (!view) return std::nullopt;
  std::vector<std::uint8_t> data(view->bytes.begin(), view->bytes.end());
  return net::Frame(std::move(data), view->wire_length, view->timestamp);
}

}  // namespace patchwork::pcap
