// Host machine model: cores, RAM, storage, and the per-frame processing
// cost models used by the capture engines.
//
// The cost constants are calibrated so the DPDK capture path reproduces the
// scaling behaviour of the paper's Tables 1 and 2 (frame-size/truncation/
// core-count sweeps at a 60:80 writeback threshold) and the kernel path
// reproduces the tcpdump ceiling of Section 8.1.2 (lossless to ~8.5 Gbps
// for 1500 B frames, 11 Gbps sustained).
#pragma once

#include <algorithm>
#include <cstdint>

#include "host/page_cache.hpp"
#include "util/units.hpp"

namespace patchwork::host {

struct HostSpec {
  std::uint32_t cores = 16;             ///< Fig. 14 host: 16 cores, 1 NUMA node.
  std::uint64_t ram_bytes = 128ull << 30;
  PageCacheConfig page_cache;

  // --- DPDK path ---------------------------------------------------------
  /// Fixed per-frame cost on one core (rx burst handling, mbuf accounting).
  double dpdk_per_frame_ns = 208.0;
  /// Additional cost per stored byte (truncated copy + pcap serialization).
  double dpdk_per_byte_ns = 1.36;
  /// Cost per *wire* byte when the full frame crosses PCIe into host
  /// memory — zero'd out by FPGA offload, which truncates on the NIC.
  double dpdk_per_wire_byte_ns = 0.08;
  /// Multi-core contention: effective capacity of N cores is
  /// N / (1 + alpha * (N - 1)) times one core.
  double dpdk_contention_alpha = 0.06;

  // --- Kernel (tcpdump) path ----------------------------------------------
  /// Per-frame cost through the kernel network stack + packet socket.
  double kernel_per_frame_ns = 1225.0;
  /// Per-byte cost of the kernel path (DMA + copy to user).
  double kernel_per_byte_ns = 0.15;

  /// Frames the DPDK path can process per second on `n` cores for a given
  /// stored (post-truncation) byte count per frame. When `fpga_offload` is
  /// false the full wire frame also crosses into host memory and pays the
  /// per-wire-byte cost.
  double dpdk_capacity_pps(std::uint32_t n, std::size_t stored_bytes,
                           std::size_t wire_bytes = 0,
                           bool fpga_offload = true) const {
    if (n == 0) return 0.0;
    if (wire_bytes > 0) stored_bytes = std::min(stored_bytes, wire_bytes);
    double per_frame = dpdk_per_frame_ns +
                       dpdk_per_byte_ns * static_cast<double>(stored_bytes);
    if (!fpga_offload) {
      per_frame += dpdk_per_wire_byte_ns * static_cast<double>(wire_bytes);
    }
    const double eff =
        static_cast<double>(n) /
        (1.0 + dpdk_contention_alpha * static_cast<double>(n - 1));
    return eff * 1e9 / per_frame;
  }

  /// Frames per second the single-threaded kernel capture path sustains for
  /// a given wire frame size (payload bytes traverse the stack regardless
  /// of snaplen; snaplen only trims the user-space copy).
  double kernel_capacity_pps(std::size_t wire_bytes,
                             std::size_t snaplen) const {
    const double copied =
        static_cast<double>(std::min(wire_bytes, snaplen));
    const double per_frame = kernel_per_frame_ns +
                             kernel_per_byte_ns * static_cast<double>(wire_bytes) +
                             0.05 * copied;
    return 1e9 / per_frame;
  }
};

}  // namespace patchwork::host
