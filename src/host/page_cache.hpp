// Linux page-cache writeback model.
//
// This implements the behaviour the paper measured in Section 8.1.3 and
// Appendix B. Writes land in the page cache as dirty pages; the kernel's
// writeback state machine then governs the latency each sys_writev() call
// experiences:
//
//   dirty/free-cache fraction        writer behaviour
//   ------------------------------   ---------------------------------
//   < dirty_background_ratio         fast (memcpy + syscall overhead)
//   [background, midpoint)           async flushing; writer unaffected
//   [midpoint, dirty_ratio)          *writer throttled* — the paper's
//                                    finding: the kernel throttles the
//                                    writing process at the midpoint of
//                                    the two thresholds, before
//                                    dirty_ratio is reached
//   >= dirty_ratio                   writer blocked while pages flush
//
// Flushing drains dirty pages at the storage device's write bandwidth and
// continues between writes (advance()).
#pragma once

#include <cstdint>

#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace patchwork::host {

struct PageCacheConfig {
  std::uint64_t free_cache_bytes = 100ull << 30;  ///< ~100 GB of a 128 GB host.
  double dirty_background_ratio = 0.10;  ///< vm.dirty_background_ratio.
  double dirty_ratio = 0.20;             ///< vm.dirty_ratio.
  double storage_write_bytes_per_sec = 1.0e9;  ///< Flush bandwidth.
  double memcpy_bytes_per_ns = 10.0;           ///< Page-cache copy speed.
  util::Nanos syscall_overhead = 2 * util::kMicrosecond;
  /// Lognormal latency jitter (sigma of the underlying normal); models the
  /// occasional slow call present even in the fast regime.
  double jitter_sigma = 0.35;
  /// Probability of an outlier call (stable-write interference etc.) and
  /// its magnitude multiplier.
  double outlier_probability = 5e-5;
  double outlier_multiplier = 40.0;
  /// Upper bound on a single throttle pause, mirroring the kernel's
  /// bounded sleeps in balance_dirty_pages() — a slow device therefore
  /// lets dirty pages keep growing past the midpoint until dirty_ratio
  /// blocks the writer outright.
  util::Nanos max_throttle_pause = 200 * util::kMillisecond;
};

enum class WritebackRegime : std::uint8_t {
  kFast,        ///< Below dirty_background_ratio.
  kBackground,  ///< Async flushing, writer unaffected.
  kThrottled,   ///< Past the midpoint: writer paced to flush rate.
  kBlocked,     ///< Past dirty_ratio: writer blocked on flush.
};

class PageCache {
 public:
  PageCache(PageCacheConfig config, util::Rng& rng)
      : config_(config), rng_(rng) {}

  /// Let `dt` of background time pass: flushes dirty pages if writeback is
  /// active.
  void advance(util::Nanos dt);

  /// One sys_writev() of `bytes`; returns the call's latency and updates
  /// the dirty state (including flushing that happens during the call).
  util::Nanos write(std::uint64_t bytes);

  double dirty_fraction() const;
  std::uint64_t dirty_bytes() const { return dirty_bytes_; }
  WritebackRegime regime() const;

  std::uint64_t background_threshold_bytes() const;
  std::uint64_t midpoint_threshold_bytes() const;
  std::uint64_t dirty_threshold_bytes() const;

  /// Log2 histogram of every write() latency, bpftrace-style.
  const util::Log2Histogram& latency_histogram() const { return latency_; }

  std::uint64_t total_bytes_written() const { return total_written_; }

  const PageCacheConfig& config() const { return config_; }

 private:
  void flush(double seconds);

  PageCacheConfig config_;
  util::Rng& rng_;
  std::uint64_t dirty_bytes_ = 0;
  std::uint64_t total_written_ = 0;
  util::Log2Histogram latency_;
};

}  // namespace patchwork::host
