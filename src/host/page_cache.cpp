#include "host/page_cache.hpp"

#include <algorithm>
#include <cmath>

namespace patchwork::host {

std::uint64_t PageCache::background_threshold_bytes() const {
  return static_cast<std::uint64_t>(config_.dirty_background_ratio *
                                    static_cast<double>(config_.free_cache_bytes));
}

std::uint64_t PageCache::midpoint_threshold_bytes() const {
  const double mid =
      (config_.dirty_background_ratio + config_.dirty_ratio) / 2.0;
  return static_cast<std::uint64_t>(
      mid * static_cast<double>(config_.free_cache_bytes));
}

std::uint64_t PageCache::dirty_threshold_bytes() const {
  return static_cast<std::uint64_t>(
      config_.dirty_ratio * static_cast<double>(config_.free_cache_bytes));
}

double PageCache::dirty_fraction() const {
  return static_cast<double>(dirty_bytes_) /
         static_cast<double>(config_.free_cache_bytes);
}

WritebackRegime PageCache::regime() const {
  if (dirty_bytes_ >= dirty_threshold_bytes()) return WritebackRegime::kBlocked;
  if (dirty_bytes_ >= midpoint_threshold_bytes()) {
    return WritebackRegime::kThrottled;
  }
  if (dirty_bytes_ >= background_threshold_bytes()) {
    return WritebackRegime::kBackground;
  }
  return WritebackRegime::kFast;
}

void PageCache::flush(double seconds) {
  if (seconds <= 0.0) return;
  // Writeback only runs once the background threshold has been crossed; it
  // then drains down to the background threshold and stops.
  if (dirty_bytes_ <= background_threshold_bytes()) return;
  const std::uint64_t flushable = static_cast<std::uint64_t>(
      config_.storage_write_bytes_per_sec * seconds);
  const std::uint64_t floor = background_threshold_bytes();
  dirty_bytes_ -= std::min(dirty_bytes_ - floor, flushable);
}

void PageCache::advance(util::Nanos dt) { flush(util::to_seconds(dt)); }

util::Nanos PageCache::write(std::uint64_t bytes) {
  // Base cost: syscall entry/exit plus copying into the page cache.
  double latency_ns =
      static_cast<double>(config_.syscall_overhead) +
      static_cast<double>(bytes) / config_.memcpy_bytes_per_ns;

  const WritebackRegime r = regime();
  if (r == WritebackRegime::kThrottled) {
    // balance_dirty_pages(): the writer is paced so its ingest matches the
    // flush rate, with pressure growing as dirty approaches dirty_ratio.
    const double span = static_cast<double>(dirty_threshold_bytes() -
                                            midpoint_threshold_bytes());
    const double depth =
        span <= 0.0
            ? 1.0
            : std::min(1.0, static_cast<double>(dirty_bytes_ -
                                                midpoint_threshold_bytes()) /
                                span);
    const double pacing_ns = static_cast<double>(bytes) /
                             config_.storage_write_bytes_per_sec * 1e9;
    latency_ns += std::min(pacing_ns * (0.5 + 1.5 * depth),
                           static_cast<double>(config_.max_throttle_pause));
  } else if (r == WritebackRegime::kBlocked) {
    // Hard block: the writer waits for enough flushing to fall back under
    // dirty_ratio before its pages are admitted.
    const std::uint64_t excess = dirty_bytes_ - dirty_threshold_bytes() + bytes;
    latency_ns += static_cast<double>(excess) /
                  config_.storage_write_bytes_per_sec * 1e9;
  }

  // Jitter and rare outliers exist in every regime.
  latency_ns *= rng_.lognormal(0.0, config_.jitter_sigma);
  if (rng_.chance(config_.outlier_probability)) {
    latency_ns *= config_.outlier_multiplier;
  }

  const util::Nanos latency = static_cast<util::Nanos>(latency_ns);
  // Flushing continues while the call is in flight.
  flush(latency_ns / 1e9);
  dirty_bytes_ += bytes;
  total_written_ += bytes;
  latency_.add(latency);
  return latency;
}

}  // namespace patchwork::host
