// Live Prometheus scrape endpoint: a dependency-free HTTP/1.1 server on a
// dedicated thread, the "always-on operation" counterpart to the file
// exporter. The paper's deployment is scraped over TCP through an SNMP ->
// Prometheus -> Grafana chain; this gives the reproduction the same
// pull-based liveness (fs123's exportd is the idiom exemplar: a plain
// socket loop serving a read-mostly exposition).
//
// Served routes (GET only):
//   /metrics                  full exposition (obs::expose_text(false))
//   /metrics?deterministic=1  byte-comparable view (kWallClock omitted)
//   /healthz                  JSON: status, uptime, run-phase gauge, build
//   /manifest.json            the per-run manifest, rebuilt on demand
//
// Design: POSIX sockets only, loopback bind, bounded accept backlog,
// per-request read/write timeouts (SO_RCVTIMEO/SO_SNDTIMEO), and one
// serving thread that handles connections serially — an exposition render
// is microseconds, so concurrent scrapers queue in the backlog rather
// than spawning threads; a stalled client costs at most one timeout.
// stop() unblocks the accept loop via a self-pipe poll()ed next to the
// listening socket and is idempotent. Serving touches only wall-clock
// metric families, so a live scrape can never perturb the deterministic
// exposition contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace patchwork::obs {

struct ScrapeServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read the
  /// result back with port()).
  std::uint16_t port = 0;
  /// listen() backlog: concurrent scrapers beyond this see a connection
  /// refusal instead of unbounded kernel queueing.
  int backlog = 16;
  /// Per-request socket read/write timeout.
  std::chrono::milliseconds io_timeout{2000};
  /// Renders /manifest.json on demand; unset => 404 for that route.
  std::function<std::string()> manifest;
};

class ScrapeServer {
 public:
  /// Binds and starts the serving thread. On bind/listen failure the
  /// server is inert: ok() is false and port() is 0.
  explicit ScrapeServer(ScrapeServerOptions options);
  ~ScrapeServer();  // stop()s.

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// True when the listening socket is (or was) live.
  bool ok() const { return listen_fd_ >= 0; }

  /// The bound port (the ephemeral pick when options.port was 0).
  std::uint16_t port() const { return port_; }

  /// Close the listener and join the serving thread. Idempotent; safe to
  /// call concurrently with in-flight requests (they finish or time out).
  void stop();

  /// Requests answered so far, any status.
  std::uint64_t requests_served() const;

 private:
  void serve();
  void handle_connection(int fd);

  ScrapeServerOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< Self-pipe: [0] polled, [1] written.
  std::uint16_t port_ = 0;
  std::chrono::steady_clock::time_point started_;
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

/// PATCHWORK_SCRAPE=port — start a server when the variable holds a valid
/// port (0 = ephemeral), else return nullptr. The manifest callback is
/// optional, as in ScrapeServerOptions.
std::unique_ptr<ScrapeServer> maybe_start_scrape_server_from_env(
    std::function<std::string()> manifest = {});

/// The coordinator's run-phase gauge (0 idle, 1 control, 2 render,
/// 3 merge), surfaced by /healthz. kWallClock: a point-in-time reading is
/// schedule-dependent by nature.
Gauge& run_phase_gauge();

}  // namespace patchwork::obs
