#include "obs/scrape_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/manifest.hpp"

namespace patchwork::obs {

namespace {

struct timeval to_timeval(std::chrono::milliseconds ms) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

/// Write all of `text`, tolerating partial writes; SO_SNDTIMEO bounds each
/// attempt, so a stalled reader cannot wedge the serving thread.
bool write_all(int fd, std::string_view text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::send(fd, text.data() + off, text.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read until the header terminator, `limit` bytes, EOF, or the socket
/// timeout. A scrape request is one small header block; anything that
/// does not fit in `limit` is malformed by construction.
std::string read_request(int fd, std::size_t limit) {
  std::string buf;
  char chunk[1024];
  while (buf.size() < limit &&
         buf.find("\r\n\r\n") == std::string::npos &&
         buf.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF, timeout, or error: parse what we have.
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  return buf;
}

struct RequestLine {
  bool parsed = false;
  std::string method;
  std::string target;
};

RequestLine parse_request_line(const std::string& request) {
  RequestLine out;
  const std::size_t eol = request.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return out;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return out;
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) return out;
  out.method = line.substr(0, sp1);
  out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.parsed = !out.method.empty() && !out.target.empty() &&
               out.target.front() == '/';
  return out;
}

/// True when the target's query string contains `key=value`.
bool query_has(const std::string& target, std::string_view key,
               std::string_view value) {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return false;
  std::string query = target.substr(q + 1);
  std::size_t start = 0;
  const std::string want = std::string(key) + "=" + std::string(value);
  while (start <= query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    if (query.substr(start, end - start) == want) return true;
    start = end + 1;
  }
  return false;
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

Counter& requests_counter(const std::string& route) {
  // Point-in-time serving traffic: kWallClock keeps live scrapes out of
  // the deterministic exposition.
  return registry().counter("patchwork_scrape_requests_total",
                            "HTTP requests answered by the scrape server",
                            {{"route", route}}, Determinism::kWallClock);
}

constexpr std::string_view kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace

Gauge& run_phase_gauge() {
  return registry().gauge(
      "patchwork_run_phase",
      "Coordinator phase (0 idle, 1 control, 2 render, 3 merge)", {},
      Determinism::kWallClock);
}

ScrapeServer::ScrapeServer(ScrapeServerOptions options)
    : options_(std::move(options)),
      started_(std::chrono::steady_clock::now()) {
  if (::pipe(wake_fds_) != 0) {
    wake_fds_[0] = wake_fds_[1] = -1;
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, options_.backlog) != 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve(); });
}

ScrapeServer::~ScrapeServer() {
  stop();
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void ScrapeServer::stop() {
  if (wake_fds_[1] >= 0) {
    const char byte = 'q';
    // A full pipe already wakes the poll; the result only matters for
    // the first stop.
    (void)!::write(wake_fds_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
}

std::uint64_t ScrapeServer::requests_served() const {
  return requests_.load(std::memory_order_relaxed);
}

void ScrapeServer::serve() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {wake_fds_[0], POLLIN, 0};
    fds[1] = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // stop(): drain nothing, just exit.
    if ((fds[1].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    const struct timeval tv = to_timeval(options_.io_timeout);
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    handle_connection(conn);
    ::close(conn);
  }
  ::close(listen_fd_);
}

void ScrapeServer::handle_connection(int fd) {
  const std::string request = read_request(fd, /*limit=*/8192);
  const RequestLine line = parse_request_line(request);
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::string response;
  if (!line.parsed) {
    requests_counter("bad_request").add();
    response = http_response(400, "Bad Request", "text/plain",
                             "malformed request\n");
  } else if (line.method != "GET") {
    requests_counter("bad_request").add();
    response = http_response(405, "Method Not Allowed", "text/plain",
                             "only GET is served\n");
  } else {
    const std::size_t q = line.target.find('?');
    const std::string path =
        q == std::string::npos ? line.target : line.target.substr(0, q);
    if (path == "/metrics") {
      requests_counter("/metrics").add();
      const bool deterministic =
          query_has(line.target, "deterministic", "1");
      response = http_response(200, "OK", kPromContentType,
                               expose_text(deterministic));
    } else if (path == "/healthz") {
      requests_counter("/healthz").add();
      const double uptime =
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - started_)
              .count();
      char body[256];
      std::snprintf(body, sizeof(body),
                    "{\"status\":\"ok\",\"uptime_seconds\":%.3f,"
                    "\"run_phase\":%d,\"git_describe\":\"%s\"}\n",
                    uptime, static_cast<int>(run_phase_gauge().value()),
                    std::string(build_git_describe()).c_str());
      response = http_response(200, "OK", "application/json", body);
    } else if (path == "/manifest.json") {
      requests_counter("/manifest.json").add();
      if (options_.manifest) {
        response =
            http_response(200, "OK", "application/json", options_.manifest());
      } else {
        response = http_response(404, "Not Found", "text/plain",
                                 "no manifest configured\n");
      }
    } else {
      requests_counter("not_found").add();
      response =
          http_response(404, "Not Found", "text/plain", "unknown route\n");
    }
  }
  write_all(fd, response);
}

std::unique_ptr<ScrapeServer> maybe_start_scrape_server_from_env(
    std::function<std::string()> manifest) {
  const char* env = std::getenv("PATCHWORK_SCRAPE");
  if (env == nullptr || *env == '\0') return nullptr;
  char* end = nullptr;
  const unsigned long port = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || port > 65535) return nullptr;
  ScrapeServerOptions options;
  options.port = static_cast<std::uint16_t>(port);
  options.manifest = std::move(manifest);
  auto server = std::make_unique<ScrapeServer>(std::move(options));
  return server->ok() ? std::move(server) : nullptr;
}

}  // namespace patchwork::obs
