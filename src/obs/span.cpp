#include "obs/span.hpp"

namespace patchwork::obs {

StageSpan::StageSpan(std::string_view stage, const sim::Clock* clock,
                     trace::SpanArgs args)
    : runs_(registry().counter("patchwork_stage_runs_total",
                               "Completed stage span scopes",
                               {{"stage", std::string(stage)}},
                               Determinism::kDeterministic)),
      wall_ns_(registry().histogram("patchwork_stage_wall_ns",
                                    "Wall-clock stage duration (ns)",
                                    {{"stage", std::string(stage)}},
                                    Determinism::kWallClock)),
      clock_(clock),
      wall_start_(std::chrono::steady_clock::now()),
      stage_(stage),
      trace_args_(args),
      traced_(trace::enabled()) {
  if (clock_ != nullptr) {
    sim_ns_ = &registry().histogram("patchwork_stage_sim_ns",
                                    "Simulated stage duration (ns)",
                                    {{"stage", std::string(stage)}},
                                    Determinism::kDeterministic);
    sim_start_ = clock_->now();
  }
  if (traced_) trace_begin_ns_ = trace::now_ns();
}

StageSpan::~StageSpan() {
  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_start_)
                           .count();
  wall_ns_.observe(static_cast<std::uint64_t>(wall_ns));
  if (sim_ns_ != nullptr && clock_ != nullptr) {
    const util::Nanos elapsed = clock_->now() - sim_start_;
    sim_ns_->observe(elapsed > 0 ? static_cast<std::uint64_t>(elapsed) : 0);
  }
  runs_.add();
  if (traced_) {
    trace::record_complete(stage_, trace_begin_ns_, trace::now_ns(),
                           trace_args_);
  }
}

}  // namespace patchwork::obs
