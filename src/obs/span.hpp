// RAII stage spans: scoped timers that record how long a named stage ran,
// in wall-clock nanoseconds always and in simulated nanoseconds when the
// caller passes the driving sim::Clock.
//
// Determinism split (see metrics.hpp): the run count and the simulated-time
// histogram are kDeterministic — they depend only on the seeded work — while
// the wall-clock histogram is kWallClock and therefore excluded from the
// byte-comparable exposition and from the manifest's deterministic section.
//
// Spans nest freely: each instance resolves its own handles and records on
// destruction, so a span open on a caller thread coexists with spans opened
// inside parallel_for workers (handles are updated with sharded relaxed
// atomics, never a shared lock).
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "util/units.hpp"

namespace patchwork::obs {

class StageSpan {
 public:
  /// Opens a span for `stage`. With a clock, the simulated duration
  /// (clock->now() delta between construction and destruction) is recorded
  /// into the deterministic patchwork_stage_sim_ns histogram as well.
  /// When the flight recorder is armed (obs/trace.hpp) the span also
  /// records a begin/end timeline event carrying `args` on the recording
  /// thread's lane; disarmed, that costs one relaxed flag load.
  explicit StageSpan(std::string_view stage,
                     const sim::Clock* clock = nullptr,
                     trace::SpanArgs args = {});
  ~StageSpan();

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  Counter& runs_;
  LatencyHistogram& wall_ns_;
  LatencyHistogram* sim_ns_ = nullptr;
  const sim::Clock* clock_ = nullptr;
  util::Nanos sim_start_ = 0;
  std::chrono::steady_clock::time_point wall_start_;
  std::string_view stage_;  ///< Callers pass literals; spans are scoped.
  trace::SpanArgs trace_args_;
  bool traced_ = false;
  std::uint64_t trace_begin_ns_ = 0;
};

#define OBS_SPAN_CONCAT_INNER(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT_INNER(a, b)

/// OBS_SPAN("digest_all"); — times the enclosing scope as one stage run.
#define OBS_SPAN(stage) \
  ::patchwork::obs::StageSpan OBS_SPAN_CONCAT(obs_span_, __LINE__)(stage)

/// OBS_SPAN_SIM("run_sites", &clock); — also records simulated duration.
#define OBS_SPAN_SIM(stage, clock)                                  \
  ::patchwork::obs::StageSpan OBS_SPAN_CONCAT(obs_span_, __LINE__)( \
      stage, clock)

/// OBS_SPAN_ARGS("profiler/render_sample", .site = 3, .sample = 1); —
/// same metrics as OBS_SPAN, plus site/sample/burst args on the trace
/// timeline event when the flight recorder is armed.
#define OBS_SPAN_ARGS(stage, ...)                                   \
  ::patchwork::obs::StageSpan OBS_SPAN_CONCAT(obs_span_, __LINE__)( \
      stage, nullptr, ::patchwork::obs::trace::SpanArgs{__VA_ARGS__})

}  // namespace patchwork::obs
