#include "obs/manifest.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "obs/metrics.hpp"
#include "util/philox_simd.hpp"
#include "util/thread_pool.hpp"

#ifndef PATCHWORK_GIT_DESCRIBE
#define PATCHWORK_GIT_DESCRIBE "unknown"
#endif

namespace patchwork::obs {

namespace {

void append_json_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_string(std::string_view text) {
  std::string out = "\"";
  append_json_escaped(out, text);
  out += "\"";
  return out;
}

std::string json_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

const char* type_name(char type) {
  switch (type) {
    case 'c': return "counter";
    case 'g': return "gauge";
    default: return "histogram";
  }
}

/// Render the registry series of one determinism class as a JSON array.
/// Series come back from snapshot_values() in name-then-label-sorted order,
/// so the array order is stable across registration order and thread count.
std::string render_metrics(Determinism det) {
  std::string out = "[";
  bool first = true;
  for (const Registry::SeriesValue& v : registry().snapshot_values()) {
    if (v.det != det) continue;
    if (!first) out += ",";
    first = false;
    out += "\n      {\"name\": " + json_string(v.name) +
           ", \"labels\": " + json_string(v.labels) +
           ", \"type\": " + json_string(type_name(v.type));
    if (v.type == 'c') {
      out += ", \"value\": " + std::to_string(v.count);
    } else if (v.type == 'g') {
      out += ", \"value\": " + json_double(v.gauge);
    } else {
      out += ", \"count\": " + std::to_string(v.count) +
             ", \"sum\": " + std::to_string(v.sum);
    }
    out += "}";
  }
  out += first ? "]" : "\n    ]";
  return out;
}

}  // namespace

std::string manifest_deterministic_section(const ManifestInfo& info) {
  std::string out = "{\n";
  out += "    \"seed\": " + std::to_string(info.seed) + ",\n";
  out += "    \"config\": {";
  bool first = true;
  for (const auto& [key, value] : info.config) {
    if (!first) out += ",";
    first = false;
    out += "\n      " + json_string(key) + ": " + json_string(value);
  }
  out += first ? "}" : "\n    }";
  out += ",\n    \"notes\": [";
  first = true;
  for (const std::string& note : info.notes) {
    if (!first) out += ", ";
    first = false;
    out += json_string(note);
  }
  out += "],\n    \"metrics\": " + render_metrics(Determinism::kDeterministic);
  out += "\n  }";
  return out;
}

std::string render_manifest(const ManifestInfo& info) {
  std::string out = "{\n";
  out += "  \"patchwork_manifest_version\": 1,\n";
  out += "  \"git_describe\": " + json_string(build_git_describe()) + ",\n";
  out += "  \"deterministic\": " + manifest_deterministic_section(info);
  out += ",\n  \"wall_clock\": {\n";
  out += "    \"thread_count\": " + std::to_string(util::thread_count()) +
         ",\n";
  out += "    \"hardware_concurrency\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  // Which vector kernel tier rendered this run's frames. Wall-clock side
  // only: the tier changes throughput, never the deterministic bytes.
  out += "    \"simd_tier\": " +
         json_string(std::string(util::to_string(util::simd_tier()))) + ",\n";
  out += "    \"metrics\": " + render_metrics(Determinism::kWallClock);
  out += "\n  }\n}\n";
  return out;
}

bool write_manifest(const std::string& path, const ManifestInfo& info) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << render_manifest(info);
  return static_cast<bool>(out);
}

std::string_view build_git_describe() { return PATCHWORK_GIT_DESCRIBE; }

}  // namespace patchwork::obs
