#include "obs/file_exporter.hpp"

#include "obs/metrics.hpp"
#include "util/file_io.hpp"

namespace patchwork::obs {

FileExporter::FileExporter(std::string path, std::chrono::milliseconds period,
                           bool deterministic_only)
    : path_(std::move(path)),
      period_(period),
      deterministic_only_(deterministic_only) {
  thread_ = std::thread([this] { run(); });
}

FileExporter::~FileExporter() { stop(); }

bool FileExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return final_flush_ok();
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  // Shutdown flush, after the thread is quiet: the periodic loop may have
  // exited mid-interval, before observing the run's final registry state.
  const bool ok = write_now();
  final_flush_ok_.store(ok, std::memory_order_relaxed);
  return ok;
}

bool FileExporter::write_now() {
  const std::string text = expose_text(deterministic_only_);
  if (!util::write_file_atomic(path_, text)) return false;
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FileExporter::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    // Snapshot with the lock dropped: exposition folds every shard and the
    // write hits the filesystem — neither should block stop().
    lock.unlock();
    write_now();
    lock.lock();
    wake_.wait_for(lock, period_, [this] { return stopping_; });
  }
}

std::unique_ptr<FileExporter> start_file_exporter(
    std::string path, std::chrono::milliseconds period,
    bool deterministic_only) {
  return std::make_unique<FileExporter>(std::move(path), period,
                                        deterministic_only);
}

}  // namespace patchwork::obs
