// Patchwork self-telemetry: the process-wide metrics registry.
//
// The paper's operators watch Patchwork itself through an SNMP -> Prometheus
// -> Grafana chain and rely on per-instance logs (Section 6.2.2) to notice
// silent switch-side mirror drops, capture-ring overflow, and allocation
// back-off. This module gives the reproduction the same first-class
// self-telemetry: counters, gauges, and histograms any subsystem can update
// from hot paths, exposed in Prometheus text format (expose.hpp within) and
// folded into the per-run manifest (manifest.hpp).
//
// Design rules:
//   1. Hot paths stay uncontended. Counters and histograms are sharded:
//      each thread updates its own cache-line-padded slot (chosen by a
//      thread-local shard id) with relaxed atomics; shards are folded only
//      at read time. A parallel_for worker never bounces a cache line
//      against another worker on the same metric.
//   2. Determinism survives instrumentation. Metrics are classified
//      kDeterministic (value depends only on the seeded work, identical for
//      any thread count: sums of per-item adds, max-folds of per-item
//      observations) or kWallClock (durations, queue depths — anything
//      schedule-dependent). expose_text(true) and the manifest's
//      deterministic section contain only the former, so the PR-1/PR-2
//      byte-identical-artifacts contract extends to telemetry.
//   3. Handles are cheap and stable. counter()/gauge()/histogram() return
//      references that live as long as the registry; call sites cache them
//      and update lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/histogram.hpp"

namespace patchwork::obs {

/// Whether a metric's value is a pure function of the seeded work
/// (identical at any thread count) or depends on scheduling / wall time.
enum class Determinism : std::uint8_t { kDeterministic, kWallClock };

/// Label set attached to one series, e.g. {{"cause", "capacity"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// Number of update shards per metric. Threads map onto shards by a
/// process-wide round-robin thread-local id, so up to kShards concurrent
/// writers never share a cache line.
inline constexpr std::size_t kShards = 16;

/// Highest log2 bucket index (matches util::Log2Histogram's 62 cap).
inline constexpr std::size_t kLog2Buckets = 63;

std::size_t shard_index();

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotonic counter. add() is wait-free on the caller's shard; value()
/// folds all shards (a sum, so the fold is schedule-independent whenever
/// the multiset of add() calls is).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void reset();

 private:
  std::array<detail::PaddedU64, detail::kShards> shards_{};
};

/// Gauge over a double. set() is last-writer-wins (use from serial control
/// paths); observe_max() folds concurrent observations with max, which is
/// schedule-independent — use it from parallel regions (high-water marks).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void observe_max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two latency/size histogram, sharded like Counter. Bucket
/// boundaries match util::Log2Histogram ([2^k, 2^(k+1))); snapshot() folds
/// the shards back into one util::Log2Histogram for reuse of its
/// rounded-up accounting. count()/sum() track the exact totals.
class LatencyHistogram {
 public:
  void observe(std::uint64_t value, std::uint64_t count = 1);
  std::uint64_t count() const;
  std::uint64_t sum() const;
  /// Folded per-bucket counts; index k covers [2^k, 2^(k+1)).
  std::vector<std::uint64_t> buckets() const;
  /// The folded histogram as a util::Log2Histogram (exact_sum approximated
  /// by bucket lower bounds; use sum() for the exact total).
  util::Log2Histogram snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, detail::kLog2Buckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, detail::kShards> shards_{};
};

/// The registry: name + labels -> metric handle. Metric families carry a
/// help string, a type, and a Determinism class; series of one family share
/// all three (enforced on registration).
class Registry {
 public:
  Registry();
  ~Registry();  // Out of line: Family/Series are incomplete here.
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {},
                   Determinism det = Determinism::kDeterministic);
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {},
               Determinism det = Determinism::kDeterministic);
  LatencyHistogram& histogram(std::string_view name, std::string_view help,
                              Labels labels = {},
                              Determinism det = Determinism::kDeterministic);

  /// Pull-style series for subsystems below obs in the layering (the
  /// shared worker pool, the logger): the function is sampled at
  /// exposition time. reset() records the current reading as a baseline so
  /// later readings are deltas since the last reset — this is what lets a
  /// determinism test compare runs even though the underlying source (a
  /// process-lifetime pool) never restarts.
  void counter_fn(std::string_view name, std::string_view help,
                  Labels labels, Determinism det,
                  std::function<std::uint64_t()> read);
  /// Same, but gauge-typed and sampled raw (no baseline on reset): current
  /// readings like queue depth are meaningful without differencing.
  void gauge_fn(std::string_view name, std::string_view help, Labels labels,
                Determinism det, std::function<double()> read);

  /// Prometheus text format: families sorted by name (series by label
  /// string), each with # HELP / # TYPE lines; histograms expose
  /// cumulative le buckets plus +Inf, _sum and _count.
  /// With deterministic_only, kWallClock families are omitted — this is
  /// the byte-comparable view.
  std::string expose_text(bool deterministic_only = false) const;

  /// Opt in to the synthetic patchwork_build_info gauge: a constant-1
  /// series whose labels carry git describe, simd tier, and thread count,
  /// rendered at exposition time (never registered — the thread count is
  /// run-dependent, so the family is wall-clock class and omitted from
  /// the deterministic view). The process-wide registry() enables it;
  /// standalone test registries stay byte-stable without it.
  void enable_build_info() { emit_build_info_ = true; }

  /// Zero every push metric and re-baseline every pull counter. Keeps all
  /// registrations (handles stay valid).
  void reset();

  /// One folded series snapshot, for the manifest writer.
  struct SeriesValue {
    std::string name;
    std::string labels;  ///< Rendered "{k=\"v\",...}" or "".
    char type = 'c';     ///< 'c'ounter, 'g'auge, 'h'istogram.
    Determinism det = Determinism::kDeterministic;
    std::uint64_t count = 0;  ///< Counter value or histogram count.
    double gauge = 0.0;
    std::uint64_t sum = 0;    ///< Histogram exact sum.
  };
  std::vector<SeriesValue> snapshot_values() const;

 private:
  struct Family;
  struct Series;
  Series& series(std::string_view name, std::string_view help, char type,
                 Labels labels, Determinism det);

  mutable std::mutex mutex_;
  bool emit_build_info_ = false;
  std::map<std::string, std::unique_ptr<Family>, std::less<>> families_;
};

/// The process-wide registry every subsystem records into. Built-in pull
/// metrics (shared pool, logger drops) are registered on first use.
Registry& registry();

/// registry().expose_text(...) shorthand.
std::string expose_text(bool deterministic_only = false);

/// Write expose_text() to a file. Returns false on I/O failure.
bool expose_to_file(const std::string& path, bool deterministic_only = false);

}  // namespace patchwork::obs
