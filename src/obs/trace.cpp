#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace patchwork::obs::trace {

namespace {

/// One thread's ring. The owning thread is the only writer of `ring` and
/// `head`; the control thread reads them only after the traced work has
/// quiesced (see the lifecycle contract in trace.hpp) and zeroes them only
/// from start()/reset(), which the same contract serializes.
struct Lane {
  explicit Lane(std::uint32_t id, std::size_t capacity)
      : lane_id(id), ring(capacity) {}
  const std::uint32_t lane_id;
  std::vector<Event> ring;
  std::uint64_t head = 0;  ///< Total events ever written on this lane.
};

struct State {
  std::atomic<bool> enabled{false};
  std::mutex mutex;  ///< Lane registration + config fields below.
  std::vector<std::unique_ptr<Lane>> lanes;
  std::size_t capacity = kDefaultCapacity;
  std::chrono::steady_clock::time_point epoch{};
  std::string env_path;
  bool env_armed = false;
};

State& state() {
  // Leaked like the metrics registry: spans may close during late static
  // destruction.
  static State* instance = new State();
  return *instance;
}

thread_local Lane* t_lane = nullptr;

Counter& dropped_counter() {
  // Which lane overflows (and how often) depends on scheduling. Resolved
  // once (start() primes it from the control thread) so the record path
  // never takes the registry mutex.
  static Counter& counter =
      registry().counter("patchwork_trace_dropped_events_total",
                         "Trace events overwritten by ring overflow", {},
                         Determinism::kWallClock);
  return counter;
}

Lane& lane_for_this_thread() {
  if (t_lane != nullptr) return *t_lane;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.lanes.push_back(std::make_unique<Lane>(
      static_cast<std::uint32_t>(s.lanes.size()), s.capacity));
  t_lane = s.lanes.back().get();
  return *t_lane;
}

void fill_event(Event& e, std::string_view name, std::uint64_t begin_ns,
                std::uint64_t end_ns, const SpanArgs& args, char phase) {
  const std::size_t n = std::min(name.size(), Event::kNameCapacity - 1);
  std::memcpy(e.name, name.data(), n);
  e.name[n] = '\0';
  e.begin_ns = begin_ns;
  e.end_ns = end_ns;
  e.args = args;
  e.phase = phase;
}

void record(std::string_view name, std::uint64_t begin_ns,
            std::uint64_t end_ns, const SpanArgs& args, char phase) {
  Lane& lane = lane_for_this_thread();
  if (lane.ring.empty()) {  // capacity 0: everything is overflow.
    dropped_counter().add();
    return;
  }
  if (lane.head >= lane.ring.size()) dropped_counter().add();
  fill_event(lane.ring[lane.head % lane.ring.size()], name, begin_ns, end_ns,
             args, phase);
  ++lane.head;
}

void append_args_json(std::string& out, const SpanArgs& args) {
  bool first = true;
  auto field = [&](const char* key, std::int64_t v) {
    if (v < 0) return;
    out += first ? "" : ",";
    first = false;
    out += "\"";
    out += key;
    out += "\":" + std::to_string(v);
  };
  out += ",\"args\":{";
  field("site", args.site);
  field("sample", args.sample);
  field("burst", args.burst);
  out += "}";
}

}  // namespace

bool enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  const auto epoch = state().epoch;
  if (epoch == std::chrono::steady_clock::time_point{}) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void start(std::size_t capacity_per_thread) {
  dropped_counter();  // Prime: registration locks, later adds do not.
  State& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.capacity = capacity_per_thread;
    for (auto& lane : s.lanes) {
      lane->head = 0;
      lane->ring.assign(capacity_per_thread, Event{});
    }
    s.epoch = std::chrono::steady_clock::now();
  }
  util::set_task_steal_observer(
      [] { record_instant("task_steal"); });
  s.enabled.store(true, std::memory_order_relaxed);
}

void stop() {
  State& s = state();
  s.enabled.store(false, std::memory_order_relaxed);
  util::set_task_steal_observer(nullptr);
}

void reset() {
  stop();
  dropped_counter().reset();
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& lane : s.lanes) {
    lane->head = 0;
  }
  s.env_path.clear();
  s.env_armed = false;
}

void record_complete(std::string_view name, std::uint64_t begin_ns,
                     std::uint64_t end_ns, const SpanArgs& args) {
  if (!enabled()) return;
  record(name, begin_ns, end_ns, args, 'X');
}

void record_instant(std::string_view name, const SpanArgs& args) {
  if (!enabled()) return;
  const std::uint64_t now = now_ns();
  record(name, now, now, args, 'i');
}

std::uint64_t dropped_events() { return dropped_counter().value(); }

std::vector<LaneEvent> snapshot_events() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<LaneEvent> out;
  for (const auto& lane : s.lanes) {
    if (lane->ring.empty()) continue;
    const std::uint64_t cap = lane->ring.size();
    const std::uint64_t first = lane->head > cap ? lane->head - cap : 0;
    for (std::uint64_t i = first; i < lane->head; ++i) {
      out.push_back(LaneEvent{lane->lane_id, lane->ring[i % cap]});
    }
  }
  return out;
}

std::string render_chrome_json() {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const LaneEvent& le : snapshot_events()) {
    const Event& e = le.event;
    out += first ? "\n" : ",\n";
    first = false;
    char ts[64];
    // Chrome trace timestamps are microseconds; keep ns precision.
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(e.begin_ns) / 1000.0);
    out += "{\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"patchwork\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(le.lane) +
           ",\"ts\":" + ts;
    if (e.phase == 'X') {
      char dur[64];
      const std::uint64_t d = e.end_ns >= e.begin_ns
                                  ? e.end_ns - e.begin_ns
                                  : 0;
      std::snprintf(dur, sizeof(dur), "%.3f",
                    static_cast<double>(d) / 1000.0);
      out += ",\"dur\":";
      out += dur;
    } else {
      out += ",\"s\":\"t\"";  // Instant scope: thread.
    }
    append_args_json(out, e.args);
    out += "}";
  }
  out += first ? "]}" : "\n]}";
  out += "\n";
  return out;
}

bool write_chrome_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << render_chrome_json();
  return static_cast<bool>(out);
}

bool configure_from_env() {
  const char* env = std::getenv("PATCHWORK_TRACE");
  if (env == nullptr || *env == '\0') return false;
  std::string spec(env);
  std::size_t capacity = kDefaultCapacity;
  // path[:capacity] — only split on a colon followed by pure digits, so
  // paths containing colons stay intact.
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos && colon + 1 < spec.size()) {
    const std::string tail = spec.substr(colon + 1);
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(tail.c_str(), &end, 10);
    if (end != tail.c_str() && *end == '\0') {
      capacity = static_cast<std::size_t>(parsed);
      spec.resize(colon);
    }
  }
  if (spec.empty()) return false;
  start(capacity);
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.env_path = spec;
  s.env_armed = true;
  return true;
}

std::string env_configured_path() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.env_path;
}

bool write_env_configured() {
  State& s = state();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.env_armed || s.env_path.empty()) return false;
    path = s.env_path;
  }
  stop();
  return write_chrome_json(path);
}

}  // namespace patchwork::obs::trace
