#include "obs/metrics.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/manifest.hpp"
#include "util/logging.hpp"
#include "util/philox_simd.hpp"
#include "util/thread_pool.hpp"

namespace patchwork::obs {

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return id;
}

}  // namespace detail

// --- Counter ---------------------------------------------------------------

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const detail::PaddedU64& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (detail::PaddedU64& s : shards_) {
    s.v.store(0, std::memory_order_relaxed);
  }
}

// --- Gauge -----------------------------------------------------------------

void Gauge::observe_max(double v) {
  double cur = value_.load(std::memory_order_relaxed);
  while (v > cur && !value_.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

// --- LatencyHistogram ------------------------------------------------------

void LatencyHistogram::observe(std::uint64_t value, std::uint64_t count) {
  // Same bucket rule as util::Log2Histogram::add: k with value < 2^(k+1).
  std::size_t k = 0;
  while ((2ull << k) <= value && k < 62) ++k;
  Shard& s = shards_[detail::shard_index()];
  s.buckets[k].fetch_add(count, std::memory_order_relaxed);
  s.count.fetch_add(count, std::memory_order_relaxed);
  s.sum.fetch_add(value * count, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t LatencyHistogram::sum() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> LatencyHistogram::buckets() const {
  std::vector<std::uint64_t> folded;
  for (const Shard& s : shards_) {
    for (std::size_t k = 0; k < detail::kLog2Buckets; ++k) {
      const std::uint64_t n = s.buckets[k].load(std::memory_order_relaxed);
      if (n == 0) continue;
      if (folded.size() <= k) folded.resize(k + 1, 0);
      folded[k] += n;
    }
  }
  return folded;
}

util::Log2Histogram LatencyHistogram::snapshot() const {
  util::Log2Histogram hist;
  const std::vector<std::uint64_t> folded = buckets();
  for (std::size_t k = 0; k < folded.size(); ++k) {
    if (folded[k] > 0) hist.add(util::Log2Histogram::bucket_lo(k), folded[k]);
  }
  return hist;
}

void LatencyHistogram::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

// --- Registry --------------------------------------------------------------

namespace {

void append_escaped(std::string& out, std::string_view text,
                    bool escape_quotes) {
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '"':
        if (escape_quotes) {
          out += "\\\"";
        } else {
          out += c;
        }
        break;
      default: out += c;
    }
  }
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    append_escaped(out, value, /*escape_quotes=*/true);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Inject one extra label (le=...) into a rendered label string.
std::string with_le(const std::string& labels_text, const std::string& le) {
  if (labels_text.empty()) return "{le=\"" + le + "\"}";
  std::string out = labels_text;
  out.pop_back();  // Drop the closing '}'.
  out += ",le=\"" + le + "\"}";
  return out;
}

std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

struct Registry::Series {
  std::string labels_text;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<LatencyHistogram> hist;
  std::function<std::uint64_t()> read_counter;
  std::uint64_t counter_baseline = 0;
  std::function<double()> read_gauge;

  std::uint64_t counter_value() const {
    if (counter) return counter->value();
    const std::uint64_t raw = read_counter ? read_counter() : 0;
    return raw >= counter_baseline ? raw - counter_baseline : 0;
  }
  double gauge_value() const {
    if (gauge) return gauge->value();
    return read_gauge ? read_gauge() : 0.0;
  }
};

struct Registry::Family {
  std::string help;
  char type = 'c';
  Determinism det = Determinism::kDeterministic;
  std::map<std::string, Series> series;  ///< Keyed by rendered labels.
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry::Series& Registry::series(std::string_view name,
                                   std::string_view help, char type,
                                   Labels labels, Determinism det) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    auto family = std::make_unique<Family>();
    family->help = std::string(help);
    family->type = type;
    family->det = det;
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  Family& family = *it->second;
  // A family's type/determinism class is fixed by its first registration;
  // re-registering with a different one is a programming error.
  assert(family.type == type);
  assert(family.det == det);
  std::string key = render_labels(labels);
  auto sit = family.series.find(key);
  if (sit == family.series.end()) {
    Series s;
    s.labels_text = key;
    sit = family.series.emplace(std::move(key), std::move(s)).first;
  }
  return sit->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels, Determinism det) {
  Series& s = series(name, help, 'c', std::move(labels), det);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels, Determinism det) {
  Series& s = series(name, help, 'g', std::move(labels), det);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

LatencyHistogram& Registry::histogram(std::string_view name,
                                      std::string_view help, Labels labels,
                                      Determinism det) {
  Series& s = series(name, help, 'h', std::move(labels), det);
  if (!s.hist) s.hist = std::make_unique<LatencyHistogram>();
  return *s.hist;
}

void Registry::counter_fn(std::string_view name, std::string_view help,
                          Labels labels, Determinism det,
                          std::function<std::uint64_t()> read) {
  Series& s = series(name, help, 'c', std::move(labels), det);
  s.read_counter = std::move(read);
  s.counter_baseline = 0;
}

void Registry::gauge_fn(std::string_view name, std::string_view help,
                        Labels labels, Determinism det,
                        std::function<double()> read) {
  Series& s = series(name, help, 'g', std::move(labels), det);
  s.read_gauge = std::move(read);
}

namespace {

/// The self-describing build-identity family: a constant-1 gauge whose
/// labels carry everything a scraper needs to place the sample without
/// fetching the manifest. The thread count (and potentially the simd
/// tier) vary run to run, so the family is wall-clock class and synthetic:
/// it never registers a series, it is rendered straight into the
/// exposition at its sorted position.
std::string render_build_info() {
  std::string out =
      "# HELP patchwork_build_info Build and runtime identity "
      "(constant 1; values live in the labels)\n"
      "# TYPE patchwork_build_info gauge\n";
  out += "patchwork_build_info{git_describe=\"";
  append_escaped(out, build_git_describe(), /*escape_quotes=*/true);
  out += "\",simd_tier=\"";
  out += std::string(util::to_string(util::simd_tier()));
  out += "\",threads=\"" + std::to_string(util::thread_count()) + "\"} 1\n";
  return out;
}

constexpr std::string_view kBuildInfoFamily = "patchwork_build_info";

}  // namespace

std::string Registry::expose_text(bool deterministic_only) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // The synthetic family is wall-clock class: deterministic views skip it.
  bool build_info_emitted = deterministic_only || !emit_build_info_;
  for (const auto& [name, family] : families_) {
    if (!build_info_emitted && name > kBuildInfoFamily) {
      out += render_build_info();
      build_info_emitted = true;
    }
    if (deterministic_only && family->det == Determinism::kWallClock) {
      continue;
    }
    out += "# HELP " + name + " ";
    append_escaped(out, family->help, /*escape_quotes=*/false);
    out += "\n# TYPE " + name + " ";
    switch (family->type) {
      case 'c': out += "counter"; break;
      case 'g': out += "gauge"; break;
      case 'h': out += "histogram"; break;
    }
    out += "\n";
    for (const auto& [key, s] : family->series) {
      if (family->type == 'c') {
        out += name + s.labels_text + " " +
               std::to_string(s.counter_value()) + "\n";
      } else if (family->type == 'g') {
        out += name + s.labels_text + " " + format_double(s.gauge_value()) +
               "\n";
      } else {
        const std::vector<std::uint64_t> buckets =
            s.hist ? s.hist->buckets() : std::vector<std::uint64_t>{};
        std::uint64_t cumulative = 0;
        for (std::size_t k = 0; k < buckets.size(); ++k) {
          cumulative += buckets[k];
          out += name + "_bucket" +
                 with_le(s.labels_text,
                         std::to_string(util::Log2Histogram::bucket_hi(k))) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket" + with_le(s.labels_text, "+Inf") + " " +
               std::to_string(cumulative) + "\n";
        out += name + "_sum" + s.labels_text + " " +
               std::to_string(s.hist ? s.hist->sum() : 0) + "\n";
        out += name + "_count" + s.labels_text + " " +
               std::to_string(cumulative) + "\n";
      }
    }
  }
  if (!build_info_emitted) out += render_build_info();
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    for (auto& [key, s] : family->series) {
      if (s.counter) s.counter->reset();
      if (s.gauge) s.gauge->reset();
      if (s.hist) s.hist->reset();
      if (s.read_counter) s.counter_baseline = s.read_counter();
    }
  }
  // Pull sources with max semantics (pool high-water marks) cannot be
  // re-baselined by subtraction; reset them at the source.
  util::shared_pool().reset_stats();
}

std::vector<Registry::SeriesValue> Registry::snapshot_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SeriesValue> out;
  for (const auto& [name, family] : families_) {
    for (const auto& [key, s] : family->series) {
      SeriesValue v;
      v.name = name;
      v.labels = s.labels_text;
      v.type = family->type;
      v.det = family->det;
      if (family->type == 'c') {
        v.count = s.counter_value();
      } else if (family->type == 'g') {
        v.gauge = s.gauge_value();
      } else if (s.hist) {
        v.count = s.hist->count();
        v.sum = s.hist->sum();
      }
      out.push_back(std::move(v));
    }
  }
  return out;
}

// --- Process-wide registry + built-in pull metrics -------------------------

namespace {

/// Register the pull-style series for subsystems obs sits above in the
/// layering: the shared worker pool's scheduling stats and the logger's
/// bounded-buffer drop count.
void register_builtins(Registry& reg) {
  // Scrapes of the live process are self-describing without the manifest.
  reg.enable_build_info();
  // Scheduling telemetry is inherently thread-count-dependent: kWallClock.
  reg.gauge_fn("patchwork_pool_workers", "Worker threads in the shared pool",
               {}, Determinism::kWallClock,
               [] { return static_cast<double>(util::shared_pool().size()); });
  reg.gauge_fn("patchwork_pool_queue_depth",
               "Tasks currently queued in the shared pool", {},
               Determinism::kWallClock, [] {
                 return static_cast<double>(
                     util::shared_pool().stats().queue_depth);
               });
  reg.gauge_fn("patchwork_pool_queue_depth_high_water",
               "Highest queued-task count observed since the last reset", {},
               Determinism::kWallClock, [] {
                 return static_cast<double>(
                     util::shared_pool().stats().queue_depth_high_water);
               });
  reg.counter_fn("patchwork_pool_tasks_total",
                 "Tasks executed by the shared pool", {},
                 Determinism::kWallClock,
                 [] { return util::shared_pool().stats().tasks_executed; });
  reg.counter_fn("patchwork_pool_tasks_stolen_total",
                 "Group tasks migrated off another worker's deque by the "
                 "work-stealing scheduler",
                 {}, Determinism::kWallClock,
                 [] { return util::shared_pool().stats().tasks_stolen; });
  reg.counter_fn(
      "patchwork_pool_task_wait_ns_total",
      "Total nanoseconds tasks spent queued before a worker picked them up",
      {}, Determinism::kWallClock,
      [] { return util::shared_pool().stats().task_wait_ns_total; });
  reg.counter_fn(
      "patchwork_pool_busy_ns_total",
      "Total nanoseconds workers spent executing tasks (utilization "
      "numerator)",
      {}, Determinism::kWallClock,
      [] { return util::shared_pool().stats().task_run_ns_total; });
  // Log drops depend only on each logger's record sequence and cap, never
  // on scheduling: deterministic.
  reg.counter_fn("patchwork_log_dropped_records_total",
                 "Oldest records evicted by bounded-buffer loggers", {},
                 Determinism::kDeterministic,
                 [] { return util::logger_dropped_total(); });
}

}  // namespace

Registry& registry() {
  // Leaked singleton: expose paths can run arbitrarily late (atexit
  // handlers, static destructors of other TUs), so the registry must not
  // be torn down before them.
  static Registry* instance = [] {
    auto* reg = new Registry();
    register_builtins(*reg);
    return reg;
  }();
  return *instance;
}

std::string expose_text(bool deterministic_only) {
  return registry().expose_text(deterministic_only);
}

bool expose_to_file(const std::string& path, bool deterministic_only) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << registry().expose_text(deterministic_only);
  return static_cast<bool>(out);
}

}  // namespace patchwork::obs
