// File-snapshot metrics exporter for long runs.
//
// The paper's deployment scrapes Patchwork through Prometheus; this
// reproduction has no listening socket, so long-running examples (the
// weekly community profile) instead keep a metrics file fresh on disk:
// a background thread rewrites the Prometheus exposition every `period`,
// atomically (write-temp + rename via util::write_file_atomic), so a
// tail -f / file-watcher style consumer never sees a torn snapshot.
//
// The exporter is deliberately dumb: it samples obs::expose_text() — the
// same bytes expose_to_file() writes once — and owns nothing but its
// thread. Destruction (or stop()) writes one final snapshot so the file
// always ends on the run's last state.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace patchwork::obs {

class FileExporter {
 public:
  /// Starts the background thread. `deterministic_only` selects the
  /// byte-comparable view (kWallClock families omitted), matching
  /// expose_text()'s flag.
  FileExporter(std::string path, std::chrono::milliseconds period,
               bool deterministic_only = false);
  ~FileExporter();  // stop()s.

  FileExporter(const FileExporter&) = delete;
  FileExporter& operator=(const FileExporter&) = delete;

  /// Stop the thread and write one final snapshot after it is quiet, so
  /// registry updates from the last period are never lost (the periodic
  /// thread may exit mid-interval without ever observing them).
  /// Idempotent; returns whether the shutdown flush (or, on repeat calls,
  /// the first one) hit the disk.
  bool stop();

  /// Whether the shutdown flush succeeded (meaningful after stop()).
  bool final_flush_ok() const {
    return final_flush_ok_.load(std::memory_order_relaxed);
  }

  /// Write a snapshot right now (also called by the background thread).
  /// Returns false on IO failure.
  bool write_now();

  /// Snapshots successfully written so far (including the final one).
  std::uint64_t snapshots_written() const {
    return snapshots_.load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }

 private:
  void run();

  const std::string path_;
  const std::chrono::milliseconds period_;
  const bool deterministic_only_;
  std::atomic<std::uint64_t> snapshots_{0};
  std::atomic<bool> final_flush_ok_{false};
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

/// Convenience factory used by the examples: start an exporter that keeps
/// `path` fresh every `period`.
std::unique_ptr<FileExporter> start_file_exporter(
    std::string path, std::chrono::milliseconds period,
    bool deterministic_only = false);

}  // namespace patchwork::obs
