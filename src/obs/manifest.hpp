// Per-run manifest: a JSON artifact written next to the profile output that
// makes a run reproducible-on-paper — seed, config, build identity, thread
// count, per-stage timings, and the final metric values.
//
// Layout contract:
//   {
//     "patchwork_manifest_version": 1,
//     "git_describe": "...",           // build identity (constant per build)
//     "deterministic": { ... },        // byte-identical at any thread count
//     "wall_clock": { ... }            // everything schedule-dependent
//   }
// The deterministic object holds the seed, the caller's config key/values,
// notes, and every kDeterministic metric series (counters, max-fold gauges,
// and sim-time histograms as count+sum). The wall_clock object holds the
// thread count, hardware concurrency, and every kWallClock series. The
// deterministic object is rendered by manifest_deterministic_section() and
// embedded verbatim, so tests can compare that exact byte range across
// thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace patchwork::obs {

struct ManifestInfo {
  std::uint64_t seed = 0;
  /// Config key/values, emitted in the order given (callers pass a fixed
  /// order, keeping the render deterministic).
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::string> notes;
};

/// The "deterministic" JSON object: seed, config, notes, and every
/// kDeterministic series currently in the process registry.
std::string manifest_deterministic_section(const ManifestInfo& info);

/// The full manifest JSON (embeds manifest_deterministic_section verbatim).
std::string render_manifest(const ManifestInfo& info);

/// Write render_manifest() to `path`. Returns false on I/O failure.
bool write_manifest(const std::string& path, const ManifestInfo& info);

/// The git-describe string baked in at configure time ("unknown" when the
/// build saw no git metadata).
std::string_view build_git_describe();

}  // namespace patchwork::obs
