// Flight-recorder trace timeline: per-thread fixed-capacity event rings
// that make the data plane's fan-out visible per worker lane.
//
// Every OBS_SPAN-covered stage (and trace-only scopes like the per-burst
// render_unit) records one complete event — name, lane (thread), begin/end
// wall ns, optional site/sample/burst args — into a ring owned by the
// recording thread. TaskGroup steals surface as instant events via the
// util::set_task_steal_observer hook. At run end the rings drain into
// Chrome trace-event JSON (catapult format), loadable in Perfetto or
// chrome://tracing, so Coordinator Phase-2 scheduling, work stealing,
// per-burst render_unit latency, and compression scratch reuse are
// directly inspectable per worker.
//
// Hot-path rules:
//   1. Tracing off => one relaxed flag load per span, nothing else: no
//      shared-cache-line writes, no allocation, no lock.
//   2. Tracing on  => the recording thread writes only its own ring (plain
//      stores; the ring is allocated once on the thread's first event).
//      Overflow overwrites the oldest slot — flight-recorder semantics —
//      and is counted in patchwork_trace_dropped_events_total (kWallClock:
//      which thread overflows is schedule-dependent). Recording never
//      blocks.
//   3. Determinism survives tracing. The trace layer registers no
//      deterministic metric families, so the deterministic exposition and
//      ProfileRun bytes are identical with tracing on or off, at any
//      worker count. The *set* of complete events (names and counts) is a
//      pure function of the seeded work; only lane assignment, timestamps,
//      and steal events are schedule-dependent.
//
// Lifecycle contract: start()/stop()/reset()/drain run from a control
// thread while no spans are in flight (between runs). Worker-side writes
// are ordered before the drain by the pool's own synchronization
// (TaskGroup::wait / the pool mutex), so draining after a run needs no
// extra locking on the rings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace patchwork::obs::trace {

/// Optional arguments attached to an event; -1 means "absent" and is
/// omitted from the rendered JSON.
struct SpanArgs {
  std::int64_t site = -1;
  std::int64_t sample = -1;
  std::int64_t burst = -1;
};

/// One recorded event. `phase` is the Chrome trace phase: 'X' (complete,
/// begin/end pair) or 'i' (instant, begin only).
struct Event {
  static constexpr std::size_t kNameCapacity = 48;
  char name[kNameCapacity] = {};
  std::uint64_t begin_ns = 0;  ///< Nanoseconds since trace start().
  std::uint64_t end_ns = 0;
  SpanArgs args;
  char phase = 'X';
};

/// An event with the lane (per-thread track) it was recorded on, as the
/// drain sees it. Lane ids are registration order, schedule-dependent.
struct LaneEvent {
  std::uint32_t lane = 0;
  Event event;
};

/// Default per-thread ring capacity (events) when none is given.
inline constexpr std::size_t kDefaultCapacity = 1 << 15;

/// True while the recorder accepts events. One relaxed atomic load — the
/// whole cost of an untraced span beyond its existing metrics updates.
bool enabled();

/// Nanoseconds since start() on the steady clock (0 when never started).
std::uint64_t now_ns();

/// Arm the recorder: fix the per-thread ring capacity, re-zero every
/// already-registered lane, set the time origin, and install the
/// TaskGroup steal observer. Call only while no spans are in flight.
void start(std::size_t capacity_per_thread = kDefaultCapacity);

/// Disarm recording (rings are kept for draining). Idempotent.
void stop();

/// stop() plus clear every lane and the drop counts. The rings' memory is
/// retained for reuse — lanes are process-lifetime, like pool workers.
void reset();

/// Record one complete event ('X'). No-op when disabled. Never blocks;
/// on ring overflow the oldest event is overwritten and counted.
void record_complete(std::string_view name, std::uint64_t begin_ns,
                     std::uint64_t end_ns, const SpanArgs& args = {});

/// Record one instant event ('i') stamped at now_ns().
void record_instant(std::string_view name, const SpanArgs& args = {});

/// Trace-only RAII scope: records a complete event with no metrics-side
/// families, so per-burst instrumentation cannot perturb the
/// deterministic exposition. Cost when disabled: one relaxed load.
class ScopedEvent {
 public:
  explicit ScopedEvent(std::string_view name, const SpanArgs& args = {})
      : active_(enabled()) {
    if (active_) {
      name_ = name;
      args_ = args;
      begin_ns_ = now_ns();
    }
  }
  ~ScopedEvent() {
    if (active_) record_complete(name_, begin_ns_, now_ns(), args_);
  }
  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

 private:
  const bool active_;
  std::string_view name_;
  SpanArgs args_;
  std::uint64_t begin_ns_ = 0;
};

/// Events overwritten by ring overflow across all lanes so far (also
/// exposed as patchwork_trace_dropped_events_total).
std::uint64_t dropped_events();

/// Drain every lane, oldest event first per lane. Safe once the traced
/// work has quiesced (see the lifecycle contract above).
std::vector<LaneEvent> snapshot_events();

/// Render the drained events as Chrome trace-event JSON
/// ({"traceEvents": [...]}, timestamps in microseconds), one pid, one tid
/// per lane. Loadable in Perfetto / chrome://tracing.
std::string render_chrome_json();

/// Write render_chrome_json() to `path`. Returns false on I/O failure.
bool write_chrome_json(const std::string& path);

/// PATCHWORK_TRACE=path[:capacity] — arm the recorder and remember the
/// output path. Returns true when the variable was set and parsed.
bool configure_from_env();

/// The path configure_from_env() latched ("" when unset).
std::string env_configured_path();

/// When configure_from_env() armed the recorder, stop and write the JSON
/// to the latched path. Returns true when a file was written.
bool write_env_configured();

}  // namespace patchwork::obs::trace
