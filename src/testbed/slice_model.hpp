// Statistical model of researcher slice activity.
//
// Calibrated to the paper's Section 5 study:
//   * Fig. 3 — 66.5% of slices use a single site; the rest spread over few.
//   * Fig. 4 — 75% of slices last <= 24 hours, with a heavy tail.
//   * Fig. 5 — on average 85 slices are simultaneously active
//     (stddev 52, max observed 272), driven by deadline seasonality.
//
// The generator is a non-homogeneous Poisson arrival process whose rate
// follows the ActivityModel, with i.i.d. durations and site spreads.
#pragma once

#include <cstdint>
#include <vector>

#include "testbed/activity_model.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace patchwork::testbed {

struct SliceRecord {
  util::Nanos start = 0;
  util::Nanos duration = 0;
  std::uint32_t site_count = 1;
  std::vector<std::uint32_t> sites;  ///< Site indices used by the slice.

  util::Nanos end() const { return start + duration; }
  bool active_at(util::Nanos t) const { return t >= start && t < end(); }
};

class SliceActivityModel {
 public:
  struct Params {
    double single_site_fraction = 0.665;  // Fig. 3.
    /// Conditional weights for multi-site slices using 2..9 sites.
    std::vector<double> multi_site_weights = {5, 3, 2, 1.2, 0.7, 0.4, 0.2, 0.1};
    /// Duration mixture: `short_fraction` of slices are sub-day.
    double short_fraction = 0.75;  // Fig. 4: 75% last <= 24h.
    double short_mean_hours = 7.0;
    double tail_lo_days = 1.0;
    double tail_hi_days = 90.0;
    double tail_alpha = 1.05;
    /// Mean simultaneously-active slices over the year (Fig. 5).
    double target_mean_active = 85.0;
    std::size_t total_sites = 30;
  };

  SliceActivityModel(util::Rng& rng, const ActivityModel& activity,
                     Params params);
  SliceActivityModel(util::Rng& rng, const ActivityModel& activity)
      : SliceActivityModel(rng, activity, Params()) {}

  /// Generate all slices whose lifetime intersects [0, horizon).
  std::vector<SliceRecord> generate(util::Nanos horizon);

  /// Number of records in `slices` active at time `t`.
  static std::size_t active_count(const std::vector<SliceRecord>& slices,
                                  util::Nanos t);

  /// Expected duration (ns) implied by the parameters.
  util::Nanos expected_duration() const;

  /// Base arrival rate (slices per ns) so the steady-state mean active
  /// count hits target_mean_active.
  double base_arrival_rate() const;

  const Params& params() const { return params_; }

  /// Draw one duration / one site spread (exposed for tests and benches).
  util::Nanos draw_duration();
  std::uint32_t draw_site_count();

 private:
  util::Rng& rng_;
  const ActivityModel& activity_;
  Params params_;
};

}  // namespace patchwork::testbed
