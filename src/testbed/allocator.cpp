#include "testbed/allocator.hpp"

#include <algorithm>
#include <cmath>

namespace patchwork::testbed {

std::string_view to_string(AllocError e) {
  switch (e) {
    case AllocError::kNoDedicatedNic: return "no-dedicated-nic";
    case AllocError::kNoFpga: return "no-fpga";
    case AllocError::kNoCpu: return "no-cpu";
    case AllocError::kNoMemory: return "no-memory";
    case AllocError::kNoStorage: return "no-storage";
    case AllocError::kBackendError: return "backend-error";
  }
  return "?";
}

util::Nanos Allocator::allocation_latency(std::size_t sliver_count) const {
  const double extra =
      static_cast<double>(tuning_.per_sliver_latency) *
      std::pow(static_cast<double>(sliver_count), tuning_.size_exponent);
  return tuning_.base_latency + static_cast<util::Nanos>(extra);
}

namespace {

/// Plan one VM placement against mutable free-resource snapshots.
/// `ded_free` / `fpga_free` are per-NIC availability snapshots.
struct PlanState {
  std::vector<std::uint32_t> cores_free;
  std::vector<std::uint64_t> ram_free;
  std::vector<std::uint64_t> storage_free;
  std::vector<bool> nic_free;
};

PlanState snapshot(const Site& site) {
  PlanState st;
  for (const WorkerNode& w : site.workers()) {
    st.cores_free.push_back(w.cores_free);
    st.ram_free.push_back(w.ram_free);
    st.storage_free.push_back(w.storage_free);
  }
  st.nic_free.resize(site.nics().size());
  for (const Nic& n : site.nics()) {
    st.nic_free[n.id.value] =
        n.available() && n.kind != NicKind::kSharedConnectX;
  }
  return st;
}

struct VmPlan {
  std::uint32_t worker = 0;
  std::vector<std::uint32_t> nics;
};

/// Try to place `vm` in `st`; commits to the snapshot on success.
std::optional<AllocError> plan_vm(const Site& site, const VmRequest& vm,
                                  PlanState& st, VmPlan& out) {
  // Gather candidate NICs first: a dedicated NIC pins the VM to that NIC's
  // worker, so NIC choice drives worker choice.
  std::vector<std::uint32_t> chosen_nics;
  std::optional<std::uint32_t> pinned_worker;

  auto choose_nic = [&](NicKind kind) -> bool {
    for (const Nic& n : site.nics()) {
      if (n.kind != kind || !st.nic_free[n.id.value]) continue;
      if (pinned_worker && n.worker.value != *pinned_worker) continue;
      const std::uint32_t w = n.worker.value;
      if (st.cores_free[w] < vm.cores || st.ram_free[w] < vm.ram ||
          st.storage_free[w] < vm.storage) {
        continue;
      }
      chosen_nics.push_back(n.id.value);
      st.nic_free[n.id.value] = false;
      pinned_worker = w;
      return true;
    }
    return false;
  };

  for (std::uint32_t i = 0; i < vm.dedicated_nics; ++i) {
    if (!choose_nic(NicKind::kDedicatedConnectX)) {
      return AllocError::kNoDedicatedNic;
    }
  }
  if (vm.wants_fpga && !choose_nic(NicKind::kAlveoFpga)) {
    return AllocError::kNoFpga;
  }

  std::uint32_t worker = 0;
  if (pinned_worker) {
    worker = *pinned_worker;
  } else {
    // No NIC constraint: first-fit across workers.
    bool placed = false;
    for (std::uint32_t w = 0; w < st.cores_free.size(); ++w) {
      if (st.cores_free[w] >= vm.cores && st.ram_free[w] >= vm.ram &&
          st.storage_free[w] >= vm.storage) {
        worker = w;
        placed = true;
        break;
      }
    }
    if (!placed) {
      // Report the scarcest dimension for a useful error.
      for (std::uint32_t w = 0; w < st.cores_free.size(); ++w) {
        if (st.cores_free[w] < vm.cores) continue;
        if (st.ram_free[w] < vm.ram) return AllocError::kNoMemory;
        return AllocError::kNoStorage;
      }
      return AllocError::kNoCpu;
    }
  }
  st.cores_free[worker] -= vm.cores;
  st.ram_free[worker] -= vm.ram;
  st.storage_free[worker] -= vm.storage;
  out.worker = worker;
  out.nics = std::move(chosen_nics);
  return std::nullopt;
}

}  // namespace

std::optional<AllocError> Allocator::can_satisfy(
    const SliceRequest& request) const {
  PlanState st = snapshot(site_);
  for (const VmRequest& vm : request.vms) {
    VmPlan plan;
    if (auto err = plan_vm(site_, vm, st, plan)) return err;
  }
  return std::nullopt;
}

AllocResult Allocator::allocate(const SliceRequest& request) {
  AllocResult result;
  std::size_t slivers = request.vms.size();
  for (const VmRequest& vm : request.vms) {
    slivers += vm.dedicated_nics + (vm.wants_fpga ? 1 : 0);
  }
  result.latency = allocation_latency(slivers);

  if (rng_.chance(tuning_.backend_failure_rate)) {
    result.error = AllocError::kBackendError;
    return result;
  }

  PlanState st = snapshot(site_);
  std::vector<VmPlan> plans;
  for (const VmRequest& vm : request.vms) {
    VmPlan plan;
    if (auto err = plan_vm(site_, vm, st, plan)) {
      result.error = err;
      return result;
    }
    plans.push_back(std::move(plan));
  }

  // Commit.
  SliceGrant grant;
  grant.slice = SliceId{next_slice_++};
  grant.site = site_.id();
  grant.allocation_latency = result.latency;
  for (std::size_t i = 0; i < request.vms.size(); ++i) {
    const VmRequest& vm = request.vms[i];
    const VmPlan& plan = plans[i];
    WorkerNode& w = site_.mutable_worker(WorkerId{plan.worker});
    w.cores_free -= vm.cores;
    w.ram_free -= vm.ram;
    w.storage_free -= vm.storage;
    GrantedVm gvm;
    gvm.vm = VmId{next_vm_++};
    gvm.worker = WorkerId{plan.worker};
    gvm.footprint = vm;
    for (std::uint32_t nic_index : plan.nics) {
      Nic& nic = site_.mutable_nic(NicId{nic_index});
      nic.allocated_to = grant.slice;
      gvm.nics.push_back(nic.id);
      for (PortId p : nic.switch_ports) gvm.nic_ports.push_back(p);
    }
    grant.vms.push_back(std::move(gvm));
  }
  result.grant = std::move(grant);
  return result;
}

void Allocator::release(const SliceGrant& grant) {
  for (const GrantedVm& gvm : grant.vms) {
    for (NicId nic_id : gvm.nics) {
      site_.mutable_nic(nic_id).allocated_to.reset();
    }
  }
  for (const GrantedVm& gvm : grant.vms) {
    WorkerNode& w = site_.mutable_worker(gvm.worker);
    w.cores_free = std::min(w.cores_total, w.cores_free + gvm.footprint.cores);
    w.ram_free = std::min(w.ram_total, w.ram_free + gvm.footprint.ram);
    w.storage_free =
        std::min(w.storage_total, w.storage_free + gvm.footprint.storage);
  }
}

}  // namespace patchwork::testbed
