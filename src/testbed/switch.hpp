// Top-of-rack switch with the port mirroring primitive.
//
// This is the substrate for FABRIC's key profiling feature (Section 3):
// mirroring clones a port's Rx and/or Tx channel onto the *Tx* channel of
// another port. Because both cloned channels share one egress channel, the
// mirror silently drops frames whenever Mirrored(Tx) + Mirrored(Rx) exceeds
// the egress line rate — the exact congestion mode Patchwork must detect
// (Section 6.2.2). `mirror_delivery_fraction` exposes that rule, and
// `advance` charges the mirror load (and drops) to the egress port's
// counters so SNMP telemetry sees it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "testbed/ids.hpp"
#include "testbed/port.hpp"
#include "util/units.hpp"

namespace patchwork::testbed {

struct MirrorSession {
  PortId source;
  MirrorDirections directions = MirrorDirections::kBoth;
  PortId destination;  ///< Mirrored frames leave on this port's Tx channel.
};

class ToRSwitch {
 public:
  explicit ToRSwitch(std::vector<SwitchPort> ports)
      : ports_(std::move(ports)) {}

  std::size_t port_count() const { return ports_.size(); }
  const SwitchPort& port(PortId id) const { return ports_.at(id.value); }
  SwitchPort& mutable_port(PortId id) { return ports_.at(id.value); }

  std::vector<PortId> ports_of_kind(PortKind kind) const;
  std::size_t count_of_kind(PortKind kind) const;

  // --- Port mirroring ----------------------------------------------------
  /// Establish a mirror. Fails (returns false) if the source or destination
  /// is already part of another session, or the destination is not a
  /// downlink (mirror egress must face a server NIC), or source == dest.
  bool add_mirror(MirrorSession session);
  bool remove_mirror(PortId source);
  /// Replace the source of an existing session keeping the same
  /// destination — this is exactly Patchwork's "port cycling" operation
  /// (Fig. 7: cycling changes the mirrored port while keeping fixed the
  /// NICs and VMs).
  bool retarget_mirror(PortId old_source, PortId new_source);

  /// Change which channels an existing session clones (e.g. drop to
  /// Tx-only when Tx+Rx oversubscribes the egress).
  bool set_mirror_directions(PortId source, MirrorDirections directions);

  const std::vector<MirrorSession>& mirrors() const { return mirrors_; }
  std::optional<MirrorSession> mirror_for_source(PortId source) const;
  std::optional<MirrorSession> mirror_to_destination(PortId dest) const;
  bool port_is_mirror_member(PortId id) const;

  /// Offered load on a mirror destination's Tx channel (bps): the sum of
  /// the mirrored directions' current rates.
  double mirror_offered_bps(const MirrorSession& s) const;

  /// Fraction of mirrored frames that survive the egress channel, in
  /// (0, 1]: min(1, egress_line_rate / offered).
  double mirror_delivery_fraction(const MirrorSession& s) const;

  /// Advance time: integrates all port counters, including mirror egress
  /// load and mirror drops.
  void advance(util::Nanos dt);

 private:
  std::vector<SwitchPort> ports_;
  std::vector<MirrorSession> mirrors_;
};

}  // namespace patchwork::testbed
