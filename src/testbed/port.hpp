// Switch port model.
//
// Every FABRIC link consists of two unidirectional channels (Tx and Rx,
// Section 3), so a port carries independent rates and counters per
// direction. Rates are piecewise-constant offered loads set by the traffic
// engine; counters integrate them over time and are what SNMP polling
// reads.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace patchwork::testbed {

enum class PortKind : std::uint8_t {
  kDownlink,  ///< Connects to a server NIC in the same rack.
  kUplink,    ///< Connects to another FABRIC site's switch.
  kUnused,
};

enum class Direction : std::uint8_t { kTx, kRx };

/// Which directions of a mirrored port to clone (Section 3: "choosing
/// whether to mirror either or both of Rx and Tx").
enum class MirrorDirections : std::uint8_t { kTxOnly, kRxOnly, kBoth };

struct PortCounters {
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_frames = 0;
  std::uint64_t rx_frames = 0;
  std::uint64_t mirror_drops = 0;  ///< Frames lost at an oversubscribed mirror egress.
};

class SwitchPort {
 public:
  SwitchPort() = default;
  SwitchPort(PortKind kind, double line_rate_bps)
      : kind_(kind), line_rate_bps_(line_rate_bps) {}

  PortKind kind() const { return kind_; }
  double line_rate_bps() const { return line_rate_bps_; }

  double tx_rate_bps() const { return tx_rate_bps_; }
  double rx_rate_bps() const { return rx_rate_bps_; }
  void set_rates(double tx_bps, double rx_bps) {
    tx_rate_bps_ = tx_bps;
    rx_rate_bps_ = rx_bps;
  }

  /// Mean frame size used to convert byte rates into frame counters.
  double mean_frame_size() const { return mean_frame_size_; }
  void set_mean_frame_size(double bytes) { mean_frame_size_ = bytes; }

  const PortCounters& counters() const { return counters_; }
  PortCounters& mutable_counters() { return counters_; }

  /// Integrate the current offered rates over `dt` into the counters.
  void advance(util::Nanos dt);

  /// Utilization of the busier direction, in [0, 1].
  double utilization() const;

 private:
  PortKind kind_ = PortKind::kUnused;
  double line_rate_bps_ = 0.0;
  double tx_rate_bps_ = 0.0;
  double rx_rate_bps_ = 0.0;
  double mean_frame_size_ = 1000.0;
  PortCounters counters_;
};

}  // namespace patchwork::testbed
