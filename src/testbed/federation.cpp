#include "testbed/federation.hpp"

#include <algorithm>
#include <cassert>

namespace patchwork::testbed {

SiteId Federation::add_site(Site site) {
  const SiteId id{static_cast<std::uint32_t>(sites_.size())};
  assert(site.id() == id && "sites must be added in id order");
  sites_.push_back(std::make_unique<Site>(std::move(site)));
  return id;
}

std::vector<SiteId> Federation::site_ids() const {
  std::vector<SiteId> out;
  out.reserve(sites_.size());
  for (std::uint32_t i = 0; i < sites_.size(); ++i) out.push_back(SiteId{i});
  return out;
}

void Federation::advance(util::Nanos dt) {
  for (auto& s : sites_) s->tor().advance(dt);
}

std::vector<SitePortInventory> port_inventory(const Federation& fed) {
  std::vector<SitePortInventory> out;
  for (SiteId id : fed.site_ids()) {
    const Site& s = fed.site(id);
    out.push_back(SitePortInventory{
        id, s.name(), s.tor().count_of_kind(PortKind::kUplink),
        s.tor().count_of_kind(PortKind::kDownlink)});
  }
  return out;
}

Federation make_fabric_like_federation(util::Rng& rng,
                                       const FederationSpec& spec) {
  Federation fed;
  assert(spec.sites >= 2);
  // Uplink count per site: drawn once, reused when wiring links below.
  std::vector<std::size_t> uplinks(spec.sites);
  for (std::size_t i = 0; i < spec.sites; ++i) {
    uplinks[i] = rng.uniform_u64(spec.min_uplinks, spec.max_uplinks);
  }

  for (std::size_t i = 0; i < spec.sites; ++i) {
    const bool teaching =
        spec.include_teaching_site && i == spec.sites - 1;
    const std::size_t downlinks =
        rng.uniform_u64(spec.min_downlinks, spec.max_downlinks);

    std::vector<SwitchPort> ports;
    ports.reserve(uplinks[i] + downlinks);
    for (std::size_t u = 0; u < uplinks[i]; ++u) {
      ports.emplace_back(PortKind::kUplink, spec.port_rate_bps);
    }
    for (std::size_t d = 0; d < downlinks; ++d) {
      ports.emplace_back(PortKind::kDownlink, spec.port_rate_bps);
    }
    Site site(SiteId{static_cast<std::uint32_t>(i)},
              "S" + std::to_string(i), ToRSwitch(std::move(ports)));
    site.set_teaching_only(teaching);

    const std::size_t workers =
        rng.uniform_u64(spec.workers_per_site_min, spec.workers_per_site_max);
    for (std::size_t w = 0; w < workers; ++w) {
      WorkerNode node;
      node.cores_total = node.cores_free = spec.worker_cores;
      node.ram_total = node.ram_free = spec.worker_ram;
      node.storage_total = node.storage_free = spec.worker_storage;
      site.add_worker(node);
    }

    // Downlink ports are consumed by NICs in order: first the shared NIC,
    // then dedicated dual-port NICs, then FPGA NICs; the rest stay wired
    // but idle (experiments' shared-NIC VMs ride the first ports).
    std::uint32_t next_port = static_cast<std::uint32_t>(uplinks[i]);
    auto take_port = [&]() -> std::optional<PortId> {
      if (next_port >= site.tor().port_count()) return std::nullopt;
      return PortId{next_port++};
    };

    // One shared ConnectX NIC per worker (many-user).
    for (std::uint32_t w = 0; w < workers; ++w) {
      if (auto p = take_port()) {
        Nic nic;
        nic.kind = NicKind::kSharedConnectX;
        nic.worker = WorkerId{w};
        nic.switch_ports = {*p};
        site.add_nic(nic);
      }
    }
    // Dedicated dual-port NICs — the scarce resource (none at the
    // teaching site, matching EDUKY).
    const std::size_t dedicated =
        teaching ? 0
                 : rng.uniform_u64(spec.min_dedicated_nics,
                                   spec.max_dedicated_nics);
    for (std::size_t n = 0; n < dedicated; ++n) {
      auto p1 = take_port();
      auto p2 = take_port();
      if (!p1 || !p2) break;
      Nic nic;
      nic.kind = NicKind::kDedicatedConnectX;
      nic.worker = WorkerId{static_cast<std::uint32_t>(n % workers)};
      nic.switch_ports = {*p1, *p2};
      site.add_nic(nic);
    }
    // FPGA NIC on a fraction of sites.
    if (!teaching && rng.chance(spec.fpga_site_fraction)) {
      if (auto p = take_port()) {
        Nic nic;
        nic.kind = NicKind::kAlveoFpga;
        nic.worker = WorkerId{0};
        nic.switch_ports = {*p};
        site.add_nic(nic);
      }
    }
    fed.add_site(std::move(site));
  }

  // Wire inter-site links: a ring for connectivity, then random extra
  // links while uplink ports remain.
  std::vector<std::uint32_t> next_uplink(spec.sites, 0);
  auto link_sites = [&](std::size_t a, std::size_t b) {
    if (a == b) return false;
    if (next_uplink[a] >= uplinks[a] || next_uplink[b] >= uplinks[b]) {
      return false;
    }
    InterSiteLink link;
    link.a = GlobalPortId{SiteId{static_cast<std::uint32_t>(a)},
                          PortId{next_uplink[a]++}};
    link.b = GlobalPortId{SiteId{static_cast<std::uint32_t>(b)},
                          PortId{next_uplink[b]++}};
    link.capacity_bps = spec.port_rate_bps;
    fed.add_link(link);
    return true;
  };
  for (std::size_t i = 0; i < spec.sites; ++i) {
    link_sites(i, (i + 1) % spec.sites);
  }
  // Extra random links until most uplink ports are used.
  for (std::size_t tries = 0; tries < spec.sites * 4; ++tries) {
    const std::size_t a = rng.uniform_u64(0, spec.sites - 1);
    const std::size_t b = rng.uniform_u64(0, spec.sites - 1);
    link_sites(a, b);
  }
  return fed;
}

}  // namespace patchwork::testbed
