// One FABRIC site: a rack with a ToR switch, worker machines, and NICs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "testbed/ids.hpp"
#include "testbed/resources.hpp"
#include "testbed/switch.hpp"

namespace patchwork::testbed {

class Site {
 public:
  Site(SiteId id, std::string name, ToRSwitch tor)
      : id_(id), name_(std::move(name)), switch_(std::move(tor)) {}

  SiteId id() const { return id_; }
  const std::string& name() const { return name_; }

  ToRSwitch& tor() { return switch_; }
  const ToRSwitch& tor() const { return switch_; }

  // --- Inventory ----------------------------------------------------------
  WorkerId add_worker(WorkerNode worker);
  NicId add_nic(Nic nic);

  const std::vector<WorkerNode>& workers() const { return workers_; }
  WorkerNode& mutable_worker(WorkerId id) { return workers_.at(id.value); }
  const Nic& nic(NicId id) const { return nics_.at(id.value); }
  Nic& mutable_nic(NicId id) { return nics_.at(id.value); }
  const std::vector<Nic>& nics() const { return nics_; }

  /// Free (unallocated) NICs of a kind — what the Patchwork setup phase
  /// discovers "by querying FABRIC's APIs" (Section 6.2.1).
  std::vector<NicId> available_nics(NicKind kind) const;
  std::size_t count_available_nics(NicKind kind) const;
  bool has_fpga() const;

  /// Total free storage across workers.
  std::uint64_t total_free_storage() const;

  /// True for restricted sites like EDUKY, which "is restricted for
  /// teaching use and lacks dedicated NICs" (Section 8.1.1) — excluded
  /// from all-experiment profiling.
  bool teaching_only() const { return teaching_only_; }
  void set_teaching_only(bool v) { teaching_only_ = v; }

 private:
  SiteId id_;
  std::string name_;
  ToRSwitch switch_;
  std::vector<WorkerNode> workers_;
  std::vector<Nic> nics_;
  bool teaching_only_ = false;
};

}  // namespace patchwork::testbed
