#include "testbed/port.hpp"

#include <algorithm>
#include <cmath>

namespace patchwork::testbed {

void SwitchPort::advance(util::Nanos dt) {
  const double secs = util::to_seconds(dt);
  const double tx_bytes = std::min(tx_rate_bps_, line_rate_bps_) / 8.0 * secs;
  const double rx_bytes = std::min(rx_rate_bps_, line_rate_bps_) / 8.0 * secs;
  counters_.tx_bytes += static_cast<std::uint64_t>(tx_bytes);
  counters_.rx_bytes += static_cast<std::uint64_t>(rx_bytes);
  if (mean_frame_size_ > 0.0) {
    counters_.tx_frames += static_cast<std::uint64_t>(tx_bytes / mean_frame_size_);
    counters_.rx_frames += static_cast<std::uint64_t>(rx_bytes / mean_frame_size_);
  }
}

double SwitchPort::utilization() const {
  if (line_rate_bps_ <= 0.0) return 0.0;
  return std::min(1.0, std::max(tx_rate_bps_, rx_rate_bps_) / line_rate_bps_);
}

}  // namespace patchwork::testbed
