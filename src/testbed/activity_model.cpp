#include "testbed/activity_model.hpp"

#include <cassert>
#include <cmath>

namespace patchwork::testbed {

namespace {

/// Raw (un-normalized) shape of testbed activity across the year's weeks.
/// Two deadline ramps (spring → early April, fall → November) and a sharp
/// spike the week before SC, then a December tail-off.
double raw_shape(std::size_t week) {
  const double w = static_cast<double>(week);
  // Baseline with gentle summer sag.
  double v = 0.55 + 0.10 * std::sin((w - 30.0) / 52.0 * 2.0 * M_PI);
  // Spring ramp peaking at week 13 (early April).
  v += 0.85 * std::exp(-0.5 * std::pow((w - 13.0) / 3.5, 2.0));
  // Fall ramp peaking at week 43.
  v += 0.65 * std::exp(-0.5 * std::pow((w - 43.0) / 4.0, 2.0));
  // SC'24 spike at the peak week.
  v += 2.6 * std::exp(-0.5 * std::pow((w - 46.0) / 1.1, 2.0));
  return v;
}

}  // namespace

ActivityModel::ActivityModel() {
  weekly_.resize(kWeeksPerYear);
  double sum = 0.0;
  for (std::size_t w = 0; w < kWeeksPerYear; ++w) {
    weekly_[w] = raw_shape(w);
    sum += weekly_[w];
  }
  const double mean = sum / static_cast<double>(kWeeksPerYear);
  for (double& v : weekly_) v /= mean;  // Normalize to mean 1.
}

double ActivityModel::week_multiplier(std::size_t week) const {
  assert(week < kWeeksPerYear);
  return weekly_[week];
}

double ActivityModel::at_year_fraction(double year_fraction) const {
  assert(year_fraction >= 0.0 && year_fraction < 1.0);
  const double pos = year_fraction * kWeeksPerYear - 0.5;
  if (pos <= 0.0) return weekly_.front();
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= kWeeksPerYear) return weekly_.back();
  const double frac = pos - static_cast<double>(lo);
  return weekly_[lo] * (1.0 - frac) + weekly_[lo + 1] * frac;
}

double ActivityModel::peak_multiplier() const {
  double best = 0.0;
  for (double v : weekly_) best = std::max(best, v);
  return best;
}

double ActivityModel::mean_multiplier() const {
  double sum = 0.0;
  for (double v : weekly_) sum += v;
  return sum / static_cast<double>(weekly_.size());
}

double ActivityModel::stddev_multiplier() const {
  const double mean = mean_multiplier();
  double ss = 0.0;
  for (double v : weekly_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(weekly_.size()));
}

}  // namespace patchwork::testbed
