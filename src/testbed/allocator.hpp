// The testbed's slice allocator.
//
// Patchwork interacts with FABRIC exclusively through resource requests
// (Section 6.1: "Patchwork's access and use of resources is completely
// encapsulated by FABRIC's management interfaces"). This allocator models
// the behaviours the paper reports:
//   * scarce dedicated NICs (the back-off driver, Section 6.2.1),
//   * transient back-end failures (Fig. 10's "Failed" outcomes),
//   * allocation latency that grows with slice size (Section 8.3:
//     "FABRIC's slice allocator often struggled when handling large
//     slices" — why Patchwork prefers smaller slices),
//   * dry-run "allocation simulations" (Section 8.3) via can_satisfy().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "testbed/ids.hpp"
#include "testbed/site.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace patchwork::testbed {

/// One VM plus the NICs it needs. The Patchwork default listening node is
/// {2 cores, 8 GB RAM, 100 GB storage, 1 dedicated dual-port NIC}
/// (Section 6.2.1).
struct VmRequest {
  std::uint32_t cores = 2;
  std::uint64_t ram = 8ull << 30;
  std::uint64_t storage = 100ull << 30;
  std::uint32_t dedicated_nics = 1;
  bool wants_fpga = false;
};

struct SliceRequest {
  SiteId site;
  std::vector<VmRequest> vms;
};

enum class AllocError : std::uint8_t {
  kNoDedicatedNic,
  kNoFpga,
  kNoCpu,
  kNoMemory,
  kNoStorage,
  kBackendError,  ///< Transient testbed-side failure.
};

std::string_view to_string(AllocError e);

struct GrantedVm {
  VmId vm;
  WorkerId worker;
  VmRequest footprint;  ///< What was charged; used on release.
  std::vector<NicId> nics;
  /// Switch ports reachable through the granted NICs — the ports a
  /// Patchwork instance can receive mirrored traffic on.
  std::vector<PortId> nic_ports;
};

struct SliceGrant {
  SliceId slice;
  SiteId site;
  std::vector<GrantedVm> vms;
  util::Nanos allocation_latency = 0;
};

struct AllocResult {
  std::optional<SliceGrant> grant;
  std::optional<AllocError> error;
  util::Nanos latency = 0;  ///< Time the allocator spent (success or not).

  bool ok() const { return grant.has_value(); }
};

class Allocator {
 public:
  struct Tuning {
    /// Probability any given request hits a transient back-end failure.
    double backend_failure_rate = 0.02;
    /// Base allocation latency plus a superlinear per-sliver term.
    util::Nanos base_latency = 5 * util::kSecond;
    util::Nanos per_sliver_latency = 3 * util::kSecond;
    double size_exponent = 1.6;  ///< Latency ~ base + per*slivers^exp.
  };

  Allocator(Site& site, util::Rng& rng, Tuning tuning)
      : site_(site), rng_(rng), tuning_(tuning) {}
  Allocator(Site& site, util::Rng& rng) : Allocator(site, rng, Tuning()) {}

  /// Dry-run feasibility check — no resources change state, no backend
  /// failures modelled. Patchwork runs this before every real request.
  std::optional<AllocError> can_satisfy(const SliceRequest& request) const;

  /// Attempt the allocation. On success, resources are committed.
  AllocResult allocate(const SliceRequest& request);

  /// Return a slice's resources to the site.
  void release(const SliceGrant& grant);

  util::Nanos allocation_latency(std::size_t sliver_count) const;

 private:
  Site& site_;
  util::Rng& rng_;
  Tuning tuning_;
  std::uint32_t next_slice_ = 0;
  std::uint32_t next_vm_ = 0;
};

}  // namespace patchwork::testbed
