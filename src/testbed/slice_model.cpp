#include "testbed/slice_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace patchwork::testbed {

SliceActivityModel::SliceActivityModel(util::Rng& rng,
                                       const ActivityModel& activity,
                                       Params params)
    : rng_(rng), activity_(activity), params_(std::move(params)) {
  assert(params_.single_site_fraction > 0.0 &&
         params_.single_site_fraction < 1.0);
  assert(!params_.multi_site_weights.empty());
}

util::Nanos SliceActivityModel::expected_duration() const {
  const double short_mean_ns =
      params_.short_mean_hours * static_cast<double>(util::kHour);
  // Bounded-Pareto mean: alpha*(lo^a)/(1-a')... computed numerically for
  // robustness across alpha ~ 1.
  const double lo = params_.tail_lo_days * static_cast<double>(util::kDay);
  const double hi = params_.tail_hi_days * static_cast<double>(util::kDay);
  const double a = params_.tail_alpha;
  double tail_mean;
  if (std::abs(a - 1.0) < 1e-9) {
    // Degenerate alpha=1 case of the bounded-Pareto mean.
    tail_mean = lo * hi / (hi - lo) * std::log(hi / lo);
  } else {
    tail_mean = (std::pow(lo, a) * a / (a - 1.0)) *
                (std::pow(lo, 1.0 - a) - std::pow(hi, 1.0 - a)) /
                (1.0 - std::pow(lo / hi, a));
  }
  const double mean = params_.short_fraction * short_mean_ns +
                      (1.0 - params_.short_fraction) * tail_mean;
  return static_cast<util::Nanos>(mean);
}

double SliceActivityModel::base_arrival_rate() const {
  // M/G/infinity steady state: mean active = lambda * E[duration]; the
  // activity multiplier has mean 1, so the base rate uses the plain mean.
  return params_.target_mean_active /
         static_cast<double>(expected_duration());
}

util::Nanos SliceActivityModel::draw_duration() {
  if (rng_.chance(params_.short_fraction)) {
    // Sub-day slices: exponential, clipped into (1 min, 24 h] so the
    // "75% last <= 24 hours" calibration holds exactly.
    const double mean_ns =
        params_.short_mean_hours * static_cast<double>(util::kHour);
    double d = rng_.exponential(mean_ns);
    d = std::clamp(d, static_cast<double>(util::kMinute),
                   static_cast<double>(util::kDay));
    return static_cast<util::Nanos>(d);
  }
  const double lo = params_.tail_lo_days * static_cast<double>(util::kDay);
  const double hi = params_.tail_hi_days * static_cast<double>(util::kDay);
  return static_cast<util::Nanos>(rng_.pareto(lo, hi, params_.tail_alpha));
}

std::uint32_t SliceActivityModel::draw_site_count() {
  if (rng_.chance(params_.single_site_fraction)) return 1;
  const std::size_t idx = rng_.weighted_index(params_.multi_site_weights);
  return static_cast<std::uint32_t>(idx + 2);
}

std::vector<SliceRecord> SliceActivityModel::generate(util::Nanos horizon) {
  std::vector<SliceRecord> out;
  const double base_rate = base_arrival_rate();  // Arrivals per ns.
  // Thinning-free approach: step through in hour ticks, drawing Poisson
  // counts per tick with the seasonal rate. An hour is much smaller than
  // mean slice duration, so discretization error is negligible.
  const util::Nanos tick = util::kHour;
  // Warm-up: also generate arrivals before t=0 (one tail_hi span back) so
  // t=0 starts in steady state.
  const util::Nanos warmup = static_cast<util::Nanos>(
      params_.tail_hi_days * static_cast<double>(util::kDay));
  const double year_ns = 365.0 * static_cast<double>(util::kDay);
  for (std::int64_t t = -static_cast<std::int64_t>(warmup);
       t < static_cast<std::int64_t>(horizon);
       t += static_cast<std::int64_t>(tick)) {
    double yf = std::fmod(static_cast<double>(t) / year_ns, 1.0);
    if (yf < 0.0) yf += 1.0;
    const double rate = base_rate * activity_.at_year_fraction(yf);
    const double mean_arrivals = rate * static_cast<double>(tick);
    const std::uint64_t n = rng_.poisson(mean_arrivals);
    for (std::uint64_t i = 0; i < n; ++i) {
      SliceRecord rec;
      const std::int64_t start =
          t + rng_.uniform_i64(0, static_cast<std::int64_t>(tick) - 1);
      rec.duration = draw_duration();
      if (start < 0) {
        // Keep only pre-start slices that survive into [0, horizon).
        if (start + static_cast<std::int64_t>(rec.duration) <= 0) continue;
        rec.start = 0;
        rec.duration = static_cast<util::Nanos>(
            start + static_cast<std::int64_t>(rec.duration));
      } else {
        rec.start = static_cast<util::Nanos>(start);
      }
      rec.site_count = draw_site_count();
      rec.sites.clear();
      // Distinct sites, uniformly chosen.
      while (rec.sites.size() < rec.site_count) {
        const std::uint32_t s = static_cast<std::uint32_t>(
            rng_.uniform_u64(0, params_.total_sites - 1));
        if (std::find(rec.sites.begin(), rec.sites.end(), s) ==
            rec.sites.end()) {
          rec.sites.push_back(s);
        }
      }
      out.push_back(std::move(rec));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SliceRecord& a, const SliceRecord& b) {
              return a.start < b.start;
            });
  return out;
}

std::size_t SliceActivityModel::active_count(
    const std::vector<SliceRecord>& slices, util::Nanos t) {
  return static_cast<std::size_t>(
      std::count_if(slices.begin(), slices.end(),
                    [t](const SliceRecord& s) { return s.active_at(t); }));
}

}  // namespace patchwork::testbed
