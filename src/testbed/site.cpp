#include "testbed/site.hpp"

namespace patchwork::testbed {

std::string_view to_string(NicKind kind) {
  switch (kind) {
    case NicKind::kSharedConnectX: return "shared-connectx";
    case NicKind::kDedicatedConnectX: return "dedicated-connectx";
    case NicKind::kAlveoFpga: return "alveo-fpga";
  }
  return "?";
}

WorkerId Site::add_worker(WorkerNode worker) {
  worker.id = WorkerId{static_cast<std::uint32_t>(workers_.size())};
  workers_.push_back(std::move(worker));
  return workers_.back().id;
}

NicId Site::add_nic(Nic nic) {
  nic.id = NicId{static_cast<std::uint32_t>(nics_.size())};
  workers_.at(nic.worker.value).nics.push_back(nic.id);
  nics_.push_back(std::move(nic));
  return nics_.back().id;
}

std::vector<NicId> Site::available_nics(NicKind kind) const {
  std::vector<NicId> out;
  for (const Nic& n : nics_) {
    if (n.kind == kind && n.available()) out.push_back(n.id);
  }
  return out;
}

std::size_t Site::count_available_nics(NicKind kind) const {
  return available_nics(kind).size();
}

bool Site::has_fpga() const {
  for (const Nic& n : nics_) {
    if (n.kind == NicKind::kAlveoFpga) return true;
  }
  return false;
}

std::uint64_t Site::total_free_storage() const {
  std::uint64_t total = 0;
  for (const WorkerNode& w : workers_) total += w.storage_free;
  return total;
}

}  // namespace patchwork::testbed
