#include "testbed/switch.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace patchwork::testbed {

namespace {

// The silent failure §6.2.2 is about: a mirror source faster than its
// destination port drops the overflow inside the switch with no host-side
// symptom. Surface the estimate the simulation already computes.
struct MirrorMetrics {
  obs::Counter& dropped_frames = obs::registry().counter(
      "patchwork_mirror_dropped_frames_total",
      "Frames the switch dropped on oversubscribed mirror destinations");
  obs::Counter& dropped_bytes = obs::registry().counter(
      "patchwork_mirror_dropped_bytes_total",
      "Bytes the switch dropped on oversubscribed mirror destinations");
  obs::Counter& oversubscribed_intervals = obs::registry().counter(
      "patchwork_mirror_oversubscribed_intervals_total",
      "Mirror-session advance intervals with offered rate above the "
      "destination line rate");
};

MirrorMetrics& mirror_metrics() {
  static MirrorMetrics m;
  return m;
}

}  // namespace

std::vector<PortId> ToRSwitch::ports_of_kind(PortKind kind) const {
  std::vector<PortId> out;
  for (std::uint32_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].kind() == kind) out.push_back(PortId{i});
  }
  return out;
}

std::size_t ToRSwitch::count_of_kind(PortKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(ports_.begin(), ports_.end(),
                    [kind](const SwitchPort& p) { return p.kind() == kind; }));
}

bool ToRSwitch::add_mirror(MirrorSession session) {
  if (session.source == session.destination) return false;
  if (session.source.value >= ports_.size() ||
      session.destination.value >= ports_.size()) {
    return false;
  }
  if (ports_[session.destination.value].kind() != PortKind::kDownlink) {
    return false;
  }
  if (port_is_mirror_member(session.source) ||
      port_is_mirror_member(session.destination)) {
    return false;
  }
  mirrors_.push_back(session);
  return true;
}

bool ToRSwitch::remove_mirror(PortId source) {
  const auto it = std::find_if(
      mirrors_.begin(), mirrors_.end(),
      [source](const MirrorSession& s) { return s.source == source; });
  if (it == mirrors_.end()) return false;
  mirrors_.erase(it);
  return true;
}

bool ToRSwitch::retarget_mirror(PortId old_source, PortId new_source) {
  if (old_source == new_source) return true;
  if (new_source.value >= ports_.size()) return false;
  if (port_is_mirror_member(new_source)) return false;
  const auto it = std::find_if(
      mirrors_.begin(), mirrors_.end(),
      [old_source](const MirrorSession& s) { return s.source == old_source; });
  if (it == mirrors_.end()) return false;
  if (new_source == it->destination) return false;
  it->source = new_source;
  return true;
}

bool ToRSwitch::set_mirror_directions(PortId source,
                                      MirrorDirections directions) {
  for (MirrorSession& s : mirrors_) {
    if (s.source == source) {
      s.directions = directions;
      return true;
    }
  }
  return false;
}

std::optional<MirrorSession> ToRSwitch::mirror_for_source(
    PortId source) const {
  for (const MirrorSession& s : mirrors_) {
    if (s.source == source) return s;
  }
  return std::nullopt;
}

std::optional<MirrorSession> ToRSwitch::mirror_to_destination(
    PortId dest) const {
  for (const MirrorSession& s : mirrors_) {
    if (s.destination == dest) return s;
  }
  return std::nullopt;
}

bool ToRSwitch::port_is_mirror_member(PortId id) const {
  for (const MirrorSession& s : mirrors_) {
    if (s.source == id || s.destination == id) return true;
  }
  return false;
}

double ToRSwitch::mirror_offered_bps(const MirrorSession& s) const {
  const SwitchPort& src = ports_.at(s.source.value);
  switch (s.directions) {
    case MirrorDirections::kTxOnly: return src.tx_rate_bps();
    case MirrorDirections::kRxOnly: return src.rx_rate_bps();
    case MirrorDirections::kBoth:
      return src.tx_rate_bps() + src.rx_rate_bps();
  }
  return 0.0;
}

double ToRSwitch::mirror_delivery_fraction(const MirrorSession& s) const {
  const double offered = mirror_offered_bps(s);
  if (offered <= 0.0) return 1.0;
  const double capacity = ports_.at(s.destination.value).line_rate_bps();
  return std::min(1.0, capacity / offered);
}

void ToRSwitch::advance(util::Nanos dt) {
  for (SwitchPort& p : ports_) p.advance(dt);
  const double secs = util::to_seconds(dt);
  for (const MirrorSession& s : mirrors_) {
    SwitchPort& dest = ports_.at(s.destination.value);
    const double offered = mirror_offered_bps(s);
    const double delivered =
        std::min(offered, dest.line_rate_bps());
    const double delivered_bytes = delivered / 8.0 * secs;
    const double dropped_bytes = (offered - delivered) / 8.0 * secs;
    dest.mutable_counters().tx_bytes +=
        static_cast<std::uint64_t>(delivered_bytes);
    const double mfs = ports_.at(s.source.value).mean_frame_size();
    if (mfs > 0.0) {
      dest.mutable_counters().tx_frames +=
          static_cast<std::uint64_t>(delivered_bytes / mfs);
      const auto dropped_frames =
          static_cast<std::uint64_t>(dropped_bytes / mfs);
      dest.mutable_counters().mirror_drops += dropped_frames;
      if (dropped_frames > 0) {
        mirror_metrics().dropped_frames.add(dropped_frames);
      }
    }
    if (dropped_bytes > 0.0) {
      mirror_metrics().dropped_bytes.add(
          static_cast<std::uint64_t>(dropped_bytes));
      mirror_metrics().oversubscribed_intervals.add();
    }
  }
}

}  // namespace patchwork::testbed
