// The federation: the set of sites plus inter-site links, and the
// "information model" view of it (the paper's Section 5 uses FABRIC's
// information model to count uplinks/downlinks per site — Fig. 2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "testbed/ids.hpp"
#include "testbed/site.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace patchwork::testbed {

/// An inter-site link connects one site's uplink port to another's.
struct InterSiteLink {
  GlobalPortId a;
  GlobalPortId b;
  double capacity_bps = 0.0;
};

class Federation {
 public:
  Federation() = default;

  SiteId add_site(Site site);
  void add_link(InterSiteLink link) { links_.push_back(link); }

  std::size_t site_count() const { return sites_.size(); }
  Site& site(SiteId id) { return *sites_.at(id.value); }
  const Site& site(SiteId id) const { return *sites_.at(id.value); }
  std::vector<SiteId> site_ids() const;

  const std::vector<InterSiteLink>& links() const { return links_; }

  /// Advance every site's switch counters by `dt`.
  void advance(util::Nanos dt);

 private:
  std::vector<std::unique_ptr<Site>> sites_;
  std::vector<InterSiteLink> links_;
};

/// The information-model row for one site (Fig. 2's data).
struct SitePortInventory {
  SiteId site;
  std::string name;
  std::size_t uplinks = 0;
  std::size_t downlinks = 0;
};

std::vector<SitePortInventory> port_inventory(const Federation& fed);

/// Parameters for synthesizing a FABRIC-like federation. Defaults follow
/// the paper: ~30 production sites (Fig. 15 pseudonymizes them S0–S29),
/// 100G ports, 2–6 dedicated NICs per site, a minority of sites with
/// FPGA NICs, and one teaching-only site without dedicated NICs (EDUKY).
struct FederationSpec {
  std::size_t sites = 30;
  std::size_t min_uplinks = 1;
  std::size_t max_uplinks = 4;
  std::size_t min_downlinks = 12;
  std::size_t max_downlinks = 40;
  double port_rate_bps = 100e9;
  std::size_t min_dedicated_nics = 2;
  std::size_t max_dedicated_nics = 6;
  double fpga_site_fraction = 0.4;
  std::size_t workers_per_site_min = 3;
  std::size_t workers_per_site_max = 8;
  std::uint32_t worker_cores = 64;
  std::uint64_t worker_ram = 512ull << 30;
  std::uint64_t worker_storage = 4ull << 40;
  bool include_teaching_site = true;
};

/// Build a synthetic federation with FABRIC-like shape. Deterministic for a
/// given RNG state.
Federation make_fabric_like_federation(util::Rng& rng,
                                       const FederationSpec& spec = {});

}  // namespace patchwork::testbed
