// Reservable resources within a site: worker nodes, NICs, VMs.
//
// Mirrors FABRIC's sliver types (Section 3): VMs, shared ConnectX NICs,
// single-user ("dedicated") ConnectX NICs, and Alveo FPGA NICs. Dedicated
// NICs are dual-port and scarce — "each site usually has only around 2-6
// available" (Section 6.2.1) — which is what drives Patchwork's iterative
// back-off.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "testbed/ids.hpp"

namespace patchwork::testbed {

enum class NicKind : std::uint8_t {
  kSharedConnectX,     ///< Port shared among many users' VMs.
  kDedicatedConnectX,  ///< Dual-port, single user at a time.
  kAlveoFpga,          ///< Programmable FPGA NIC (P4 offload target).
};

std::string_view to_string(NicKind kind);

struct Nic {
  NicId id;
  NicKind kind = NicKind::kSharedConnectX;
  WorkerId worker;
  /// Switch ports this NIC's physical ports connect to (downlinks).
  std::vector<PortId> switch_ports;
  /// Slice currently holding the NIC (dedicated/FPGA NICs only).
  std::optional<SliceId> allocated_to;

  std::size_t port_count() const { return switch_ports.size(); }
  bool available() const { return !allocated_to.has_value(); }
};

struct WorkerNode {
  WorkerId id;
  std::uint32_t cores_total = 0;
  std::uint32_t cores_free = 0;
  std::uint64_t ram_total = 0;  ///< Bytes.
  std::uint64_t ram_free = 0;
  std::uint64_t storage_total = 0;  ///< Bytes.
  std::uint64_t storage_free = 0;
  std::vector<NicId> nics;

  bool can_host(std::uint32_t cores, std::uint64_t ram,
                std::uint64_t storage) const {
    return cores_free >= cores && ram_free >= ram && storage_free >= storage;
  }
};

struct Vm {
  VmId id;
  WorkerId worker;
  SliceId slice;
  std::uint32_t cores = 0;
  std::uint64_t ram = 0;
  std::uint64_t storage = 0;
  std::vector<NicId> nics;
};

}  // namespace patchwork::testbed
