// Strong identifier types for testbed entities.
//
// Sites, ports, NICs, VMs, and slices are all indexed by small integers in
// the model; wrapping them prevents the classic "passed a port index where
// a site index was expected" bug without any runtime cost.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace patchwork::testbed {

template <typename Tag>
struct Id {
  std::uint32_t value = 0;
  auto operator<=>(const Id&) const = default;
};

struct SiteTag {};
struct PortTag {};
struct WorkerTag {};
struct NicTag {};
struct VmTag {};
struct SliceTag {};

using SiteId = Id<SiteTag>;
using PortId = Id<PortTag>;      ///< Port index within one site's switch.
using WorkerId = Id<WorkerTag>;
using NicId = Id<NicTag>;
using VmId = Id<VmTag>;
using SliceId = Id<SliceTag>;

/// Fully-qualified switch port: (site, port index). What the coordinator
/// passes around when selecting mirror targets across the federation.
struct GlobalPortId {
  SiteId site;
  PortId port;
  auto operator<=>(const GlobalPortId&) const = default;
};

inline std::string to_string(GlobalPortId id) {
  return "site" + std::to_string(id.site.value) + "/p" +
         std::to_string(id.port.value);
}

}  // namespace patchwork::testbed
