// Testbed-wide activity over a year.
//
// Section 5 found that "network activity appears to be correlated with key
// deadlines", with ramp-up periods towards April and November and a peak
// the week before Supercomputing'24 (an average of 3.968 Tbps crossed
// FABRIC's network that week). This model provides the 52-week multiplier
// curve used both by the slice arrival process (Fig. 5) and the traffic
// engine's aggregate load (Fig. 6).
#pragma once

#include <cstddef>
#include <vector>

namespace patchwork::testbed {

class ActivityModel {
 public:
  /// Week of the SC conference run-up, where activity peaks.
  static constexpr std::size_t kPeakWeek = 46;
  static constexpr std::size_t kWeeksPerYear = 52;

  ActivityModel();

  /// Activity multiplier for a week in [0, 52); mean over the year is 1.
  double week_multiplier(std::size_t week) const;

  /// Multiplier at a fractional time within the year, linear interpolation
  /// between week midpoints. `year_fraction` in [0, 1).
  double at_year_fraction(double year_fraction) const;

  double peak_multiplier() const;
  double mean_multiplier() const;  ///< == 1 by construction.
  double stddev_multiplier() const;

  const std::vector<double>& weekly() const { return weekly_; }

 private:
  std::vector<double> weekly_;
};

}  // namespace patchwork::testbed
