// Event-driven flow-level window planner.
//
// Where traffic::plan_window draws a static per-window flow population,
// plan_event_window simulates the window: a priority queue of
// arrival / expiry / churn events ordered by (time, sequence) is drained
// in order, and every stochastic choice — interarrival gaps, durations,
// Zipf key picks, churn redraws — consumes the caller's Rng sequentially
// in that event order. The result is still a traffic::WindowPlan: each
// flow activation becomes RenderUnits bounded to its active interval
// (ts_lo/ts_hi), so rendering stays pure counter addressing through
// render_unit / build_many_into and the window's bytes are identical for
// any worker count, render batch, or SIMD tier.
//
// Substream discipline matches the mix model exactly: the planner runs on
// the kWindowPlanStream substream and is the only sequential consumer;
// units are rendered from split(kWindowUnitStreamBase + u) downstream.
#pragma once

#include <cstdint>

#include "flowsched/config.hpp"
#include "traffic/flowgen.hpp"
#include "util/rng.hpp"

namespace patchwork::flowsched {

/// Deterministic per-plan accounting (also pushed into the obs registry:
/// counters fold as sums, high-waters as max — both schedule-independent).
struct EventPlanStats {
  std::uint64_t flows_generated = 0;      ///< Arrivals admitted.
  std::uint64_t flows_expired = 0;        ///< Expiry events fired.
  std::uint64_t churn_replacements = 0;   ///< Key redraws applied.
  std::uint64_t arrivals_suppressed = 0;  ///< Dropped: pool exhausted.
  std::size_t max_active_flows = 0;       ///< Concurrency high-water.
  std::size_t max_queue_depth = 0;        ///< Event-queue high-water.
};

/// Simulate one window's flow arrivals/departures and emit the render
/// plan. Consumes `rng` sequentially (call with the kWindowPlanStream
/// substream, exactly like plan_window). `stats_out`, when non-null,
/// receives the window's event accounting; the same numbers are added to
/// the process obs registry either way.
traffic::WindowPlan plan_event_window(util::Rng& rng,
                                      const traffic::SiteWorkloadProfile& profile,
                                      const traffic::WindowParams& params,
                                      const FlowModelConfig& config,
                                      EventPlanStats* stats_out = nullptr);

/// plan_event_window + serial unit rendering + deterministic merge: the
/// event-model analogue of traffic::generate_window (forks one child off
/// `rng`, so a caller reusing its Rng gets distinct windows).
traffic::WindowTraffic generate_event_window(
    util::Rng& rng, const traffic::SiteWorkloadProfile& profile,
    const traffic::WindowParams& params, const FlowModelConfig& config,
    EventPlanStats* stats_out = nullptr);

}  // namespace patchwork::flowsched
