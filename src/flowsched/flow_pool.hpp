// Bounded flow-record pool with LIFO slot reuse.
//
// BESS FlowGen keeps its retired flow structs on a stack rather than a
// queue "to improve temporal locality": the slot (and its cache lines)
// released most recently is handed out first. The same shape here bounds
// concurrent flows — acquire() never allocates past the capacity, it
// reports exhaustion — and the LIFO discipline is observable (tested)
// through the returned slot ids.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace patchwork::flowsched {

class FlowPool {
 public:
  explicit FlowPool(std::size_t capacity) : capacity_(capacity) {}

  /// A slot id in [0, capacity), or nullopt when all slots are live.
  /// Released slots are reused most-recent-first.
  std::optional<std::uint32_t> acquire();

  /// Return a live slot to the free stack. Double-release is the caller's
  /// bug; the pool does not defend against it.
  void release(std::uint32_t slot);

  std::size_t capacity() const { return capacity_; }
  std::size_t active() const { return active_; }
  /// Most slots ever live at once.
  std::size_t high_water() const { return high_water_; }
  /// Acquires served from the free stack (vs fresh slots).
  std::uint64_t reuses() const { return reuses_; }

 private:
  std::size_t capacity_;
  std::vector<std::uint32_t> free_;  ///< LIFO stack of released slots.
  std::uint32_t next_fresh_ = 0;
  std::size_t active_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace patchwork::flowsched
