#include "flowsched/event_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <vector>

#include "flowsched/flow_pool.hpp"
#include "flowsched/pareto.hpp"
#include "flowsched/zipf.hpp"
#include "obs/metrics.hpp"

namespace patchwork::flowsched {

std::string_view to_string(FlowModel m) {
  switch (m) {
    case FlowModel::kMix: return "mix";
    case FlowModel::kEvent: return "event";
  }
  return "mix";
}

std::string_view to_string(ArrivalProcess a) {
  return a == ArrivalProcess::kExponential ? "exp" : "uniform";
}

std::string_view to_string(DurationProcess d) {
  return d == DurationProcess::kPareto ? "pareto" : "uniform";
}

std::optional<FlowModel> parse_flow_model(std::string_view s) {
  if (s == "mix") return FlowModel::kMix;
  if (s == "event") return FlowModel::kEvent;
  return std::nullopt;
}

std::optional<ArrivalProcess> parse_arrival(std::string_view s) {
  if (s == "exp" || s == "exponential") return ArrivalProcess::kExponential;
  if (s == "uniform") return ArrivalProcess::kUniform;
  return std::nullopt;
}

std::optional<DurationProcess> parse_duration(std::string_view s) {
  if (s == "pareto") return DurationProcess::kPareto;
  if (s == "uniform") return DurationProcess::kUniform;
  return std::nullopt;
}

namespace {

/// Handles into the process registry; every metric here is deterministic
/// class (sums of per-plan adds, max-folds of per-plan high-waters), so
/// the byte-comparable exposition covers the event model too.
struct EventMetrics {
  obs::Counter& generated;
  obs::Counter& expired;
  obs::Counter& churn;
  obs::Counter& suppressed;
  obs::Gauge& active_max;
  obs::Gauge& queue_max;
};

EventMetrics& event_metrics() {
  static EventMetrics m{
      obs::registry().counter(
          "patchwork_flowsched_flows_generated_total",
          "Flow arrivals admitted by the event-driven planner."),
      obs::registry().counter(
          "patchwork_flowsched_flows_expired_total",
          "Flow expiry events fired inside planned windows."),
      obs::registry().counter(
          "patchwork_flowsched_churn_replacements_total",
          "Flow-key churn replacements applied by the event-driven planner."),
      obs::registry().counter(
          "patchwork_flowsched_arrivals_suppressed_total",
          "Flow arrivals dropped because the active-flow pool was full."),
      obs::registry().gauge(
          "patchwork_flowsched_active_flows_max",
          "High-water concurrently active flows in any planned window."),
      obs::registry().gauge(
          "patchwork_flowsched_event_queue_depth_max",
          "High-water event-queue depth in any planned window."),
  };
  return m;
}

enum class EventKind : std::uint8_t { kArrival, kExpiry, kChurn };

struct Event {
  util::Nanos at = 0;
  std::uint64_t seq = 0;  ///< Scheduling order; makes the order total.
  EventKind kind = EventKind::kArrival;
  std::uint32_t slot = 0;  ///< Pool slot, for expiries.
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }
};

/// One admitted flow lifetime inside the window. The spec is copied at
/// arrival time so a later churn redraw of the same key never rewrites
/// history.
struct Activation {
  traffic::FlowSpec flow;
  util::Nanos start = 0;
  util::Nanos end = 0;  ///< Exclusive; clipped to the window.
};

/// Mirrors plan_window's elephant gate: only MTU-filling data or message
/// streams can carry bulk frame counts.
bool is_bulk(const traffic::FlowSpec& flow) {
  return flow.data_frame_size >= 1514 || flow.message_stream;
}

/// Backstops against degenerate knob combinations (e.g. millions of
/// arrivals in one 20 s window); plans stay bounded in time and memory.
constexpr std::size_t kMaxEvents = 200000;
constexpr std::size_t kMaxActivations = 50000;

}  // namespace

traffic::WindowPlan plan_event_window(util::Rng& rng,
                                      const traffic::SiteWorkloadProfile& profile,
                                      const traffic::WindowParams& params,
                                      const FlowModelConfig& config,
                                      EventPlanStats* stats_out) {
  traffic::WindowPlan plan;
  plan.offered_bps = params.target_bps;
  EventPlanStats stats;
  if (stats_out) *stats_out = stats;
  if (params.target_bps <= 0.0) return plan;

  const double duration_s = util::to_seconds(params.duration);
  const double lambda = std::max(config.flows_per_second, 1e-3);
  const double mean_dur_s = std::max(config.mean_flow_duration_s, 1e-6);

  // The bounded key pool: every arrival picks one of these 5-tuples by
  // Zipf rank; churn events redraw a rank in place.
  const std::size_t n_keys = std::max<std::size_t>(config.flow_keys, 1);
  std::vector<traffic::FlowSpec> keys;
  keys.reserve(n_keys);
  for (std::size_t i = 0; i < n_keys; ++i) {
    keys.push_back(traffic::draw_flow(rng, profile));
  }
  const ZipfSampler zipf(n_keys, config.zipf_param);

  // BESS-style rate derivation: steady-state concurrency is
  // lambda * mean duration, and the per-flow packet rate is whatever makes
  // the aggregate hit the port's target_bps given the popularity-weighted
  // mean data-frame size of the key pool.
  const double concurrent = std::max(1.0, lambda * mean_dur_s);
  double mean_frame = 0.0;
  for (std::size_t r = 0; r < n_keys; ++r) {
    mean_frame +=
        zipf.probability(r) * static_cast<double>(keys[r].data_frame_size);
  }
  mean_frame = std::max(mean_frame, 64.0);
  const double total_pps = params.target_bps / (8.0 * mean_frame);
  const double flow_pps = std::max(total_pps / concurrent, 1e-9);

  const ParetoDurations pareto(config.pareto_shape, mean_dur_s);
  auto draw_duration_ns = [&](util::Rng& r) -> util::Nanos {
    const double s = config.duration == DurationProcess::kPareto
                         ? pareto.draw(r)
                         : r.uniform(0.0, 2.0 * mean_dur_s);
    return std::max<util::Nanos>(util::from_seconds(s), 1);
  };
  auto draw_gap_ns = [&](util::Rng& r) -> util::Nanos {
    const double s = config.arrival == ArrivalProcess::kExponential
                         ? r.exponential(1.0 / lambda)
                         : r.uniform(0.0, 2.0 / lambda);
    return std::max<util::Nanos>(util::from_seconds(s), 1);
  };

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  std::uint64_t seq = 0;
  auto push = [&](util::Nanos at, EventKind kind, std::uint32_t slot = 0) {
    queue.push(Event{at, seq++, kind, slot});
    stats.max_queue_depth = std::max(stats.max_queue_depth, queue.size());
  };

  FlowPool pool(std::max<std::size_t>(config.max_active_flows, 1));
  std::vector<Activation> activations;
  activations.reserve(static_cast<std::size_t>(
      std::min(concurrent + lambda * duration_s, 4096.0)));

  // Admit one arrival at `at`: Zipf key pick, duration draw, pool slot.
  // Draw order is fixed (key, then duration) whether or not the pool has
  // room, so suppression never shifts later events' randomness.
  auto admit = [&](util::Nanos at) {
    const std::size_t rank = zipf.draw(rng);
    const util::Nanos dur = draw_duration_ns(rng);
    if (activations.size() >= kMaxActivations) {
      ++stats.arrivals_suppressed;
      return;
    }
    const std::optional<std::uint32_t> slot = pool.acquire();
    if (!slot) {
      ++stats.arrivals_suppressed;
      return;
    }
    Activation a;
    a.flow = keys[rank];
    a.start = at;
    a.end = std::min<util::Nanos>(at + dur, params.duration);
    activations.push_back(std::move(a));
    ++stats.flows_generated;
    push(activations.back().end, EventKind::kExpiry, *slot);
  };

  // Quick ramp-up: the window opens at steady-state concurrency instead
  // of spending ~one mean duration filling from empty.
  if (config.quick_rampup) {
    const std::size_t initial = static_cast<std::size_t>(
        std::min(concurrent + 0.5,
                 static_cast<double>(pool.capacity())));
    for (std::size_t i = 0; i < initial; ++i) admit(0);
  }
  push(draw_gap_ns(rng), EventKind::kArrival);
  const util::Nanos churn_gap =
      config.churn_fpm > 0.0
          ? std::max<util::Nanos>(util::from_seconds(60.0 / config.churn_fpm), 1)
          : 0;
  if (churn_gap > 0) push(churn_gap, EventKind::kChurn);

  std::size_t processed = 0;
  while (!queue.empty() && processed < kMaxEvents) {
    const Event ev = queue.top();
    queue.pop();
    ++processed;
    if (ev.at > params.duration) break;
    switch (ev.kind) {
      case EventKind::kArrival:
        if (ev.at >= params.duration) break;
        admit(ev.at);
        stats.max_active_flows =
            std::max(stats.max_active_flows, pool.high_water());
        if (const util::Nanos next = ev.at + draw_gap_ns(rng);
            next < params.duration) {
          push(next, EventKind::kArrival);
        }
        break;
      case EventKind::kExpiry:
        pool.release(ev.slot);
        ++stats.flows_expired;
        break;
      case EventKind::kChurn: {
        if (ev.at >= params.duration) break;
        // Rebind a popularity-weighted rank to a fresh 5-tuple: active
        // flows keep their copied spec, future arrivals see the new key.
        const std::size_t rank = zipf.draw(rng);
        keys[rank] = traffic::draw_flow(rng, profile);
        ++stats.churn_replacements;
        if (const util::Nanos next = ev.at + churn_gap;
            next < params.duration) {
          push(next, EventKind::kChurn);
        }
        break;
      }
    }
  }
  stats.max_active_flows = std::max(stats.max_active_flows, pool.high_water());

  // Activations -> contributions. True frame counts set offered_pps; the
  // rendered counts are thinned to max_frames exactly like plan_window,
  // with the fractional-frame coin as the planner's last sequential draws.
  struct Contribution {
    double data_frames = 0.0;
    double ack_frames = 0.0;
  };
  std::vector<Contribution> contribs(activations.size());
  double true_total = 0.0;
  for (std::size_t i = 0; i < activations.size(); ++i) {
    const Activation& a = activations[i];
    const double active_s = util::to_seconds(a.end - a.start);
    double frames = std::max(1.0, flow_pps * active_s);
    if (!is_bulk(a.flow)) {
      // Chatter protocols stay mice regardless of popularity.
      frames = std::min(frames, 50.0);
    }
    contribs[i].data_frames = frames;
    if (traffic::app_is_tcp(a.flow.app)) {
      contribs[i].ack_frames = frames / 5.0;
    }
    true_total += contribs[i].data_frames + contribs[i].ack_frames;
  }
  plan.flow_count = activations.size();
  plan.offered_pps = true_total / duration_s;
  const double keep = true_total <= static_cast<double>(params.max_frames)
                          ? 1.0
                          : static_cast<double>(params.max_frames) / true_total;
  for (std::size_t i = 0; i < activations.size(); ++i) {
    const Activation& a = activations[i];
    auto plan_unit = [&](double true_count, bool acks) {
      const double expected = true_count * keep;
      std::uint64_t n = static_cast<std::uint64_t>(expected);
      if (rng.chance(expected - static_cast<double>(n))) ++n;
      if (n == 0) return;
      traffic::RenderUnit unit{a.flow, acks, n};
      unit.ts_lo = a.start;
      unit.ts_hi = a.end - 1;
      plan.units.push_back(std::move(unit));
      plan.planned_frames += n;
    };
    plan_unit(contribs[i].data_frames, false);
    if (contribs[i].ack_frames > 0.0) plan_unit(contribs[i].ack_frames, true);
  }

  EventMetrics& m = event_metrics();
  m.generated.add(stats.flows_generated);
  m.expired.add(stats.flows_expired);
  m.churn.add(stats.churn_replacements);
  m.suppressed.add(stats.arrivals_suppressed);
  m.active_max.observe_max(static_cast<double>(stats.max_active_flows));
  m.queue_max.observe_max(static_cast<double>(stats.max_queue_depth));
  if (stats_out) *stats_out = stats;
  return plan;
}

traffic::WindowTraffic generate_event_window(
    util::Rng& rng, const traffic::SiteWorkloadProfile& profile,
    const traffic::WindowParams& params, const FlowModelConfig& config,
    EventPlanStats* stats_out) {
  traffic::WindowTraffic out;
  if (params.target_bps <= 0.0) return out;
  util::Rng child = rng.fork();
  util::Rng plan_rng = child.split(traffic::kWindowPlanStream);
  const traffic::WindowPlan plan =
      plan_event_window(plan_rng, profile, params, config, stats_out);
  out.offered_pps = plan.offered_pps;
  out.offered_bps = plan.offered_bps;
  out.flow_count = plan.flow_count;

  net::FrameStore store;
  net::FrameBuilder builder;
  store.reserve(plan.planned_frames, plan.planned_frames * 96);
  for (std::size_t u = 0; u < plan.units.size(); ++u) {
    const util::RngBlock draws(
        child.split(traffic::kWindowUnitStreamBase + u));
    traffic::render_unit(plan.units[u], draws, params.duration, 0,
                         plan.units[u].frames, builder, store);
  }
  std::vector<std::size_t> order(store.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const util::Nanos ta = store.view(a).timestamp;
    const util::Nanos tb = store.view(b).timestamp;
    return ta != tb ? ta < tb : a < b;
  });
  out.frames.reserve(order.size());
  for (std::size_t idx : order) {
    const net::FrameView v = store.view(idx);
    out.frames.emplace_back(
        std::vector<std::uint8_t>(v.bytes.begin(), v.bytes.end()),
        v.wire_length, v.timestamp);
  }
  return out;
}

}  // namespace patchwork::flowsched
