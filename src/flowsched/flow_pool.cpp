#include "flowsched/flow_pool.hpp"

#include <algorithm>

namespace patchwork::flowsched {

std::optional<std::uint32_t> FlowPool::acquire() {
  std::uint32_t slot = 0;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    ++reuses_;
  } else if (next_fresh_ < capacity_) {
    slot = next_fresh_++;
  } else {
    return std::nullopt;
  }
  ++active_;
  high_water_ = std::max(high_water_, active_);
  return slot;
}

void FlowPool::release(std::uint32_t slot) {
  free_.push_back(slot);
  if (active_ > 0) --active_;
}

}  // namespace patchwork::flowsched
