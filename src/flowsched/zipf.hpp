// Zipf flow popularity over a bounded rank set.
//
// Rank r (0-based) is drawn with probability proportional to
// 1 / (r + 1)^s — the skewed flow popularity the synapse-klee generator
// models with --zipf-param (default 1.26, Castan [SIGCOMM'18]). Weights
// are precomputed into a util::WeightedTable so each draw costs one
// uniform plus a binary search, and a draw consumes exactly one value
// from the caller's sequential stream.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace patchwork::flowsched {

class ZipfSampler {
 public:
  /// `ranks`: pool size (>= 1); `s`: exponent (0 = uniform popularity).
  ZipfSampler(std::size_t ranks, double s);

  /// Draw a 0-based rank (one uniform consumed).
  std::size_t draw(util::Rng& rng) const;

  std::size_t ranks() const { return weights_.size(); }
  double exponent() const { return s_; }
  /// Normalized probability of rank r.
  double probability(std::size_t rank) const;

 private:
  double s_;
  std::vector<double> weights_;
  util::WeightedTable table_;
};

}  // namespace patchwork::flowsched
