#include "flowsched/pareto.hpp"

#include <algorithm>
#include <cmath>

namespace patchwork::flowsched {

namespace {

/// Inverse-CDF Pareto(1, shape) truncated at kMaxRaw.
double raw_variate(double u, double shape) {
  const double x = std::pow(1.0 - u, -1.0 / shape);
  return std::min(x, ParetoDurations::kMaxRaw);
}

/// Numerically measure the truncated variate's mean, BESS-style: a fixed
/// calibration stream makes the measurement a pure function of the shape.
double measure_raw_mean(double shape) {
  constexpr std::uint64_t kCalibrationSeed = 0x70617265746f6d6eull;
  constexpr std::size_t kCalibrationDraws = 1 << 14;
  util::Rng rng(kCalibrationSeed);
  double sum = 0.0;
  for (std::size_t i = 0; i < kCalibrationDraws; ++i) {
    sum += raw_variate(rng.uniform(), shape);
  }
  return sum / static_cast<double>(kCalibrationDraws);
}

}  // namespace

ParetoDurations::ParetoDurations(double shape, double mean)
    : shape_(std::max(shape, 1.05)),
      mean_(std::max(mean, 1e-6)),
      raw_mean_(measure_raw_mean(shape_)),
      scale_(mean_ / raw_mean_) {}

double ParetoDurations::draw(util::Rng& rng) const {
  return raw_variate(rng.uniform(), shape_) * scale_;
}

}  // namespace patchwork::flowsched
