// Measured-mean Pareto durations.
//
// A truncated Pareto's analytic mean is awkward (and undefined untruncated
// for shape <= 1), so — like BESS FlowGen's MeasureParetoMean — the sampler
// measures the raw variate's mean numerically on a fixed calibration
// stream and scales every draw so the empirical mean lands on the
// configured one. The calibration is a pure function of the shape (fixed
// seed, fixed draw count), so two samplers with equal parameters are
// byte-for-byte interchangeable.
#pragma once

#include "util/rng.hpp"

namespace patchwork::flowsched {

class ParetoDurations {
 public:
  /// `shape`: tail index (clamped to >= 1.05); `mean`: desired mean draw.
  ParetoDurations(double shape, double mean);

  /// One duration with E[draw] ~= mean (consumes one uniform from `rng`).
  double draw(util::Rng& rng) const;

  double shape() const { return shape_; }
  double mean() const { return mean_; }
  /// The raw truncated variate's measured mean the scale was derived from.
  double measured_raw_mean() const { return raw_mean_; }

  /// Raw variates are truncated at this multiple of the scale parameter so
  /// the mean exists (and one flow can't be 10^6 windows long).
  static constexpr double kMaxRaw = 1000.0;

 private:
  double shape_;
  double mean_;
  double raw_mean_;
  double scale_;
};

}  // namespace patchwork::flowsched
