// Flow-level workload model configuration.
//
// The mix model (traffic::plan_window) draws a per-window flow population
// from the site profile; it has no notion of flows arriving, living, and
// dying. The event model built here (event_gen.hpp) adds that flow-level
// realism: a priority queue of arrival/expiry/churn events with
// exponential or uniform interarrivals, Pareto or uniform durations
// (measured-mean calibrated, pareto.hpp), Zipf popularity over a bounded
// key pool (zipf.hpp, flow_pool.hpp), and flows-per-minute churn. The
// knobs below mirror the exemplars named in ROADMAP: BESS FlowGen's
// arrival/duration processes and the synapse-klee generator's
// --zipf-param / churn-FPM surface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace patchwork::flowsched {

/// Which planner synthesizes a sample window.
enum class FlowModel : std::uint8_t {
  kMix,    ///< Per-window population mix (traffic::plan_window).
  kEvent,  ///< Event-driven arrivals/durations (plan_event_window).
};

/// Flow interarrival process.
enum class ArrivalProcess : std::uint8_t { kExponential, kUniform };

/// Flow duration process.
enum class DurationProcess : std::uint8_t { kPareto, kUniform };

std::string_view to_string(FlowModel m);
std::string_view to_string(ArrivalProcess a);
std::string_view to_string(DurationProcess d);

/// Parse the CLI spellings ("event"/"mix", "exp"/"uniform",
/// "pareto"/"uniform"). Returns nullopt on an unknown spelling.
std::optional<FlowModel> parse_flow_model(std::string_view s);
std::optional<ArrivalProcess> parse_arrival(std::string_view s);
std::optional<DurationProcess> parse_duration(std::string_view s);

struct FlowModelConfig {
  FlowModel model = FlowModel::kMix;
  ArrivalProcess arrival = ArrivalProcess::kExponential;
  DurationProcess duration = DurationProcess::kPareto;

  /// Flow arrival rate (flows/s). With mean_flow_duration_s this fixes the
  /// steady-state concurrency: concurrent = flows_per_second * duration.
  double flows_per_second = 40.0;
  /// Configured mean flow lifetime in seconds. The Pareto sampler is
  /// calibrated so its measured mean hits this value (pareto.hpp).
  double mean_flow_duration_s = 5.0;
  /// Pareto tail index for flow durations; < 2 gives the heavy tail the
  /// paper's elephant/mice split needs.
  double pareto_shape = 1.3;

  /// Zipf popularity exponent over the flow-key pool. Default follows
  /// Castan [SIGCOMM'18] via the synapse-klee generator.
  double zipf_param = 1.26;
  /// Bounded flow-key pool: arrivals pick one of this many distinct
  /// 5-tuples by Zipf rank.
  std::size_t flow_keys = 512;
  /// Bound on concurrently active flows (the flow-record pool). Arrivals
  /// beyond it are suppressed and counted, never allocated.
  std::size_t max_active_flows = 4096;

  /// Key churn in replacements per minute: each churn event rebinds a
  /// Zipf-drawn rank to a freshly drawn 5-tuple, the workload that drives
  /// NetflowCache eviction storms. 0 disables churn.
  double churn_fpm = 0.0;

  /// Populate steady-state concurrency at t=0 (BESS quick_rampup) instead
  /// of waiting ~one mean duration for the window to fill.
  bool quick_rampup = true;
};

}  // namespace patchwork::flowsched
