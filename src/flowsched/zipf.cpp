#include "flowsched/zipf.hpp"

#include <algorithm>
#include <cmath>

namespace patchwork::flowsched {

namespace {

std::vector<double> zipf_weights(std::size_t ranks, double s) {
  std::vector<double> w(std::max<std::size_t>(ranks, 1));
  for (std::size_t r = 0; r < w.size(); ++r) {
    w[r] = std::pow(static_cast<double>(r + 1), -s);
  }
  return w;
}

}  // namespace

ZipfSampler::ZipfSampler(std::size_t ranks, double s)
    : s_(std::max(s, 0.0)),
      weights_(zipf_weights(ranks, s_)),
      table_(weights_) {}

std::size_t ZipfSampler::draw(util::Rng& rng) const {
  return rng.weighted_index(table_);
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= weights_.size() || table_.total() <= 0.0) return 0.0;
  return weights_[rank] / table_.total();
}

}  // namespace patchwork::flowsched
