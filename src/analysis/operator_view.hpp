// The operator's-eye view, for contrast with Patchwork.
//
// Section 4 ("Asymmetry in general profiling"): NetFlow/sFlow/IPFIX-style
// switch summaries "do not distinguish between testbed users and provide
// coarse statistics" — a classic exporter keys flows on the bare 5-tuple,
// so two slices reusing the same 10/8 addresses collapse into one flow,
// and per-experiment attribution is impossible. This module implements
// that operator view over the same acap data so the asymmetry can be
// measured (see bench/ablation and the examples).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "analysis/acap.hpp"

namespace patchwork::analysis {

/// A classic NetFlow-style key: network + transport fields only — no
/// VLAN/MPLS virtualization tags.
struct FiveTupleKey {
  std::uint8_t ip_version = 0;
  std::array<std::uint8_t, 16> addr_a{};
  std::array<std::uint8_t, 16> addr_b{};
  std::uint8_t l4_proto = 0;
  std::uint16_t port_a = 0;
  std::uint16_t port_b = 0;

  auto operator<=>(const FiveTupleKey&) const = default;

  static FiveTupleKey from_flow_key(const FlowKey& key);
};

/// NetFlow-v5-style record the operator view can produce.
struct OperatorFlowRecord {
  FiveTupleKey key;
  std::uint64_t frames = 0;
  std::uint64_t wire_bytes = 0;
  util::Nanos first_seen = 0;
  util::Nanos last_seen = 0;
};

/// Aggregate a digested profile the way a tag-blind exporter would.
std::map<FiveTupleKey, OperatorFlowRecord> operator_flow_view(
    const std::vector<AcapFile>& files);

/// How much the operator view loses relative to Patchwork's tag-aware
/// classification.
struct AsymmetryReport {
  std::uint64_t patchwork_flows = 0;  ///< Tag-aware distinct flows.
  std::uint64_t operator_flows = 0;   ///< 5-tuple distinct flows.
  /// 5-tuple keys that merge >1 tag-distinct flow (different slices whose
  /// addresses collide — invisible to the operator).
  std::uint64_t collapsed_keys = 0;
  /// Tag-distinct flows hidden inside collapsed keys.
  std::uint64_t hidden_flows = 0;

  double undercount_fraction() const {
    return patchwork_flows == 0
               ? 0.0
               : 1.0 - static_cast<double>(operator_flows) /
                           static_cast<double>(patchwork_flows);
  }
};

AsymmetryReport measure_asymmetry(const std::vector<AcapFile>& files);

}  // namespace patchwork::analysis
