#include "analysis/epoch_extract.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace patchwork::analysis {

namespace {

archive::HistCounts to_hist_counts(const util::Histogram& histogram) {
  archive::HistCounts out;
  const std::size_t n = histogram.bucket_count();
  out.edges.reserve(n + 1);
  out.counts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.edges.push_back(histogram.bucket_lo(i));
    out.counts.push_back(histogram.bucket(i));
  }
  if (n > 0) out.edges.push_back(histogram.bucket_hi(n - 1));
  out.underflow = histogram.underflow();
  out.overflow = histogram.overflow();
  return out;
}

}  // namespace

archive::EpochRecord extract_epoch_record(const ProfileReport& report,
                                          const EpochMeta& meta) {
  archive::EpochRecord record;
  record.level = 0;
  record.epoch_count = 1;
  record.label = meta.label;
  record.start_nanos = static_cast<std::uint64_t>(meta.start);
  record.duration_nanos = static_cast<std::uint64_t>(meta.duration);
  record.offered_bps_sum = meta.offered_bps;
  record.manifest_json = meta.manifest_json;

  record.frames = report.digest_stats.frames;
  record.bad_records = report.digest_stats.bad_records;
  record.truncated_frames = report.digest_stats.truncated_frames;
  record.malformed_frames = report.digest_stats.malformed_frames;

  record.frame_sizes = to_hist_counts(report.frame_sizes.histogram);
  record.occurrence_frames = report.header_occurrence.frames;
  record.protocol_occurrences.assign(
      report.header_occurrence.occurrences.begin(),
      report.header_occurrence.occurrences.end());

  record.tcp_frames = report.tcp_control.tcp_frames;
  record.tcp_syn = report.tcp_control.syn;
  record.tcp_fin = report.tcp_control.fin;
  record.tcp_rst = report.tcp_control.rst;
  record.tcp_pure_ack = report.tcp_control.pure_ack;

  record.tag_frames = report.tagging.frames;
  record.vlan_tagged = report.tagging.vlan_tagged;
  record.mpls_tagged = report.tagging.mpls_tagged;
  record.both_tagged = report.tagging.both_tagged;
  record.untagged = report.tagging.untagged;

  record.flow_snippets = report.distinct_flows;
  record.largest_flow_bytes = report.largest_flow_bytes;

  for (const SiteLoad& load : report.site_loads) {
    archive::SiteEpochLoad out;
    out.site = load.site;
    out.samples = load.samples;
    out.frames = load.frames;
    out.wire_bytes = load.wire_bytes;
    out.pcap_bytes = load.pcap_bytes;
    out.switch_drops_suspected = load.switch_drops_suspected;
    const auto it = report.site_frame_sizes.find(load.site);
    if (it != report.site_frame_sizes.end()) {
      out.frame_sizes = to_hist_counts(it->second.histogram);
    }
    record.site_loads.push_back(std::move(out));
    record.samples += load.samples;
    record.pcap_bytes += load.pcap_bytes;
    record.switch_drops_suspected += load.switch_drops_suspected;
  }
  std::sort(record.site_loads.begin(), record.site_loads.end(),
            [](const archive::SiteEpochLoad& a,
               const archive::SiteEpochLoad& b) { return a.site < b.site; });

  // Flows enter in FlowKey order, not hash-map order: exact per-flow byte
  // totals inserted in a canonical sequence make the sketch — and thus the
  // encoded record — independent of the aggregation's thread count.
  std::vector<std::pair<FlowKey, std::uint64_t>> flows;
  flows.reserve(report.flow_aggregates.size());
  for (const auto& [key, aggregate] : report.flow_aggregates) {
    flows.emplace_back(key, aggregate.wire_bytes);
  }
  std::sort(flows.begin(), flows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  archive::TopFlowSketch sketch(meta.top_flow_capacity);
  for (const auto& [key, bytes] : flows) {
    sketch.insert(key.to_string(), bytes);
  }
  record.top_flows = std::move(sketch);
  return record;
}

}  // namespace patchwork::analysis
