#include "analysis/pipeline.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <optional>
#include <sstream>
#include <utility>

#include "analysis/report.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace patchwork::analysis {

DigestedProfile digest_profile(const std::vector<RawCapture>& captures) {
  DigestedProfile out;
  out.files = digest_all(captures, &out.stats);
  return out;
}

ProfileReport run_pipeline(const std::vector<RawCapture>& captures) {
  ProfileReport report;
  DigestedProfile digested;
  {
    OBS_SPAN("pipeline/digest_all");
    digested.files = digest_all(captures, &report.digest_stats);
  }

  // Analyze step: the passes are independent and each writes a distinct
  // report field, so they fan out as one task each. Flow aggregation and
  // the distribution derived from it stay one task to keep the dependency
  // inside a single thread. The Index step rides in the pass array too:
  // its task builds the ProfileIndex and immediately consumes it for the
  // per-site header-variety analysis; the Process step below reuses it for
  // the per-site frame-size CSV, so index construction overlaps the other
  // passes instead of serializing in front of them.
  std::optional<ProfileIndex> index;
  const std::array<std::function<void()>, 8> passes = {
      [&] { report.frame_sizes = analyze_frame_sizes(digested.files); },
      [&] {
        report.header_occurrence = analyze_header_occurrence(digested.files);
      },
      [&] {
        index.emplace(digested.files);
        report.site_variety =
            analyze_site_header_variety(digested.files, *index);
      },
      [&] { report.flows_per_sample = analyze_flows_per_sample(digested.files); },
      [&] { report.tcp_control = analyze_tcp_control(digested.files); },
      [&] { report.tagging = analyze_tagging(digested.files); },
      [&] { report.top_stacks = analyze_top_stacks(digested.files); },
      [&] {
        report.flow_aggregates = aggregate_flows(digested.files);
        report.distinct_flows = report.flow_aggregates.size();
        report.flow_distribution =
            analyze_flow_distribution(report.flow_aggregates);
        report.largest_flow_bytes = report.flow_distribution.largest_flow_bytes;
      },
  };
  {
    OBS_SPAN("pipeline/analyze");
    util::parallel_for(passes.size(), [&](std::size_t i) { passes[i](); });
  }

  // Per-site accounting rides after the analyze barrier because it needs
  // the index (built in the pass array above). Each site is one task;
  // digest_all preserves input order, so files[pos] pairs with
  // captures[pos] and pcap byte counts attribute to the right sample.
  {
    OBS_SPAN("pipeline/site_profile");
    const std::vector<std::string> sites = index->sites();
    std::vector<SiteLoad> loads(sites.size());
    std::vector<FrameSizeResult> sizes(sites.size());
    util::parallel_for(sites.size(), [&](std::size_t i) {
      sizes[i] = analyze_frame_sizes_site(digested.files, *index, sites[i]);
      SiteLoad load;
      load.site = sites[i];
      for (std::size_t pos : index->by_site(sites[i])) {
        const AcapFile& file = digested.files[pos];
        ++load.samples;
        load.frames += file.records.size();
        for (const AcapRecord& record : file.records) {
          load.wire_bytes += record.wire_length;
        }
        load.pcap_bytes += captures[pos].pcap.size();
        load.switch_drops_suspected += file.switch_drops_suspected;
      }
      loads[i] = std::move(load);
    });
    report.site_loads = std::move(loads);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      report.site_frame_sizes.emplace(sites[i], std::move(sizes[i]));
    }
  }

  // Process step: render every CSV, one parallel task per file, each into
  // its own slot; the name->bytes map is assembled afterwards in order.
  using Emitter = std::pair<const char*, std::function<void(std::ostream&)>>;
  const std::array<Emitter, 10> emitters = {{
      {"frame_sizes.csv",
       [&](std::ostream& os) { write_frame_size_csv(os, report.frame_sizes); }},
      {"site_frame_sizes.csv",
       [&](std::ostream& os) {
         write_site_frame_size_csv(os, digested.files, *index);
       }},
      {"header_occurrence.csv",
       [&](std::ostream& os) {
         write_header_occurrence_csv(os, report.header_occurrence);
       }},
      {"site_variety.csv",
       [&](std::ostream& os) {
         write_site_variety_csv(os, report.site_variety);
       }},
      {"flows_per_sample.csv",
       [&](std::ostream& os) {
         write_flows_per_sample_csv(os, report.flows_per_sample);
       }},
      {"flow_aggregate.csv",
       [&](std::ostream& os) {
         write_flow_aggregate_csv(os, report.flow_aggregates);
       }},
      {"tcp_control.csv",
       [&](std::ostream& os) { write_tcp_control_csv(os, report.tcp_control); }},
      {"tagging.csv",
       [&](std::ostream& os) { write_tagging_csv(os, report.tagging); }},
      {"top_stacks.csv",
       [&](std::ostream& os) { write_top_stacks_csv(os, report.top_stacks); }},
      {"flow_distribution.csv",
       [&](std::ostream& os) {
         write_flow_distribution_csv(os, report.flow_distribution);
       }},
  }};
  std::array<std::string, emitters.size()> rendered;
  {
    OBS_SPAN("pipeline/process_csv");
    util::parallel_for(emitters.size(), [&](std::size_t i) {
      std::ostringstream os;
      emitters[i].second(os);
      rendered[i] = os.str();
    });
  }
  for (std::size_t i = 0; i < emitters.size(); ++i) {
    report.csv_files[emitters[i].first] = std::move(rendered[i]);
  }
  return report;
}

}  // namespace patchwork::analysis
