#include "analysis/pipeline.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/report.hpp"

namespace patchwork::analysis {

DigestedProfile digest_profile(const std::vector<RawCapture>& captures) {
  DigestedProfile out;
  out.files = digest_all(captures, &out.stats);
  return out;
}

ProfileReport run_pipeline(const std::vector<RawCapture>& captures) {
  ProfileReport report;
  DigestedProfile digested;
  digested.files = digest_all(captures, &report.digest_stats);

  // The index is built even though this whole-profile report touches every
  // file — selective analyses (and tests) use it through digest_profile().
  ProfileIndex index(digested.files);
  (void)index;

  report.frame_sizes = analyze_frame_sizes(digested.files);
  report.header_occurrence = analyze_header_occurrence(digested.files);
  report.site_variety = analyze_site_header_variety(digested.files);
  report.flows_per_sample = analyze_flows_per_sample(digested.files);
  report.tcp_control = analyze_tcp_control(digested.files);
  report.tagging = analyze_tagging(digested.files);
  report.top_stacks = analyze_top_stacks(digested.files);

  const auto flows = aggregate_flows(digested.files);
  report.distinct_flows = flows.size();
  report.flow_distribution = analyze_flow_distribution(flows);
  report.largest_flow_bytes = report.flow_distribution.largest_flow_bytes;

  // Process step: render every CSV.
  auto emit = [&report](const std::string& name, auto&& writer) {
    std::ostringstream os;
    writer(os);
    report.csv_files[name] = os.str();
  };
  emit("frame_sizes.csv", [&](std::ostream& os) {
    write_frame_size_csv(os, report.frame_sizes);
  });
  emit("site_frame_sizes.csv", [&](std::ostream& os) {
    write_site_frame_size_csv(os, digested.files);
  });
  emit("header_occurrence.csv", [&](std::ostream& os) {
    write_header_occurrence_csv(os, report.header_occurrence);
  });
  emit("site_variety.csv", [&](std::ostream& os) {
    write_site_variety_csv(os, report.site_variety);
  });
  emit("flows_per_sample.csv", [&](std::ostream& os) {
    write_flows_per_sample_csv(os, report.flows_per_sample);
  });
  emit("flow_aggregate.csv", [&](std::ostream& os) {
    write_flow_aggregate_csv(os, flows);
  });
  emit("tcp_control.csv", [&](std::ostream& os) {
    write_tcp_control_csv(os, report.tcp_control);
  });
  emit("tagging.csv", [&](std::ostream& os) {
    write_tagging_csv(os, report.tagging);
  });
  emit("top_stacks.csv", [&](std::ostream& os) {
    write_top_stacks_csv(os, report.top_stacks);
  });
  emit("flow_distribution.csv", [&](std::ostream& os) {
    write_flow_distribution_csv(os, report.flow_distribution);
  });
  return report;
}

}  // namespace patchwork::analysis
