#include "analysis/digest.hpp"

#include "net/parser.hpp"
#include "pcap/pcap.hpp"

namespace patchwork::analysis {

AcapFile digest(const RawCapture& capture, DigestStats* stats) {
  AcapFile out;
  out.site = capture.site;
  out.port = capture.port;
  out.start = capture.start;
  out.duration = capture.duration;
  out.switch_drops_suspected = capture.switch_drops_suspected;

  auto reader = pcap::PcapReader::open(capture.pcap);
  if (!reader) {
    if (stats) ++stats->bad_records;
    return out;
  }
  while (auto frame = reader->next()) {
    const net::ParsedFrame parsed = net::parse_frame(*frame);
    AcapRecord rec = abstract_frame(parsed);
    if (stats) {
      ++stats->frames;
      if (rec.has(net::Protocol::kTruncated)) ++stats->truncated_frames;
      if (rec.has(net::Protocol::kMalformed)) ++stats->malformed_frames;
    }
    out.records.push_back(std::move(rec));
  }
  if (stats) stats->bad_records += reader->bad_records();
  return out;
}

std::vector<AcapFile> digest_all(const std::vector<RawCapture>& captures,
                                 DigestStats* stats) {
  std::vector<AcapFile> out;
  out.reserve(captures.size());
  for (const RawCapture& c : captures) out.push_back(digest(c, stats));
  return out;
}

}  // namespace patchwork::analysis
