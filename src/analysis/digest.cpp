#include "analysis/digest.hpp"

#include "net/parser.hpp"
#include "pcap/pcap.hpp"
#include "util/parallel.hpp"

namespace patchwork::analysis {

DigestStats& DigestStats::operator+=(const DigestStats& other) {
  frames += other.frames;
  bad_records += other.bad_records;
  truncated_frames += other.truncated_frames;
  malformed_frames += other.malformed_frames;
  return *this;
}

AcapFile digest(const RawCapture& capture, DigestStats* stats) {
  AcapFile out;
  out.site = capture.site;
  out.port = capture.port;
  out.start = capture.start;
  out.duration = capture.duration;
  out.switch_drops_suspected = capture.switch_drops_suspected;

  auto reader = pcap::PcapReader::open(capture.pcap);
  if (!reader) {
    if (stats) ++stats->bad_records;
    return out;
  }
  // Zero-copy hot loop: dissect each record in place in the reader's buffer
  // instead of copying it into an owning net::Frame first.
  while (auto view = reader->next_view()) {
    const net::ParsedFrame parsed =
        net::parse_bytes(view->bytes, view->wire_length, view->timestamp);
    AcapRecord rec = abstract_frame(parsed);
    if (stats) {
      ++stats->frames;
      if (rec.has(net::Protocol::kTruncated)) ++stats->truncated_frames;
      if (rec.has(net::Protocol::kMalformed)) ++stats->malformed_frames;
    }
    out.records.push_back(std::move(rec));
  }
  if (stats) stats->bad_records += reader->bad_records();
  return out;
}

std::vector<AcapFile> digest_all(const std::vector<RawCapture>& captures,
                                 DigestStats* stats) {
  // One task per capture; each writes its own output slot and its own
  // private DigestStats, merged below in input order.
  std::vector<AcapFile> out(captures.size());
  std::vector<DigestStats> per_capture(stats ? captures.size() : 0);
  util::parallel_for(captures.size(), [&](std::size_t i) {
    out[i] = digest(captures[i], stats ? &per_capture[i] : nullptr);
  });
  if (stats) {
    for (const DigestStats& s : per_capture) *stats += s;
  }
  return out;
}

}  // namespace patchwork::analysis
