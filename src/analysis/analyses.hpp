// The Analyze step (Section 6.2.4): "a diverse set of analyses — for
// example, to characterize frame sizes, the types of headers observed in
// the captures, and classify flows".
//
// Each analysis consumes AcapFiles and produces a plain result struct; the
// Process step (report.hpp) turns results into CSV.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/acap.hpp"
#include "util/histogram.hpp"

namespace patchwork::analysis {

class ProfileIndex;  // analysis/index.hpp

// --- Frame sizes (Fig. 15 and the Section 8.2 aggregate) -----------------

/// The paper's frame-size buckets. The final bucket extends to the jumbo
/// maximum; 1519-2047 is the bucket that dominates FABRIC traffic.
std::vector<double> paper_frame_size_edges();

struct FrameSizeResult {
  util::Histogram histogram = util::Histogram(paper_frame_size_edges());
  std::uint64_t frames = 0;

  double fraction_in(double lo) const;  ///< Fraction of bucket starting at lo.
  double jumbo_fraction() const;        ///< Frames > 1518 B.
};

FrameSizeResult analyze_frame_sizes(const std::vector<AcapFile>& files);
FrameSizeResult analyze_frame_sizes_site(const std::vector<AcapFile>& files,
                                         const std::string& site);
/// Index-assisted variant: touches only the files the index lists for
/// `site` instead of scanning the whole profile (the Section 6.2.4 point
/// of the Index step). Result is identical to the scanning variant.
FrameSizeResult analyze_frame_sizes_site(const std::vector<AcapFile>& files,
                                         const ProfileIndex& index,
                                         const std::string& site);

// --- Header occurrence (Fig. 12) -----------------------------------------

struct HeaderOccurrenceResult {
  std::uint64_t frames = 0;
  /// Total occurrences per protocol (Ethernet can exceed `frames` because
  /// pseudowire/VXLAN frames carry Ethernet twice).
  std::array<std::uint64_t, net::kProtocolCount> occurrences{};

  double percent(net::Protocol p) const;
};

HeaderOccurrenceResult analyze_header_occurrence(
    const std::vector<AcapFile>& files);

// --- Per-site header variety (Fig. 11) ------------------------------------

struct SiteHeaderVariety {
  std::string site;
  std::size_t distinct_headers = 0;  ///< y1-axis of Fig. 11.
  std::size_t deepest_stack = 0;     ///< y2-axis of Fig. 11.
};

std::vector<SiteHeaderVariety> analyze_site_header_variety(
    const std::vector<AcapFile>& files);
/// Index-assisted variant: iterates sites via the index's site directory
/// rather than re-grouping every file. Identical output (both orders are
/// sorted by site name).
std::vector<SiteHeaderVariety> analyze_site_header_variety(
    const std::vector<AcapFile>& files, const ProfileIndex& index);

// --- Flows (Fig. 13 and the flow-size aggregation) ------------------------

struct SampleFlowCount {
  std::string site;
  util::Nanos start = 0;
  std::size_t flows = 0;
};

/// Distinct flows in each sample (each AcapFile is one sample window).
std::vector<SampleFlowCount> analyze_flows_per_sample(
    const std::vector<AcapFile>& files);

struct FlowAggregate {
  std::uint64_t frames = 0;
  std::uint64_t wire_bytes = 0;  ///< Sum of original frame lengths.
  util::Nanos first_seen = 0;
  util::Nanos last_seen = 0;
  std::uint32_t rst_frames = 0;
  std::uint32_t samples = 0;  ///< Distinct samples the flow appeared in.
};

/// Cross-sample flow stitching: "we also analyzed across samples to piece
/// together flow snippets and aggregate their packets."
std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash> aggregate_flows(
    const std::vector<AcapFile>& files);

// --- Flow size & duration distributions (Section 4's profile definition:
// "the sizes and durations of flows") -----------------------------------

struct FlowDistributionResult {
  std::uint64_t flows = 0;
  /// Log-decade byte buckets: [1,10), [10,100), ... aggregated flow bytes.
  util::Histogram size_histogram = util::Histogram(
      {1, 10, 100, 1000, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11});
  /// Observed flow spans in seconds (snippet first-seen to last-seen).
  util::Histogram duration_histogram =
      util::Histogram({0, 1, 5, 20, 60, 300, 1800, 7200, 86400});
  std::uint64_t largest_flow_bytes = 0;
  // Size quantiles, computed with one sort via util::percentiles (the
  // flow-size tail is what Section 4 calls heavy; p95/p99 locate it).
  double median_flow_bytes = 0.0;
  double p95_flow_bytes = 0.0;
  double p99_flow_bytes = 0.0;
};

FlowDistributionResult analyze_flow_distribution(
    const std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash>& flows);

// --- TCP control information (Section 4: e.g. RST-flagged packets) --------

struct TcpControlResult {
  std::uint64_t tcp_frames = 0;
  std::uint64_t syn = 0;
  std::uint64_t fin = 0;
  std::uint64_t rst = 0;
  std::uint64_t pure_ack = 0;  ///< ACK set, no payload on the wire.
};

TcpControlResult analyze_tcp_control(const std::vector<AcapFile>& files);

// --- Typical encapsulation stacks (Section 8.2's examples) -----------------

struct StackCount {
  std::string stack;  ///< e.g. "eth/vlan/mpls/mpls/pw/eth/ipv4/tcp/tls".
  std::uint64_t frames = 0;
  double fraction = 0.0;  ///< Of all frames.
};

/// The `k` most frequent abstract header stacks — the data behind the
/// paper's "examples of typical encapsulations include ..." passage.
std::vector<StackCount> analyze_top_stacks(const std::vector<AcapFile>& files,
                                           std::size_t k = 10);

// --- Encapsulation / tagging (Fig. 12's VLAN/MPLS finding) ----------------

struct TaggingResult {
  std::uint64_t frames = 0;
  std::uint64_t vlan_tagged = 0;
  std::uint64_t mpls_tagged = 0;
  std::uint64_t both_tagged = 0;
  std::uint64_t untagged = 0;
};

TaggingResult analyze_tagging(const std::vector<AcapFile>& files);

}  // namespace patchwork::analysis
