// Bridge from one profiling run's report to the archive's epoch record.
//
// This is the only place that knows both shapes: it boils a ProfileReport
// down to the sums, histograms, and the top-flow summary the longitudinal
// archive stores, leaving the full-fidelity CSVs and pcaps behind.
// Extraction is deterministic: flows enter the sketch in FlowKey order, so
// the encoded record is byte-identical for any analysis thread count.
#pragma once

#include <cstddef>
#include <string>

#include "analysis/pipeline.hpp"
#include "archive/record.hpp"
#include "util/units.hpp"

namespace patchwork::analysis {

struct EpochMeta {
  std::string label;             ///< e.g. "week38".
  util::Nanos start = 0;         ///< Epoch start on the simulated clock.
  util::Nanos duration = 0;
  double offered_bps = 0.0;      ///< Testbed offered load during the epoch.
  std::string manifest_json;     ///< Manifest deterministic section,
                                 ///< embedded verbatim in the record.
  std::size_t top_flow_capacity = 256;
};

/// Reduce `report` to an archive record. The record's epoch indices are
/// left unset — ArchiveWriter::append stamps them.
archive::EpochRecord extract_epoch_record(const ProfileReport& report,
                                          const EpochMeta& meta);

}  // namespace patchwork::analysis
