#include "analysis/report.hpp"

#include <algorithm>
#include <set>

#include "analysis/index.hpp"
#include "util/csv.hpp"

namespace patchwork::analysis {

void write_frame_size_csv(std::ostream& out, const FrameSizeResult& result) {
  util::CsvWriter csv(out, {"bucket_lo", "bucket_hi", "frames", "fraction"});
  for (std::size_t i = 0; i < result.histogram.bucket_count(); ++i) {
    csv.begin_row()
        .add(result.histogram.bucket_lo(i))
        .add(result.histogram.bucket_hi(i))
        .add(result.histogram.bucket(i))
        .add(result.histogram.fraction(i))
        .end_row();
  }
}

void write_site_frame_size_csv(std::ostream& out,
                               const std::vector<AcapFile>& files) {
  std::set<std::string> sites;
  for (const AcapFile& f : files) sites.insert(f.site);
  util::CsvWriter csv(out, {"site", "bucket_lo", "bucket_hi", "fraction",
                            "jumbo_fraction"});
  for (const std::string& site : sites) {
    const FrameSizeResult r = analyze_frame_sizes_site(files, site);
    for (std::size_t i = 0; i < r.histogram.bucket_count(); ++i) {
      csv.begin_row()
          .add(site)
          .add(r.histogram.bucket_lo(i))
          .add(r.histogram.bucket_hi(i))
          .add(r.histogram.fraction(i))
          .add(r.jumbo_fraction())
          .end_row();
    }
  }
}

void write_site_frame_size_csv(std::ostream& out,
                               const std::vector<AcapFile>& files,
                               const ProfileIndex& index) {
  util::CsvWriter csv(out, {"site", "bucket_lo", "bucket_hi", "fraction",
                            "jumbo_fraction"});
  // index.sites() is name-sorted, matching the std::set order of the
  // scanning variant; each per-site pass reads only that site's files.
  for (const std::string& site : index.sites()) {
    const FrameSizeResult r = analyze_frame_sizes_site(files, index, site);
    for (std::size_t i = 0; i < r.histogram.bucket_count(); ++i) {
      csv.begin_row()
          .add(site)
          .add(r.histogram.bucket_lo(i))
          .add(r.histogram.bucket_hi(i))
          .add(r.histogram.fraction(i))
          .add(r.jumbo_fraction())
          .end_row();
    }
  }
}

void write_header_occurrence_csv(std::ostream& out,
                                 const HeaderOccurrenceResult& result) {
  util::CsvWriter csv(out, {"protocol", "occurrences", "percent_of_frames"});
  for (std::size_t i = 0; i < net::kProtocolCount; ++i) {
    const auto p = static_cast<net::Protocol>(i);
    if (result.occurrences[i] == 0) continue;
    csv.begin_row()
        .add(net::to_string(p))
        .add(result.occurrences[i])
        .add(result.percent(p))
        .end_row();
  }
}

void write_site_variety_csv(std::ostream& out,
                            const std::vector<SiteHeaderVariety>& rows) {
  util::CsvWriter csv(out, {"site", "distinct_headers", "deepest_stack"});
  for (const SiteHeaderVariety& r : rows) {
    csv.begin_row()
        .add(r.site)
        .add(static_cast<std::uint64_t>(r.distinct_headers))
        .add(static_cast<std::uint64_t>(r.deepest_stack))
        .end_row();
  }
}

void write_flows_per_sample_csv(std::ostream& out,
                                const std::vector<SampleFlowCount>& rows) {
  util::CsvWriter csv(out, {"site", "sample_start_s", "flows"});
  for (const SampleFlowCount& r : rows) {
    csv.begin_row()
        .add(r.site)
        .add(util::to_seconds(r.start))
        .add(static_cast<std::uint64_t>(r.flows))
        .end_row();
  }
}

void write_flow_aggregate_csv(
    std::ostream& out,
    const std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash>& flows) {
  util::CsvWriter csv(out, {"flow", "frames", "wire_bytes", "samples",
                            "rst_frames", "span_s"});
  // Deterministic output order: largest flows first.
  std::vector<const std::pair<const FlowKey, FlowAggregate>*> rows;
  rows.reserve(flows.size());
  for (const auto& kv : flows) rows.push_back(&kv);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    if (a->second.wire_bytes != b->second.wire_bytes) {
      return a->second.wire_bytes > b->second.wire_bytes;
    }
    return a->first < b->first;
  });
  for (const auto* kv : rows) {
    csv.begin_row()
        .add(kv->first.to_string())
        .add(kv->second.frames)
        .add(kv->second.wire_bytes)
        .add(static_cast<std::uint64_t>(kv->second.samples))
        .add(static_cast<std::uint64_t>(kv->second.rst_frames))
        .add(util::to_seconds(kv->second.last_seen - kv->second.first_seen))
        .end_row();
  }
}

void write_tcp_control_csv(std::ostream& out,
                           const TcpControlResult& result) {
  util::CsvWriter csv(out, {"metric", "count"});
  csv.begin_row().add("tcp_frames").add(result.tcp_frames).end_row();
  csv.begin_row().add("syn").add(result.syn).end_row();
  csv.begin_row().add("fin").add(result.fin).end_row();
  csv.begin_row().add("rst").add(result.rst).end_row();
  csv.begin_row().add("pure_ack").add(result.pure_ack).end_row();
}

void write_top_stacks_csv(std::ostream& out,
                          const std::vector<StackCount>& rows) {
  util::CsvWriter csv(out, {"stack", "frames", "fraction"});
  for (const StackCount& r : rows) {
    csv.begin_row().add(r.stack).add(r.frames).add(r.fraction).end_row();
  }
}

void write_flow_distribution_csv(std::ostream& out,
                                 const FlowDistributionResult& result) {
  util::CsvWriter csv(out, {"dimension", "bucket_lo", "bucket_hi", "flows"});
  for (std::size_t i = 0; i < result.size_histogram.bucket_count(); ++i) {
    csv.begin_row()
        .add("bytes")
        .add(result.size_histogram.bucket_lo(i))
        .add(result.size_histogram.bucket_hi(i))
        .add(result.size_histogram.bucket(i))
        .end_row();
  }
  for (std::size_t i = 0; i < result.duration_histogram.bucket_count();
       ++i) {
    csv.begin_row()
        .add("seconds")
        .add(result.duration_histogram.bucket_lo(i))
        .add(result.duration_histogram.bucket_hi(i))
        .add(result.duration_histogram.bucket(i))
        .end_row();
  }
}

void write_tagging_csv(std::ostream& out, const TaggingResult& result) {
  util::CsvWriter csv(out, {"metric", "count"});
  csv.begin_row().add("frames").add(result.frames).end_row();
  csv.begin_row().add("vlan_tagged").add(result.vlan_tagged).end_row();
  csv.begin_row().add("mpls_tagged").add(result.mpls_tagged).end_row();
  csv.begin_row().add("both_tagged").add(result.both_tagged).end_row();
  csv.begin_row().add("untagged").add(result.untagged).end_row();
}

}  // namespace patchwork::analysis
