// End-to-end offline analysis pipeline (Fig. 9):
//   gathered captures -> Digest -> Index -> Analyze -> Process (CSV).
//
// This is the phase that runs *outside* the testbed, after the coordinator
// has downloaded the compressed captures and logs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/analyses.hpp"
#include "analysis/digest.hpp"
#include "analysis/index.hpp"

namespace patchwork::analysis {

struct ProfileReport {
  DigestStats digest_stats;
  FrameSizeResult frame_sizes;
  HeaderOccurrenceResult header_occurrence;
  std::vector<SiteHeaderVariety> site_variety;
  std::vector<SampleFlowCount> flows_per_sample;
  TcpControlResult tcp_control;
  TaggingResult tagging;
  std::vector<StackCount> top_stacks;
  FlowDistributionResult flow_distribution;
  std::uint64_t distinct_flows = 0;
  std::uint64_t largest_flow_bytes = 0;
  /// CSV outputs of the Process step, keyed by file name.
  std::map<std::string, std::string> csv_files;
};

/// Run the full pipeline over a gathered profile.
ProfileReport run_pipeline(const std::vector<RawCapture>& captures);

/// Digest + index only (for callers that drive analyses selectively).
struct DigestedProfile {
  std::vector<AcapFile> files;
  DigestStats stats;
};
DigestedProfile digest_profile(const std::vector<RawCapture>& captures);

}  // namespace patchwork::analysis
