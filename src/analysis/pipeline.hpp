// End-to-end offline analysis pipeline (Fig. 9):
//   gathered captures -> Digest -> Index -> Analyze -> Process (CSV).
//
// This is the phase that runs *outside* the testbed, after the coordinator
// has downloaded the compressed captures and logs.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/analyses.hpp"
#include "analysis/digest.hpp"
#include "analysis/index.hpp"

namespace patchwork::analysis {

/// One site's capture-volume accounting for a run: how many sample
/// windows it contributed, what hit the wire, and what survived to pcap.
struct SiteLoad {
  std::string site;
  std::uint64_t samples = 0;
  std::uint64_t frames = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t pcap_bytes = 0;
  std::uint64_t switch_drops_suspected = 0;
};

struct ProfileReport {
  DigestStats digest_stats;
  FrameSizeResult frame_sizes;
  HeaderOccurrenceResult header_occurrence;
  std::vector<SiteHeaderVariety> site_variety;
  std::vector<SampleFlowCount> flows_per_sample;
  TcpControlResult tcp_control;
  TaggingResult tagging;
  std::vector<StackCount> top_stacks;
  FlowDistributionResult flow_distribution;
  std::uint64_t distinct_flows = 0;
  std::uint64_t largest_flow_bytes = 0;
  /// Stitched cross-sample flow aggregates (the flow_aggregate.csv data,
  /// kept for consumers like the archive's top-flow summary).
  std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash> flow_aggregates;
  /// Per-site accounting, sorted by site name.
  std::vector<SiteLoad> site_loads;
  /// Per-site frame-size distributions (index-assisted), keyed by site.
  std::map<std::string, FrameSizeResult> site_frame_sizes;
  /// CSV outputs of the Process step, keyed by file name.
  std::map<std::string, std::string> csv_files;
};

/// Run the full pipeline over a gathered profile.
ProfileReport run_pipeline(const std::vector<RawCapture>& captures);

/// Digest + index only (for callers that drive analyses selectively).
struct DigestedProfile {
  std::vector<AcapFile> files;
  DigestStats stats;
};
DigestedProfile digest_profile(const std::vector<RawCapture>& captures);

}  // namespace patchwork::analysis
