#include "analysis/index.hpp"

#include <algorithm>

namespace patchwork::analysis {

ProfileIndex::ProfileIndex(const std::vector<AcapFile>& files) {
  entries_.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    const AcapFile& f = files[i];
    Entry e;
    e.site = f.site;
    e.start = f.start;
    e.end = f.start + f.duration;
    for (const AcapRecord& r : f.records) {
      for (net::Protocol p : r.stack) {
        e.protocols.set(static_cast<std::size_t>(p));
      }
    }
    site_index_[e.site].push_back(i);
    entries_.push_back(std::move(e));
  }
  for (auto& [site, positions] : site_index_) {
    std::sort(positions.begin(), positions.end(),
              [this](std::size_t a, std::size_t b) {
                return entries_[a].start < entries_[b].start;
              });
  }
}

std::vector<std::size_t> ProfileIndex::by_site(const std::string& site) const {
  const auto it = site_index_.find(site);
  return it == site_index_.end() ? std::vector<std::size_t>{} : it->second;
}

std::vector<std::size_t> ProfileIndex::by_time(util::Nanos from,
                                               util::Nanos to) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].start < to && entries_[i].end > from) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> ProfileIndex::by_protocol(net::Protocol p) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].protocols.test(static_cast<std::size_t>(p))) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::size_t> ProfileIndex::query(
    const std::string& site, util::Nanos from, util::Nanos to,
    std::optional<net::Protocol> proto) const {
  std::vector<std::size_t> out;
  for (std::size_t i : by_site(site)) {
    const Entry& e = entries_[i];
    if (e.start >= to || e.end <= from) continue;
    if (proto && !e.protocols.test(static_cast<std::size_t>(*proto))) {
      continue;
    }
    out.push_back(i);
  }
  return out;
}

std::vector<std::string> ProfileIndex::sites() const {
  std::vector<std::string> out;
  out.reserve(site_index_.size());
  for (const auto& [site, _] : site_index_) out.push_back(site);
  return out;
}

}  // namespace patchwork::analysis
