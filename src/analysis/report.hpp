// The Process step (Section 6.2.4): analysis results -> CSV files that
// "describe different aspects of the profile — such as the distribution of
// different types of frames across FABRIC sites, and the composition of
// flows."
#pragma once

#include <ostream>

#include "analysis/analyses.hpp"

namespace patchwork::analysis {

void write_frame_size_csv(std::ostream& out, const FrameSizeResult& result);
void write_site_frame_size_csv(std::ostream& out,
                               const std::vector<AcapFile>& files);
/// Index-assisted variant: the per-site frame-size passes read only each
/// site's indexed files. Byte-identical to the scanning variant.
void write_site_frame_size_csv(std::ostream& out,
                               const std::vector<AcapFile>& files,
                               const ProfileIndex& index);
void write_header_occurrence_csv(std::ostream& out,
                                 const HeaderOccurrenceResult& result);
void write_site_variety_csv(std::ostream& out,
                            const std::vector<SiteHeaderVariety>& rows);
void write_flows_per_sample_csv(std::ostream& out,
                                const std::vector<SampleFlowCount>& rows);
void write_flow_aggregate_csv(
    std::ostream& out,
    const std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash>& flows);
void write_tcp_control_csv(std::ostream& out, const TcpControlResult& result);
void write_tagging_csv(std::ostream& out, const TaggingResult& result);
void write_top_stacks_csv(std::ostream& out,
                          const std::vector<StackCount>& rows);
void write_flow_distribution_csv(std::ostream& out,
                                 const FlowDistributionResult& result);

}  // namespace patchwork::analysis
