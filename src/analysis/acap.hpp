// Abstract captures ("acap").
//
// Section 6.2.4: the Digest step applies protocol dissectors to raw pcaps
// and produces, for each frame prefix, "an abstract stack of headers
// ('acap')", discarding unneeded bytes but retaining timing and frame-size
// metadata. Downstream analyses never touch raw bytes again — they consume
// these records.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/parser.hpp"
#include "net/protocol.hpp"
#include "util/units.hpp"

namespace patchwork::analysis {

/// Flow identity under the paper's classification rule: virtualization
/// tags (VLAN, MPLS) *plus* network- and transport-layer fields, "thus
/// even if the same 10/8 addresses are used in different slices, they are
/// treated as different flows". Endpoints are stored canonically (lower
/// endpoint first) so a flow's two directions share one key.
struct FlowKey {
  std::vector<std::uint16_t> vlan_ids;
  std::vector<std::uint32_t> mpls_labels;
  std::uint8_t ip_version = 0;  ///< 0 = non-IP.
  std::array<std::uint8_t, 16> addr_a{};
  std::array<std::uint8_t, 16> addr_b{};
  std::uint8_t l4_proto = 0;
  std::uint16_t port_a = 0;
  std::uint16_t port_b = 0;

  bool operator==(const FlowKey&) const = default;
  /// Lexicographic ordering so keys can live in ordered containers.
  bool operator<(const FlowKey& other) const;

  std::string to_string() const;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const;
};

/// One dissected frame, abstracted.
struct AcapRecord {
  std::vector<net::Protocol> stack;  ///< Outermost first.
  std::uint32_t wire_length = 0;
  std::uint32_t captured_length = 0;
  util::Nanos timestamp = 0;
  FlowKey flow;
  std::uint8_t tcp_flags = 0;  ///< 0 when not TCP.

  std::size_t header_depth() const;
  bool has(net::Protocol p) const;
};

/// The digest of one pcap: the sample's metadata plus its records.
struct AcapFile {
  std::string site;        ///< Pseudonymized site name ("S7").
  std::uint32_t port = 0;  ///< Mirrored switch port index.
  util::Nanos start = 0;
  util::Nanos duration = 0;
  std::uint64_t switch_drops_suspected = 0;  ///< From congestion detection.
  std::vector<AcapRecord> records;
};

/// Derive a FlowKey (canonical direction) from a dissected frame.
FlowKey flow_key_of(const net::ParsedFrame& frame);

/// Abstract one dissected frame into an AcapRecord.
AcapRecord abstract_frame(const net::ParsedFrame& frame);

}  // namespace patchwork::analysis
