#include "analysis/acap.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace patchwork::analysis {

bool FlowKey::operator<(const FlowKey& other) const {
  return std::tie(vlan_ids, mpls_labels, ip_version, addr_a, addr_b, l4_proto,
                  port_a, port_b) <
         std::tie(other.vlan_ids, other.mpls_labels, other.ip_version,
                  other.addr_a, other.addr_b, other.l4_proto, other.port_a,
                  other.port_b);
}

std::string FlowKey::to_string() const {
  std::ostringstream os;
  os << "vlan[";
  for (std::size_t i = 0; i < vlan_ids.size(); ++i) {
    if (i) os << ',';
    os << vlan_ids[i];
  }
  os << "]mpls[";
  for (std::size_t i = 0; i < mpls_labels.size(); ++i) {
    if (i) os << ',';
    os << mpls_labels[i];
  }
  os << "]v" << static_cast<int>(ip_version) << " proto"
     << static_cast<int>(l4_proto) << " " << static_cast<int>(port_a) << "<->"
     << static_cast<int>(port_b);
  return os.str();
}

std::size_t FlowKeyHash::operator()(const FlowKey& k) const {
  // FNV-1a over the key's serialized fields.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (auto v : k.vlan_ids) mix(v);
  for (auto v : k.mpls_labels) mix(v);
  mix(k.ip_version);
  for (int i = 0; i < 16; ++i) {
    mix(k.addr_a[static_cast<std::size_t>(i)]);
    mix(k.addr_b[static_cast<std::size_t>(i)]);
  }
  mix(k.l4_proto);
  mix(k.port_a);
  mix(k.port_b);
  return static_cast<std::size_t>(h);
}

std::size_t AcapRecord::header_depth() const {
  std::size_t depth = 0;
  for (net::Protocol p : stack) {
    switch (p) {
      case net::Protocol::kPayload:
      case net::Protocol::kIperf:
      case net::Protocol::kTruncated:
      case net::Protocol::kMalformed:
        break;
      default:
        ++depth;
    }
  }
  return depth;
}

bool AcapRecord::has(net::Protocol p) const {
  return std::find(stack.begin(), stack.end(), p) != stack.end();
}

FlowKey flow_key_of(const net::ParsedFrame& frame) {
  FlowKey key;
  key.vlan_ids = frame.vlan_ids;
  key.mpls_labels = frame.mpls_labels;

  std::array<std::uint8_t, 16> src{}, dst{};
  std::uint16_t sport = 0, dport = 0;
  if (frame.ipv4) {
    key.ip_version = 4;
    const std::uint32_t s = frame.ipv4->src.value;
    const std::uint32_t d = frame.ipv4->dst.value;
    for (int i = 0; i < 4; ++i) {
      src[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(s >> (8 * (3 - i)));
      dst[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(d >> (8 * (3 - i)));
    }
  } else if (frame.ipv6) {
    key.ip_version = 6;
    src = frame.ipv6->src.bytes;
    dst = frame.ipv6->dst.bytes;
  }
  if (frame.tcp) {
    key.l4_proto = net::kIpProtoTcp;
    sport = frame.tcp->src_port;
    dport = frame.tcp->dst_port;
  } else if (frame.udp) {
    key.l4_proto = net::kIpProtoUdp;
    sport = frame.udp->src_port;
    dport = frame.udp->dst_port;
  }
  // Canonical direction: (addr, port) pair of the lower endpoint first.
  const bool keep = std::tie(src, sport) <= std::tie(dst, dport);
  key.addr_a = keep ? src : dst;
  key.addr_b = keep ? dst : src;
  key.port_a = keep ? sport : dport;
  key.port_b = keep ? dport : sport;
  return key;
}

AcapRecord abstract_frame(const net::ParsedFrame& frame) {
  AcapRecord rec;
  rec.stack.reserve(frame.layers.size());
  for (const net::LayerInfo& l : frame.layers) rec.stack.push_back(l.protocol);
  rec.wire_length = static_cast<std::uint32_t>(frame.wire_length);
  rec.captured_length = static_cast<std::uint32_t>(frame.captured_length);
  rec.timestamp = frame.timestamp;
  rec.flow = flow_key_of(frame);
  rec.tcp_flags = frame.tcp ? frame.tcp->flags : 0;
  return rec;
}

}  // namespace patchwork::analysis
