// The Index step (Section 6.2.4).
//
// "Since a single profile often produces dozens of gigabytes of data, an
// Index step is carried out to allow subsequent analyses to more quickly
// locate the acap files needed." The index maps site, time range, and
// protocol presence to acap-file positions so an analysis touches only the
// files it needs.
#pragma once

#include <bitset>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/acap.hpp"

namespace patchwork::analysis {

class ProfileIndex {
 public:
  /// Build the index over a digested profile. The referenced files must
  /// outlive the index.
  explicit ProfileIndex(const std::vector<AcapFile>& files);

  /// All file positions for a site, time-ordered.
  std::vector<std::size_t> by_site(const std::string& site) const;

  /// File positions whose sample interval intersects [from, to).
  std::vector<std::size_t> by_time(util::Nanos from, util::Nanos to) const;

  /// File positions containing at least one frame with protocol `p`.
  std::vector<std::size_t> by_protocol(net::Protocol p) const;

  /// Intersection query: site + time + (optionally) protocol.
  std::vector<std::size_t> query(const std::string& site, util::Nanos from,
                                 util::Nanos to,
                                 std::optional<net::Protocol> proto =
                                     std::nullopt) const;

  std::vector<std::string> sites() const;
  std::size_t file_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::string site;
    util::Nanos start = 0;
    util::Nanos end = 0;
    std::bitset<net::kProtocolCount> protocols;
  };
  std::vector<Entry> entries_;
  std::map<std::string, std::vector<std::size_t>> site_index_;
};

}  // namespace patchwork::analysis
