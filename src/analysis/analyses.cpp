#include "analysis/analyses.hpp"

#include <algorithm>
#include <set>
#include "util/stats.hpp"

namespace patchwork::analysis {

std::vector<double> paper_frame_size_edges() {
  return {64, 65, 128, 256, 512, 1024, 1519, 2048, 4096, 9217};
}

double FrameSizeResult::fraction_in(double lo) const {
  for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
    if (histogram.bucket_lo(i) == lo) return histogram.fraction(i);
  }
  return 0.0;
}

double FrameSizeResult::jumbo_fraction() const {
  if (frames == 0) return 0.0;
  std::uint64_t jumbo = 0;
  for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
    if (histogram.bucket_lo(i) >= 1519) jumbo += histogram.bucket(i);
  }
  jumbo += histogram.overflow();
  return static_cast<double>(jumbo) / static_cast<double>(frames);
}

namespace {
void add_frames(FrameSizeResult& result, const AcapFile& f) {
  for (const AcapRecord& r : f.records) {
    result.histogram.add(static_cast<double>(r.wire_length));
    ++result.frames;
  }
}
}  // namespace

FrameSizeResult analyze_frame_sizes(const std::vector<AcapFile>& files) {
  FrameSizeResult result;
  for (const AcapFile& f : files) add_frames(result, f);
  return result;
}

FrameSizeResult analyze_frame_sizes_site(const std::vector<AcapFile>& files,
                                         const std::string& site) {
  FrameSizeResult result;
  for (const AcapFile& f : files) {
    if (f.site == site) add_frames(result, f);
  }
  return result;
}

double HeaderOccurrenceResult::percent(net::Protocol p) const {
  if (frames == 0) return 0.0;
  return 100.0 *
         static_cast<double>(occurrences[static_cast<std::size_t>(p)]) /
         static_cast<double>(frames);
}

HeaderOccurrenceResult analyze_header_occurrence(
    const std::vector<AcapFile>& files) {
  HeaderOccurrenceResult result;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      ++result.frames;
      for (net::Protocol p : r.stack) {
        ++result.occurrences[static_cast<std::size_t>(p)];
      }
    }
  }
  return result;
}

std::vector<SiteHeaderVariety> analyze_site_header_variety(
    const std::vector<AcapFile>& files) {
  std::map<std::string, std::pair<std::set<net::Protocol>, std::size_t>> acc;
  for (const AcapFile& f : files) {
    auto& [protos, deepest] = acc[f.site];
    for (const AcapRecord& r : f.records) {
      for (net::Protocol p : r.stack) {
        switch (p) {
          case net::Protocol::kTruncated:
          case net::Protocol::kMalformed:
            break;
          default:
            protos.insert(p);
        }
      }
      deepest = std::max(deepest, r.header_depth());
    }
  }
  std::vector<SiteHeaderVariety> out;
  out.reserve(acc.size());
  for (const auto& [site, pd] : acc) {
    out.push_back(SiteHeaderVariety{site, pd.first.size(), pd.second});
  }
  return out;
}

std::vector<SampleFlowCount> analyze_flows_per_sample(
    const std::vector<AcapFile>& files) {
  std::vector<SampleFlowCount> out;
  out.reserve(files.size());
  for (const AcapFile& f : files) {
    std::set<FlowKey> flows;
    for (const AcapRecord& r : f.records) flows.insert(r.flow);
    out.push_back(SampleFlowCount{f.site, f.start, flows.size()});
  }
  return out;
}

std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash> aggregate_flows(
    const std::vector<AcapFile>& files) {
  std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash> out;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      FlowAggregate& agg = out[r.flow];
      if (agg.frames == 0) {
        agg.first_seen = r.timestamp + f.start;
        agg.last_seen = agg.first_seen;
      } else {
        agg.first_seen = std::min(agg.first_seen, r.timestamp + f.start);
        agg.last_seen = std::max(agg.last_seen, r.timestamp + f.start);
      }
      ++agg.frames;
      agg.wire_bytes += r.wire_length;
      if (r.tcp_flags & net::tcp_flags::kRst) ++agg.rst_frames;
    }
    // Count distinct samples per flow.
    std::set<FlowKey> in_sample;
    for (const AcapRecord& r : f.records) in_sample.insert(r.flow);
    for (const FlowKey& k : in_sample) ++out[k].samples;
  }
  return out;
}

FlowDistributionResult analyze_flow_distribution(
    const std::unordered_map<FlowKey, FlowAggregate, FlowKeyHash>& flows) {
  FlowDistributionResult result;
  std::vector<double> sizes;
  sizes.reserve(flows.size());
  for (const auto& [key, agg] : flows) {
    ++result.flows;
    result.size_histogram.add(static_cast<double>(agg.wire_bytes));
    result.duration_histogram.add(
        util::to_seconds(agg.last_seen - agg.first_seen));
    result.largest_flow_bytes =
        std::max(result.largest_flow_bytes, agg.wire_bytes);
    sizes.push_back(static_cast<double>(agg.wire_bytes));
  }
  if (!sizes.empty()) {
    result.median_flow_bytes = util::percentile(sizes, 50.0);
  }
  return result;
}

TcpControlResult analyze_tcp_control(const std::vector<AcapFile>& files) {
  TcpControlResult result;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      if (!r.has(net::Protocol::kTcp)) continue;
      ++result.tcp_frames;
      using namespace net::tcp_flags;
      if (r.tcp_flags & kSyn) ++result.syn;
      if (r.tcp_flags & kFin) ++result.fin;
      if (r.tcp_flags & kRst) ++result.rst;
      // A pure ACK ends at the TCP header: nothing followed on the wire.
      if ((r.tcp_flags & kAck) && !(r.tcp_flags & (kSyn | kFin | kRst)) &&
          r.stack.back() == net::Protocol::kTcp) {
        ++result.pure_ack;
      }
    }
  }
  return result;
}

std::vector<StackCount> analyze_top_stacks(const std::vector<AcapFile>& files,
                                           std::size_t k) {
  std::map<std::string, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      std::string stack;
      for (net::Protocol p : r.stack) {
        if (!stack.empty()) stack += '/';
        stack += net::to_string(p);
      }
      ++counts[stack];
      ++total;
    }
  }
  std::vector<StackCount> out;
  out.reserve(counts.size());
  for (const auto& [stack, n] : counts) {
    out.push_back(StackCount{
        stack, n,
        total ? static_cast<double>(n) / static_cast<double>(total) : 0.0});
  }
  std::sort(out.begin(), out.end(), [](const StackCount& a,
                                       const StackCount& b) {
    if (a.frames != b.frames) return a.frames > b.frames;
    return a.stack < b.stack;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

TaggingResult analyze_tagging(const std::vector<AcapFile>& files) {
  TaggingResult result;
  for (const AcapFile& f : files) {
    for (const AcapRecord& r : f.records) {
      ++result.frames;
      const bool vlan = r.has(net::Protocol::kVlan);
      const bool mpls = r.has(net::Protocol::kMpls);
      if (vlan) ++result.vlan_tagged;
      if (mpls) ++result.mpls_tagged;
      if (vlan && mpls) ++result.both_tagged;
      if (!vlan && !mpls) ++result.untagged;
    }
  }
  return result;
}

}  // namespace patchwork::analysis
